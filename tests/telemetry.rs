//! Integration tests for the `pc_rt::obs` telemetry layer as wired
//! through the checker pipeline: span nesting, deterministic counter
//! aggregation across pool widths, the Chrome-trace serialization
//! round-trip, and cache-stats surfacing in `ExploreStats`.

use h5sim::json::Json;
use paracrash::telemetry::{chrome_trace, telemetry_json};
use paracrash::{check_stack, CheckConfig};
use std::sync::Mutex;
use workloads::{FsKind, Params, Program};

/// The obs registry is process-global; serialize every test that
/// enables/resets it so parallel test threads don't interleave.
static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with telemetry enabled on a fresh registry, returning the
/// resulting snapshot; always restores the disabled default.
fn with_telemetry<T>(f: impl FnOnce() -> T) -> (T, pc_rt::obs::TelemetrySnapshot) {
    pc_rt::obs::reset();
    pc_rt::obs::set_enabled(true);
    let out = f();
    let snap = pc_rt::obs::snapshot();
    pc_rt::obs::set_enabled(false);
    pc_rt::obs::reset();
    (out, snap)
}

fn counter(snap: &pc_rt::obs::TelemetrySnapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

#[test]
fn spans_nest_with_increasing_depth() {
    let _guard = TEST_LOCK.lock().unwrap();
    let ((), snap) = with_telemetry(|| {
        let outer = pc_rt::obs::span("outer");
        let inner = pc_rt::obs::span("inner");
        drop(inner);
        drop(outer);
    });
    assert_eq!(snap.spans.len(), 2);
    let outer = snap.spans.iter().find(|s| s.name == "outer").unwrap();
    let inner = snap.spans.iter().find(|s| s.name == "inner").unwrap();
    assert_eq!(outer.depth + 1, inner.depth);
    assert_eq!(outer.tid, inner.tid);
    // The inner span starts no earlier and ends no later than the outer.
    assert!(inner.start_ns >= outer.start_ns);
    assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
}

#[test]
fn pool_counters_are_deterministic_across_widths() {
    let _guard = TEST_LOCK.lock().unwrap();
    const TASKS: usize = 100;
    let run = |threads: usize| {
        let ((), snap) = with_telemetry(|| {
            let pool = pc_rt::pool::Pool::with_threads(threads);
            let out = pool.par_map_indices(TASKS, |i| i as u64 * 3);
            assert_eq!(out.len(), TASKS);
        });
        snap
    };
    let seq = run(1);
    let par = run(4);
    for snap in [&seq, &par] {
        assert_eq!(counter(snap, "pool.tasks_queued"), TASKS as u64);
        assert_eq!(counter(snap, "pool.tasks_executed"), TASKS as u64);
        assert_eq!(counter(snap, "pool.par_calls"), 1);
    }
    // Totals must agree bit-for-bit regardless of worker count.
    assert_eq!(
        counter(&seq, "pool.tasks_executed"),
        counter(&par, "pool.tasks_executed")
    );
}

#[test]
fn disabled_telemetry_records_nothing() {
    let _guard = TEST_LOCK.lock().unwrap();
    pc_rt::obs::reset();
    pc_rt::obs::set_enabled(false);
    {
        let _s = pc_rt::obs::span("ghost");
        pc_rt::obs::count("ghost.ctr", 7);
        pc_rt::obs::gauge_max("ghost.gauge", 7);
        pc_rt::obs::observe_ns("ghost.hist", 7);
    }
    let snap = pc_rt::obs::snapshot();
    assert!(snap.spans.is_empty());
    assert!(snap.counters.is_empty());
    assert!(snap.gauges.is_empty());
    assert!(snap.hists.is_empty());
    assert_eq!(snap.ops, 0);
}

#[test]
fn chrome_trace_round_trips_with_monotonic_ts() {
    let _guard = TEST_LOCK.lock().unwrap();
    let ((), snap) = with_telemetry(|| {
        for _ in 0..3 {
            let _outer = pc_rt::obs::span_cat("work", "test");
            let _inner = pc_rt::obs::span("work.step");
        }
        pc_rt::obs::count("events", 3);
    });
    let doc = chrome_trace(&snap);
    let text = doc.pretty();
    let parsed = Json::parse(&text).expect("chrome trace must re-parse");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert_eq!(events.len(), snap.spans.len());
    let mut prev_ts = 0;
    for ev in events {
        assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(ev.get("pid").and_then(Json::as_int), Some(1));
        assert!(ev.get("name").and_then(Json::as_str).is_some());
        let ts = ev.get("ts").and_then(Json::as_int).unwrap();
        assert!(ts >= prev_ts, "ts must be nondecreasing");
        prev_ts = ts;
    }
    let other = parsed.get("otherData").expect("otherData");
    assert_eq!(
        other
            .get("counters")
            .and_then(|c| c.get("events"))
            .and_then(Json::as_int),
        Some(3)
    );

    // The plain format round-trips through the same reader.
    let plain = Json::parse(&telemetry_json(&snap).pretty()).expect("plain telemetry re-parses");
    assert_eq!(
        plain.get("spans").and_then(Json::as_arr).map(<[Json]>::len),
        Some(snap.spans.len())
    );
    assert_eq!(plain.get("ops").and_then(Json::as_int), Some(snap.ops));
}

#[test]
fn check_stack_surfaces_cache_stats_and_stage_spans() {
    let _guard = TEST_LOCK.lock().unwrap();
    let params = Params::quick();
    let stack = Program::Arvr.run(FsKind::BeeGfs, &params);
    let factory = FsKind::BeeGfs.factory(&params);
    let cfg = CheckConfig::paper_default();
    let (outcome, snap) = with_telemetry(|| check_stack(&stack, &factory, &cfg));

    // Satellite #2: the cache asymmetry fix — hits AND misses surface.
    let pfs = outcome.stats.pfs_cache;
    assert!(pfs.hits + pfs.misses > 0, "pfs replay cache saw traffic");
    assert_eq!(
        outcome.stats.legal_replays,
        pfs.misses + outcome.stats.h5_cache.misses
    );
    assert_eq!(counter(&snap, "cache.pfs.hits"), pfs.hits as u64);
    assert_eq!(counter(&snap, "cache.pfs.misses"), pfs.misses as u64);

    // Every pipeline stage produced a span.
    let names: Vec<&str> = snap.spans.iter().map(|s| s.name).collect();
    for stage in [
        "check_stack",
        "check.analyze",
        "check.enumerate",
        "check.materialize",
        "check.legal_states",
        "check.verdicts",
        "snapshot.materialize",
        "pfs.mount",
        "recover/BeeGFS",
    ] {
        assert!(names.contains(&stage), "missing span {stage}");
    }
    // Stage spans nest under the check_stack root.
    let root = snap.spans.iter().find(|s| s.name == "check_stack").unwrap();
    let enumerate = snap
        .spans
        .iter()
        .find(|s| s.name == "check.enumerate")
        .unwrap();
    assert!(enumerate.depth > root.depth);
}
