//! Program-level commit semantics: adding `fsync` to a vulnerable
//! pattern removes exactly the data-vs-metadata reordering (the §2.3
//! mitigation) — and the exploration statistics stay coherent.

use paracrash::{check_stack, CheckConfig, Stack};
use pfs::PfsCall;
use workloads::{FsKind, Params};

fn arvr(fs: FsKind, params: &Params, with_fsync: bool) -> paracrash::CheckOutcome {
    let mut stack = Stack::new(fs.build(params));
    stack.posix(
        0,
        PfsCall::Creat {
            path: "/file".into(),
        },
    );
    stack.posix(
        0,
        PfsCall::Pwrite {
            path: "/file".into(),
            offset: 0,
            data: b"old".to_vec(),
        },
    );
    stack.posix(
        0,
        PfsCall::Close {
            path: "/file".into(),
        },
    );
    stack.seal_preamble();
    stack.posix(
        0,
        PfsCall::Creat {
            path: "/tmp".into(),
        },
    );
    stack.posix(
        0,
        PfsCall::Pwrite {
            path: "/tmp".into(),
            offset: 0,
            data: b"new".to_vec(),
        },
    );
    if with_fsync {
        stack.posix(
            0,
            PfsCall::Fsync {
                path: "/tmp".into(),
            },
        );
    }
    stack.posix(
        0,
        PfsCall::Rename {
            src: "/tmp".into(),
            dst: "/file".into(),
        },
    );
    let factory = fs.factory(params);
    check_stack(&stack, &factory, &CheckConfig::paper_default())
}

#[test]
fn fsync_removes_bug1_but_not_bug2_on_beegfs() {
    let params = Params::quick();
    let plain = arvr(FsKind::BeeGfs, &params, false);
    let synced = arvr(FsKind::BeeGfs, &params, true);
    let sig = |o: &paracrash::CheckOutcome, needle: &str| {
        o.bugs
            .iter()
            .any(|b| b.signature.to_string().contains(needle))
    };
    // Bug 1 (data vs rename) present only without the fsync.
    assert!(sig(&plain, "append(file chunk)@storage ->"));
    assert!(!sig(&synced, "append(file chunk)@storage ->"));
    // Bug 2 (rename vs cleanup) survives the fsync: the application
    // cannot fix it (§2.3 needs a transactional rename).
    assert!(sig(&plain, "-> unlink(file chunk)@storage"));
    assert!(sig(&synced, "-> unlink(file chunk)@storage"));
}

#[test]
fn fsync_makes_orangefs_arvr_clean() {
    // OrangeFS's only ARVR bug is the unsynced bstream data; the
    // explicit fsync closes it completely.
    let params = Params::quick();
    let plain = arvr(FsKind::OrangeFs, &params, false);
    let synced = arvr(FsKind::OrangeFs, &params, true);
    assert!(!plain.bugs.is_empty());
    assert!(
        synced.bugs.is_empty(),
        "fsync should clean OrangeFS ARVR: {:?}",
        synced
            .bugs
            .iter()
            .map(|b| b.signature.to_string())
            .collect::<Vec<_>>()
    );
}

#[test]
fn exploration_statistics_are_coherent() {
    let params = Params::quick();
    for fs in [FsKind::BeeGfs, FsKind::Gpfs, FsKind::Ext4] {
        let outcome = arvr(fs, &params, false);
        let st = &outcome.stats;
        assert_eq!(
            st.states_checked + st.states_pruned,
            st.states_total,
            "{}: checked {} + pruned {} != total {}",
            fs.name(),
            st.states_checked,
            st.states_pruned,
            st.states_total
        );
        assert!(st.sim_seconds > 0.0);
        assert!(st.legal_replays > 0);
        assert!(outcome.raw_inconsistent_states <= st.states_checked);
    }
}
