//! Trace-file serialization round-trips on *real* program traces, and
//! the reloaded trace drives the checker to identical results — the
//! paper's trace-then-analyze workflow (§5.1) end to end.

use paracrash::{check_stack, CheckConfig};
use tracer::{load_trace, save_per_process, save_trace, CausalityGraph};
use workloads::{FsKind, Params, Program};

#[test]
fn every_program_trace_roundtrips() {
    let params = Params::quick();
    for program in Program::paper_eleven() {
        for fs in [FsKind::BeeGfs, FsKind::Gpfs] {
            let stack = program.run(fs, &params);
            let text = save_trace(&stack.rec);
            let back = load_trace(&text)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", program.name(), fs.name()));
            assert_eq!(stack.rec.events(), back.events());
            assert_eq!(stack.rec.extra_edges(), back.extra_edges());
        }
    }
}

#[test]
fn per_process_files_reassemble() {
    let stack = Program::Wal.run(FsKind::BeeGfs, &Params::quick());
    let files = save_per_process(&stack.rec);
    // One file per traced process plus the shared edges file.
    assert!(files.len() >= 3, "client + servers + edges");
    let combined: String = files.into_iter().map(|(_, t)| t).collect();
    let back = load_trace(&combined).expect("parse");
    assert_eq!(stack.rec.events(), back.events());
}

#[test]
fn reloaded_trace_checks_identically() {
    let params = Params::quick();
    let fs = FsKind::BeeGfs;
    let mut stack = Program::Arvr.run(fs, &params);
    let factory = fs.factory(&params);
    let cfg = CheckConfig::paper_default();
    let direct = check_stack(&stack, &factory, &cfg);

    // Serialize the trace, reload it, and check again.
    let text = save_trace(&stack.rec);
    stack.rec = load_trace(&text).expect("parse");
    let reloaded = check_stack(&stack, &factory, &cfg);

    let sigs = |o: &paracrash::CheckOutcome| -> Vec<String> {
        o.bugs.iter().map(|b| b.signature.to_string()).collect()
    };
    assert_eq!(sigs(&direct), sigs(&reloaded));
    assert_eq!(
        direct.raw_inconsistent_states,
        reloaded.raw_inconsistent_states
    );
}

#[test]
fn reloaded_graph_answers_identical_hb_queries() {
    let stack = Program::H5Create.run(FsKind::Lustre, &Params::quick());
    let g1 = CausalityGraph::build(&stack.rec);
    let back = load_trace(&save_trace(&stack.rec)).expect("parse");
    let g2 = CausalityGraph::build(&back);
    let low = stack.rec.lowermost_events();
    for &a in &low {
        for &b in &low {
            assert_eq!(g1.happens_before(a, b), g2.happens_before(a, b));
        }
    }
}
