//! The headline regression: the paper's Table 3 bugs reproduce on the
//! simulated stack (fast profile — same structural shape as the paper's
//! configuration, scaled down).

use paracrash::LayerVerdict;
use paracrash_suite::{check_quick, signatures};
use workloads::{FsKind, Program};

#[test]
fn bug1_and_bug2_arvr_on_beegfs() {
    let outcome = check_quick(Program::Arvr, FsKind::BeeGfs);
    let sigs = signatures(&outcome);
    assert!(
        sigs.contains(&"append(file chunk)@storage -> rename(d_entry)@metadata".to_string()),
        "bug 1 missing: {sigs:?}"
    );
    assert!(
        sigs.contains(&"rename(d_entry)@metadata -> unlink(file chunk)@storage".to_string()),
        "bug 2 missing: {sigs:?}"
    );
    assert!(outcome.bugs.iter().all(|b| b.layer == LayerVerdict::PfsBug));
}

#[test]
fn bug1_arvr_on_orangefs_but_not_bug2() {
    let outcome = check_quick(Program::Arvr, FsKind::OrangeFs);
    let sigs = signatures(&outcome);
    // Bug 1: unsynced storage-side data vs durable metadata.
    assert!(
        sigs.iter()
            .any(|s| s.starts_with("append(bstream)@storage ->")),
        "bug 1 missing on OrangeFS: {sigs:?}"
    );
    // Bug 2 is suppressed by the per-update fdatasync: no signature may
    // pair metadata-before-storage-cleanup.
    assert!(
        !sigs
            .iter()
            .any(|s| s.contains("-> unlink(bstream)") || s.contains("-> rename(bstream)")),
        "bug 2 must be suppressed on OrangeFS: {sigs:?}"
    );
}

#[test]
fn bug3_arvr_on_gpfs() {
    let outcome = check_quick(Program::Arvr, FsKind::Gpfs);
    assert!(
        outcome.bugs.iter().any(|b| b.layer == LayerVerdict::PfsBug),
        "GPFS ARVR must expose the partially-persisted journal group"
    );
}

#[test]
fn bug4_cr_on_beegfs_orangefs_gpfs() {
    for fs in [FsKind::BeeGfs, FsKind::OrangeFs, FsKind::Gpfs] {
        let outcome = check_quick(Program::Cr, fs);
        assert!(
            !outcome.bugs.is_empty(),
            "CR must expose bug 4 on {}",
            fs.name()
        );
    }
}

#[test]
fn bug5_rc_on_beegfs_and_gpfs_but_not_others() {
    for fs in [FsKind::BeeGfs, FsKind::Gpfs] {
        let outcome = check_quick(Program::Rc, fs);
        assert!(!outcome.bugs.is_empty(), "RC bug missing on {}", fs.name());
    }
    for fs in [
        FsKind::GlusterFs,
        FsKind::OrangeFs,
        FsKind::Lustre,
        FsKind::Ext4,
    ] {
        let outcome = check_quick(Program::Rc, fs);
        assert!(
            outcome.bugs.is_empty(),
            "RC must be clean on {}: {:?}",
            fs.name(),
            signatures(&outcome)
        );
    }
}

#[test]
fn bugs_6_7_8_wal_on_beegfs() {
    let outcome = check_quick(Program::Wal, FsKind::BeeGfs);
    let sigs = signatures(&outcome);
    // bug 6: log data vs foo overwrite, cross-storage.
    assert!(
        sigs.iter()
            .any(|s| s.starts_with("append(file chunk)@storage -> pwrite(file chunk)@storage")),
        "bug 6 missing: {sigs:?}"
    );
    // bug 7: log creation metadata vs foo overwrite.
    assert!(
        sigs.iter()
            .any(|s| s.starts_with("link(idfile)@metadata ->")),
        "bug 7 missing: {sigs:?}"
    );
    // bug 8: foo overwrite vs log dentry removal.
    assert!(
        sigs.iter()
            .any(|s| s.contains("pwrite(file chunk)@storage -> unlink(d_entry)@metadata")),
        "bug 8 missing: {sigs:?}"
    );
}

#[test]
fn wal_on_glusterfs_needs_file_distribution() {
    // Under the default placement the two WAL files colocate and the
    // same-journal ordering protects them; the split placement exposes
    // bugs 6/8 (Table 3's "file distrib." sensitivity).
    let outcome = check_quick(Program::Wal, FsKind::GlusterFs);
    assert!(!outcome.bugs.is_empty());
}

#[test]
fn lustre_and_ext4_are_clean_on_posix() {
    for program in Program::posix() {
        for fs in [FsKind::Lustre, FsKind::Ext4] {
            let outcome = check_quick(program, fs);
            assert!(
                outcome.bugs.is_empty(),
                "{} on {} must be clean, found {:?}",
                program.name(),
                fs.name(),
                signatures(&outcome)
            );
        }
    }
}

#[test]
fn bug10_h5_create_is_pfs_rooted_everywhere() {
    for fs in FsKind::parallel() {
        let outcome = check_quick(Program::H5Create, fs);
        assert!(
            outcome.bugs.iter().any(|b| b.layer == LayerVerdict::PfsBug),
            "H5-create must be PFS-rooted on {}",
            fs.name()
        );
        assert_eq!(
            outcome.h5_bad_pfs_ok_states,
            0,
            "H5-create inconsistencies coincide with PFS violations on {}",
            fs.name()
        );
    }
}

#[test]
fn bug11_h5_delete_is_an_iolib_bug() {
    let outcome = check_quick(Program::H5Delete, FsKind::BeeGfs);
    let sigs = signatures(&outcome);
    assert!(
        sigs.contains(&"write(symbol table node) -> write(local heap)".to_string()),
        "bug 11 signature missing: {sigs:?}"
    );
    assert!(outcome
        .bugs
        .iter()
        .any(|b| b.layer == LayerVerdict::IoLibBug));
}

#[test]
fn bug12_h5_rename_is_a_multi_structure_atomicity_violation() {
    let outcome = check_quick(Program::H5Rename, FsKind::BeeGfs);
    assert!(outcome.bugs.iter().any(|b| {
        b.layer == LayerVerdict::IoLibBug
            && b.signature.to_string().starts_with('[')
            && b.signature.to_string().contains("symbol table node")
    }));
}

#[test]
fn bug15_cdf_create_is_pfs_rooted() {
    for fs in [FsKind::BeeGfs, FsKind::Lustre] {
        let outcome = check_quick(Program::CdfCreate, fs);
        assert!(
            outcome.bugs.iter().any(|b| b.layer == LayerVerdict::PfsBug),
            "CDF-create must be PFS-rooted on {}",
            fs.name()
        );
    }
}

#[test]
fn cdf_rename_found_no_bugs_in_the_paper_and_none_here() {
    let outcome = check_quick(Program::CdfRename, FsKind::BeeGfs);
    assert!(
        outcome.bugs.is_empty(),
        "CDF-rename should be clean: {:?}",
        signatures(&outcome)
    );
}
