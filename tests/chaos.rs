//! Seeded chaos suite: the fault plane must be deterministic, and
//! delivery faults alone (drops, duplicates, delays, retries) must never
//! change the checker's verdicts — clients retry until acknowledged and
//! servers deduplicate, so the persisted history is fault-invariant.

use paracrash_suite::{check_with, signatures};
use paracrash_suite::{paracrash::CheckConfig, simnet::FaultConfig, tracer::Payload};
use pc_rt::proptest::{run, Config};
use workloads::{FsKind, Params, Program};

/// One checker cell under a given fault configuration: faults drive both
/// the traced run (delivery faults) and the checker (torn widening).
fn check_faulty(program: Program, fs: FsKind, faults: &FaultConfig) -> paracrash::CheckOutcome {
    let params = Params::quick().with_faults(faults.clone());
    let mut cfg = CheckConfig::paper_default();
    cfg.faults = faults.clone();
    check_with(program, fs, &params, &cfg)
}

/// Delivery-faults-only configuration (no torn writes, no partition):
/// the trace gets noisier but the persisted state machine is untouched.
fn retries_only(seed: u64) -> FaultConfig {
    let mut fc = FaultConfig::chaos(seed);
    fc.torn_writes = false;
    fc.partition = None;
    fc
}

#[test]
fn same_seed_produces_bit_identical_reports() {
    let fc = FaultConfig::chaos(0xC0FF_EE00);
    let a = check_faulty(Program::Arvr, FsKind::BeeGfs, &fc);
    let b = check_faulty(Program::Arvr, FsKind::BeeGfs, &fc);
    assert_eq!(
        a.canonical_report(),
        b.canonical_report(),
        "identical chaos seed must reproduce the report byte for byte"
    );
}

#[test]
fn different_seeds_still_find_the_same_bugs_without_torn_writes() {
    let a = check_faulty(Program::Arvr, FsKind::BeeGfs, &retries_only(1));
    let b = check_faulty(Program::Arvr, FsKind::BeeGfs, &retries_only(2));
    assert_eq!(signatures(&a), signatures(&b));
}

#[test]
fn zero_fault_reproduces_the_fault_free_report() {
    // A disabled fault plane consumes no randomness and injects nothing,
    // so the run must be indistinguishable from one that never heard of
    // the fault machinery.
    let baseline = check_with(
        Program::Arvr,
        FsKind::BeeGfs,
        &Params::quick(),
        &CheckConfig::paper_default(),
    );
    let zero = check_faulty(Program::Arvr, FsKind::BeeGfs, &FaultConfig::disabled());
    assert_eq!(baseline.canonical_report(), zero.canonical_report());
}

#[test]
fn retries_alone_add_no_false_positives() {
    let fc = retries_only(0xDEAD_BEEF);

    // The fault plane must actually be doing something: the traced run
    // carries injected-fault markers as real events.
    let params = Params::quick().with_faults(fc.clone());
    let (_, placement) = &Program::Arvr.placements()[0];
    let stack = Program::Arvr.run(FsKind::BeeGfs, &params.with_placement(placement.clone()));
    let injected = stack
        .rec
        .events()
        .iter()
        .filter(|e| match &e.payload {
            Payload::Send { msg, .. } => msg.contains("[lost") || msg.contains("[retry"),
            Payload::Recv { msg, .. } => msg.contains("[dup]") || msg.contains("[delayed]"),
            _ => false,
        })
        .count();
    assert!(
        injected > 0,
        "chaos profile at drop 0.2 / dup 0.1 must inject visible faults"
    );

    // And yet the verdicts are exactly the fault-free ones.
    let clean = check_with(
        Program::Arvr,
        FsKind::BeeGfs,
        &Params::quick(),
        &CheckConfig::paper_default(),
    );
    let faulty = check_faulty(Program::Arvr, FsKind::BeeGfs, &fc);
    assert_eq!(signatures(&clean), signatures(&faulty));
    assert!(faulty.diagnostics.is_empty(), "{:?}", faulty.diagnostics);
}

#[test]
fn random_delivery_fault_configs_preserve_signatures() {
    // Property form of the above, over randomly drawn delivery-fault
    // configurations (torn writes off — those legitimately widen).
    let clean = check_with(
        Program::Cr,
        FsKind::OrangeFs,
        &Params::quick(),
        &CheckConfig::paper_default(),
    );
    let clean_sigs = signatures(&clean);
    let cfg = Config::with_cases(6);
    run(
        "delivery faults never change verdicts",
        &cfg,
        |rng, _size| FaultConfig {
            seed: rng.next_u64(),
            drop_rate: rng.gen_range(0u64..40) as f64 / 100.0,
            dup_rate: rng.gen_range(0u64..30) as f64 / 100.0,
            delay_rate: rng.gen_range(0u64..30) as f64 / 100.0,
            max_retries: 1 + rng.gen_range(0u64..4) as u32,
            partition: None,
            partition_heal_after: 0,
            torn_writes: false,
        },
        |fc| {
            let faulty = check_faulty(Program::Cr, FsKind::OrangeFs, fc);
            pc_rt::prop_assert_eq!(&signatures(&faulty), &clean_sigs);
            Ok(())
        },
    );
}
