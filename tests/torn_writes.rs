//! Torn-write regressions, one per journaling mode: what survives of a
//! multi-byte data write whose transaction was cut by a crash, and
//! whether the surviving state still passes the structural checker.

use paracrash_suite::{check_with, signatures, simfs};
use paracrash_suite::{paracrash::CheckConfig, simnet::FaultConfig};
use simfs::{torn_write, FsOp, FsState, Fsck, JournalMode};
use workloads::{FsKind, Params, Program};

fn victim() -> FsOp {
    FsOp::Pwrite {
        path: "/f".into(),
        offset: 0,
        data: b"ABCDEFGH".to_vec(),
    }
}

/// Apply a torn victim (if anything survives) to a fresh state holding
/// `/f`, and fsck the result.
fn tear_and_fsck(mode: JournalMode, keep: usize) -> (FsState, Option<FsOp>) {
    let mut fs = FsState::new();
    fs.creat("/f").unwrap();
    let torn = torn_write(mode, &victim(), keep);
    if let Some(op) = &torn {
        fs.apply(op).unwrap();
    }
    assert!(
        Fsck::check(&fs).is_empty(),
        "a torn data write must not corrupt FS structure under {mode:?}"
    );
    (fs, torn)
}

#[test]
fn data_journaling_discards_the_whole_torn_write() {
    // The torn transaction's commit record fails its checksum, so
    // recovery rolls the write back entirely: the file stays empty.
    let (fs, torn) = tear_and_fsck(JournalMode::Data, 3);
    assert_eq!(torn, None);
    assert_eq!(fs.read("/f").unwrap(), b"");
}

#[test]
fn ordered_writeback_and_none_persist_the_prefix() {
    for mode in [
        JournalMode::Ordered,
        JournalMode::Writeback,
        JournalMode::None,
    ] {
        let (fs, torn) = tear_and_fsck(mode, 3);
        assert!(torn.is_some(), "{mode:?} must keep the surviving prefix");
        assert_eq!(
            fs.read("/f").unwrap(),
            b"ABC",
            "{mode:?}: exactly the first `keep` bytes persist"
        );
    }
}

#[test]
fn metadata_ops_never_tear() {
    // Single-block metadata updates are atomic on every mode.
    let op = FsOp::Creat { path: "/g".into() };
    for mode in [
        JournalMode::Data,
        JournalMode::Ordered,
        JournalMode::Writeback,
        JournalMode::None,
    ] {
        assert_eq!(torn_write(mode, &op, 1), None);
    }
}

#[test]
fn commit_record_checksum_rejects_torn_records() {
    let rec = simfs::CommitRecord::new(7, b"journaled payload");
    let bytes = rec.encode();
    assert_eq!(simfs::CommitRecord::decode(&bytes), Some(rec));
    assert!(rec.validates(b"journaled payload"));
    // A torn payload, a torn record (short read) and a bit-flipped
    // record all fail the recovery-time replay gate.
    assert!(!rec.validates(b"journaled pay"));
    assert_eq!(simfs::CommitRecord::decode(&bytes[..bytes.len() - 1]), None);
    let mut flipped = bytes;
    flipped[0] ^= 1;
    let decoded = simfs::CommitRecord::decode(&flipped).unwrap();
    assert!(!decoded.is_intact());
}

#[test]
fn torn_faults_on_data_journaled_ext4_stay_clean() {
    // End to end: ext4 journals data, so even with torn-write injection
    // enabled the checker's verdicts match the fault-free control.
    let clean = check_with(
        Program::Arvr,
        FsKind::Ext4,
        &Params::quick(),
        &CheckConfig::paper_default(),
    );
    let fc = FaultConfig::chaos(0x7042);
    let params = Params::quick().with_faults(fc.clone());
    let mut cfg = CheckConfig::paper_default();
    cfg.faults = fc;
    let torn = check_with(Program::Arvr, FsKind::Ext4, &params, &cfg);
    assert_eq!(signatures(&clean), signatures(&torn));
}
