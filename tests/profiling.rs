//! The self-profiling plane's cross-crate contracts (verify gate 14
//! repeats the process-level versions):
//!
//! * the disabled path records nothing — no samples, no allocation
//!   attribution — so an unprofiled run is untouched;
//! * the `.folded` aggregate renders deterministically (same stacks →
//!   same bytes), which is what lets CI diff emitted profiles;
//! * profiling is strictly presentation-plane: `canonical_report()` is
//!   byte-identical with the profiler off, on, and on across
//!   `PC_THREADS` widths;
//! * the durable perf-history log recovers its committed prefix from a
//!   torn tail and stays appendable;
//! * `history::diff` flags an injected 2× slowdown inside the band and
//!   stays quiet outside it.

use paracrash::history;
use pc_bench::fuzz_driver::{fuzz_campaign, FuzzOptions};
use pc_rt::obs::prof;
use std::sync::Mutex;
use workloads::FsKind;

/// All tests toggle process-global profiling/telemetry state.
static LOCK: Mutex<()> = Mutex::new(());

fn tiny_opts() -> FuzzOptions {
    FuzzOptions {
        sample: Some(6),
        file_systems: vec![FsKind::BeeGfs],
        ..FuzzOptions::pr_tier()
    }
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pc-prof-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn disabled_planes_record_nothing() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    pc_rt::obs::set_enabled(false);
    pc_rt::obs::reset();
    assert!(!prof::sampling_enabled());
    assert!(!prof::alloc_tracking_enabled());
    let before = prof::samples_total();
    // Real work through the instrumented stack with every plane off.
    fuzz_campaign(&tiny_opts()).unwrap();
    let big = vec![0u8; 1 << 20];
    std::hint::black_box(&big);
    assert_eq!(prof::samples_total(), before, "sampler ran while off");
    let (rows, total) = prof::alloc_snapshot();
    assert!(rows.is_empty(), "alloc attribution while off: {rows:?}");
    assert_eq!(total.count, 0);
    assert_eq!(prof::render_folded(), "", "folded output while off");
}

#[test]
fn folded_render_is_deterministic() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    pc_rt::obs::reset();
    let record = || {
        prof::record_synthetic(&["suite.root", "suite.leaf"], 3);
        prof::record_synthetic(&["suite.root"], 1);
        prof::record_synthetic(&["suite.root", "suite.leaf"], 2);
    };
    record();
    let first = prof::render_folded();
    assert_eq!(first, "suite.root 1\nsuite.root;suite.leaf 5\n");
    assert_eq!(prof::render_folded(), first, "re-render changed bytes");
    pc_rt::obs::reset();
    record();
    assert_eq!(
        prof::render_folded(),
        first,
        "same stacks after reset must render identically"
    );
    pc_rt::obs::reset();
}

#[test]
fn canonical_report_is_identical_with_profiling_on_off_and_across_threads() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let saved = std::env::var("PC_THREADS").ok();
    let opts = tiny_opts();

    std::env::set_var("PC_THREADS", "1");
    pc_rt::obs::set_enabled(false);
    pc_rt::obs::reset();
    let plain = fuzz_campaign(&opts).unwrap().corpus.canonical_report();

    // Profiled, single-threaded: sampler + allocation accounting on.
    pc_rt::obs::set_enabled(true);
    prof::enable_sampling(2_000);
    let profiled_seq = fuzz_campaign(&opts).unwrap().corpus.canonical_report();

    // Profiled, parallel pool.
    std::env::set_var("PC_THREADS", "4");
    let profiled_par = fuzz_campaign(&opts).unwrap().corpus.canonical_report();

    prof::disable_sampling();
    pc_rt::obs::set_enabled(false);
    pc_rt::obs::reset();
    match saved {
        Some(v) => std::env::set_var("PC_THREADS", v),
        None => std::env::remove_var("PC_THREADS"),
    }

    assert_eq!(plain, profiled_seq, "profiling changed the report");
    assert_eq!(plain, profiled_par, "profiling+threads changed the report");
}

#[test]
fn history_log_recovers_committed_prefix_from_a_torn_tail() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = scratch_dir("torn");
    let rec = |n: u64| history::RunRecord {
        kind: "fuzz".into(),
        label: format!("run {n}"),
        work: 10 * n,
        wall_ns: 1_000_000 * n,
        stages: vec![("check.verdicts".into(), 400_000 * n)],
        alloc_bytes: 1 << 20,
        alloc_peak: 1 << 18,
        peak_rss_kb: 4096,
    };
    history::append(&dir, &rec(1)).unwrap();
    history::append(&dir, &rec(2)).unwrap();
    let log = dir.join(history::HISTORY_LOG);
    let committed = std::fs::metadata(&log).unwrap().len();
    history::append(&dir, &rec(3)).unwrap();
    let full = std::fs::metadata(&log).unwrap().len();
    assert!(full > committed);

    // Tear the third record in half, as a crash mid-append would.
    let torn = committed + (full - committed) / 2;
    let f = std::fs::OpenOptions::new().write(true).open(&log).unwrap();
    f.set_len(torn).unwrap();
    drop(f);

    let recovered = history::load(&dir).unwrap();
    assert_eq!(recovered.len(), 2, "torn tail must truncate to the prefix");
    assert_eq!(recovered[1], rec(2));

    // The recovered log stays appendable.
    history::append(&dir, &rec(4)).unwrap();
    let after = history::load(&dir).unwrap();
    assert_eq!(after.len(), 3);
    assert_eq!(after[2], rec(4));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn history_diff_flags_a_2x_slowdown() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let fast = history::RunRecord {
        kind: "fuzz".into(),
        label: "baseline".into(),
        work: 100,
        wall_ns: 50_000_000,
        stages: vec![("check.verdicts".into(), 20_000_000)],
        alloc_bytes: 8 << 20,
        alloc_peak: 1 << 20,
        peak_rss_kb: 10_000,
    };
    let slow = history::RunRecord {
        label: "regressed".into(),
        wall_ns: fast.wall_ns * 2,
        ..fast.clone()
    };
    let (text, flagged) = history::diff(&fast, &slow, history::DEFAULT_BAND);
    assert!(flagged, "2x slowdown not flagged at band 1.5:\n{text}");
    assert!(text.contains("REGRESSION"), "no marker in:\n{text}");
    let (_, flagged_wide) = history::diff(&fast, &slow, 4.0);
    assert!(!flagged_wide, "2x slowdown flagged at band 4.0");
    let (_, same) = history::diff(&fast, &fast.clone(), history::DEFAULT_BAND);
    assert!(!same, "identical runs flagged");
}
