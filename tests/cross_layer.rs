//! Cross-layer attribution (Figure 6): the same checking machinery must
//! blame the I/O library when the PFS behaved, and the PFS when it did
//! not — the paper's headline capability.

use paracrash::{CheckConfig, LayerVerdict, Model};
use paracrash_suite::{check_quick, check_with};
use workloads::{FsKind, Params, Program};

#[test]
fn h5_delete_blames_the_library_even_on_safe_lustre() {
    // Lustre is POSIX-clean; the delete bug must therefore be pinned on
    // HDF5 — the "deep consistency bug" a single-layer tool would
    // misattribute.
    let outcome = check_quick(Program::H5Delete, FsKind::Lustre);
    assert!(outcome
        .bugs
        .iter()
        .any(|b| b.layer == LayerVerdict::IoLibBug));
    assert!(outcome.h5_bad_pfs_ok_states > 0);
}

#[test]
fn h5_create_blames_the_pfs_underneath() {
    let outcome = check_quick(Program::H5Create, FsKind::BeeGfs);
    assert!(outcome.bugs.iter().all(|b| b.layer == LayerVerdict::PfsBug));
}

#[test]
fn posix_bugs_are_always_pfs_bugs() {
    for program in Program::posix() {
        let outcome = check_quick(program, FsKind::BeeGfs);
        assert!(outcome.bugs.iter().all(|b| b.layer == LayerVerdict::PfsBug));
    }
}

#[test]
fn violated_model_distinguishes_baseline_from_causal() {
    // H5-delete breaks *unmodified* datasets → baseline violation.
    let cfg = CheckConfig {
        h5_model: Model::Baseline,
        ..CheckConfig::paper_default()
    };
    let outcome = check_with(Program::H5Delete, FsKind::BeeGfs, &Params::quick(), &cfg);
    assert!(
        outcome
            .bugs
            .iter()
            .any(|b| b.violated_model == Model::Baseline),
        "delete must violate even baseline consistency"
    );

    // H5-rename corrupts only the dataset being renamed → under the
    // baseline model (unmodified datasets intact) it is legal; only the
    // causal check flags it. (§6.3.2's split.)
    let outcome = check_with(Program::H5Rename, FsKind::BeeGfs, &Params::quick(), &cfg);
    assert!(
        outcome.bugs.is_empty(),
        "rename only violates causal, not baseline: {:?}",
        outcome.bugs
    );
    let outcome = check_quick(Program::H5Rename, FsKind::BeeGfs);
    assert!(!outcome.bugs.is_empty(), "causal check must flag rename");
    assert!(outcome
        .bugs
        .iter()
        .all(|b| b.violated_model == Model::Causal));
}

#[test]
fn weaker_pfs_model_reclassifies_bugs_toward_the_library() {
    // §6.3.3: "if the PFS only commits to satisfy a weaker consistency
    // model, then some of its crash states become legal, and bugs
    // attributed to the PFS could be attributed to HDF5."
    let causal = check_quick(Program::H5Create, FsKind::BeeGfs);
    let weaker = check_with(
        Program::H5Create,
        FsKind::BeeGfs,
        &Params::quick(),
        &CheckConfig {
            pfs_model: Model::Baseline,
            ..CheckConfig::paper_default()
        },
    );
    let causal_iolib = causal
        .bugs
        .iter()
        .filter(|b| b.layer == LayerVerdict::IoLibBug)
        .count();
    let weaker_iolib = weaker
        .bugs
        .iter()
        .filter(|b| b.layer == LayerVerdict::IoLibBug)
        .count();
    assert!(
        weaker_iolib >= causal_iolib,
        "a weaker PFS contract shifts blame to the library ({causal_iolib} -> {weaker_iolib})"
    );
}
