//! §5.3 / §6.4: "these optimization strategies did not reduce the number
//! of bugs discovered." The three exploration modes must report the same
//! unique signatures across representative cells of the matrix — while
//! strictly reducing the work.

use paracrash::{CheckConfig, ExploreMode};
use paracrash_suite::check_with;
use std::collections::BTreeSet;
use workloads::{FsKind, Params, Program};

fn sigs(program: Program, fs: FsKind, mode: ExploreMode) -> (BTreeSet<String>, usize, f64) {
    let outcome = check_with(
        program,
        fs,
        &Params::quick(),
        &CheckConfig {
            mode,
            ..CheckConfig::paper_default()
        },
    );
    (
        outcome
            .bugs
            .iter()
            .map(|b| format!("{:?}|{}", b.layer, b.signature))
            .collect(),
        outcome.stats.states_checked,
        outcome.stats.sim_seconds,
    )
}

#[test]
fn optimizations_do_not_lose_bugs() {
    for (program, fs) in [
        (Program::Arvr, FsKind::BeeGfs),
        (Program::Wal, FsKind::BeeGfs),
        (Program::Cr, FsKind::Gpfs),
        (Program::Wal, FsKind::GlusterFs),
        (Program::H5Delete, FsKind::BeeGfs),
        (Program::CdfCreate, FsKind::Lustre),
    ] {
        let (brute, brute_checked, brute_time) = sigs(program, fs, ExploreMode::BruteForce);
        let (pruned, pruned_checked, _) = sigs(program, fs, ExploreMode::Pruning);
        let (optim, optim_checked, optim_time) = sigs(program, fs, ExploreMode::Optimized);
        assert_eq!(
            brute,
            pruned,
            "pruning changed the bugs for {} on {}",
            program.name(),
            fs.name()
        );
        assert_eq!(
            brute,
            optim,
            "optimized exploration changed the bugs for {} on {}",
            program.name(),
            fs.name()
        );
        // Pruning can only reduce the states checked; whether it does
        // depends on when the pattern is learned relative to the
        // matching states (the paper reports savings in aggregate).
        assert!(pruned_checked <= brute_checked);
        assert!(optim_checked <= brute_checked);
        // The cost model must honour the cheaper reconstruction.
        assert!(
            optim_time < brute_time,
            "{} on {}: optimized not cheaper ({optim_time} vs {brute_time})",
            program.name(),
            fs.name()
        );
    }
}
