//! Cross-validate the causality graph's happens-before against an
//! independent vector-clock simulation — two implementations of
//! Lamport's partial order must agree on every real program trace.

use simnet::VectorClock;
use tracer::{CausalityGraph, Process, Recorder};
use workloads::{FsKind, Params, Program};

/// Simulate vector clocks over a recorded trace via the exported
/// `simnet::assign_clocks` engine: each event merges the clocks of every
/// causal predecessor (program-order predecessor, caller, incoming
/// message edges). By the classic vector-clock theorem,
/// `clock(a) < clock(b)` iff `a → b`. The same adapter feeds
/// `paracrash::explain`'s causal-graph exports.
fn clocks_of(rec: &Recorder) -> Vec<VectorClock> {
    let mut procs: Vec<Process> = rec.events().iter().map(|e| e.proc).collect();
    procs.sort();
    procs.dedup();
    let pidx = |p: Process| procs.iter().position(|&q| q == p).unwrap();

    let mut incoming: Vec<Vec<usize>> = vec![Vec::new(); rec.len()];
    for &(from, to) in rec.extra_edges() {
        incoming[to].push(from);
    }
    let events: Vec<(usize, Vec<usize>)> = rec
        .events()
        .iter()
        .map(|e| {
            let mut preds: Vec<usize> = e.parent.into_iter().collect();
            preds.extend(&incoming[e.id]);
            (pidx(e.proc), preds)
        })
        .collect();
    simnet::assign_clocks(procs.len(), &events)
}

#[test]
fn graph_and_vector_clocks_agree() {
    let params = Params::quick();
    for (program, fs) in [
        (Program::Arvr, FsKind::BeeGfs),
        (Program::Wal, FsKind::GlusterFs),
        (Program::H5ParallelCreate, FsKind::Lustre),
        (Program::Cr, FsKind::Gpfs),
    ] {
        let stack = program.run(fs, &params);
        let g = CausalityGraph::build(&stack.rec);
        let clocks = clocks_of(&stack.rec);
        let n = stack.rec.len();
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                assert_eq!(
                    g.happens_before(a, b),
                    clocks[a].happens_before(&clocks[b]),
                    "disagreement on ({a},{b}) in {} on {}",
                    program.name(),
                    fs.name()
                );
            }
        }
    }
}

#[test]
fn concurrent_pairs_match_too() {
    let stack = Program::H5ParallelCreate.run(FsKind::BeeGfs, &Params::quick());
    let g = CausalityGraph::build(&stack.rec);
    let clocks = clocks_of(&stack.rec);
    let mut concurrent = 0usize;
    let n = stack.rec.len();
    for a in 0..n {
        for b in a + 1..n {
            let gc = g.concurrent(a, b);
            let cc = clocks[a].concurrent(&clocks[b]);
            assert_eq!(gc, cc, "({a},{b})");
            concurrent += usize::from(gc);
        }
    }
    // The collective create really produces concurrency.
    assert!(concurrent > 0);
}
