//! End-to-end sanity across the whole matrix: every program runs on
//! every file system, the full replay of the recorded trace reproduces
//! the live state, and recovery of the no-crash state is clean.

use paracrash::stack::replay_pfs;
use pfs::recover_and_mount;
use tracer::CausalityGraph;
use workloads::{FsKind, Params, Program};

#[test]
fn every_program_runs_on_every_fs() {
    let params = Params::quick();
    for program in Program::paper_eleven() {
        for fs in FsKind::all() {
            let stack = program.run(fs, &params);
            assert!(
                !stack.rec.is_empty(),
                "{} on {} traced nothing",
                program.name(),
                fs.name()
            );
            assert!(
                !stack.rec.lowermost_events().is_empty(),
                "{} on {} has no lowermost ops",
                program.name(),
                fs.name()
            );
        }
    }
}

#[test]
fn full_crash_state_equals_live_state() {
    // Applying every recorded lowermost op onto the baseline snapshot
    // must reproduce the live server state — materialization is lossless.
    let params = Params::quick();
    for program in [
        Program::Arvr,
        Program::Wal,
        Program::H5Create,
        Program::CdfCreate,
    ] {
        for fs in FsKind::all() {
            let stack = program.run(fs, &params);
            let mut states = stack.pfs.baseline().clone();
            states.apply_events(&stack.rec, stack.rec.lowermost_events());
            assert_eq!(
                stack.pfs.client_view(&states),
                stack.pfs.client_view(stack.pfs.live()),
                "{} on {}",
                program.name(),
                fs.name()
            );
        }
    }
}

#[test]
fn recovery_of_uncrashed_state_is_lossless() {
    let params = Params::quick();
    for program in [Program::Arvr, Program::Cr, Program::Rc, Program::Wal] {
        for fs in FsKind::all() {
            let stack = program.run(fs, &params);
            let mut states = stack.pfs.live().clone();
            let before = stack.pfs.client_view(&states);
            let (_, after) = recover_and_mount(stack.pfs.as_ref(), &mut states);
            assert_eq!(before, after, "{} on {}", program.name(), fs.name());
        }
    }
}

#[test]
fn pfs_replay_of_full_call_sequence_matches_live_view() {
    let params = Params::quick();
    for program in Program::posix() {
        for fs in FsKind::all() {
            let stack = program.run(fs, &params);
            let factory = fs.factory(&params);
            let subset: Vec<_> = stack
                .calls
                .entries()
                .iter()
                .map(|(_, p, c)| (*p, c.clone()))
                .collect();
            let view = replay_pfs(&factory, &stack.pre_calls, &subset)
                .expect("full sequence is executable");
            assert_eq!(
                view,
                stack.pfs.client_view(stack.pfs.live()),
                "{} on {}",
                program.name(),
                fs.name()
            );
        }
    }
}

#[test]
fn traces_are_deterministic() {
    let params = Params::quick();
    for fs in [FsKind::BeeGfs, FsKind::Gpfs] {
        let a = Program::H5Create.run(fs, &params);
        let b = Program::H5Create.run(fs, &params);
        assert_eq!(a.rec.len(), b.rec.len());
        assert_eq!(a.rec.render(), b.rec.render(), "{}", fs.name());
    }
}

#[test]
fn causality_graphs_have_chained_client_flows() {
    // Client program order must chain the lowermost ops of successive
    // calls (the property the cut enumeration's tractability relies on).
    let params = Params::quick();
    let stack = Program::Arvr.run(FsKind::BeeGfs, &params);
    let g = CausalityGraph::build(&stack.rec);
    let low = stack.rec.lowermost_events();
    let first = low[0];
    let last = *low.last().unwrap();
    assert!(g.happens_before(first, last));
}
