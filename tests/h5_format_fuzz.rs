//! Fuzz the HDF5-like library and format: random valid call sequences
//! must always produce files that `h5check` accepts, whose object maps
//! tile the file without overlap, and that replay deterministically.
//! (Hosted on the vendored `pc-rt` property harness.)

use h5sim::{check, h5clear, h5inspect, h5replay_with, ClearOpts, H5Call, H5Spec};
use pc_rt::prop_assert;
use pc_rt::prop_assert_eq;
use pc_rt::proptest::{gen_vec, run, Config};
use pc_rt::rng::Rng;
use workloads::FsKind;
use workloads::Params;

/// Symbolic op over a bounded namespace of 2 groups × 3 dataset names.
#[derive(Debug, Clone)]
enum GenOp {
    Create(u8, u8),
    Resize(u8, u8),
    Delete(u8, u8),
    Rename(u8, u8, u8, u8),
}

fn group(g: u8) -> String {
    format!("g{}", g % 2 + 1)
}

fn dset(d: u8) -> String {
    format!("d{}", d % 3 + 1)
}

/// Lower into a valid H5Call sequence (tracking the namespace so every
/// call is executable).
fn lower(ops: &[GenOp]) -> Vec<(u32, H5Call)> {
    let mut live: std::collections::BTreeSet<(String, String)> = std::collections::BTreeSet::new();
    let mut dims: std::collections::BTreeMap<(String, String), u64> =
        std::collections::BTreeMap::new();
    let mut calls = vec![
        (0, H5Call::CreateFile),
        (0, H5Call::CreateGroup { group: "g1".into() }),
        (0, H5Call::CreateGroup { group: "g2".into() }),
    ];
    for op in ops {
        match op {
            GenOp::Create(g, d) => {
                let key = (group(*g), dset(*d));
                if live.insert(key.clone()) {
                    dims.insert(key.clone(), 8);
                    calls.push((
                        0,
                        H5Call::CreateDataset {
                            group: key.0,
                            name: key.1,
                            rows: 8,
                            cols: 8,
                        },
                    ));
                }
            }
            GenOp::Resize(g, d) => {
                let key = (group(*g), dset(*d));
                if live.contains(&key) {
                    let cur = dims.get_mut(&key).expect("tracked");
                    *cur += 4;
                    calls.push((
                        0,
                        H5Call::ResizeDataset {
                            group: key.0,
                            name: key.1,
                            rows: *cur,
                            cols: *cur,
                        },
                    ));
                }
            }
            GenOp::Delete(g, d) => {
                let key = (group(*g), dset(*d));
                if live.remove(&key) {
                    dims.remove(&key);
                    calls.push((
                        0,
                        H5Call::DeleteDataset {
                            group: key.0,
                            name: key.1,
                        },
                    ));
                }
            }
            GenOp::Rename(g, d, g2, d2) => {
                let src = (group(*g), dset(*d));
                let dst = (group(*g2), dset(*d2));
                if src != dst && live.contains(&src) && !live.contains(&dst) {
                    live.remove(&src);
                    live.insert(dst.clone());
                    let v = dims.remove(&src).expect("tracked");
                    dims.insert(dst.clone(), v);
                    calls.push((
                        0,
                        H5Call::RenameDataset {
                            src_group: src.0,
                            src_name: src.1,
                            dst_group: dst.0,
                            dst_name: dst.1,
                        },
                    ));
                }
            }
        }
    }
    calls.push((0, H5Call::CloseFile));
    calls
}

/// Up to ~9 random symbolic ops (bounded by the shrinkable `size`
/// budget), uniformly over the four op kinds.
fn arb_ops(rng: &mut Rng, size: usize) -> Vec<GenOp> {
    gen_vec(rng, size.min(9), |r| {
        let g = (r.next_u32() % 2) as u8;
        let d = (r.next_u32() % 3) as u8;
        match r.gen_index(4) {
            0 => GenOp::Create(g, d),
            1 => GenOp::Resize(g, d),
            2 => GenOp::Delete(g, d),
            _ => {
                let g2 = (r.next_u32() % 2) as u8;
                let d2 = (r.next_u32() % 3) as u8;
                GenOp::Rename(g, d, g2, d2)
            }
        }
    })
}

fn spec() -> H5Spec {
    H5Spec { elem: 8, seg: 256 }
}

/// Any valid call sequence produces a clean, parseable file with the
/// expected dataset census.
#[test]
fn random_sequences_produce_valid_files() {
    run(
        "random_sequences_produce_valid_files",
        &Config::with_cases(32),
        arb_ops,
        |ops| {
            let params = Params::quick();
            let calls = lower(ops);
            let mut pfs = FsKind::Ext4.build(&params);
            let logical = h5replay_with(pfs.as_mut(), "/fuzz.h5", &[0], &calls, spec())
                .expect("valid sequence replays");
            // Census: count live datasets from the call sequence.
            let mut live = std::collections::BTreeSet::new();
            for (_, c) in &calls {
                match c {
                    H5Call::CreateDataset { group, name, .. } => {
                        live.insert(format!("{group}/{name}"));
                    }
                    H5Call::DeleteDataset { group, name } => {
                        live.remove(&format!("{group}/{name}"));
                    }
                    H5Call::RenameDataset {
                        src_group,
                        src_name,
                        dst_group,
                        dst_name,
                    } => {
                        live.remove(&format!("{src_group}/{src_name}"));
                        live.insert(format!("{dst_group}/{dst_name}"));
                    }
                    _ => {}
                }
            }
            prop_assert_eq!(
                logical.datasets.keys().cloned().collect::<Vec<_>>(),
                live.into_iter().collect::<Vec<_>>()
            );
            Ok(())
        },
    );
}

/// The object map tiles the file without overlaps, and h5clear is
/// idempotent on clean files.
#[test]
fn object_maps_never_overlap() {
    run(
        "object_maps_never_overlap",
        &Config::with_cases(32),
        arb_ops,
        |ops| {
            let params = Params::quick();
            let calls = lower(ops);
            let mut pfs = FsKind::Ext4.build(&params);
            h5replay_with(pfs.as_mut(), "/fuzz.h5", &[0], &calls, spec()).expect("replays");
            let view = pfs.client_view(pfs.live());
            let bytes = view.read("/fuzz.h5").expect("file exists").to_vec();
            let map = h5inspect(&bytes).expect("clean file inspects");
            let mut prev_end = 0u64;
            for obj in &map {
                prop_assert!(obj.addr >= prev_end, "overlap at {}", obj.name);
                prev_end = obj.addr + obj.len;
            }
            // h5clear on a clean file only touches the status byte.
            let cleared = h5clear(&bytes, ClearOpts::default());
            prop_assert_eq!(check(&bytes).expect("ok"), check(&cleared).expect("ok"));
            let twice = h5clear(&cleared, ClearOpts { increase_eof: true });
            prop_assert!(check(&twice).is_ok());
            Ok(())
        },
    );
}

/// Replays are deterministic: two fresh stacks produce structurally
/// identical logical states.
#[test]
fn replays_are_deterministic() {
    run(
        "replays_are_deterministic",
        &Config::with_cases(32),
        arb_ops,
        |ops| {
            let params = Params::quick();
            let calls = lower(ops);
            let mut a = FsKind::BeeGfs.build(&params);
            let mut b = FsKind::BeeGfs.build(&params);
            let la = h5replay_with(a.as_mut(), "/fuzz.h5", &[0], &calls, spec()).expect("a");
            let lb = h5replay_with(b.as_mut(), "/fuzz.h5", &[0], &calls, spec()).expect("b");
            prop_assert_eq!(la, lb);
            prop_assert_eq!(a.client_view(a.live()), b.client_view(b.live()));
            Ok(())
        },
    );
}
