//! Integration tests for the `pc_rt::obs::stream` flight recorder: ring
//! wraparound, the panic-flush crash dump, the disabled fast path, and
//! the determinism contract (enabling the stream must not perturb the
//! checker's canonical output).
//!
//! The recorder is process-global (one ring, one sequence counter, one
//! sink), so every test here serializes on a lock and restores the
//! disabled default before releasing it.

use h5sim::json::Json;
use paracrash::{check_stack, CheckConfig, FuzzCorpus};
use pc_rt::obs::stream;
use std::sync::Mutex;
use workloads::{FsKind, Params, Program};

static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with the stream publishing to a fresh ring of `cap` slots;
/// always restores the disabled default.
fn with_stream<T>(cap: usize, f: impl FnOnce() -> T) -> T {
    stream::set_capacity(cap);
    stream::set_enabled(true);
    let out = f();
    stream::set_enabled(false);
    out
}

#[test]
fn ring_wraparound_keeps_the_newest_events() {
    let _guard = TEST_LOCK.lock().unwrap();
    let first_seq = stream::published();
    with_stream(8, || {
        for i in 0..20u64 {
            stream::emit(stream::EventKind::Counter, &format!("ev{i}"), i, "");
        }
    });
    let kept = stream::collect();
    assert_eq!(kept.len(), 8, "an 8-slot ring holds exactly 8 events");
    // The survivors are the 8 *newest* publications, in order.
    for (offset, (seq, ev)) in kept.iter().enumerate() {
        assert_eq!(*seq, first_seq + 12 + offset as u64);
        assert_eq!(ev.name, format!("ev{}", 12 + offset));
    }
}

#[test]
fn panic_flush_leaves_a_valid_json_lines_crash_dump() {
    let _guard = TEST_LOCK.lock().unwrap();
    let path = std::env::temp_dir().join("pc-events-panic-test.jsonl");
    let path_str = path.to_str().unwrap().to_string();
    stream::set_capacity(64);
    stream::set_sink(&path_str).expect("sink opens");
    stream::emit(stream::EventKind::Cell, "w0@BeeGFS/data", 42, "bugs=0");
    stream::emit(stream::EventKind::Finding, "BeeGFS/data", 1, "sig [PfsBug]");
    let caught = std::panic::catch_unwind(|| panic!("simulated campaign crash"));
    assert!(caught.is_err());
    stream::close();
    stream::set_enabled(false);
    pc_rt::obs::set_enabled(false);

    let text = std::fs::read_to_string(&path).expect("crash dump exists");
    std::fs::remove_file(&path).ok();
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(lines.len() >= 4, "header + 2 events + panic marker");
    let mut saw_panic = false;
    let mut saw_cell = false;
    for line in &lines {
        let doc = Json::parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
        if doc.get("meta").and_then(Json::as_str) == Some("panic") {
            saw_panic = true;
        }
        if doc.get("kind").and_then(Json::as_str) == Some("cell") {
            saw_cell = true;
            assert_eq!(
                doc.get("name").and_then(Json::as_str),
                Some("w0@BeeGFS/data")
            );
            assert_eq!(doc.get("value").and_then(Json::as_int), Some(42));
        }
    }
    assert!(saw_cell, "flushed events precede the marker");
    assert!(saw_panic, "the hook stamps a panic marker line");
    // The marker is stamped by the hook, before the orderly trailer.
    let panic_idx = lines
        .iter()
        .position(|l| l.contains("\"meta\":\"panic\""))
        .unwrap();
    assert!(panic_idx > 0 && panic_idx < lines.len() - 1);
}

#[test]
fn disabled_stream_publishes_nothing() {
    let _guard = TEST_LOCK.lock().unwrap();
    stream::set_enabled(false);
    let before = stream::published();
    for i in 0..1000u64 {
        stream::emit(stream::EventKind::Counter, "ghost", i, "never seen");
    }
    assert_eq!(
        stream::published(),
        before,
        "a disabled emit must be a bail-out, not a reservation"
    );
}

#[test]
fn canonical_report_is_identical_with_stream_on_and_off() {
    let _guard = TEST_LOCK.lock().unwrap();
    let params = Params::quick();
    let cfg = CheckConfig::paper_default();
    let run = |stream_on: bool| {
        let mut corpus = FuzzCorpus::new();
        if stream_on {
            stream::set_capacity(1024);
            stream::set_enabled(true);
            pc_rt::obs::set_enabled(true);
        }
        for program in [Program::Arvr, Program::Wal] {
            let stack = program.run(FsKind::BeeGfs, &params);
            let factory = FsKind::BeeGfs.factory(&params);
            let outcome = check_stack(&stack, &factory, &cfg);
            corpus.record_cell(program.name(), "BeeGFS", "data", &outcome);
        }
        if stream_on {
            stream::set_enabled(false);
            pc_rt::obs::set_enabled(false);
            pc_rt::obs::reset();
        }
        corpus.canonical_report()
    };
    let off = run(false);
    let on = run(true);
    assert_eq!(
        off, on,
        "the event stream must observe the fold, never perturb it"
    );
}
