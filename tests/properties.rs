//! Property-based tests over the framework's core invariants, driven by
//! randomly generated multi-process traces (hosted on the vendored
//! `pc-rt` property harness; `PC_PROPTEST_SEED` reproduces failures).

use pc_rt::proptest::{gen_vec, run, Config};
use pc_rt::rng::Rng;
use pc_rt::{prop_assert, prop_assert_eq, prop_assume};
use simfs::{FsOp, JournalMode};
use tracer::{BitSet, CausalityGraph, Layer, Payload, Process, Recorder};

/// A randomly generated trace: up to ~11 lowermost ops spread over
/// 1–3 servers and chained/crossed by random message edges. The `size`
/// budget bounds both the op count and the edge count, so shrinking a
/// failure yields a smaller trace.
fn arb_trace(rng: &mut Rng, size: usize) -> (Recorder, Vec<usize>) {
    let n = 2 + rng.gen_range(0..=size.min(9) as u64) as usize;
    let servers = rng.gen_range(1u32..4) as u32;
    let edges = gen_vec(rng, size.min(7), |r| {
        (r.next_u32() % 4, (r.next_u64() % 6) as u8)
    });
    let mut rec = Recorder::new();
    let mut ids = Vec::new();
    for i in 0..n {
        let server = (i as u32) % servers;
        let op = match i % 5 {
            0 => FsOp::Creat {
                path: format!("/f{i}"),
            },
            1 => FsOp::Append {
                path: format!("/f{}", i.saturating_sub(1)),
                data: vec![i as u8],
            },
            2 => FsOp::SetXattr {
                path: format!("/f{}", i.saturating_sub(2)),
                key: "user.k".into(),
                value: vec![i as u8],
            },
            3 => FsOp::Fsync {
                path: format!("/f{}", i.saturating_sub(3)),
            },
            _ => FsOp::Unlink {
                path: format!("/f{}", i.saturating_sub(4)),
            },
        };
        ids.push(rec.record(
            Layer::LocalFs,
            Process::Server(server),
            Payload::Fs { server, op },
            None,
        ));
    }
    // Random forward cross-server edges.
    for (a, b) in edges {
        let (a, b) = (a as usize % n, b as usize % n);
        if a < b {
            rec.add_edge(ids[a], ids[b]);
        }
    }
    (rec, ids)
}

/// Every enumerated consistent cut is downward-closed under
/// happens-before.
#[test]
fn consistent_cuts_are_downward_closed() {
    run(
        "consistent_cuts_are_downward_closed",
        &Config::with_cases(64),
        arb_trace,
        |(rec, ids)| {
            let g = CausalityGraph::build(rec);
            for cut in g.consistent_cuts(ids) {
                prop_assert!(g.is_consistent_cut(&cut, ids));
                for &a in ids {
                    for &b in ids {
                        if g.happens_before(a, b) && cut.contains(b) {
                            prop_assert!(cut.contains(a), "cut not downward closed");
                        }
                    }
                }
            }
            Ok(())
        },
    );
}

/// `happens_before` from the causality graph is a strict partial order.
#[test]
fn graph_hb_is_a_partial_order() {
    run(
        "graph_hb_is_a_partial_order",
        &Config::with_cases(64),
        arb_trace,
        |(rec, ids)| {
            let g = CausalityGraph::build(rec);
            for &a in ids {
                prop_assert!(!g.happens_before(a, a), "irreflexive");
                for &b in ids {
                    if g.happens_before(a, b) {
                        prop_assert!(!g.happens_before(b, a), "antisymmetric");
                        for &c in ids {
                            if g.happens_before(b, c) {
                                prop_assert!(g.happens_before(a, c), "transitive");
                            }
                        }
                    }
                }
            }
            Ok(())
        },
    );
}

/// Crash states never violate the persists-before relation: if
/// `a persists_before b` and `b` persisted, `a` persisted.
#[test]
fn crash_states_respect_persistence_order() {
    run(
        "crash_states_respect_persistence_order",
        &Config::with_cases(64),
        arb_trace,
        |(rec, _ids)| {
            let g = CausalityGraph::build(rec);
            let pa = paracrash::PersistAnalysis::build(rec, &g, |_| Some(JournalMode::Data));
            let states = paracrash::crash_states(rec, &g, &pa, 2, None);
            prop_assert!(!states.is_empty());
            for st in &states {
                for &a in pa.updates() {
                    for &b in pa.updates() {
                        if pa.persists_before(a, b) && st.persisted.contains(b) {
                            prop_assert!(
                                st.persisted.contains(a),
                                "state drops {a} but keeps its dependent {b}"
                            );
                        }
                    }
                }
            }
            Ok(())
        },
    );
}

/// Synced updates are pinned: any crash state whose cut includes the
/// covering fsync persists the update.
#[test]
fn synced_updates_survive_every_crash() {
    run(
        "synced_updates_survive_every_crash",
        &Config::with_cases(64),
        arb_trace,
        |(rec, _ids)| {
            let g = CausalityGraph::build(rec);
            let pa = paracrash::PersistAnalysis::build(rec, &g, |_| Some(JournalMode::Writeback));
            let states = paracrash::crash_states(rec, &g, &pa, 2, None);
            for st in &states {
                for &u in pa.updates() {
                    if st.cut.contains(u) && pa.pinned(rec, &g, u, &st.cut) {
                        prop_assert!(st.persisted.contains(u), "pinned update {u} dropped");
                    }
                }
            }
            Ok(())
        },
    );
}

/// Model lattice: every causal preserved set is also a legal commit
/// and baseline preserved set.
#[test]
fn weaker_models_admit_more() {
    run(
        "weaker_models_admit_more",
        &Config::with_cases(64),
        arb_trace,
        |(rec, ids)| {
            prop_assume!(ids.len() <= 8);
            let g = CausalityGraph::build(rec);
            let causal = paracrash::Model::Causal.preserved_sets(&g, ids, &[]);
            let commit: std::collections::BTreeSet<Vec<usize>> = paracrash::Model::Commit
                .preserved_sets(&g, ids, &[])
                .into_iter()
                .map(|mut s| {
                    s.sort_unstable();
                    s
                })
                .collect();
            let baseline: std::collections::BTreeSet<Vec<usize>> = paracrash::Model::Baseline
                .preserved_sets(&g, ids, &[])
                .into_iter()
                .map(|mut s| {
                    s.sort_unstable();
                    s
                })
                .collect();
            for mut s in causal {
                s.sort_unstable();
                prop_assert!(commit.contains(&s));
                prop_assert!(baseline.contains(&s));
            }
            // Strict's single set is causal-legal.
            let strict = paracrash::Model::Strict.preserved_sets(&g, ids, &[]);
            prop_assert_eq!(strict.len(), 1);
            Ok(())
        },
    );
}

/// Replaying any subset of ops leaves the local FS structurally
/// clean (the invariant ParaCrash's state materialization relies
/// on).
#[test]
fn lenient_replay_preserves_fs_invariants() {
    run(
        "lenient_replay_preserves_fs_invariants",
        &Config::with_cases(64),
        |rng, size| {
            let (rec, ids) = arb_trace(rng, size);
            let mask = rng.next_u64();
            (rec, ids, mask)
        },
        |(rec, ids, mask)| {
            let mut fs = simfs::FsState::new();
            let ops: Vec<&FsOp> = ids
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> (i % 64) & 1 == 1)
                .filter_map(|(_, &id)| match &rec.event(id).payload {
                    Payload::Fs { op, .. } => Some(op),
                    _ => None,
                })
                .collect();
            fs.apply_lenient(ops);
            prop_assert!(simfs::Fsck::is_clean(&fs));
            Ok(())
        },
    );
}

/// Bitset algebra sanity under random operations.
#[test]
fn bitset_algebra() {
    run(
        "bitset_algebra",
        &Config::with_cases(64),
        |rng, size| {
            let set = |r: &mut Rng| -> std::collections::BTreeSet<usize> {
                gen_vec(r, size.min(39), |r| r.gen_index(200))
                    .into_iter()
                    .collect()
            };
            (set(rng), set(rng))
        },
        |(xs, ys)| {
            let a = BitSet::from_iter(200, xs.iter().copied());
            let b = BitSet::from_iter(200, ys.iter().copied());
            let mut u = a.clone();
            u.union_with(&b);
            prop_assert_eq!(u.count(), xs.union(ys).count());
            let mut d = a.clone();
            d.subtract(&b);
            prop_assert_eq!(d.count(), xs.difference(ys).count());
            prop_assert_eq!(a.is_disjoint(&b), xs.is_disjoint(ys));
            prop_assert_eq!(a.is_subset(&u), true);
            Ok(())
        },
    );
}
