//! The sensitivity studies of Table 3's last column: several bugs only
//! trigger under particular client counts, dataset dimensions, file
//! distributions or repair-tool options — and must *not* trigger
//! otherwise.

use h5sim::ClearOpts;
use paracrash::{CheckConfig, LayerVerdict};
use paracrash_suite::{check_with, signatures};
use workloads::{FsKind, Params, Program};

fn cfg() -> CheckConfig {
    CheckConfig::paper_default()
}

#[test]
fn bug9_needs_multiple_clients() {
    // With one client the collective create degenerates to the serial
    // path and the heap/B-tree concurrency disappears.
    let single = check_with(
        Program::H5ParallelCreate,
        FsKind::BeeGfs,
        &Params::quick().with_clients(1),
        &cfg(),
    );
    assert!(
        !single
            .bugs
            .iter()
            .any(|b| b.layer == LayerVerdict::IoLibBug),
        "single client must not expose bug 9: {:?}",
        signatures(&single)
    );
    let multi = check_with(
        Program::H5ParallelCreate,
        FsKind::BeeGfs,
        &Params::quick().with_clients(2),
        &cfg(),
    );
    assert!(
        multi
            .bugs
            .iter()
            .any(|b| b.layer == LayerVerdict::IoLibBug
                && b.signature.to_string().contains("local heap")),
        "bug 9 must appear with 2 clients: {:?}",
        signatures(&multi)
    );
}

#[test]
fn bug14_needs_the_btree_split_dimension() {
    // Small resize: no node split, no child/parent hazard.
    let small = check_with(Program::H5Resize, FsKind::BeeGfs, &Params::quick(), &cfg());
    assert!(
        !signatures(&small)
            .iter()
            .any(|s| s.contains("child B-tree node") || s.contains("parent B-tree node")),
        "no split at default dims: {:?}",
        signatures(&small)
    );
    // At the split dimension (the paper's 800→1000 window) the parent
    // is flushed before its children.
    let params = Params::quick();
    let big = check_with(
        Program::H5Resize,
        FsKind::BeeGfs,
        &params.clone().with_dims(params.split_dims()),
        &cfg(),
    );
    assert!(
        signatures(&big)
            .iter()
            .any(|s| s.contains("parent B-tree node")),
        "bug 14 must appear at the split dimension: {:?}",
        signatures(&big)
    );
}

#[test]
fn bug13_sensitivity_to_h5clear_options() {
    // With --increase-eof, h5clear repairs the addr-overflow states the
    // superblock reordering leaves behind, so fewer states stay
    // inconsistent (Table 3: sensitivity "h5clear options").
    let default_opts = check_with(Program::H5Resize, FsKind::BeeGfs, &Params::quick(), &cfg());
    let with_repair = check_with(
        Program::H5Resize,
        FsKind::BeeGfs,
        &Params::quick(),
        &CheckConfig {
            clear_opts: ClearOpts { increase_eof: true },
            ..cfg()
        },
    );
    assert!(
        with_repair.raw_inconsistent_states <= default_opts.raw_inconsistent_states,
        "h5clear --increase-eof must not create inconsistencies"
    );
    assert!(
        default_opts.raw_inconsistent_states > 0,
        "resize must expose inconsistencies without the repair option"
    );
}

#[test]
fn rc_on_beegfs_needs_split_directories() {
    // Bug 5's "file distrib." sensitivity: with both directories on one
    // metadata server the rename and the create are journal-ordered.
    let colocated = {
        let placement = pfs::Placement::new().pin_dir("/", 0).pin_dir("/A", 0);
        let stack = Program::Rc.run(
            FsKind::BeeGfs,
            &Params::quick().with_placement(placement.clone()),
        );
        let factory = FsKind::BeeGfs.factory(&Params::quick().with_placement(placement));
        paracrash::check_stack(&stack, &factory, &cfg())
    };
    assert!(
        colocated.bugs.is_empty(),
        "colocated dirs must be safe: {:?}",
        colocated
            .bugs
            .iter()
            .map(|b| b.signature.to_string())
            .collect::<Vec<_>>()
    );
    let split = {
        let placement = pfs::Placement::new().pin_dir("/", 0).pin_dir("/A", 1);
        let stack = Program::Rc.run(
            FsKind::BeeGfs,
            &Params::quick().with_placement(placement.clone()),
        );
        let factory = FsKind::BeeGfs.factory(&Params::quick().with_placement(placement));
        paracrash::check_stack(&stack, &factory, &cfg())
    };
    assert!(!split.bugs.is_empty(), "split dirs must expose bug 5");
}

#[test]
fn more_victims_expose_no_new_bugs() {
    // §6.2: "increasing the number of victims in Algorithm 1 did not
    // expose new bugs" — k = 2 must find the same signatures as k = 1.
    let k1 = check_with(Program::Arvr, FsKind::BeeGfs, &Params::quick(), &cfg());
    let k2 = check_with(
        Program::Arvr,
        FsKind::BeeGfs,
        &Params::quick(),
        &CheckConfig { k: 2, ..cfg() },
    );
    let s1: std::collections::BTreeSet<String> = signatures(&k1).into_iter().collect();
    let s2: std::collections::BTreeSet<String> = signatures(&k2).into_iter().collect();
    assert!(s1.is_subset(&s2));
    assert_eq!(s1, s2, "k=2 found genuinely new causes");
}

#[test]
fn writeback_journaling_is_strictly_worse() {
    // The paper's Figure 2 case ③: a local FS that reorders directory
    // operations (modelled by the writeback journal) lets BeeGFS's
    // metadata updates race each other too.
    use pfs::beegfs::BeeGfs;
    use simfs::JournalMode;
    use simnet::ClusterTopology;

    let build = |mode: JournalMode| -> paracrash::CheckOutcome {
        let make = move || -> Box<dyn pfs::Pfs> {
            Box::new(BeeGfs::with_journal(
                ClusterTopology::paper_dedicated_default(),
                pfs::Placement::new(),
                2048,
                mode,
            ))
        };
        let mut stack = paracrash::Stack::new(make());
        stack.posix(
            0,
            pfs::PfsCall::Creat {
                path: "/file".into(),
            },
        );
        stack.posix(
            0,
            pfs::PfsCall::Pwrite {
                path: "/file".into(),
                offset: 0,
                data: b"old".to_vec(),
            },
        );
        stack.seal_preamble();
        stack.posix(
            0,
            pfs::PfsCall::Creat {
                path: "/tmp".into(),
            },
        );
        stack.posix(
            0,
            pfs::PfsCall::Pwrite {
                path: "/tmp".into(),
                offset: 0,
                data: b"new".to_vec(),
            },
        );
        stack.posix(
            0,
            pfs::PfsCall::Rename {
                src: "/tmp".into(),
                dst: "/file".into(),
            },
        );
        let factory: paracrash::StackFactory = Box::new(make);
        paracrash::check_stack(&stack, &factory, &cfg())
    };
    let data = build(JournalMode::Data);
    let writeback = build(JournalMode::Writeback);
    assert!(
        writeback.raw_inconsistent_states >= data.raw_inconsistent_states,
        "writeback journaling must not reduce inconsistency ({} vs {})",
        writeback.raw_inconsistent_states,
        data.raw_inconsistent_states
    );
}
