//! The COW prefix-sharing replay engine and the clone-everything oracle
//! (`PC_NAIVE_SNAPSHOTS=1`) must be observationally identical: same bug
//! reports, same state counts, same simulated cost model. The engines
//! differ only in *how* crash states are materialized — the COW engine
//! forks shared prefixes, the oracle deep-clones and replays from
//! scratch — never in *what* they materialize.
//!
//! The same contract holds one layer up: the subtree-batched verdict
//! engine (one recovery per `SnapshotPlan::rep` representative) and the
//! per-state oracle (`PC_NAIVE_BATCH=1`, one recovery per crash state)
//! must produce byte-identical canonical reports on every PFS model,
//! every journal mode, and under chaos faults.
//!
//! `scripts/verify.sh` runs this suite once with `PC_THREADS=1` and once
//! parallel, so the guarantee is also checked against the thread pool.

use paracrash::{CheckConfig, CheckOutcome, ExploreMode};
use paracrash_suite::check_with;
use paracrash_suite::simnet::FaultConfig;
use pc_rt::proptest::{gen_vec, run, Config};
use pc_rt::rng::Rng;
use pc_rt::{prop_assert, prop_assert_eq};
use simfs::{FsOp, FsState, JournalMode};
use std::sync::{Mutex, MutexGuard, OnceLock};
use workloads::{FsKind, Params, Program};

/// Serialize the tests that toggle process-global engine-selection env
/// vars (`PC_NAIVE_SNAPSHOTS`, `PC_NAIVE_BATCH`): the harness runs
/// `#[test]`s on threads, and a toggle leaking mid-run into a sibling
/// test would compare runs from a mix of engines.
fn env_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Everything an engine is allowed to influence, rendered for comparison.
/// `wall_seconds` is deliberately excluded — it is the one field that
/// *should* differ between the engines.
fn observable(outcome: &CheckOutcome) -> String {
    let mut bugs: Vec<String> = outcome.bugs.iter().map(|b| format!("{b:?}")).collect();
    bugs.sort();
    format!(
        "pfs={} bugs={:?} raw={} h5_bad_pfs_ok={} total={} checked={} pruned={} \
         rebuilds={} sim={} replays={} reps={:?}",
        outcome.pfs_name,
        bugs,
        outcome.raw_inconsistent_states,
        outcome.h5_bad_pfs_ok_states,
        outcome.stats.states_total,
        outcome.stats.states_checked,
        outcome.stats.states_pruned,
        outcome.stats.server_rebuilds,
        outcome.stats.sim_seconds,
        outcome.stats.legal_replays,
        outcome.rep_digests,
    )
}

/// Representative workloads, one per PFS model plus the ext4 control,
/// under both engines. A single `#[test]` because `PC_NAIVE_SNAPSHOTS`
/// is process-global and the harness runs tests on threads.
#[test]
fn engines_report_identical_outcomes() {
    let _env = env_lock();
    let cells: [(Program, FsKind, ExploreMode); 7] = [
        (Program::Arvr, FsKind::BeeGfs, ExploreMode::BruteForce),
        (Program::Arvr, FsKind::BeeGfs, ExploreMode::Optimized),
        (Program::Arvr, FsKind::OrangeFs, ExploreMode::Optimized),
        (Program::Wal, FsKind::GlusterFs, ExploreMode::Optimized),
        (Program::Cr, FsKind::Gpfs, ExploreMode::Optimized),
        (Program::CdfCreate, FsKind::Lustre, ExploreMode::Optimized),
        (Program::Arvr, FsKind::Ext4, ExploreMode::BruteForce),
    ];
    let params = Params::quick();
    for (program, fs, mode) in cells {
        // Representative-state digests are engine-derived (prefix-tree
        // terminals vs per-distinct-sequence naive materialization), so
        // they are part of the equivalence contract: collect them here
        // and let `observable` compare the exact digest sets.
        let cfg = CheckConfig {
            mode,
            collect_rep_digests: true,
            ..CheckConfig::paper_default()
        };
        std::env::remove_var("PC_NAIVE_SNAPSHOTS");
        let cow = check_with(program, fs, &params, &cfg);
        std::env::set_var("PC_NAIVE_SNAPSHOTS", "1");
        let naive = check_with(program, fs, &params, &cfg);
        std::env::remove_var("PC_NAIVE_SNAPSHOTS");
        assert_eq!(
            observable(&cow),
            observable(&naive),
            "engines diverged for {} on {} ({})",
            program.name(),
            fs.name(),
            mode.as_str()
        );
        assert!(cow.stats.states_total > 0);
    }
}

/// One cell under the batched verdict engine and under the per-state
/// oracle; the canonical report (the full user-facing output) must be
/// byte-identical, and so must every engine-reachable statistic.
fn assert_batched_matches_oracle(program: Program, fs: FsKind, params: &Params, cfg: &CheckConfig) {
    std::env::remove_var("PC_NAIVE_BATCH");
    let batched = check_with(program, fs, params, cfg);
    std::env::set_var("PC_NAIVE_BATCH", "1");
    let oracle = check_with(program, fs, params, cfg);
    std::env::remove_var("PC_NAIVE_BATCH");
    assert_eq!(
        batched.canonical_report(),
        oracle.canonical_report(),
        "batched vs per-state reports diverged for {} on {} (journal {:?})",
        program.name(),
        fs.name(),
        params.journal,
    );
    assert_eq!(observable(&batched), observable(&oracle));
    assert!(batched.stats.states_total > 0);
}

/// The batched engine shares one recovery across each snapshot-plan
/// subtree; the oracle recovers every state individually. Identical
/// reports across all five PFS models × all journal modes, and under a
/// chaos fault plane (torn writes force the batched engine onto its
/// per-state fallback for victim states while still batching the rest).
#[test]
fn batched_verdicts_match_per_state_oracle() {
    let _env = env_lock();
    let models = [
        FsKind::BeeGfs,
        FsKind::OrangeFs,
        FsKind::Lustre,
        FsKind::GlusterFs,
        FsKind::Gpfs,
    ];
    let journals = [
        JournalMode::Data,
        JournalMode::Ordered,
        JournalMode::Writeback,
        JournalMode::None,
    ];
    let cfg = CheckConfig::paper_default();
    for fs in models {
        for journal in journals {
            let params = Params::quick().with_journal(journal);
            assert_batched_matches_oracle(Program::Arvr, fs, &params, &cfg);
        }
    }
    // Chaos faults: delivery noise plus torn writes, driving both the
    // shared-recovery path (victim-free states) and the per-state
    // fallback (torn states) in one run.
    let faults = FaultConfig::chaos(0x5CA1EB47);
    let params = Params::quick().with_faults(faults.clone());
    let chaos_cfg = CheckConfig {
        faults,
        ..CheckConfig::paper_default()
    };
    for fs in models {
        assert_batched_matches_oracle(Program::Arvr, fs, &params, &chaos_cfg);
    }
}

/// Random op sequence over a small path universe; lenient application
/// skips ops whose prerequisites are missing, mirroring crash replay.
fn arb_ops(rng: &mut Rng, size: usize) -> (Vec<FsOp>, Vec<FsOp>) {
    let gen_seq = |r: &mut Rng| {
        gen_vec(r, size.min(12), |r| {
            let f = format!("/f{}", r.next_u32() % 4);
            let g = format!("/d/f{}", r.next_u32() % 3);
            match r.next_u32() % 10 {
                0 => FsOp::Creat { path: f },
                1 => FsOp::Mkdir { path: "/d".into() },
                2 => FsOp::Creat { path: g },
                3 => FsOp::Pwrite {
                    path: f,
                    offset: u64::from(r.next_u32() % 8),
                    data: vec![r.next_u32() as u8; 1 + (r.next_u32() % 4) as usize],
                },
                4 => FsOp::Append {
                    path: f,
                    data: vec![r.next_u32() as u8],
                },
                5 => FsOp::Truncate {
                    path: f,
                    size: u64::from(r.next_u32() % 6),
                },
                6 => FsOp::Rename { src: f, dst: g },
                7 => FsOp::Link { src: f, dst: g },
                8 => FsOp::SetXattr {
                    path: f,
                    key: "user.k".into(),
                    value: vec![r.next_u32() as u8],
                },
                _ => FsOp::Unlink { path: f },
            }
        })
    };
    (gen_seq(rng), gen_seq(rng))
}

/// COW fork + mutate + hash must equal naive deep-clone + mutate + hash
/// for arbitrary `FsOp` sequences, and the shared parent must be
/// unaffected by the fork's mutations.
#[test]
fn cow_fork_equals_naive_clone_under_random_ops() {
    run(
        "cow_fork_equals_naive_clone_under_random_ops",
        &Config::with_cases(128),
        arb_ops,
        |(base_ops, suffix)| {
            let mut base = FsState::new();
            base.apply_lenient(base_ops.iter());
            let base_digest = base.digest();
            let mut fork = base.fork();
            let mut deep = base.deep_clone();
            prop_assert_eq!(&fork, &deep);
            let fork_failures = fork.apply_lenient(suffix.iter()).len();
            let deep_failures = deep.apply_lenient(suffix.iter()).len();
            prop_assert_eq!(fork_failures, deep_failures);
            prop_assert_eq!(&fork, &deep);
            prop_assert_eq!(fork.digest(), deep.digest());
            prop_assert!(fork.same_tree(&deep));
            prop_assert_eq!(base.digest(), base_digest);
            Ok(())
        },
    );
}
