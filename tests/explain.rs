//! Golden tests for the bug-provenance engine (`paracrash::explain`):
//! one Table 3 bug per class — cross-server reordering (bug 1),
//! multi-structure atomicity (bug 12), partially-persisted journal
//! group (bug 3) — each must get a minimal witness, violated-edge
//! output, and well-formed DOT/JSON exports. Shrinking must be
//! deterministic: two runs produce byte-identical bundles.

use paracrash::{CheckConfig, CheckOutcome, EdgeKind, LayerVerdict};
use paracrash_suite::check_with;
use workloads::{FsKind, Params, Program};

fn check_explained(program: Program, fs: FsKind) -> CheckOutcome {
    let cfg = CheckConfig {
        explain: true,
        ..CheckConfig::paper_default()
    };
    check_with(program, fs, &Params::quick(), &cfg)
}

/// Structural DOT lint: balanced braces, and every edge endpoint is a
/// declared node.
fn lint_dot(dot: &str) {
    assert_eq!(
        dot.matches('{').count(),
        dot.matches('}').count(),
        "unbalanced braces:\n{dot}"
    );
    let is_node_id = |s: &str| {
        s.strip_prefix('e')
            .is_some_and(|d| !d.is_empty() && d.bytes().all(|b| b.is_ascii_digit()))
    };
    for line in dot.lines() {
        let line = line.trim();
        if let Some((from, rest)) = line.split_once(" -> ") {
            if !is_node_id(from) {
                continue; // graph label, not an edge line
            }
            let to = rest.split([' ', ';']).next().unwrap();
            for id in [from, to] {
                assert!(
                    is_node_id(id) && dot.contains(&format!("{id} [")),
                    "edge endpoint {id} not declared as a node:\n{dot}"
                );
            }
        }
    }
}

#[test]
fn bug1_reordering_gets_a_strictly_smaller_witness() {
    let outcome = check_explained(Program::Arvr, FsKind::BeeGfs);
    assert_eq!(
        outcome.explanations.len(),
        outcome.bugs.len(),
        "one bundle per bug"
    );
    let e = outcome
        .explanations
        .iter()
        .find(|e| e.signature == "append(file chunk)@storage -> rename(d_entry)@metadata")
        .expect("bug 1 must be explained");
    assert_eq!(e.layer, LayerVerdict::PfsBug);
    assert!(e.shrink.reproduced, "bug 1 reproduces without torn writes");
    // Reordering-class acceptance: the minimal witness is a *strict*
    // subset of the original dropped set.
    assert!(
        e.shrink.minimal_ops < e.shrink.original_ops,
        "witness not shrunk: {:?}",
        e.shrink
    );
    assert!(!e.minimal_witness.is_empty());
    // The violated edge is reported, from a dropped storage-side op to
    // a persisted metadata-side op.
    assert!(
        !e.violated_edges.is_empty(),
        "reordering bug must name a violated edge"
    );
    assert!(e
        .violated_edges
        .iter()
        .all(|v| v.kind == EdgeKind::Violated));
    let first = &e.violated_edges[0];
    let from = e.nodes.iter().find(|n| n.event == first.from).unwrap();
    let to = e.nodes.iter().find(|n| n.event == first.to).unwrap();
    assert!(
        from.minimal && !from.persisted,
        "violated edge source is dropped"
    );
    assert!(to.persisted, "violated edge target persisted");
    // The crash frontier is non-empty and fully persisted.
    assert!(!e.frontier.is_empty());
    // The state diff names the damaged client file.
    assert!(
        e.diff.nearest_legal.iter().any(|d| d.contains("/file")),
        "diff must mention the renamed file: {:?}",
        e.diff
    );
    assert!(e.diff.servers_skipped > 0, "COW digests skip clean servers");
    lint_dot(&e.to_dot());
    h5sim::json::Json::parse(&e.to_json().pretty()).expect("bundle JSON parses");
}

#[test]
fn bug1_witness_lines_are_in_trace_order() {
    let outcome = check_explained(Program::Arvr, FsKind::BeeGfs);
    let bug = outcome
        .bugs
        .iter()
        .find(|b| {
            b.signature.to_string() == "append(file chunk)@storage -> rename(d_entry)@metadata"
        })
        .expect("bug 1 present");
    // Golden pin for the witness-ordering fix: ops listed as issued
    // (creat before the append that depends on it), not alphabetically.
    assert_eq!(
        bug.witness,
        vec![
            "creat(/chunks/f1.0)@storage#3".to_string(),
            "append(/chunks/f1.0, len=32)@storage#3".to_string(),
        ],
        "witness must be event-id ordered"
    );
}

#[test]
fn bug12_multi_structure_atomicity_is_explained() {
    let outcome = check_explained(Program::H5Rename, FsKind::BeeGfs);
    let e = outcome
        .explanations
        .iter()
        .find(|e| e.layer == LayerVerdict::IoLibBug && e.signature.starts_with('['))
        .expect("bug 12's atomic-group bundle");
    assert!(e.signature.contains("symbol table node"), "{}", e.signature);
    assert!(e.shrink.minimal_ops <= e.shrink.original_ops);
    // Atomicity-class output: either explicit violated pairs inside the
    // group, or the pinpoint's atomic-group fallback.
    let pin = e.pinpoint();
    assert!(pin.contains("violated"), "{pin}");
    assert!(!e.nodes.is_empty());
    lint_dot(&e.to_dot());
    h5sim::json::Json::parse(&e.to_json().pretty()).expect("bundle JSON parses");
}

#[test]
fn bug3_partially_persisted_journal_group_is_explained() {
    let outcome = check_explained(Program::Arvr, FsKind::Gpfs);
    assert!(!outcome.explanations.is_empty());
    assert_eq!(outcome.explanations.len(), outcome.bugs.len());
    let e = outcome
        .explanations
        .iter()
        .find(|e| e.layer == LayerVerdict::PfsBug)
        .expect("GPFS journal-group bundle");
    assert!(e.shrink.reproduced);
    assert!(!e.minimal_witness.is_empty());
    // GPFS stores are block devices: the tree diff degrades to the
    // block-store line rather than a path walk.
    assert!(
        e.diff.tree.iter().any(|d| d.contains("block store"))
            || e.diff.servers_skipped == e.diff.servers_total,
        "{:?}",
        e.diff
    );
    for e in &outcome.explanations {
        lint_dot(&e.to_dot());
        h5sim::json::Json::parse(&e.to_json().pretty()).expect("bundle JSON parses");
    }
}

#[test]
fn shrinking_is_deterministic() {
    let a = check_explained(Program::Arvr, FsKind::BeeGfs);
    let b = check_explained(Program::Arvr, FsKind::BeeGfs);
    assert_eq!(a.explanations.len(), b.explanations.len());
    for (ea, eb) in a.explanations.iter().zip(&b.explanations) {
        assert_eq!(
            ea.to_json().pretty(),
            eb.to_json().pretty(),
            "bundle for {} differs between runs",
            ea.signature
        );
        assert_eq!(ea.to_dot(), eb.to_dot());
    }
    // Explain output must not perturb the canonical verdict either.
    let plain = check_with(
        Program::Arvr,
        FsKind::BeeGfs,
        &Params::quick(),
        &CheckConfig::paper_default(),
    );
    assert_eq!(a.canonical_report(), plain.canonical_report());
    assert!(plain.explanations.is_empty(), "explain off by default");
}
