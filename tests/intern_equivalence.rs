//! Symbol interning must be invisible to every observer: the interned
//! fast paths (id-keyed directory and xattr maps, structural
//! `same_tree`, DFS digest) and the historical string-keyed algorithms
//! kept behind `PC_NAIVE_SYMS=1` have to agree on arbitrary operation
//! sequences — same digests, same fsck verdicts, same tree comparisons,
//! same listings. Interning is a bijection, so any divergence is a bug
//! in one of the two implementations.
//!
//! Also pins the determinism contract of the id assignment itself:
//! dense first-intern order, reproducible across tables, and stable
//! under concurrent interning (`scripts/verify.sh` runs the repo tests
//! both sequential and parallel, exercising this from both ends).

use pc_rt::intern::{Sym, SymTable};
use pc_rt::proptest::{gen_vec, run, Config};
use pc_rt::rng::Rng;
use pc_rt::{prop_assert, prop_assert_eq};
use simfs::{FsOp, FsState, Fsck};

/// Random op sequence over a small path universe with a few distinct
/// xattr keys (xattr maps are interned too); lenient application skips
/// ops whose prerequisites are missing, mirroring crash replay.
fn arb_ops(rng: &mut Rng, size: usize) -> Vec<FsOp> {
    gen_vec(rng, size.min(16), |r| {
        let f = format!("/f{}", r.next_u32() % 4);
        let g = format!("/d/f{}", r.next_u32() % 3);
        match r.next_u32() % 11 {
            0 => FsOp::Creat { path: f },
            1 => FsOp::Mkdir { path: "/d".into() },
            2 => FsOp::Creat { path: g },
            3 => FsOp::Pwrite {
                path: f,
                offset: u64::from(r.next_u32() % 8),
                data: vec![r.next_u32() as u8; 1 + (r.next_u32() % 4) as usize],
            },
            4 => FsOp::Append {
                path: f,
                data: vec![r.next_u32() as u8],
            },
            5 => FsOp::Truncate {
                path: f,
                size: u64::from(r.next_u32() % 6),
            },
            6 => FsOp::Rename { src: f, dst: g },
            7 => FsOp::Link { src: f, dst: g },
            8 => FsOp::SetXattr {
                path: f,
                key: format!("user.k{}", r.next_u32() % 3),
                value: vec![r.next_u32() as u8],
            },
            9 => FsOp::RemoveXattr {
                path: f,
                key: format!("user.k{}", r.next_u32() % 3),
            },
            _ => FsOp::Unlink { path: f },
        }
    })
}

/// Everything fsck observed, rendered (order included — issue order is
/// part of the observable output contract).
fn fsck_report(fs: &FsState) -> Vec<String> {
    Fsck::check(fs).iter().map(|i| i.to_string()).collect()
}

/// Replay the same random sequence into two fresh states, one digested
/// and compared under the interned fast path, the other under the
/// `PC_NAIVE_SYMS=1` string oracle. Digests are memoized on first use,
/// so each state's first `digest()` call happens under its own mode —
/// equality across the two states IS the cross-mode equality.
///
/// A single `#[test]` because `PC_NAIVE_SYMS` is process-global and the
/// harness runs tests on threads.
#[test]
fn interned_state_matches_string_oracle_on_random_ops() {
    run(
        "interned_state_matches_string_oracle_on_random_ops",
        &Config::with_cases(192),
        arb_ops,
        |ops| {
            std::env::remove_var("PC_NAIVE_SYMS");
            let mut fast = FsState::new();
            let fast_failures = fast.apply_lenient(ops.iter()).len();
            let fast_digest = fast.digest();
            let fast_fsck = fsck_report(&fast);
            let fast_walk = fast.walk();

            std::env::set_var("PC_NAIVE_SYMS", "1");
            let mut naive = FsState::new();
            let naive_failures = naive.apply_lenient(ops.iter()).len();
            let naive_digest = naive.digest();
            let naive_fsck = fsck_report(&naive);
            let naive_walk = naive.walk();
            // Compare the trees under the oracle's walk-based algorithm…
            let same_naive = fast.same_tree(&naive) && naive.same_tree(&fast);
            std::env::remove_var("PC_NAIVE_SYMS");
            // …and under the interned structural recursion.
            let same_fast = fast.same_tree(&naive) && naive.same_tree(&fast);

            prop_assert_eq!(fast_failures, naive_failures);
            prop_assert_eq!(fast_digest, naive_digest);
            prop_assert_eq!(&fast_fsck, &naive_fsck);
            prop_assert_eq!(&fast_walk, &naive_walk);
            prop_assert!(same_fast);
            prop_assert!(same_naive);
            prop_assert!(fast_fsck.is_empty(), "replay must keep the FS clean");
            // Listings resolve through interned entry maps; readdir's
            // contract is lexicographic output either way.
            for path in &fast_walk {
                if fast.is_dir(path) {
                    prop_assert_eq!(fast.readdir(path).unwrap(), naive.readdir(path).unwrap());
                }
            }
            Ok(())
        },
    );
}

/// Dense first-intern order is a pure function of the insertion
/// sequence: two private tables fed the same strings assign identical
/// ids, regardless of which thread (or how many) produced the sequence.
#[test]
fn sym_table_ids_are_a_function_of_insertion_order() {
    let seq: Vec<String> = (0..40)
        .map(|i| format!("intern-eq/{}", i % 17)) // duplicates included
        .collect();
    let mut a = SymTable::new();
    let mut b = SymTable::new();
    let ids_a: Vec<u32> = seq.iter().map(|s| a.intern(s)).collect();
    let ids_b: Vec<u32> = seq.iter().map(|s| b.intern(s)).collect();
    assert_eq!(ids_a, ids_b);
    assert_eq!(a.len(), 17);
    for (s, &id) in seq.iter().zip(&ids_a) {
        assert_eq!(a.resolve(id), s.as_str());
    }
}

/// Seq-vs-par pin on the global interner: ids assigned sequentially
/// must survive a concurrent hammering of the same vocabulary unchanged
/// (the table is append-only), and resolution must round-trip from
/// every thread.
#[test]
fn global_interner_is_stable_under_concurrency() {
    let vocab: Vec<String> = (0..48).map(|i| format!("intern-eq/global/{i}")).collect();
    let pinned: Vec<Sym> = vocab.iter().map(|s| Sym::new(s)).collect();
    std::thread::scope(|scope| {
        for t in 0..4 {
            let vocab = &vocab;
            let pinned = &pinned;
            scope.spawn(move || {
                for rep in 0..64 {
                    let i = (t * 13 + rep * 5) % vocab.len();
                    let s = Sym::new(&vocab[i]);
                    assert_eq!(s, pinned[i]);
                    assert_eq!(s.as_str(), vocab[i]);
                }
            });
        }
    });
    for (s, orig) in pinned.iter().zip(&vocab) {
        assert_eq!(s.as_str(), orig);
    }
}
