//! Randomized-workload properties over the whole stack.
//!
//! The paper's Figure 8 control says ext4 (data journaling) leaves *no*
//! inconsistent crash state, and §6.3.1 says the same for Lustre on
//! POSIX workloads. Those are universal claims — so we fuzz them:
//! random POSIX programs on the safe systems must check clean, every
//! random program must replay losslessly on every FS, and the unsafe
//! systems must never crash the checker.

use paracrash::{check_stack, CheckConfig, Stack};
use pfs::PfsCall;
use proptest::prelude::*;
use workloads::{FsKind, Params};

/// A symbolic op in a generated program (paths are drawn from a tiny
/// namespace so operations collide interestingly).
#[derive(Debug, Clone)]
enum GenOp {
    Creat(u8),
    Write(u8, u8),
    Rename(u8, u8),
    Unlink(u8),
    Fsync(u8),
    Close(u8),
}

fn file_name(i: u8) -> String {
    format!("/f{}", i % 4)
}

/// Lower a generated op sequence into an executable PfsCall sequence,
/// tracking namespace state so every call is valid (the PFS models
/// assert on unknown files).
fn lower(ops: &[GenOp]) -> Vec<PfsCall> {
    let mut exists = [false; 4];
    let mut out = Vec::new();
    for op in ops {
        match op {
            GenOp::Creat(f) => {
                let f = (*f % 4) as usize;
                if !exists[f] {
                    exists[f] = true;
                    out.push(PfsCall::Creat { path: file_name(f as u8) });
                }
            }
            GenOp::Write(f, len) => {
                let f = (*f % 4) as usize;
                if exists[f] {
                    out.push(PfsCall::Pwrite {
                        path: file_name(f as u8),
                        offset: 0,
                        data: vec![*len; 1 + (*len as usize % 48)],
                    });
                }
            }
            GenOp::Rename(a, b) => {
                let (a, b) = ((*a % 4) as usize, (*b % 4) as usize);
                if a != b && exists[a] {
                    out.push(PfsCall::Rename {
                        src: file_name(a as u8),
                        dst: file_name(b as u8),
                    });
                    exists[a] = false;
                    exists[b] = true;
                }
            }
            GenOp::Unlink(f) => {
                let f = (*f % 4) as usize;
                if exists[f] {
                    exists[f] = false;
                    out.push(PfsCall::Unlink { path: file_name(f as u8) });
                }
            }
            GenOp::Fsync(f) => {
                let f = (*f % 4) as usize;
                if exists[f] {
                    out.push(PfsCall::Fsync { path: file_name(f as u8) });
                }
            }
            GenOp::Close(f) => {
                let f = (*f % 4) as usize;
                if exists[f] {
                    out.push(PfsCall::Close { path: file_name(f as u8) });
                }
            }
        }
    }
    out
}

fn arb_ops() -> impl Strategy<Value = Vec<GenOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..4).prop_map(GenOp::Creat),
            (0u8..4, 0u8..255).prop_map(|(f, l)| GenOp::Write(f, l)),
            (0u8..4, 0u8..4).prop_map(|(a, b)| GenOp::Rename(a, b)),
            (0u8..4).prop_map(GenOp::Unlink),
            (0u8..4).prop_map(GenOp::Fsync),
            (0u8..4).prop_map(GenOp::Close),
        ],
        1..7,
    )
}

fn run_calls(fs: FsKind, params: &Params, calls: &[PfsCall]) -> Stack {
    let mut stack = Stack::new(fs.build(params));
    // Preamble: one pre-existing file so renames/overwrites have targets.
    stack.posix(0, PfsCall::Creat { path: "/f0".into() });
    stack.posix(
        0,
        PfsCall::Pwrite {
            path: "/f0".into(),
            offset: 0,
            data: b"seed-content".to_vec(),
        },
    );
    stack.posix(0, PfsCall::Close { path: "/f0".into() });
    stack.seal_preamble();
    for call in calls {
        stack.posix(0, call.clone());
    }
    stack
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// ext4 in data-journaling mode has no inconsistent crash states —
    /// for *any* program (the Figure 8 control, universally).
    #[test]
    fn ext4_is_always_crash_consistent(ops in arb_ops()) {
        let params = Params::quick();
        let mut calls = lower(&ops);
        // The preamble creates /f0; drop duplicate creation.
        calls.retain(|c| !matches!(c, PfsCall::Creat { path } if path == "/f0"));
        let stack = run_calls(FsKind::Ext4, &params, &calls);
        let factory = FsKind::Ext4.factory(&params);
        let outcome = check_stack(&stack, &factory, &CheckConfig::paper_default());
        prop_assert_eq!(
            outcome.raw_inconsistent_states, 0,
            "ext4 inconsistent on {:?}: {:?}",
            calls,
            outcome.bugs.iter().map(|b| b.signature.to_string()).collect::<Vec<_>>()
        );
    }

    /// Lustre's aggregation + barriers keep every random POSIX program
    /// crash-consistent (§6.3.1).
    #[test]
    fn lustre_is_posix_crash_consistent(ops in arb_ops()) {
        let params = Params::quick();
        let mut calls = lower(&ops);
        calls.retain(|c| !matches!(c, PfsCall::Creat { path } if path == "/f0"));
        let stack = run_calls(FsKind::Lustre, &params, &calls);
        let factory = FsKind::Lustre.factory(&params);
        let outcome = check_stack(&stack, &factory, &CheckConfig::paper_default());
        prop_assert_eq!(
            outcome.raw_inconsistent_states, 0,
            "Lustre inconsistent on {:?}: {:?}",
            calls,
            outcome.bugs.iter().map(|b| b.signature.to_string()).collect::<Vec<_>>()
        );
    }

    /// Every FS materializes random programs losslessly: applying the
    /// full trace onto the baseline reproduces the live state, and
    /// recovery of the uncrashed state changes nothing.
    #[test]
    fn replay_is_lossless_everywhere(ops in arb_ops()) {
        let params = Params::quick();
        let mut calls = lower(&ops);
        calls.retain(|c| !matches!(c, PfsCall::Creat { path } if path == "/f0"));
        for fs in FsKind::all() {
            let stack = run_calls(fs, &params, &calls);
            let mut states = stack.pfs.baseline().clone();
            states.apply_events(&stack.rec, stack.rec.lowermost_events());
            prop_assert_eq!(
                stack.pfs.client_view(&states),
                stack.pfs.client_view(stack.pfs.live()),
                "{} diverged on {:?}",
                fs.name(),
                calls
            );
            let mut live = stack.pfs.live().clone();
            let before = stack.pfs.client_view(&live);
            let _ = stack.pfs.recover(&mut live);
            prop_assert_eq!(
                before,
                stack.pfs.client_view(&live),
                "{} recovery damaged a healthy state on {:?}",
                fs.name(),
                calls
            );
        }
    }
}
