//! Randomized-workload properties over the whole stack.
//!
//! The paper's Figure 8 control says ext4 (data journaling) leaves *no*
//! inconsistent crash state, and §6.3.1 says the same for Lustre on
//! POSIX workloads. Those are universal claims — so we fuzz them:
//! random POSIX programs on the safe systems must check clean, every
//! random program must replay losslessly on every FS, and the unsafe
//! systems must never crash the checker. (Hosted on the vendored
//! `pc-rt` property harness.)

use paracrash::{check_stack, CheckConfig, Stack};
use pc_rt::prop_assert_eq;
use pc_rt::proptest::{run, Config};
use pc_rt::rng::Rng;
use pfs::PfsCall;
use workloads::{FsKind, Params};

/// A symbolic op in a generated program (paths are drawn from a tiny
/// namespace so operations collide interestingly).
#[derive(Debug, Clone)]
enum GenOp {
    Creat(u8),
    Write(u8, u8),
    Rename(u8, u8),
    Unlink(u8),
    Fsync(u8),
    Close(u8),
}

fn file_name(i: u8) -> String {
    format!("/f{}", i % 4)
}

/// Lower a generated op sequence into an executable PfsCall sequence,
/// tracking namespace state so every call is valid (the PFS models
/// assert on unknown files).
fn lower(ops: &[GenOp]) -> Vec<PfsCall> {
    let mut exists = [false; 4];
    let mut out = Vec::new();
    for op in ops {
        match op {
            GenOp::Creat(f) => {
                let f = (*f % 4) as usize;
                if !exists[f] {
                    exists[f] = true;
                    out.push(PfsCall::Creat {
                        path: file_name(f as u8),
                    });
                }
            }
            GenOp::Write(f, len) => {
                let f = (*f % 4) as usize;
                if exists[f] {
                    out.push(PfsCall::Pwrite {
                        path: file_name(f as u8),
                        offset: 0,
                        data: vec![*len; 1 + (*len as usize % 48)],
                    });
                }
            }
            GenOp::Rename(a, b) => {
                let (a, b) = ((*a % 4) as usize, (*b % 4) as usize);
                if a != b && exists[a] {
                    out.push(PfsCall::Rename {
                        src: file_name(a as u8),
                        dst: file_name(b as u8),
                    });
                    exists[a] = false;
                    exists[b] = true;
                }
            }
            GenOp::Unlink(f) => {
                let f = (*f % 4) as usize;
                if exists[f] {
                    exists[f] = false;
                    out.push(PfsCall::Unlink {
                        path: file_name(f as u8),
                    });
                }
            }
            GenOp::Fsync(f) => {
                let f = (*f % 4) as usize;
                if exists[f] {
                    out.push(PfsCall::Fsync {
                        path: file_name(f as u8),
                    });
                }
            }
            GenOp::Close(f) => {
                let f = (*f % 4) as usize;
                if exists[f] {
                    out.push(PfsCall::Close {
                        path: file_name(f as u8),
                    });
                }
            }
        }
    }
    out
}

/// 1 to ~6 random symbolic ops, shrinking with the `size` budget.
fn arb_ops(rng: &mut Rng, size: usize) -> Vec<GenOp> {
    let len = 1 + rng.gen_range(0..=size.min(5) as u64) as usize;
    (0..len)
        .map(|_| {
            let f = (rng.next_u32() % 4) as u8;
            match rng.gen_index(6) {
                0 => GenOp::Creat(f),
                1 => GenOp::Write(f, (rng.next_u32() % 255) as u8),
                2 => GenOp::Rename(f, (rng.next_u32() % 4) as u8),
                3 => GenOp::Unlink(f),
                4 => GenOp::Fsync(f),
                _ => GenOp::Close(f),
            }
        })
        .collect()
}

fn run_calls(fs: FsKind, params: &Params, calls: &[PfsCall]) -> Stack {
    let mut stack = Stack::new(fs.build(params));
    // Preamble: one pre-existing file so renames/overwrites have targets.
    stack.posix(0, PfsCall::Creat { path: "/f0".into() });
    stack.posix(
        0,
        PfsCall::Pwrite {
            path: "/f0".into(),
            offset: 0,
            data: b"seed-content".to_vec(),
        },
    );
    stack.posix(0, PfsCall::Close { path: "/f0".into() });
    stack.seal_preamble();
    for call in calls {
        stack.posix(0, call.clone());
    }
    stack
}

/// ext4 in data-journaling mode has no inconsistent crash states —
/// for *any* program (the Figure 8 control, universally).
#[test]
fn ext4_is_always_crash_consistent() {
    run(
        "ext4_is_always_crash_consistent",
        &Config::with_cases(24),
        arb_ops,
        |ops| {
            let params = Params::quick();
            let mut calls = lower(ops);
            // The preamble creates /f0; drop duplicate creation.
            calls.retain(|c| !matches!(c, PfsCall::Creat { path } if path == "/f0"));
            let stack = run_calls(FsKind::Ext4, &params, &calls);
            let factory = FsKind::Ext4.factory(&params);
            let outcome = check_stack(&stack, &factory, &CheckConfig::paper_default());
            prop_assert_eq!(outcome.raw_inconsistent_states, 0);
            Ok(())
        },
    );
}

/// Lustre's aggregation + barriers keep every random POSIX program
/// crash-consistent (§6.3.1).
#[test]
fn lustre_is_posix_crash_consistent() {
    run(
        "lustre_is_posix_crash_consistent",
        &Config::with_cases(24),
        arb_ops,
        |ops| {
            let params = Params::quick();
            let mut calls = lower(ops);
            calls.retain(|c| !matches!(c, PfsCall::Creat { path } if path == "/f0"));
            let stack = run_calls(FsKind::Lustre, &params, &calls);
            let factory = FsKind::Lustre.factory(&params);
            let outcome = check_stack(&stack, &factory, &CheckConfig::paper_default());
            prop_assert_eq!(outcome.raw_inconsistent_states, 0);
            Ok(())
        },
    );
}

/// Every FS materializes random programs losslessly: applying the
/// full trace onto the baseline reproduces the live state, and
/// recovery of the uncrashed state changes nothing.
#[test]
fn replay_is_lossless_everywhere() {
    run(
        "replay_is_lossless_everywhere",
        &Config::with_cases(24),
        arb_ops,
        |ops| {
            let params = Params::quick();
            let mut calls = lower(ops);
            calls.retain(|c| !matches!(c, PfsCall::Creat { path } if path == "/f0"));
            for fs in FsKind::all() {
                let stack = run_calls(fs, &params, &calls);
                let mut states = stack.pfs.baseline().clone();
                states.apply_events(&stack.rec, stack.rec.lowermost_events());
                prop_assert_eq!(
                    stack.pfs.client_view(&states),
                    stack.pfs.client_view(stack.pfs.live())
                );
                let mut live = stack.pfs.live().clone();
                let before = stack.pfs.client_view(&live);
                let _ = stack.pfs.recover(&mut live);
                prop_assert_eq!(before, stack.pfs.client_view(&live));
            }
            Ok(())
        },
    );
}
