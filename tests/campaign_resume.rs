//! Kill-resume equivalence for the crash-safe campaign driver: a
//! campaign killed at *any* durability point — mid-append, with a torn
//! partial record, before or after a checkpoint's atomic rename — and
//! then resumed must produce a `canonical_report()` byte-identical to
//! an uninterrupted run.
//!
//! The kill is injected through `pc_rt::durable`'s `PC_DURABLE_CRASH`
//! machinery in panic mode (so one process can die and "restart"
//! hundreds of times), at a property-tested random durability point
//! with a random tear length. `scripts/verify.sh` gate 13 repeats the
//! experiment across process boundaries — exit-mode injection (rc 137)
//! and a real mid-sweep SIGKILL — and across `PC_THREADS=1` vs the
//! parallel pool, so the in-process shortcut here is cross-checked
//! end to end.

use pc_bench::campaign::{run_campaign, CampaignOptions};
use pc_bench::fuzz_driver::FuzzOptions;
use pc_rt::durable::{arm_crash, disarm_crash, points_seen, reset_points, CrashMode, CrashSpec};
use pc_rt::prop_assert;
use pc_rt::proptest::{run, Config};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use workloads::FsKind;

fn scratch_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pc-resume-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed),
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small but non-trivial sweep: 8 cells, checkpoint every 3, so a
/// random durability point can land before the first checkpoint, between
/// checkpoints, inside `write_atomic`'s three points, or on the final
/// checkpoint.
fn opts(dir: &Path) -> CampaignOptions {
    let fuzz = FuzzOptions {
        sample: Some(8),
        file_systems: vec![FsKind::BeeGfs],
        ..FuzzOptions::pr_tier()
    };
    let mut o = CampaignOptions::new(fuzz, dir.to_str().unwrap());
    o.checkpoint_every = 3;
    o
}

/// One `#[test]` because the crash-injection state is process-global.
#[test]
fn killed_campaign_resumes_byte_identically() {
    disarm_crash();
    let ref_dir = scratch_dir("reference");
    reset_points();
    let reference = run_campaign(&opts(&ref_dir))
        .expect("uninterrupted campaign")
        .corpus
        .canonical_report();
    // Every durability point the uninterrupted run passed through is a
    // legal kill site: log-open header write, each record append, and
    // each checkpoint's write-tmp / pre-rename / post-rename points.
    let total_points = points_seen();
    assert!(
        total_points > 10,
        "expected a rich point schedule, got {total_points}"
    );
    std::fs::remove_dir_all(&ref_dir).unwrap();

    run(
        "killed_campaign_resumes_byte_identically",
        &Config::with_cases(10),
        |rng, _size| {
            (
                rng.gen_range(1..=total_points),
                rng.gen_range(0u64..64) as usize,
            )
        },
        |&(at, tear)| {
            let dir = scratch_dir("kill");
            reset_points();
            arm_crash(CrashSpec {
                at,
                tear: Some(tear),
                mode: CrashMode::Panic,
            });
            let crashed = catch_unwind(AssertUnwindSafe(|| run_campaign(&opts(&dir))));
            disarm_crash();
            prop_assert!(
                crashed.is_err(),
                "crash at point {at} must interrupt the campaign"
            );
            let resumed = run_campaign(&CampaignOptions {
                resume: true,
                ..opts(&dir)
            })
            .map_err(|e| format!("resume after kill at {at}: {e}"))?;
            prop_assert!(
                resumed.corpus.canonical_report() == reference,
                "kill at point {at} (tear {tear}) diverged after resume"
            );
            std::fs::remove_dir_all(&dir).unwrap();
            Ok(())
        },
    );
}
