//! Pin Figure 8's qualitative shape at the fast profile: which cells of
//! the program × file-system matrix are clean and which are not. This
//! is the coarse fingerprint of the whole reproduction — any change to a
//! PFS model, the H5 flush orders, or the checker shows up here.

use paracrash_suite::check_quick;
use workloads::{FsKind, Program};

/// (program, [BeeGFS, OrangeFS, GlusterFS, GPFS, Lustre, ext4]) — `true`
/// means the cell must expose at least one bug.
const EXPECTED: &[(Program, [bool; 6])] = &[
    (Program::Arvr, [true, true, false, true, false, false]),
    (Program::Cr, [true, true, false, true, false, false]),
    (Program::Rc, [true, false, false, true, false, false]),
    (Program::Wal, [true, true, true, true, false, false]),
    (Program::H5Delete, [true, true, true, true, true, true]),
    (Program::H5Rename, [true, true, true, true, true, true]),
    (Program::H5Resize, [true, true, true, true, true, true]),
    (
        Program::H5ParallelCreate,
        [true, true, true, true, true, true],
    ),
    (
        Program::H5ParallelResize,
        [true, true, true, true, true, true],
    ),
];

#[test]
fn figure8_matrix_shape() {
    let systems = FsKind::all();
    let mut failures = Vec::new();
    for (program, expected) in EXPECTED {
        for (fs, &want_bugs) in systems.iter().zip(expected) {
            let outcome = check_quick(*program, *fs);
            let got = !outcome.bugs.is_empty();
            if got != want_bugs {
                failures.push(format!(
                    "{} on {}: expected bugs={}, got {} ({:?})",
                    program.name(),
                    fs.name(),
                    want_bugs,
                    outcome.bugs.len(),
                    outcome
                        .bugs
                        .iter()
                        .map(|b| b.signature.to_string())
                        .collect::<Vec<_>>()
                ));
            }
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn iolib_line_series_is_zero_for_pfs_rooted_programs() {
    // H5-create and CDF-create inconsistencies coincide with PFS
    // violations — the Figure 8 line sits at zero for them.
    for program in [Program::H5Create, Program::CdfCreate] {
        for fs in FsKind::parallel() {
            let outcome = check_quick(program, fs);
            assert_eq!(
                outcome.h5_bad_pfs_ok_states,
                0,
                "{} on {}",
                program.name(),
                fs.name()
            );
        }
    }
}
