//! A panicking PFS model must not abort the checking run: each crash
//! state's work runs under `catch_unwind`, and a poisoned state becomes
//! a diagnostic entry while the rest of the run completes.
//!
//! This lives in its own test binary because the poison hook is a
//! process-global environment variable.

use paracrash_suite::{check_with, paracrash::CheckConfig};
use workloads::{FsKind, Params, Program};

#[test]
fn poisoned_recover_yields_diagnostics_not_an_abort() {
    std::env::set_var("PC_TEST_POISON_RECOVER", "1");
    let outcome = check_with(
        Program::Arvr,
        FsKind::BeeGfs,
        &Params::quick(),
        &CheckConfig::paper_default(),
    );
    std::env::remove_var("PC_TEST_POISON_RECOVER");

    // Every crash state hit the poisoned tool, so every one must have
    // been turned into a diagnostic rather than a verdict — and the run
    // still returned an outcome instead of unwinding.
    assert!(!outcome.diagnostics.is_empty());
    assert_eq!(outcome.stats.states_diagnostic, outcome.diagnostics.len());
    assert!(outcome
        .diagnostics
        .iter()
        .all(|d| d.contains("poisoned recover")));
    // Diagnostics surface in the canonical report too.
    assert!(outcome.canonical_report().contains("diagnostic:"));

    // The hook is gone: a rerun is clean again.
    let clean = check_with(
        Program::Arvr,
        FsKind::BeeGfs,
        &Params::quick(),
        &CheckConfig::paper_default(),
    );
    assert!(clean.diagnostics.is_empty());
    assert!(!clean.bugs.is_empty(), "the seeded ARVR bugs are back");
}
