#!/usr/bin/env bash
# Tier-1 verification for the hermetic, zero-registry-dependency build.
#
# Fourteen gates:
#   1. Dependency policy — every dependency in every Cargo.toml must be
#      an in-tree `path` crate (or a `*.workspace = true` reference to
#      one). Any registry dependency (a `version = "..."` requirement)
#      fails the build *before* cargo runs, with a pointed message.
#   2. Tier-1 — `cargo build --release` and `cargo test -q`, both fully
#      offline (CARGO_NET_OFFLINE=true + --offline), so a cold, empty
#      ~/.cargo/registry is sufficient.
#   3. Hygiene — `cargo fmt --check` and a warning-free build
#      (RUSTFLAGS="-D warnings").
#   4. Engine equivalence — the COW replay engine and the
#      `PC_NAIVE_SNAPSHOTS=1` oracle must report identically, checked
#      once sequentially (PC_THREADS=1) and once with the thread pool.
#   5. Telemetry — `paracrash --telemetry-out` must emit files that
#      re-parse with the vendored JSON reader (both plain and Chrome
#      trace-event formats, validated by `telemetry-check`), and the
#      *disabled* telemetry overhead on the snapshot-engine microbench
#      must stay under 3% (`telemetry-overhead`).
#   6. Fault plane — the seeded chaos suite must pass sequentially and
#      parallel, the CLI must produce bit-identical reports for the
#      same chaos seed across thread counts, a zero-fault full-matrix
#      run must reproduce exactly the paper's fifteen Table 3 bugs,
#      and the fault plane's *disabled* per-message overhead must stay
#      under 3% of a traced run (`faults-overhead`).
#   7. Provenance — a full-matrix `--explain-out` run must emit one
#      bundle per Table 3 bug; every `.json` must re-parse with the
#      vendored reader and every `.dot` must pass a structural lint
#      (`explain-check`), and the engine's *disabled* overhead on a
#      full check must stay under 3% (`explain-overhead`).
#   8. Fuzz crash gate — the PR-tier generated-workload sweep
#      (`paracrash fuzz`, exhaustive bound 2) must be byte-identical
#      across thread counts AND match the pinned corpus in
#      crates/bench/tests/expected_fuzz_pr_tier.txt; triage bundles
#      must materialize. PC_FUZZ_NIGHTLY=1 additionally runs the
#      large-bound sampled sweep (bound 3, all FSs, all journaling
#      modes) twice and diffs the runs.
#   9. Rustdoc — `cargo doc --no-deps` must build warning-free
#      (RUSTDOCFLAGS="-D warnings"), keeping every public item
#      documented.
#  10. Flag drift — every `--flag` printed by `paracrash --help` must
#      appear in README.md's flag table.
#  11. Extreme scale — a 64-server cell must report byte-identically
#      sequential vs parallel and under both hot-path oracles
#      (`PC_NAIVE_SYMS=1` string-keyed maps, `PC_NAIVE_BATCH=1`
#      per-state recovery); the zero-fault matrix must stay 15/15
#      under both oracles combined; and `scale-check --live` must
#      validate the committed BENCH_scale.json invariants (batched
#      >= 2x oracle states/sec, sub-linear per-check growth 64->256
#      servers) with a live run inside a generous 2x band.
#  12. Live observability — a PR-tier fuzz run with --events-out must
#      still print the pinned canonical report, its event stream must
#      re-parse (`events-check`) and project identically sequential vs
#      parallel (`--canonical-diff`), `paracrash report` must render a
#      dashboard that passes the HTML lint (`events-check --html`), and
#      the *disabled* flight-recorder overhead must stay under 3%
#      (`stream-overhead`).
#  13. Crash-safe campaign — `durable-check` fuzzes the record log's
#      torn-tail recovery; a `paracrash campaign` killed by injected
#      crashes (`PC_DURABLE_CRASH`, exit mode, rc 137) mid-append, with
#      a torn partial record, and mid-checkpoint (before the atomic
#      rename), and by a real mid-sweep SIGKILL, must `--resume` to a
#      report byte-identical to an uninterrupted run — sequential and
#      parallel — and refuse to clobber existing state without
#      `--resume`.
#  14. Self-profiling plane — the *disabled* profiling overhead (span
#      hooks + the counting global allocator's fast path) must stay
#      under 3% (`prof-overhead`); a `--profile-out` fuzz run must
#      still print the pinned report and emit a canonical `.folded`
#      profile (`prof-check`) whose frames cover the engine's hot
#      stages; two `--history-dir` runs must round-trip through
#      `history show|diff|regressions`; the committed
#      BENCH_profiling.json invariants must hold; and `report
#      --profile` must render flame + alloc sections that pass the
#      HTML lint.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gate 1: no registry dependencies =="
fail=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    # Within dependency tables, flag any spec that is neither a `path`
    # dependency nor a workspace inheritance.
    bad=$(awk '
        /^\[/ {
            in_deps = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies/)
            next
        }
        in_deps && /=/ {
            if ($0 !~ /path[ \t]*=/ && $0 !~ /\.workspace[ \t]*=[ \t]*true/ && $0 !~ /^[ \t]*#/) {
                print FILENAME ": " $0
            }
        }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "registry dependency detected (hermetic-build policy forbids these):"
        echo "$bad"
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "FAIL: vendor the functionality into crates/rt (pc-rt) or another in-tree crate."
    exit 1
fi
echo "ok: all dependencies are in-tree path crates"

echo "== gate 2: tier-1 build + tests, offline =="
export CARGO_NET_OFFLINE=true
cargo build --release --offline
cargo test -q --offline

echo "== gate 3: formatting + warning-free build =="
cargo fmt --check
RUSTFLAGS="-D warnings" cargo build --offline --workspace

echo "== gate 4: snapshot-engine equivalence, sequential and parallel =="
PC_THREADS=1 cargo test -q --offline --test snapshot_equivalence
cargo test -q --offline --test snapshot_equivalence

echo "== gate 5: telemetry emission + disabled-overhead budget =="
cargo build --release --offline -p pc-bench
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
# BeeGFS/ARVR finds bugs, so the single-cell run exits 1 by design.
target/release/paracrash --fs BeeGFS --program ARVR \
    --telemetry-out "$tmp/telemetry.json" --telemetry-format chrome \
    > /dev/null || [ $? -eq 1 ]
target/release/telemetry-check "$tmp/telemetry.json"
target/release/paracrash --fs ext4 --program ARVR \
    --telemetry-out "$tmp/telemetry-plain.json" > /dev/null
target/release/telemetry-check "$tmp/telemetry-plain.json"
target/release/telemetry-overhead

echo "== gate 6: fault-plane determinism + zero-fault fidelity =="
spec="seed=7,drop=0.2,dup=0.1,delay=0.1,retries=3"
PC_THREADS=1 cargo test -q --offline --test chaos
cargo test -q --offline --test chaos --test torn_writes --test diagnostics
# Same chaos seed => bit-identical CLI report, regardless of thread
# count, via both the --faults flag and the PC_CHAOS_SEED fallback.
# BeeGFS/ARVR finds bugs, so the cells exit 1 by design.
target/release/paracrash --fs BeeGFS --program ARVR --faults "$spec" \
    > "$tmp/chaos-par.txt" || [ $? -eq 1 ]
PC_THREADS=1 target/release/paracrash --fs BeeGFS --program ARVR --faults "$spec" \
    > "$tmp/chaos-seq.txt" || [ $? -eq 1 ]
diff "$tmp/chaos-par.txt" "$tmp/chaos-seq.txt"
PC_CHAOS_SEED=7 target/release/paracrash --fs BeeGFS --program ARVR \
    > "$tmp/env-par.txt" || [ $? -eq 1 ]
PC_CHAOS_SEED=7 PC_THREADS=1 target/release/paracrash --fs BeeGFS --program ARVR \
    > "$tmp/env-seq.txt" || [ $? -eq 1 ]
diff "$tmp/env-par.txt" "$tmp/env-seq.txt"
# Zero-fault runs must still find exactly the paper's fifteen bugs.
target/release/table3 > "$tmp/table3.txt"
reproduced=$(grep -c "REPRODUCED" "$tmp/table3.txt")
if [ "$reproduced" -ne 15 ] || grep -q "missing" "$tmp/table3.txt"; then
    echo "FAIL: zero-fault matrix does not reproduce the 15 Table 3 bugs"
    grep -E "REPRODUCED|missing" "$tmp/table3.txt"
    exit 1
fi
target/release/faults-overhead

echo "== gate 7: explain bundles + disabled-overhead budget =="
# Full matrix: multi-cell runs always exit 0; bugs land as bundles.
target/release/paracrash --fs all --program all \
    --explain-out "$tmp/explain" > /dev/null
target/release/explain-check "$tmp/explain" 15
target/release/explain-overhead
cargo test -q --offline --test explain

echo "== gate 8: fuzz crash gate (PR tier; PC_FUZZ_NIGHTLY=1 widens) =="
# Exhaustive bound-2 sweep: thread-count invariant and pinned.
target/release/paracrash fuzz > "$tmp/fuzz-par.txt" 2> /dev/null
PC_THREADS=1 target/release/paracrash fuzz > "$tmp/fuzz-seq.txt" 2> /dev/null
diff "$tmp/fuzz-par.txt" "$tmp/fuzz-seq.txt"
if ! diff "$tmp/fuzz-par.txt" crates/bench/tests/expected_fuzz_pr_tier.txt; then
    echo "FAIL: PR-tier fuzz findings drifted from the pinned corpus."
    echo "If intended: regenerate with"
    echo "  target/release/paracrash fuzz 2>/dev/null > crates/bench/tests/expected_fuzz_pr_tier.txt"
    exit 1
fi
# Triage smoke: a sampled run with --findings-out must produce bundles.
target/release/paracrash fuzz --sample 25 --fs BeeGFS \
    --findings-out "$tmp/fuzz-findings" > /dev/null 2>&1
if ! ls "$tmp/fuzz-findings"/*.repro > /dev/null 2>&1; then
    echo "FAIL: fuzz --findings-out produced no .repro bundles"
    exit 1
fi
if [ "${PC_FUZZ_NIGHTLY:-0}" = "1" ]; then
    echo "-- nightly tier: bound-3 sampled sweep, all FSs, all modes --"
    nightly="--bound 3 --sample 400 --seed 42 --fs all --modes all"
    # shellcheck disable=SC2086
    target/release/paracrash fuzz $nightly > "$tmp/fuzz-nightly-a.txt" 2> /dev/null
    # shellcheck disable=SC2086
    PC_THREADS=1 target/release/paracrash fuzz $nightly > "$tmp/fuzz-nightly-b.txt" 2> /dev/null
    diff "$tmp/fuzz-nightly-a.txt" "$tmp/fuzz-nightly-b.txt"
fi

echo "== gate 9: rustdoc builds warning-free =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace > /dev/null

echo "== gate 10: every CLI flag is documented in README.md =="
# usage() prints to stderr and exits 2; that's the source of truth.
target/release/paracrash --help 2> "$tmp/help.txt" || true
for flag in $(grep -oE -- '--[a-z-]+' "$tmp/help.txt" | sort -u); do
    if ! grep -q -- "$flag" README.md; then
        echo "FAIL: CLI flag $flag is missing from README.md's flag table"
        exit 1
    fi
done
# The profiling env knobs ride the same contract as the flags.
for env_var in PC_PROFILE PC_PROF_HZ; do
    if ! grep -q -- "$env_var" README.md; then
        echo "FAIL: env var $env_var is missing from README.md"
        exit 1
    fi
done

echo "== gate 11: extreme-scale smoke + committed scale benchmarks =="
# 64-server BeeGFS cell (4x the paper's largest configuration): the
# report must not depend on the thread count or on which hot-path
# implementation produced it. BeeGFS/ARVR finds bugs, so the cells
# exit 1 by design.
cat > "$tmp/scale.conf" <<'EOF'
meta_servers = 32
storage_servers = 32
EOF
scale_cell="--fs BeeGFS --program ARVR --config $tmp/scale.conf"
# shellcheck disable=SC2086
target/release/paracrash $scale_cell > "$tmp/scale-par.txt" || [ $? -eq 1 ]
# shellcheck disable=SC2086
PC_THREADS=1 target/release/paracrash $scale_cell > "$tmp/scale-seq.txt" || [ $? -eq 1 ]
diff "$tmp/scale-par.txt" "$tmp/scale-seq.txt"
# shellcheck disable=SC2086
PC_NAIVE_SYMS=1 target/release/paracrash $scale_cell > "$tmp/scale-syms.txt" || [ $? -eq 1 ]
diff "$tmp/scale-par.txt" "$tmp/scale-syms.txt"
# shellcheck disable=SC2086
PC_NAIVE_BATCH=1 target/release/paracrash $scale_cell > "$tmp/scale-batch.txt" || [ $? -eq 1 ]
diff "$tmp/scale-par.txt" "$tmp/scale-batch.txt"
# The zero-fault matrix must still find exactly the fifteen Table 3
# bugs with every fast path swapped for its oracle at once.
PC_NAIVE_SYMS=1 PC_NAIVE_BATCH=1 target/release/table3 > "$tmp/table3-naive.txt"
naive_reproduced=$(grep -c "REPRODUCED" "$tmp/table3-naive.txt")
if [ "$naive_reproduced" -ne 15 ] || grep -q "missing" "$tmp/table3-naive.txt"; then
    echo "FAIL: oracle-mode matrix does not reproduce the 15 Table 3 bugs"
    grep -E "REPRODUCED|missing" "$tmp/table3-naive.txt"
    exit 1
fi
# Committed scale numbers: static invariants plus a live re-measurement
# of the batched engine within a generous 2x regression band.
target/release/scale-check BENCH_scale.json --live

echo "== gate 12: event stream + campaign dashboard =="
# The streamed PR-tier run must print the same pinned report (the
# recorder observes the fold, never perturbs it) and leave a parseable
# JSON-lines stream behind.
target/release/paracrash fuzz --events-out "$tmp/events-par.jsonl" \
    > "$tmp/fuzz-ev-par.txt" 2> /dev/null
diff "$tmp/fuzz-ev-par.txt" crates/bench/tests/expected_fuzz_pr_tier.txt
target/release/events-check "$tmp/events-par.jsonl"
# Sequential vs parallel: raw streams differ (timestamps, interleaving);
# the canonical projection must not.
PC_THREADS=1 target/release/paracrash fuzz --events-out "$tmp/events-seq.jsonl" \
    > /dev/null 2> /dev/null
target/release/events-check --canonical-diff \
    "$tmp/events-par.jsonl" "$tmp/events-seq.jsonl"
# Render the dashboard from the stream plus a telemetry snapshot and the
# committed bench suites, then lint it.
target/release/paracrash --fs ext4 --program ARVR \
    --telemetry-out "$tmp/report-telemetry.json" > /dev/null
target/release/paracrash report --events "$tmp/events-par.jsonl" \
    --telemetry "$tmp/report-telemetry.json" \
    --bench BENCH_fuzz.json --bench BENCH_scale.json \
    --out "$tmp/report.html"
target/release/events-check --html "$tmp/report.html"
target/release/stream-overhead

echo "== gate 13: crash-safe resumable campaign =="
# Torn-tail recovery fuzz on the durable record log itself.
target/release/durable-check
# Reference: one uninterrupted small campaign.
camp="campaign --sample 25 --fs BeeGFS --checkpoint-every 8"
# shellcheck disable=SC2086
target/release/paracrash $camp --state-dir "$tmp/camp-ref" \
    > "$tmp/camp-ref.txt" 2> /dev/null
# Existing state without --resume must refuse with exit 2, not clobber.
# shellcheck disable=SC2086
if target/release/paracrash $camp --state-dir "$tmp/camp-ref" \
    > /dev/null 2>&1; then
    echo "FAIL: campaign clobbered existing state without --resume"
    exit 1
fi
# Injected kill mid-append with a torn partial record (exit mode looks
# like SIGKILL: rc 137), then resume; the report must be byte-identical.
# shellcheck disable=SC2086
PC_DURABLE_CRASH=at=7,tear=5 target/release/paracrash $camp \
    --state-dir "$tmp/camp-torn" > /dev/null 2>&1 && {
    echo "FAIL: injected crash did not kill the campaign"; exit 1; }
# shellcheck disable=SC2086
target/release/paracrash $camp --state-dir "$tmp/camp-torn" --resume \
    > "$tmp/camp-torn.txt" 2> /dev/null
diff "$tmp/camp-ref.txt" "$tmp/camp-torn.txt"
# Injected kill mid-checkpoint: point 12 is the first checkpoint's
# pre-rename window (tmp fully written, rename never happened — the
# old checkpoint must win).
# shellcheck disable=SC2086
PC_DURABLE_CRASH=at=12 target/release/paracrash $camp \
    --state-dir "$tmp/camp-ckpt" > /dev/null 2>&1 && {
    echo "FAIL: mid-checkpoint crash did not kill the campaign"; exit 1; }
# Resume sequentially: recovery + the re-checked tail must also be
# thread-count invariant.
# shellcheck disable=SC2086
PC_THREADS=1 target/release/paracrash $camp --state-dir "$tmp/camp-ckpt" \
    --resume > "$tmp/camp-ckpt.txt" 2> /dev/null
diff "$tmp/camp-ref.txt" "$tmp/camp-ckpt.txt"
# A real SIGKILL mid-sweep (no injection). If the campaign wins the
# race and finishes, resume degrades to a pure replay — still diffed.
# shellcheck disable=SC2086
target/release/paracrash $camp --state-dir "$tmp/camp-kill" \
    > /dev/null 2>&1 & camp_pid=$!
sleep 0.4
kill -9 "$camp_pid" 2> /dev/null || true
wait "$camp_pid" 2> /dev/null || true
# shellcheck disable=SC2086
target/release/paracrash $camp --state-dir "$tmp/camp-kill" --resume \
    > "$tmp/camp-kill.txt" 2> /dev/null
diff "$tmp/camp-ref.txt" "$tmp/camp-kill.txt"
# Satellite: --events-out under a campaign creates missing parent dirs
# and the stream re-parses (campaign.* counters ride the same stream).
# shellcheck disable=SC2086
target/release/paracrash $camp --state-dir "$tmp/camp-ev" \
    --events-out "$tmp/nested/dirs/camp-events.jsonl" \
    > /dev/null 2> /dev/null
target/release/events-check "$tmp/nested/dirs/camp-events.jsonl"

echo "== gate 14: self-profiling plane =="
# Disabled-path budget: every profiling site must reduce to one
# relaxed atomic load (span hooks and the counting allocator alike).
target/release/prof-overhead
# A profiled PR-tier fuzz run must still print the pinned report (the
# profiler is strictly presentation-plane) and emit a canonical
# .folded profile whose frames cover the engine's hot stages. The
# nested output path also exercises --profile-out's parent creation.
PC_PROF_HZ=997 target/release/paracrash fuzz \
    --profile-out "$tmp/prof/fuzz.folded" \
    > "$tmp/fuzz-prof.txt" 2> /dev/null
diff "$tmp/fuzz-prof.txt" crates/bench/tests/expected_fuzz_pr_tier.txt
target/release/prof-check "$tmp/prof/fuzz.folded"
for frame in "snapshot.materialize" "recover/"; do
    if ! grep -q -- "$frame" "$tmp/prof/fuzz.folded"; then
        echo "FAIL: profile has no $frame frames"
        exit 1
    fi
done
# Durable run history: two recorded runs round-trip through
# show / diff / regressions (the generous band only flags a genuine
# catastrophe, not machine noise).
target/release/paracrash fuzz --history-dir "$tmp/hist" > /dev/null 2>&1
target/release/paracrash fuzz --history-dir "$tmp/hist" > /dev/null 2>&1
runs=$(target/release/paracrash history show --history-dir "$tmp/hist" \
    | grep -c "fuzz")
if [ "$runs" -ne 2 ]; then
    echo "FAIL: history show lists $runs run(s), expected 2"
    exit 1
fi
target/release/paracrash history diff --history-dir "$tmp/hist" --band 4
target/release/paracrash history regressions --history-dir "$tmp/hist" --band 4
# Committed profiling benchmarks re-validate.
target/release/prof-check --bench BENCH_profiling.json
# The dashboard folds the profile in: flame + alloc sections render
# and the HTML lint still passes (gate 12's stream + telemetry
# snapshot are re-used).
target/release/paracrash report --events "$tmp/events-par.jsonl" \
    --telemetry "$tmp/report-telemetry.json" \
    --profile "$tmp/prof/fuzz.folded" \
    --out "$tmp/report-prof.html"
target/release/events-check --html "$tmp/report-prof.html"
for metric in "flame" "flame-table" "alloc-table"; do
    if ! grep -q "data-metric=\"$metric\"" "$tmp/report-prof.html"; then
        echo "FAIL: dashboard missing $metric section"
        exit 1
    fi
done

echo "verify: OK"
