//! Validates a telemetry file emitted by `paracrash --telemetry-out`
//! (verify gate 5): the file must re-parse with the vendored
//! `h5sim::json` reader and carry the documented shape.
//!
//! ```sh
//! telemetry-check trace.json          # plain or Chrome format, sniffed
//! ```
//!
//! Chrome trace-event files (`--telemetry-format chrome`) are checked
//! for the Perfetto-required event fields and a nondecreasing `ts`
//! order; plain files for the `spans`/`counters`/`ops` document keys.
//! Both dialects must carry a `schema_version` this tool understands —
//! an unknown or missing version fails, so downstream consumers can
//! trust that a passing file matches the documented shape.
//! Exits 0 when valid, 1 with a diagnostic otherwise.

use h5sim::json::Json;
use pc_rt::obs::stream::SCHEMA_VERSION;

fn fail(msg: &str) -> ! {
    // Deliberately eprintln, not pc_error!: the verdict is this tool's
    // user-facing output and must print regardless of PC_LOG.
    eprintln!("telemetry-check: FAIL: {msg}");
    std::process::exit(1);
}

/// Both telemetry dialects must declare the schema version this tool
/// was built against; anything else is rejected rather than guessed at.
fn check_schema(doc: &Json) {
    match doc.get("schema_version").and_then(Json::as_int) {
        Some(v) if v == SCHEMA_VERSION => {}
        Some(v) => fail(&format!(
            "unknown schema_version {v} (this tool understands {SCHEMA_VERSION})"
        )),
        None => fail("missing schema_version"),
    }
}

/// Check one Chrome trace event object for the Perfetto-required fields
/// and return its `ts` for the monotonicity check.
fn check_event(ev: &Json, idx: usize) -> u64 {
    let name = ev.get("name").and_then(Json::as_str);
    if name.is_none_or(str::is_empty) {
        fail(&format!("traceEvents[{idx}] has no name"));
    }
    if ev.get("ph").and_then(Json::as_str) != Some("X") {
        fail(&format!(
            "traceEvents[{idx}] is not a complete (ph=X) event"
        ));
    }
    if ev.get("pid").and_then(Json::as_int).is_none() {
        fail(&format!("traceEvents[{idx}] has no pid"));
    }
    if ev.get("tid").and_then(Json::as_int).is_none() {
        fail(&format!("traceEvents[{idx}] has no tid"));
    }
    if ev.get("dur").and_then(Json::as_int).is_none() {
        fail(&format!("traceEvents[{idx}] has no dur"));
    }
    match ev.get("ts").and_then(Json::as_int) {
        Some(ts) => ts,
        None => fail(&format!("traceEvents[{idx}] has no ts")),
    }
}

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: telemetry-check <telemetry.json>");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let doc = Json::parse(&text).unwrap_or_else(|e| fail(&format!("{path} is not JSON: {e}")));
    check_schema(&doc);

    if let Some(events) = doc.get("traceEvents") {
        // Chrome trace-event format.
        let Some(events) = events.as_arr() else {
            fail("traceEvents is not an array");
        };
        if events.is_empty() {
            fail("traceEvents is empty — no spans were recorded");
        }
        let mut prev_ts = 0u64;
        for (idx, ev) in events.iter().enumerate() {
            let ts = check_event(ev, idx);
            if ts < prev_ts {
                fail(&format!(
                    "traceEvents[{idx}] ts {ts} goes backwards (prev {prev_ts})"
                ));
            }
            prev_ts = ts;
        }
        if doc.get("otherData").is_none() {
            fail("missing otherData (counters/gauges/histograms)");
        }
        println!(
            "telemetry-check: OK — {path}: chrome trace, {} events, ts monotonic",
            events.len()
        );
    } else {
        // Plain `paracrash::telemetry::telemetry_json` format.
        let spans = doc
            .get("spans")
            .and_then(Json::as_arr)
            .unwrap_or_else(|| fail("missing spans array"));
        for key in ["counters", "gauges", "histograms", "dropped_spans", "ops"] {
            if doc.get(key).is_none() {
                fail(&format!("missing {key}"));
            }
        }
        for (idx, span) in spans.iter().enumerate() {
            for key in ["name", "cat", "tid", "depth", "start_ns", "dur_ns"] {
                if span.get(key).is_none() {
                    fail(&format!("spans[{idx}] has no {key}"));
                }
            }
        }
        println!(
            "telemetry-check: OK — {path}: plain telemetry, {} spans",
            spans.len()
        );
    }
}
