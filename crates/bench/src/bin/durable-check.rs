//! verify.sh gate 13 helper: seeded fuzz of [`pc_rt::durable`]'s
//! torn-tail recovery.
//!
//! Each case writes a fresh record log with random records, then mauls
//! the file the way a crash can — truncate at an arbitrary byte, or
//! corrupt a byte somewhere after the header — and asserts the
//! recovery contract:
//!
//! * reopening recovers **exactly** the committed prefix: every record
//!   wholly before the damage, byte-for-byte, and nothing at or after
//!   it;
//! * the reopened log is appendable, and a further reopen sees the
//!   recovered prefix plus the new record.
//!
//! Usage: `durable-check [seed] [cases]` (defaults 0xD15C, 64).
//! Exits non-zero with a one-line diagnostic on the first violation.

use pc_rt::durable::{RecordLog, MAGIC, RECORD_HEADER};
use pc_rt::rng::Rng;
use std::path::PathBuf;

fn fail(msg: String) -> ! {
    eprintln!("durable-check: FAIL: {msg}");
    std::process::exit(1);
}

fn scratch(case: u64) -> PathBuf {
    std::env::temp_dir().join(format!("pc-durable-check-{}-{case}", std::process::id()))
}

fn run_case(seed: u64, case: u64) {
    let mut rng = Rng::new(seed ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    let dir = scratch(case);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| fail(format!("mkdir {dir:?}: {e}")));
    let path = dir.join("fuzz.log");

    // Write 1..=12 random records and remember each record's payload
    // and the file offset one past its on-disk end.
    let (mut log, initial) = RecordLog::open(&path).unwrap_or_else(|e| fail(format!("open: {e}")));
    if !initial.is_empty() {
        fail("fresh log reported records".into());
    }
    let n = 1 + rng.gen_range(0u64..12) as usize;
    let mut payloads: Vec<Vec<u8>> = Vec::new();
    let mut ends: Vec<u64> = Vec::new();
    let mut offset = MAGIC.len() as u64;
    for _ in 0..n {
        let len = rng.gen_range(0u64..200) as usize;
        let payload: Vec<u8> = (0..len).map(|_| rng.next_u32() as u8).collect();
        log.append(&payload)
            .unwrap_or_else(|e| fail(format!("append: {e}")));
        offset += (RECORD_HEADER + len) as u64;
        payloads.push(payload);
        ends.push(offset);
    }
    drop(log);
    let file_len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    if file_len != offset {
        fail(format!("file is {file_len} bytes, expected {offset}"));
    }

    // Maul the file: truncate anywhere, or flip one byte after the
    // header (the header itself is covered by the refuse-foreign-file
    // contract, not torn-tail recovery).
    let truncate = rng.next_u32() % 2 == 0;
    let damage_at = if truncate {
        let at = rng.gen_range(MAGIC.len() as u64..=file_len);
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(at)
            .unwrap_or_else(|e| fail(format!("truncate: {e}")));
        at
    } else {
        let at = rng.gen_range(MAGIC.len() as u64..file_len);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[at as usize] ^= 1 << (rng.next_u32() % 8);
        std::fs::write(&path, &bytes).unwrap();
        at
    };
    // Oracle: exactly the records wholly before the damage survive —
    // for both damage modes. A truncation at a record boundary keeps
    // that record; a byte flip at a boundary damages the *next* one
    // (the flipped byte is the next record's first header byte).
    let survivors = ends.iter().filter(|&&e| e <= damage_at).count();

    let (mut log, recovered) =
        RecordLog::open(&path).unwrap_or_else(|e| fail(format!("reopen after damage: {e}")));
    if recovered.len() != survivors {
        fail(format!(
            "case {case}: recovered {} records, expected {survivors} \
             ({n} written, {} at {damage_at} of {file_len})",
            recovered.len(),
            if truncate { "truncated" } else { "bit flipped" },
        ));
    }
    for (i, (got, want)) in recovered.iter().zip(&payloads).enumerate() {
        if got != want {
            fail(format!("case {case}: record {i} corrupted after recovery"));
        }
    }

    // The recovered log must stay appendable, and the append must land
    // cleanly after the recovered prefix.
    log.append(b"post-recovery")
        .unwrap_or_else(|e| fail(format!("append after recovery: {e}")));
    drop(log);
    let (_, after) = RecordLog::open(&path).unwrap_or_else(|e| fail(format!("final open: {e}")));
    if after.len() != survivors + 1 || after.last().map(Vec::as_slice) != Some(b"post-recovery") {
        fail(format!("case {case}: post-recovery append not readable"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = args
        .first()
        .map(|a| a.parse().unwrap_or_else(|_| fail(format!("bad seed {a}"))))
        .unwrap_or(0xD15C);
    let cases: u64 = args
        .get(1)
        .map(|a| {
            a.parse()
                .unwrap_or_else(|_| fail(format!("bad case count {a}")))
        })
        .unwrap_or(64);
    for case in 0..cases {
        run_case(seed, case);
    }
    println!("durable-check: {cases} torn-tail recovery cases ok (seed {seed:#x})");
}
