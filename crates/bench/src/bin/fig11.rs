//! Regenerate Figure 11: scalability — ParaCrash exploration time for
//! the HDF5 test programs as the number of metadata+storage servers
//! grows from 4 to 32, with the stripe size shrinking proportionally
//! (the paper: 128 KiB at 4 servers down to 16 KiB at 32).
//!
//! The paper's claim: without pruning the time would grow exponentially
//! (the file splits into more chunks → more persisted-combination
//! states); ParaCrash grows roughly linearly. We print both the
//! optimized time and the total crash-state count the brute-force mode
//! would have to reconstruct.
//!
//! Usage: `cargo run --release -p pc-bench --bin fig11 [--paper]`

use paracrash::ExploreMode;
use pc_bench::{params_from_args, run_with_mode};
use workloads::{FsKind, Program};

fn main() {
    let base = params_from_args();
    let programs = [
        Program::H5Create,
        Program::H5Delete,
        Program::H5Rename,
        Program::H5Resize,
    ];
    let systems = [FsKind::BeeGfs, FsKind::GlusterFs, FsKind::OrangeFs];
    let server_counts = [4u32, 6, 8, 16, 32];

    println!(
        "{:<12} {:<20} {:>8} {:>10} {:>12} {:>12}",
        "fs", "program", "servers", "stripe", "optim.(s)", "states"
    );
    for fs in systems {
        for program in programs {
            for &n in &server_counts {
                // Stripe shrinks as servers grow, as in the paper.
                let stripe = (base.stripe * 4 / u64::from(n)).max(256);
                let params = base
                    .clone()
                    .with_servers(n / 2, n - n / 2)
                    .with_stripe(stripe);
                let outcome = run_with_mode(program, fs, &params, ExploreMode::Optimized);
                println!(
                    "{:<12} {:<20} {:>8} {:>10} {:>12.1} {:>12}",
                    fs.name(),
                    program.name(),
                    n,
                    stripe,
                    outcome.stats.sim_seconds,
                    outcome.stats.states_total,
                );
            }
        }
    }
    println!(
        "\nexpected shape (paper): execution time grows roughly linearly with the\n\
         server count under ParaCrash's pruning; the raw crash-state count (which\n\
         brute force would reconstruct) grows much faster."
    );
}
