//! Asserts the flight recorder's *disabled* overhead budget (verify
//! gate 12): when no event sink is configured, every `stream::emit`
//! site must reduce to one relaxed atomic load, so an instrumented
//! check run may not be measurably slower than one with the stream
//! compiled out.
//!
//! Same computed-bound scheme as `telemetry-overhead` (there is no
//! uninstrumented build to diff against):
//!
//! 1. measure the per-call cost `c` of a disabled `emit` over ~1M
//!    iterations;
//! 2. measure the median wall time `t_off` of a reference check cell
//!    with the stream off;
//! 3. count the events `K` the same cell publishes with the stream
//!    *on* (the `published()` sequence delta);
//! 4. assert `K * c / t_off < 3%`.
//!
//! Exits 0 when the bound holds, 1 with a diagnostic when it does not.

use paracrash::{check_stack, CheckConfig};
use pc_rt::obs::stream;
use std::hint::black_box;
use std::time::Instant;
use workloads::{FsKind, Params, Program};

/// Maximum tolerated disabled-stream share of the cell runtime.
const BUDGET: f64 = 0.03;

fn main() {
    // (1) per-call disabled cost. The stream was never enabled in this
    // process, so `emit` must bail on the relaxed load before touching
    // name/detail formatting or the ring.
    const CALLS: u64 = 1_000_000;
    let t = Instant::now();
    for i in 0..CALLS {
        stream::emit(
            stream::EventKind::Counter,
            black_box("overhead.ctr"),
            black_box(i & 1),
            "",
        );
    }
    let per_op_ns = t.elapsed().as_nanos() as f64 / CALLS as f64;
    assert_eq!(stream::published(), 0, "disabled emit must publish nothing");

    // Shared workload: one full check cell, the unit the fuzz driver
    // instruments.
    let params = Params::quick();
    let cfg = CheckConfig::paper_default();
    let run_cell = || {
        let stack = Program::Arvr.run(FsKind::BeeGfs, &params);
        let factory = FsKind::BeeGfs.factory(&params);
        black_box(check_stack(&stack, &factory, &cfg).bugs.len())
    };

    // (2) median off-time over several runs (first run also warms up).
    let mut runs: Vec<u64> = (0..9)
        .map(|_| {
            let t = Instant::now();
            run_cell();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    runs.sort_unstable();
    let t_off_ns = runs[runs.len() / 2] as f64;

    // (3) events the same cell publishes with the stream on. Ring only,
    // no sink: we want the publication count, not file I/O.
    stream::set_enabled(true);
    pc_rt::obs::set_enabled(true);
    let before = stream::published();
    run_cell();
    let ops = stream::published() - before;
    stream::set_enabled(false);
    pc_rt::obs::set_enabled(false);
    assert!(ops > 0, "an enabled cell must publish events");

    // (4) the bound.
    let overhead = ops as f64 * per_op_ns / t_off_ns;
    println!(
        "stream-overhead: {ops} events x {per_op_ns:.2} ns disabled cost \
         / {:.2} ms cell = {:.4}% (budget {:.0}%)",
        t_off_ns / 1e6,
        overhead * 100.0,
        BUDGET * 100.0,
    );
    if overhead >= BUDGET {
        pc_rt::pc_error!(
            "disabled stream overhead {:.3}% exceeds the {:.0}% budget",
            overhead * 100.0,
            BUDGET * 100.0
        );
        std::process::exit(1);
    }
}
