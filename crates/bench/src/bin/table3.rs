//! Regenerate Table 3: the list of crash-consistency bugs discovered by
//! ParaCrash across the full `program × file-system` matrix.
//!
//! Usage: `cargo run --release -p pc-bench --bin table3 [--paper]`
//!
//! The output prints, per (program, FS), the unique bugs with their
//! layer attribution, violated model, and Table 1 classification —
//! followed by a summary comparing against the paper's 15 ground-truth
//! rows (`workloads::ground_truth`).

use paracrash::LayerVerdict;
use pc_bench::{default_config, params_from_args, render_bug, run_program, run_program_swept};
use std::collections::BTreeSet;
use workloads::ground_truth::BugLayer;
use workloads::{table3, FsKind, Params, Program};

fn main() {
    let params = params_from_args();
    let cfg = default_config();
    println!("ParaCrash reproduction — Table 3 regeneration");
    println!(
        "config: stripe={} dims={} servers={}+{} clients={} k={} mode={}\n",
        params.stripe,
        params.dims,
        params.meta,
        params.storage,
        params.clients,
        cfg.k,
        cfg.mode.as_str()
    );

    let mut found: Vec<(Program, FsKind, String, LayerVerdict)> = Vec::new();
    for program in Program::paper_eleven() {
        for fs in FsKind::all() {
            // The default parameters run under the §6.2 dimension sweep;
            // the bug-14 sensitivity additionally needs the B-tree-split
            // dimension for H5-resize (run unswept — it exists solely to
            // cross the split threshold).
            let mut variants: Vec<(Params, bool)> = vec![(params.clone(), true)];
            if matches!(program, Program::H5Resize) {
                variants.push((params.clone().with_dims(params.split_dims()), false));
            }
            let mut printed_header = false;
            let mut seen = BTreeSet::new();
            for (v, sweep) in variants {
                let cell = if sweep {
                    run_program_swept(program, fs, &v, &cfg)
                } else {
                    run_program(program, fs, &v, &cfg)
                };
                for bug in &cell.outcome.bugs {
                    if !seen.insert((bug.signature.clone(), bug.layer)) {
                        continue;
                    }
                    if !printed_header {
                        println!("== {} on {} ==", program.name(), fs.name());
                        printed_header = true;
                    }
                    println!("   {}", render_bug(bug));
                    found.push((program, fs, bug.signature.to_string(), bug.layer));
                }
            }
        }
    }

    println!("\n---- summary vs. the paper ----");
    println!(
        "total unique (program, fs, signature) findings: {}",
        found.len()
    );
    let pfs_found = found
        .iter()
        .filter(|(_, _, _, l)| *l == LayerVerdict::PfsBug)
        .count();
    let iolib_found = found.len() - pfs_found;
    println!("attributed to the PFS layer:        {pfs_found}");
    println!("attributed to the I/O library layer: {iolib_found}");

    println!("\npaper ground truth coverage:");
    for bug in table3() {
        let hit = bug.programs.iter().any(|p| {
            found.iter().any(|(fp, ffs, _, layer)| {
                fp.name() == *p
                    && covered_fs(bug.file_systems, ffs)
                    && layer_matches(bug.layer, *layer)
            })
        });
        println!(
            "  bug {:>2} ({:<18} {:<30}) {}",
            bug.no,
            bug.programs.join("/"),
            bug.file_systems.join(","),
            if hit { "REPRODUCED" } else { "missing" }
        );
    }
}

fn covered_fs(paper_fs: &[&str], found: &FsKind) -> bool {
    paper_fs.contains(&found.name()) || paper_fs == ["HDF5"]
}

fn layer_matches(paper: BugLayer, found: LayerVerdict) -> bool {
    match paper {
        BugLayer::Pfs | BugLayer::IoLibPfsRooted => found == LayerVerdict::PfsBug,
        BugLayer::IoLib => found == LayerVerdict::IoLibBug,
    }
}
