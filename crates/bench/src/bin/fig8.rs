//! Regenerate Figure 8: number of inconsistent crash states (unique root
//! causes after §5.2 aggregation) per test program per file system, plus
//! the line series — HDF5-level inconsistencies for which the PFS state
//! was correct.
//!
//! Usage: `cargo run --release -p pc-bench --bin fig8 [--paper]`

use pc_bench::{default_config, params_from_args, run_program_swept};
use workloads::{FsKind, Program};

fn main() {
    let params = params_from_args();
    let cfg = default_config();
    let programs = Program::paper_eleven();
    let systems = FsKind::all();

    println!("Figure 8 — number of inconsistent crash states (unique causes)");
    println!("line series (in parentheses): HDF5 inconsistencies with correct PFS state\n");
    print!("{:<20}", "program");
    for fs in systems {
        print!("{:>12}", fs.name());
    }
    println!();
    for program in programs {
        print!("{:<20}", program.name());
        for fs in systems {
            let cell = run_program_swept(program, fs, &params, &cfg);
            let bars = cell.outcome.bugs.len();
            if program.uses_iolib() {
                let line = cell.outcome.iolib_bugs();
                print!("{:>9}({:>1})", bars, line);
            } else {
                print!("{:>12}", bars);
            }
        }
        println!();
    }
    println!(
        "\nexpected shape (paper): ext4 all-zero for POSIX programs; BeeGFS bars on every\n\
         POSIX program; OrangeFS/GlusterFS on ARVR/WAL subsets; GPFS on ARVR/CR/RC;\n\
         Lustre zero for POSIX; every PFS nonzero for the HDF5/NetCDF programs."
    );
}
