//! Validates a directory of explain bundles emitted by
//! `paracrash --explain-out DIR` (verify gate 7).
//!
//! ```sh
//! explain-check reports/ [MIN_BUNDLES]
//! ```
//!
//! Checks, per bundle stem:
//!
//! * the `.md`, `.dot` and `.json` siblings all exist (equal counts);
//! * the `.json` re-parses with the vendored `h5sim::json` reader and
//!   carries the documented keys, every `violated_edges`/`edges`
//!   endpoint is a declared `nodes` entry, and every `minimal_witness`
//!   op appears among the nodes flagged `minimal`;
//! * the `.dot` is structurally sound: balanced braces, and every edge
//!   endpoint (`eN -> eM`) is declared as a node (`eN [...]`).
//!
//! `MIN_BUNDLES` (default 15 — one per Table 3 bug) guards against a
//! silently empty run. Exits 0 when valid, 1 with a diagnostic.

use h5sim::json::Json;

fn fail(msg: &str) -> ! {
    // Deliberately eprintln, not pc_error!: the verdict is this tool's
    // user-facing output and must print regardless of PC_LOG.
    eprintln!("explain-check: FAIL: {msg}");
    std::process::exit(1);
}

/// `eN` with a purely numeric suffix — the node-id shape `to_dot` emits.
fn is_node_id(s: &str) -> bool {
    s.strip_prefix('e')
        .is_some_and(|d| !d.is_empty() && d.bytes().all(|b| b.is_ascii_digit()))
}

/// Structural lint of one `.dot` file.
fn lint_dot(name: &str, dot: &str) {
    if dot.matches('{').count() != dot.matches('}').count() {
        fail(&format!("{name}: unbalanced braces"));
    }
    if !dot.trim_start().starts_with("digraph") {
        fail(&format!("{name}: not a digraph"));
    }
    for line in dot.lines() {
        let line = line.trim();
        let Some((from, rest)) = line.split_once(" -> ") else {
            continue;
        };
        if !is_node_id(from) {
            continue; // the graph label carries the signature's "->"
        }
        let to = rest.split([' ', ';']).next().unwrap_or("");
        for id in [from, to] {
            if !is_node_id(id) || !dot.contains(&format!("{id} [")) {
                fail(&format!(
                    "{name}: edge endpoint {id} not declared as a node"
                ));
            }
        }
    }
}

/// Shape check of one `.json` bundle.
fn check_json(name: &str, doc: &Json) {
    for key in [
        "signature",
        "layer",
        "violated_model",
        "occurrences",
        "state_index",
        "minimal_witness",
        "violated_edges",
        "frontier",
        "nodes",
        "edges",
        "diff",
        "shrink",
    ] {
        if doc.get(key).is_none() {
            fail(&format!("{name}: missing {key}"));
        }
    }
    let nodes = doc
        .get("nodes")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| fail(&format!("{name}: nodes is not an array")));
    let declared: Vec<u64> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| {
            n.get("event")
                .and_then(Json::as_int)
                .unwrap_or_else(|| fail(&format!("{name}: nodes[{i}] has no event")))
        })
        .collect();
    for section in ["edges", "violated_edges"] {
        let edges = doc
            .get(section)
            .and_then(Json::as_arr)
            .unwrap_or_else(|| fail(&format!("{name}: {section} is not an array")));
        for (i, edge) in edges.iter().enumerate() {
            for end in ["from", "to"] {
                let ev = edge
                    .get(end)
                    .and_then(Json::as_int)
                    .unwrap_or_else(|| fail(&format!("{name}: {section}[{i}] has no {end}")));
                if !declared.contains(&ev) {
                    fail(&format!(
                        "{name}: {section}[{i}].{end} = {ev} is not a declared node"
                    ));
                }
            }
        }
    }
    // Every witness op must be present among the minimal-flagged nodes.
    let minimal: Vec<u64> = nodes
        .iter()
        .filter(|n| matches!(n.get("minimal"), Some(Json::Bool(true))))
        .filter_map(|n| n.get("event").and_then(Json::as_int))
        .collect();
    let witness = doc.get("minimal_witness").and_then(Json::as_arr).unwrap();
    for (i, op) in witness.iter().enumerate() {
        let ev = op
            .get("event")
            .and_then(Json::as_int)
            .unwrap_or_else(|| fail(&format!("{name}: minimal_witness[{i}] has no event")));
        if !minimal.contains(&ev) {
            fail(&format!(
                "{name}: minimal_witness[{i}] (event {ev}) not flagged minimal in nodes"
            ));
        }
    }
    let shrink = doc.get("shrink").unwrap();
    let orig = shrink.get("original_ops").and_then(Json::as_int);
    let min = shrink.get("minimal_ops").and_then(Json::as_int);
    if min > orig {
        fail(&format!(
            "{name}: minimal_ops {min:?} > original_ops {orig:?}"
        ));
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(dir) = args.next() else {
        eprintln!("usage: explain-check <dir> [min-bundles]");
        std::process::exit(2);
    };
    let min_bundles: usize = args
        .next()
        .map(|s| s.parse().unwrap_or_else(|_| fail("bad min-bundles")))
        .unwrap_or(15);

    let mut stems: Vec<String> = Vec::new();
    let entries =
        std::fs::read_dir(&dir).unwrap_or_else(|e| fail(&format!("cannot read {dir}: {e}")));
    let (mut md, mut dot, mut json) = (0usize, 0usize, 0usize);
    for entry in entries {
        let path = entry
            .unwrap_or_else(|e| fail(&format!("{dir}: {e}")))
            .path();
        let (Some(stem), Some(ext)) = (
            path.file_stem().and_then(|s| s.to_str()),
            path.extension().and_then(|s| s.to_str()),
        ) else {
            continue;
        };
        match ext {
            "md" => md += 1,
            "dot" => dot += 1,
            "json" => {
                json += 1;
                stems.push(stem.to_string());
            }
            _ => {}
        }
    }
    if md != dot || dot != json {
        fail(&format!(
            "bundle siblings out of step: {md} .md, {dot} .dot, {json} .json"
        ));
    }
    if json < min_bundles {
        fail(&format!(
            "only {json} bundles found, expected >= {min_bundles}"
        ));
    }
    stems.sort_unstable();

    for stem in &stems {
        let read = |ext: &str| -> String {
            let path = format!("{dir}/{stem}.{ext}");
            std::fs::read_to_string(&path)
                .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")))
        };
        let text = read("json");
        let doc =
            Json::parse(&text).unwrap_or_else(|e| fail(&format!("{stem}.json is not JSON: {e}")));
        check_json(&format!("{stem}.json"), &doc);
        lint_dot(&format!("{stem}.dot"), &read("dot"));
        let markdown = read("md");
        if !markdown.starts_with("# Bug: ") {
            fail(&format!("{stem}.md does not open with the bug heading"));
        }
    }
    println!(
        "explain-check: OK — {dir}: {} bundles, JSON re-parsed, DOT lint clean",
        stems.len()
    );
}
