//! Asserts the self-profiling plane's *disabled* overhead budget
//! (verify gate 14): with no `PC_PROFILE` and no `--profile-out`, every
//! profiling site must reduce to one relaxed atomic load — the span
//! open/close hooks check the planes mask once, and the counting
//! `#[global_allocator]` checks it once per allocation before falling
//! straight through to `System`.
//!
//! As with `telemetry-overhead`, there is no profiler-free build to
//! diff against, so the bound is computed:
//!
//! 1. measure the per-call cost `c` of a disabled plane check over ~2M
//!    iterations;
//! 2. measure the median wall time `t_off` of the snapshot-engine
//!    microbench (ARVR on BeeGFS) with every plane off;
//! 3. count the sites the same workload would check with the planes
//!    *on*: span opens (`TelemetrySnapshot::ops` + dropped spans) plus
//!    allocations (`alloc_total.count` from the counting allocator);
//! 4. assert `(spans + allocs) * c / t_off < 3%`.
//!
//! Exits 0 when the bound holds, 1 with a diagnostic when it does not.

use paracrash::{crash_states, prepare_states, PersistAnalysis};
use pc_rt::obs::prof;
use std::hint::black_box;
use std::time::Instant;
use tracer::CausalityGraph;
use workloads::{FsKind, Params, Program};

/// Maximum tolerated disabled-profiling share of the workload runtime.
const BUDGET: f64 = 0.03;

fn main() {
    pc_rt::obs::set_enabled(false);

    // (1) per-call disabled cost: both plane checks are one relaxed
    // load of the same atomic, exactly what the span hooks and the
    // allocator fast path execute.
    const CALLS: u64 = 1_000_000;
    let t = Instant::now();
    for _ in 0..CALLS {
        black_box(prof::sampling_enabled());
        black_box(prof::alloc_tracking_enabled());
    }
    let per_check_ns = t.elapsed().as_nanos() as f64 / (CALLS * 2) as f64;

    // Shared workload: the snapshot-engine materialization microbench.
    let params = Params::quick();
    let stack = Program::Arvr.run(FsKind::BeeGfs, &params);
    let graph = CausalityGraph::build(&stack.rec);
    let pa = PersistAnalysis::build(&stack.rec, &graph, |s| stack.journal_of(s));
    let states = crash_states(&stack.rec, &graph, &pa, 1, None);
    assert!(!states.is_empty(), "no crash states to materialize");

    // (2) median off-time over several runs (first run also warms up).
    let mut runs: Vec<u64> = (0..9)
        .map(|_| {
            let t = Instant::now();
            black_box(prepare_states(&stack.rec, stack.pfs.baseline(), &states).prepared);
            t.elapsed().as_nanos() as u64
        })
        .collect();
    runs.sort_unstable();
    let t_off_ns = runs[runs.len() / 2] as f64;

    // (3) site counts of the same workload with the planes on. Enabling
    // telemetry also enables allocation accounting, so one instrumented
    // run yields both counts.
    pc_rt::obs::reset();
    pc_rt::obs::set_enabled(true);
    black_box(prepare_states(&stack.rec, stack.pfs.baseline(), &states).prepared);
    let snap = pc_rt::obs::snapshot();
    pc_rt::obs::set_enabled(false);
    pc_rt::obs::reset();
    let span_sites = snap.ops + snap.dropped_spans;
    let alloc_sites = snap.alloc_total.count;

    // (4) the bound.
    let sites = span_sites + alloc_sites;
    let overhead = sites as f64 * per_check_ns / t_off_ns;
    println!(
        "prof-overhead: ({span_sites} span + {alloc_sites} alloc sites) x \
         {per_check_ns:.2} ns disabled check / {:.2} ms workload = {:.4}% (budget {:.0}%)",
        t_off_ns / 1e6,
        overhead * 100.0,
        BUDGET * 100.0,
    );
    if overhead >= BUDGET {
        pc_rt::pc_error!(
            "disabled profiling overhead {:.3}% exceeds the {:.0}% budget",
            overhead * 100.0,
            BUDGET * 100.0
        );
        std::process::exit(1);
    }
}
