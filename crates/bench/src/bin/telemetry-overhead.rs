//! Asserts the telemetry layer's *disabled* overhead budget (§ verify
//! gate 5): when `PC_TRACE` is unset, every instrumentation site must
//! reduce to one relaxed atomic load, so a fully instrumented check run
//! may not be measurably slower than an uninstrumented build.
//!
//! We cannot diff against an uninstrumented build (there isn't one), so
//! the bound is computed instead of measured directly:
//!
//! 1. measure the per-call cost `c` of a disabled span + counter site
//!    over ~1M iterations;
//! 2. measure the median wall time `t_off` of the snapshot-engine
//!    microbench (ARVR on BeeGFS, the verify gate's workload) with
//!    telemetry off;
//! 3. count the telemetry operations `K` the same workload records when
//!    telemetry is *on* (`TelemetrySnapshot::ops`);
//! 4. assert `K * c / t_off < 3%` — the worst-case share of the
//!    workload's runtime spent in disabled telemetry checks.
//!
//! Exits 0 when the bound holds, 1 with a diagnostic when it does not.

use paracrash::{crash_states, prepare_states, PersistAnalysis};
use std::hint::black_box;
use std::time::Instant;
use tracer::CausalityGraph;
use workloads::{FsKind, Params, Program};

/// Maximum tolerated disabled-telemetry share of the workload runtime.
const BUDGET: f64 = 0.03;

fn main() {
    pc_rt::obs::set_enabled(false);

    // (1) per-call disabled cost, amortized over span + counter pairs.
    const PAIRS: u64 = 500_000;
    let t = Instant::now();
    for i in 0..PAIRS {
        let _s = black_box(pc_rt::obs::span("overhead.span"));
        pc_rt::obs::count("overhead.ctr", black_box(i & 1));
    }
    let per_op_ns = t.elapsed().as_nanos() as f64 / (PAIRS * 2) as f64;

    // Shared workload: the snapshot-engine materialization microbench.
    let params = Params::quick();
    let stack = Program::Arvr.run(FsKind::BeeGfs, &params);
    let graph = CausalityGraph::build(&stack.rec);
    let pa = PersistAnalysis::build(&stack.rec, &graph, |s| stack.journal_of(s));
    let states = crash_states(&stack.rec, &graph, &pa, 1, None);
    assert!(!states.is_empty(), "no crash states to materialize");

    // (2) median off-time over several runs (first run also warms up).
    let mut runs: Vec<u64> = (0..9)
        .map(|_| {
            let t = Instant::now();
            black_box(prepare_states(&stack.rec, stack.pfs.baseline(), &states).prepared);
            t.elapsed().as_nanos() as u64
        })
        .collect();
    runs.sort_unstable();
    let t_off_ns = runs[runs.len() / 2] as f64;

    // (3) operation count of the same workload with telemetry on.
    pc_rt::obs::reset();
    pc_rt::obs::set_enabled(true);
    black_box(prepare_states(&stack.rec, stack.pfs.baseline(), &states).prepared);
    let snap = pc_rt::obs::snapshot();
    pc_rt::obs::set_enabled(false);
    pc_rt::obs::reset();
    let ops = snap.ops + snap.dropped_spans;

    // (4) the bound.
    let overhead = ops as f64 * per_op_ns / t_off_ns;
    println!(
        "telemetry-overhead: {ops} ops x {per_op_ns:.2} ns disabled cost \
         / {:.2} ms workload = {:.4}% (budget {:.0}%)",
        t_off_ns / 1e6,
        overhead * 100.0,
        BUDGET * 100.0,
    );
    if overhead >= BUDGET {
        pc_rt::pc_error!(
            "disabled telemetry overhead {:.3}% exceeds the {:.0}% budget",
            overhead * 100.0,
            BUDGET * 100.0
        );
        std::process::exit(1);
    }
}
