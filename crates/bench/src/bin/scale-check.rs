//! Validates the committed `BENCH_scale.json` against the scale
//! suite's performance invariants (verify gate 11):
//!
//! * the batched verdict engine sustains at least 2× the pre-refactor
//!   oracle's states/sec at 16 servers;
//! * per-check cost grows sub-linearly with the server count — the
//!   256-server point stays under 2× the 64-server point while the
//!   cluster grows 4×.
//!
//! With `--live`, additionally re-runs the 16-server batched engine in
//! process and requires the measured throughput to stay within a
//! generous 2× band of the committed number (catching engine
//! regressions without being flaky on loaded CI machines).
//!
//! ```sh
//! scale-check BENCH_scale.json          # static invariants only
//! scale-check BENCH_scale.json --live   # + live regression band
//! ```
//!
//! Exits 0 when valid, 1 with a diagnostic otherwise.

use h5sim::json::Json;
use paracrash::{crash_states, prepare_states, PersistAnalysis};
use pfs::{recover_and_mount, PfsView};
use tracer::CausalityGraph;
use workloads::{FsKind, Params, Program};

fn fail(msg: &str) -> ! {
    // Deliberately eprintln, not pc_error!: the verdict is this tool's
    // user-facing output and must print regardless of PC_LOG.
    eprintln!("scale-check: FAIL: {msg}");
    std::process::exit(1);
}

/// Fetch a numeric field from the sample named `name`.
fn metric(doc: &Json, name: &str, field: &str) -> f64 {
    let Some(samples) = doc.as_arr() else {
        fail("document is not an array of samples");
    };
    let Some(sample) = samples
        .iter()
        .find(|s| s.get("name").and_then(Json::as_str) == Some(name))
    else {
        fail(&format!("no sample named {name}"));
    };
    match sample.get(field).and_then(Json::as_int) {
        Some(v) => v as f64,
        None => fail(&format!("{name} has no {field}")),
    }
}

/// One live pass of the batched engine over the same 16-server cell the
/// suite benches, returning measured states/sec (best of `reps` runs —
/// min is the right statistic against CI noise).
fn live_states_per_sec(reps: u32) -> f64 {
    let base = Params::quick();
    let params = base.with_servers(8, 8).with_stripe(256);
    let stack = Program::Arvr.run(FsKind::BeeGfs, &params);
    let graph = CausalityGraph::build(&stack.rec);
    let pa = PersistAnalysis::build(&stack.rec, &graph, |s| stack.journal_of(s));
    let states = crash_states(&stack.rec, &graph, &pa, 1, None);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = std::time::Instant::now();
        let plan = prepare_states(&stack.rec, stack.pfs.baseline(), &states);
        let mut views: Vec<Option<PfsView>> = (0..states.len()).map(|_| None).collect();
        let mut digest = 0u64;
        for &rep in &plan.rep {
            if views[rep].is_none() {
                let mut st = plan.prepared[rep].fork();
                let (_, view) = recover_and_mount(stack.pfs.as_ref(), &mut st);
                views[rep] = Some(view);
            }
            digest ^= views[rep].as_ref().expect("recovered above").digest();
        }
        std::hint::black_box(digest);
        best = best.min(t.elapsed().as_secs_f64());
    }
    states.len() as f64 / best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (path, live) = match args.as_slice() {
        [p] => (p.clone(), false),
        [p, flag] if flag == "--live" => (p.clone(), true),
        _ => {
            eprintln!("usage: scale-check <BENCH_scale.json> [--live]");
            std::process::exit(2);
        }
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let doc = Json::parse(&text).unwrap_or_else(|e| fail(&format!("{path} is not JSON: {e}")));

    let batched = metric(&doc, "scale/engine-batched/16-servers", "states_per_sec");
    let oracle = metric(&doc, "scale/engine-oracle/16-servers", "states_per_sec");
    if batched < 2.0 * oracle {
        fail(&format!(
            "batched engine is only {:.2}x the oracle ({batched:.0} vs {oracle:.0} states/sec; need >= 2x)",
            batched / oracle
        ));
    }

    let pc64 = metric(&doc, "scale/fig11/64-servers", "per_check_ns");
    let pc256 = metric(&doc, "scale/fig11/256-servers", "per_check_ns");
    if pc256 >= 2.0 * pc64 {
        fail(&format!(
            "per-check cost doubles 64->256 servers ({pc64:.0} -> {pc256:.0} ns; need sub-linear growth)"
        ));
    }

    let mut live_note = String::new();
    if live {
        let measured = live_states_per_sec(5);
        if measured < batched / 2.0 {
            fail(&format!(
                "live batched throughput {measured:.0} states/sec fell below half the committed {batched:.0}"
            ));
        }
        live_note = format!(", live {measured:.0} states/sec within band");
    }

    println!(
        "scale-check: OK — batched {:.2}x oracle, per-check growth 64->256 {:.2}x{live_note}",
        batched / oracle,
        pc256 / pc64,
    );
}
