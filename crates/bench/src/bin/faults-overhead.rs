//! Asserts the fault plane's *disabled* overhead budget (verify gate 6):
//! every PFS model now routes its RPC traffic through an inactive
//! [`simnet::FaultPlane`], so fault-free runs pay one `plane.active()`
//! check per message. That price must stay under 3% of a traced
//! workload run.
//!
//! We cannot diff against a plane-free build (there isn't one), so the
//! bound is computed:
//!
//! 1. measure per-message cost of a round trip through `RpcNet::new`
//!    (fault-free) and through `RpcNet::faulty` with a disabled plane;
//!    the difference `d` is the per-message plane cost;
//! 2. count the RPC messages `M` the verify workload (ARVR on BeeGFS,
//!    quick scale) records;
//! 3. measure the median wall time `t` of that traced run;
//! 4. assert `M * d / t < 3%`.
//!
//! Exits 0 when the bound holds, 1 with a diagnostic when it does not.

use simnet::{FaultPlane, RpcNet};
use std::hint::black_box;
use std::time::Instant;
use tracer::{Payload, Process, Recorder};
use workloads::{FsKind, Params, Program};

/// Maximum tolerated disabled-plane share of the traced-run time.
const BUDGET: f64 = 0.03;

fn main() {
    const MSGS: u32 = 4096;
    const REPS: usize = 21;

    // (1) per-message cost, fault-free vs disabled plane. Both loops
    // are identical apart from the plane wiring.
    let median = |faulty: bool| -> f64 {
        let mut runs: Vec<u64> = (0..REPS)
            .map(|_| {
                let mut rec = Recorder::new();
                let mut plane = FaultPlane::disabled();
                let t = Instant::now();
                let mut net = if faulty {
                    RpcNet::faulty(&mut rec, &mut plane)
                } else {
                    RpcNet::new(&mut rec)
                };
                for i in 0..MSGS {
                    let client = Process::Client(i % 4);
                    let server = Process::Server(i % 2);
                    let (_, recv) = net.request(client, server, "WRITE", None);
                    net.reply(server, client, "OK", Some(recv));
                }
                drop(net);
                black_box(rec.len());
                t.elapsed().as_nanos() as u64
            })
            .collect();
        runs.sort_unstable();
        runs[runs.len() / 2] as f64 / (MSGS as f64 * 2.0)
    };
    let clean_ns = median(false);
    let faulty_ns = median(true);
    let d = (faulty_ns - clean_ns).max(0.0);

    // (2) messages in the verify workload's trace.
    let params = Params::quick();
    let stack = Program::Arvr.run(FsKind::BeeGfs, &params);
    let msgs = stack
        .rec
        .events()
        .iter()
        .filter(|e| matches!(e.payload, Payload::Send { .. }))
        .count();

    // (3) median wall time of the traced run.
    let mut runs: Vec<u64> = (0..9)
        .map(|_| {
            let t = Instant::now();
            black_box(Program::Arvr.run(FsKind::BeeGfs, &params).rec.len());
            t.elapsed().as_nanos() as u64
        })
        .collect();
    runs.sort_unstable();
    let t_run_ns = runs[runs.len() / 2] as f64;

    // (4) the bound.
    let overhead = msgs as f64 * d / t_run_ns;
    println!(
        "faults-overhead: {msgs} msgs x {d:.2} ns plane cost ({clean_ns:.2} -> \
         {faulty_ns:.2} ns/msg) / {:.3} ms run = {:.4}% (budget {:.0}%)",
        t_run_ns / 1e6,
        overhead * 100.0,
        BUDGET * 100.0,
    );
    if overhead >= BUDGET {
        pc_rt::pc_error!(
            "disabled fault-plane overhead {:.3}% exceeds the {:.0}% budget",
            overhead * 100.0,
            BUDGET * 100.0
        );
        std::process::exit(1);
    }
}
