//! Verify gate 14 helper: validate self-profiling artifacts.
//!
//! ```sh
//! prof-check run.folded                    # emitted profile re-parses
//! prof-check --bench BENCH_profiling.json  # committed suite invariants
//! ```
//!
//! The `.folded` mode re-parses an emitted profile with the same parser
//! the dashboard flame view uses and asserts the canonical shape: at
//! least one stack, every count positive, lines unique and sorted (the
//! deterministic render order CI can diff).
//!
//! The `--bench` mode checks the committed `BENCH_profiling.json`
//! pins: both sampler samples measured real throughput, and the
//! allocation samples carry a positive `tracer` per-event allocation
//! baseline (the ROADMAP extreme-scale round-2 pin).

use h5sim::json::Json;
use pc_rt::obs::prof;

fn fail(msg: std::fmt::Arguments<'_>) -> ! {
    pc_rt::pc_error!("{msg}");
    std::process::exit(1);
}

/// Field `key` of the sample named `name`, which must exist and be > 0.
fn positive(doc: &Json, name: &str, key: &str) -> u64 {
    let Some(samples) = doc.as_arr() else {
        fail(format_args!("bench JSON is not an array"));
    };
    let Some(sample) = samples
        .iter()
        .find(|s| s.get("name").and_then(Json::as_str) == Some(name))
    else {
        fail(format_args!("bench JSON has no sample named {name}"));
    };
    let Some(v) = sample.get(key).and_then(Json::as_int) else {
        fail(format_args!("sample {name} has no numeric field {key}"));
    };
    if v == 0 {
        fail(format_args!("sample {name}: {key} must be positive"));
    }
    v
}

fn check_bench(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format_args!("cannot read {path}: {e}")));
    let doc =
        Json::parse(&text).unwrap_or_else(|e| fail(format_args!("bad bench JSON {path}: {e}")));
    let off = positive(&doc, "profiling/sampler-off/16-servers", "states_per_sec");
    let on = positive(&doc, "profiling/sampler-on/16-servers", "states_per_sec");
    for servers in ["16", "64"] {
        let name = format!("profiling/alloc/{servers}-servers");
        positive(&doc, &name, "alloc_bytes");
        positive(&doc, &name, "alloc_peak_bytes");
        positive(&doc, &name, "trace_events");
        positive(&doc, &name, "trace_bytes_per_event");
    }
    println!(
        "prof-check: {path} OK (sampler off {off} / on {on} states/sec, \
         alloc baselines pinned at 16 and 64 servers)"
    );
}

fn check_folded(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format_args!("cannot read {path}: {e}")));
    let rows = prof::parse_folded(&text)
        .unwrap_or_else(|e| fail(format_args!("bad .folded profile {path}: {e}")));
    if rows.is_empty() {
        fail(format_args!("{path}: profile has no stacks"));
    }
    let mut total = 0u64;
    for (stack, count) in &rows {
        if *count == 0 {
            fail(format_args!(
                "{path}: stack {} has count 0",
                stack.join(";")
            ));
        }
        total += count;
    }
    let lines: Vec<&str> = text.lines().collect();
    let mut sorted = lines.clone();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted != lines {
        fail(format_args!(
            "{path}: stacks are not unique and sorted (non-canonical render)"
        ));
    }
    println!(
        "prof-check: {path} OK ({} stacks, {total} samples, canonical order)",
        rows.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [flag, path] if flag == "--bench" => check_bench(path),
        [path] if !path.starts_with('-') => check_folded(path),
        _ => {
            pc_rt::pc_error!("usage: prof-check <file.folded> | prof-check --bench <BENCH.json>");
            std::process::exit(2);
        }
    }
}
