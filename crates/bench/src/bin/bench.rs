//! The wall-clock benchmark driver (replaces `cargo bench`'s criterion
//! targets with a plain binary on the vendored `pc-rt` harness):
//!
//! ```sh
//! cargo run --release -p pc-bench --bin bench                  # all suites
//! cargo run --release -p pc-bench --bin bench -- fig10         # name filter
//! cargo run --release -p pc-bench --bin bench -- --json        # per-group BENCH_*.json
//! cargo run --release -p pc-bench --bin bench -- --json out.json
//! PC_BENCH_TIME_MS=200 PC_THREADS=4 cargo run --release -p pc-bench --bin bench
//! ```
//!
//! Suites: `fig10-explore` / `trace-generation` / `snapshot-engine`
//! (exploration modes and replay engines), `fig11-scalability`
//! (server-count scaling), `scale` (batched-vs-oracle states/sec and
//! the 64/128/256-server Figure 11 extension — the committed
//! `BENCH_scale.json`), `simfs`/`pfs`/`tracer`/`paracrash`/`h5sim`
//! substrate micro-benches, `ablation-victims` / `ablation-journal`,
//! `telemetry`, `faults`, `explain` (witness-shrinking cost with and
//! without prefix-sharing), `fuzz` (generated-workload enumeration
//! and campaign throughput), and `profiling` (sampler-on vs -off
//! engine throughput and per-stage allocation accounting — the
//! committed `BENCH_profiling.json`).
//!
//! Bare `--json` writes one `BENCH_<group>.json` per registration group
//! (`substrate`, `explore`, `scalability`, `ablation`) at the repo root;
//! `--json PATH` writes every sample to one combined file instead. The
//! format is documented in `EXPERIMENTS.md`.

use pc_bench::{bench_samples_json, benches};
use pc_rt::bench::Bench;

/// Registration groups in registration order: group name → suite.
const SUITES: [(&str, fn(&mut Bench)); 10] = [
    ("substrate", benches::substrate::register),
    ("explore", benches::explore::register),
    ("scalability", benches::scalability::register),
    ("scale", benches::scale::register),
    ("ablation", benches::ablation::register),
    ("telemetry", benches::telemetry::register),
    ("faults", benches::faults::register),
    ("explain", benches::explain::register),
    ("fuzz", benches::fuzz::register),
    ("profiling", benches::profiling::register),
];

fn main() {
    // Parse `[FILTER] [--json [PATH]]` ourselves so a `--json` value is
    // never mistaken for the name filter. A bare `--json` (end of args
    // or followed by another flag) selects per-group output.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut filter: Option<String> = None;
    let mut json_combined: Option<String> = None;
    let mut json_per_group = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => match args.get(i + 1) {
                Some(path) if !path.starts_with('-') => {
                    json_combined = Some(path.clone());
                    i += 1;
                }
                _ => json_per_group = true,
            },
            flag if flag.starts_with('-') => {
                pc_rt::pc_error!("unknown flag {flag} (usage: bench [FILTER] [--json [PATH]])");
                std::process::exit(2);
            }
            name => {
                if filter.is_some() {
                    pc_rt::pc_error!("more than one filter given ({name})");
                    std::process::exit(2);
                }
                filter = Some(name.to_string());
            }
        }
        i += 1;
    }

    let mut cfg = pc_rt::bench::Config::default();
    cfg.filter = filter;
    let mut b = Bench::new(cfg);
    // Remember where each group's samples start so per-group output can
    // slice the one shared sample list.
    let mut bounds = Vec::with_capacity(SUITES.len());
    for (name, register) in SUITES {
        let start = b.samples().len();
        register(&mut b);
        bounds.push((name, start, b.samples().len()));
    }

    print!("{}", b.report());
    if b.samples().is_empty() {
        pc_rt::pc_error!("no benchmark matched the filter");
        std::process::exit(1);
    }

    if let Some(path) = json_combined {
        let doc = bench_samples_json(b.samples());
        std::fs::write(&path, doc.pretty() + "\n").expect("write bench JSON");
        pc_rt::pc_info!("wrote {path}");
    } else if json_per_group {
        // The binary lives in crates/bench; BENCH_*.json go to the repo
        // root so harness runs always land in the same place.
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        for (name, start, end) in bounds {
            if start == end {
                continue; // filtered out entirely — keep old files intact
            }
            let path = format!("{root}/BENCH_{name}.json");
            let doc = bench_samples_json(&b.samples()[start..end]);
            std::fs::write(&path, doc.pretty() + "\n").expect("write bench JSON");
            pc_rt::pc_info!("wrote BENCH_{name}.json");
        }
    }
}
