//! The wall-clock benchmark driver (replaces `cargo bench`'s criterion
//! targets with a plain binary on the vendored `pc-rt` harness):
//!
//! ```sh
//! cargo run --release -p pc-bench --bin bench                  # all suites
//! cargo run --release -p pc-bench --bin bench -- fig10         # name filter
//! cargo run --release -p pc-bench --bin bench -- --json out.json
//! PC_BENCH_TIME_MS=200 PC_THREADS=4 cargo run --release -p pc-bench --bin bench
//! ```
//!
//! Suites: `fig10-explore` / `trace-generation` (exploration modes),
//! `fig11-scalability` (server-count scaling), `simfs`/`pfs`/`tracer`/
//! `paracrash`/`h5sim` substrate micro-benches, and `ablation-victims` /
//! `ablation-journal`.

use pc_bench::{bench_samples_json, benches};
use pc_rt::bench::Bench;

fn main() {
    // Parse `[FILTER] [--json PATH]` ourselves so a `--json` value is
    // never mistaken for the name filter.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut filter: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => match args.get(i + 1) {
                Some(path) => {
                    json_path = Some(path.clone());
                    i += 1;
                }
                None => {
                    eprintln!("error: --json requires a path");
                    std::process::exit(2);
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag {flag} (usage: bench [FILTER] [--json PATH])");
                std::process::exit(2);
            }
            name => {
                if filter.is_some() {
                    eprintln!("error: more than one filter given ({name})");
                    std::process::exit(2);
                }
                filter = Some(name.to_string());
            }
        }
        i += 1;
    }

    let mut cfg = pc_rt::bench::Config::default();
    cfg.filter = filter;
    let mut b = Bench::new(cfg);
    benches::substrate::register(&mut b);
    benches::explore::register(&mut b);
    benches::scalability::register(&mut b);
    benches::ablation::register(&mut b);

    print!("{}", b.report());
    if b.samples().is_empty() {
        eprintln!("no benchmark matched the filter");
        std::process::exit(1);
    }

    if let Some(path) = json_path {
        let doc = bench_samples_json(b.samples());
        std::fs::write(&path, doc.pretty() + "\n").expect("write bench JSON");
        eprintln!("wrote {path}");
    }
}
