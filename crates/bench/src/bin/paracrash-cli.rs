//! The `paracrash` command-line front end.
//!
//! Mirrors the original framework's interface (§5): "ParaCrash takes a
//! configuration file and two programs as input, and automatically
//! generates crash-consistency reports for the tested I/O stack." The
//! preamble program is part of each named test program here; everything
//! else — per-layer models, exploration mode, `k`, cluster shape — comes
//! from the configuration file.
//!
//! ```sh
//! paracrash --fs BeeGFS --program ARVR [--config paracrash.conf] [--paper]
//! paracrash --fs all --program all          # the full evaluation matrix
//! paracrash --fs GPFS --program WAL --dump-trace wal.trace
//! ```

use paracrash::CheckConfig;
use pc_bench::{render_bug, run_program_swept};
use workloads::{FsKind, Params, Program};

fn usage() -> ! {
    eprintln!(
        "usage: paracrash --fs <BeeGFS|OrangeFS|GlusterFS|GPFS|Lustre|ext4|all>\n\
         \x20                --program <ARVR|CR|RC|WAL|H5-create|...|all>\n\
         \x20                [--config <file>] [--dump-trace <file>] [--paper]\n\n\
         The configuration file uses `key = value` lines:\n{}",
        CheckConfig::paper_default().render()
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fs_arg = None;
    let mut program_arg = None;
    let mut config_path = None;
    let mut dump_trace = None;
    let mut paper = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fs" => fs_arg = it.next().cloned(),
            "--program" => program_arg = it.next().cloned(),
            "--config" => config_path = it.next().cloned(),
            "--dump-trace" => dump_trace = it.next().cloned(),
            "--paper" => paper = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    let (Some(fs_arg), Some(program_arg)) = (fs_arg, program_arg) else {
        usage();
    };

    let mut cfg = CheckConfig::paper_default();
    if let Some(path) = config_path {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        cfg = CheckConfig::parse(&text).unwrap_or_else(|e| {
            eprintln!("bad configuration: {e}");
            std::process::exit(1);
        });
    }
    let mut params = if paper {
        Params::paper()
    } else {
        Params::quick()
    };
    params = params
        .with_servers(cfg.servers.0, cfg.servers.1)
        .with_clients(cfg.clients);
    if paper {
        params = params.with_stripe(cfg.stripe_size);
    }

    let systems: Vec<FsKind> = if fs_arg.eq_ignore_ascii_case("all") {
        FsKind::all().to_vec()
    } else {
        match FsKind::parse(&fs_arg) {
            Some(f) => vec![f],
            None => {
                eprintln!("unknown file system: {fs_arg}");
                usage();
            }
        }
    };
    let programs: Vec<Program> = if program_arg.eq_ignore_ascii_case("all") {
        Program::paper_eleven().to_vec()
    } else {
        match Program::paper_eleven()
            .into_iter()
            .chain([Program::CdfRename])
            .find(|p| p.name().eq_ignore_ascii_case(&program_arg))
        {
            Some(p) => vec![p],
            None => {
                eprintln!("unknown program: {program_arg}");
                usage();
            }
        }
    };

    if let Some(path) = &dump_trace {
        // Trace-only mode companion: record the first (program, fs) cell
        // and write its per-process trace files next to `path`.
        let stack = programs[0].run(systems[0], &params);
        std::fs::write(path, tracer::save_trace(&stack.rec)).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!(
            "trace of {} on {} written to {path} ({} events)",
            programs[0].name(),
            systems[0].name(),
            stack.rec.len()
        );
    }

    let mut total_bugs = 0usize;
    for &program in &programs {
        for &fs in &systems {
            let cell = run_program_swept(program, fs, &params, &cfg);
            println!(
                "== {} on {} ==  ({} crash states, {} checked, {} pruned, {:.1}s simulated)",
                program.name(),
                fs.name(),
                cell.outcome.stats.states_total,
                cell.outcome.stats.states_checked,
                cell.outcome.stats.states_pruned,
                cell.outcome.stats.sim_seconds,
            );
            if cell.outcome.bugs.is_empty() {
                println!("   no crash-consistency bugs found");
            }
            for bug in &cell.outcome.bugs {
                total_bugs += 1;
                println!("   {}", render_bug(bug));
                for w in bug.witness.iter().take(4) {
                    println!("      witness: {w}");
                }
            }
        }
    }
    println!("\n{total_bugs} unique crash-consistency bug(s) reported.");
    let exit = i32::from(
        programs.len() == 1
            && systems.len() == 1
            && total_bugs > 0
            && programs[0].name() != "CDF-rename",
    );
    // Exit 1 when a targeted single-cell check found bugs (CI-friendly).
    std::process::exit(if programs.len() == 1 && systems.len() == 1 {
        exit
    } else {
        0
    });
}
