//! The `paracrash` command-line front end.
//!
//! Mirrors the original framework's interface (§5): "ParaCrash takes a
//! configuration file and two programs as input, and automatically
//! generates crash-consistency reports for the tested I/O stack." The
//! preamble program is part of each named test program here; everything
//! else — per-layer models, exploration mode, `k`, cluster shape — comes
//! from the configuration file.
//!
//! ```sh
//! paracrash --fs BeeGFS --program ARVR [--config paracrash.conf] [--paper]
//! paracrash --fs all --program all          # the full evaluation matrix
//! paracrash --fs GPFS --program WAL --dump-trace wal.trace
//! paracrash --fs BeeGFS --program ARVR --telemetry-out trace.json \
//!           --telemetry-format chrome      # Perfetto-loadable timeline
//! paracrash --fs BeeGFS --program ARVR --explain-out reports/
//! ```
//!
//! `--telemetry-out` enables the `pc_rt::obs` layer for the run and
//! writes the collected spans/counters to the given path on exit —
//! plain structured JSON by default, Chrome trace-event format with
//! `--telemetry-format chrome`. `PC_TRACE=summary` additionally prints
//! a per-check stage table to stderr.
//!
//! `--explain-out DIR` turns on the provenance engine and writes one
//! self-contained bundle per bug into `DIR`: a Markdown report, a
//! Graphviz `.dot` causal graph, and a machine-readable `.json`
//! (minimal witness, violated ordering edges, vector clocks, state
//! diff).
//!
//! The `fuzz` subcommand switches from the paper's eleven programs to
//! the bounded black-box generator:
//!
//! ```sh
//! paracrash fuzz --bound 2 --seed 42                 # PR-tier sweep
//! paracrash fuzz --bound 3 --sample 400 --modes all  # nightly-style
//! paracrash fuzz --bound 2 --findings-out findings/  # triage bundles
//! ```
//!
//! Its stdout is exactly the corpus's canonical report (byte-stable
//! across `PC_THREADS` — the CI crash gate diffs it); progress and
//! timing go to stderr.
//!
//! Live observability: `--events-out FILE` (or `PC_EVENTS=FILE`)
//! attaches the `pc_rt::obs::stream` flight recorder's JSON-lines sink
//! — structured events (cells, findings, spans, counters, periodic
//! campaign snapshots) stream to `FILE` while the run is still going,
//! and a panic flushes the ring so a wedged run stays diagnosable.
//! `PC_PROGRESS=1` adds a throughput/ETA meter on stderr. Afterwards,
//! the `report` subcommand folds the artifacts into one self-contained
//! HTML dashboard (inline SVG, no scripts, no network):
//!
//! ```sh
//! paracrash fuzz --bound 2 --events-out events.jsonl
//! paracrash report --events events.jsonl --out report.html
//! paracrash report --events events.jsonl --telemetry trace.json \
//!           --bench BENCH_fuzz.json --out report.html
//! ```
//!
//! Self-profiling: `--profile-out FILE` (or `PC_PROFILE=FILE`) arms the
//! cooperative sampling profiler — worker threads publish their span
//! stacks through a seqlock shadow, a sampler thread folds them at
//! `PC_PROF_HZ` — and writes an inferno-compatible `.folded` aggregate
//! on exit; `report --profile FILE` renders it as a no-script SVG flame
//! view. `--history-dir DIR` appends one perf record per run (states/s,
//! per-stage ns, allocation bytes, peak RSS) to a durable CRC-checked
//! log that the `history` subcommand reads back:
//!
//! ```sh
//! paracrash fuzz --bound 2 --profile-out fuzz.folded --history-dir perf-history
//! paracrash history diff --history-dir perf-history --band 1.5
//! paracrash report --events events.jsonl --profile fuzz.folded
//! ```

use h5sim::json::Json;
use paracrash::dashboard::render_dashboard;
use paracrash::history;
use paracrash::telemetry::{chrome_trace, telemetry_json};
use paracrash::CheckConfig;
use pc_bench::campaign::{run_campaign, CampaignOptions};
use pc_bench::fuzz_driver::{fuzz_campaign, parse_modes, FuzzOptions};
use pc_bench::{render_bug, run_program_swept};
use simnet::FaultConfig;
use std::time::Duration;
use workloads::{FsKind, Params, Program};

/// One-line diagnostic, then the usage-error exit code (2).
fn die(msg: std::fmt::Arguments<'_>) -> ! {
    pc_rt::pc_error!("{msg}");
    std::process::exit(2);
}

/// Filesystem-safe bundle-name component: lowercase, non-alphanumerics
/// collapsed to `-` (e.g. `"H5-create"` → `"h5-create"`).
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

/// What an output-path flag names on disk.
enum OutTarget {
    /// A directory the run writes files into (created in full).
    Dir,
    /// A single output file (its parent directories are created).
    File,
}

/// Validate an output path at launch: create the directory — or the
/// file's parent directories — so an unwritable target fails *here*
/// with exit 2 instead of hours into a campaign when the first write
/// lands. Shared by every `*-out` / `*-dir` flag; returns the path
/// back for assignment-style call sites.
fn prepare_out(target: OutTarget, flag: &str, path: String) -> String {
    let result = match target {
        OutTarget::Dir => std::fs::create_dir_all(&path),
        OutTarget::File => pc_rt::durable::ensure_parent_dir(std::path::Path::new(&path)),
    };
    result.unwrap_or_else(|e| die(format_args!("cannot prepare {flag} {path}: {e}")));
    path
}

/// Arm the self-profiling plane for a `--profile-out` run: telemetry
/// on (spans must exist to be sampled), sampler thread running at
/// `PC_PROF_HZ`, and the `.folded` output path armed for
/// [`finish_profile_and_history`] to flush.
fn arm_profile(path: String) {
    pc_rt::obs::set_enabled(true);
    pc_rt::obs::prof::enable_sampling(pc_rt::obs::prof::hz_from_env());
    pc_rt::obs::prof::arm_output(path);
}

/// Output options that need carrying to the end of the run (the
/// profiler arms process-global state instead).
#[derive(Default)]
struct ProfOpts {
    /// `--history-dir`: append one perf record to this durable log.
    history_dir: Option<String>,
}

/// Flush the self-profiling plane at the end of a run: write the armed
/// `.folded` profile (if any) and append one perf record to the
/// `--history-dir` log. Failures are I/O errors on explicitly
/// requested output paths, so they exit 1 like the other end-of-run
/// writers.
fn finish_profile_and_history(
    prof_opts: &ProfOpts,
    kind: &str,
    label: &str,
    work: u64,
    wall: Duration,
) {
    match pc_rt::obs::prof::finish() {
        Ok(Some(path)) => pc_rt::pc_info!(
            "profile written to {} ({} samples)",
            path.display(),
            pc_rt::obs::prof::samples_total()
        ),
        Ok(None) => {}
        Err(e) => {
            pc_rt::pc_error!("cannot write profile: {e}");
            std::process::exit(1);
        }
    }
    let Some(dir) = &prof_opts.history_dir else {
        return;
    };
    let snap = pc_rt::obs::snapshot();
    let rec = history::RunRecord::from_run(kind, label, work, wall.as_nanos() as u64, &snap);
    if let Err(e) = history::append(std::path::Path::new(dir), &rec) {
        pc_rt::pc_error!("cannot append history record to {dir}: {e}");
        std::process::exit(1);
    }
    pc_rt::pc_info!("history record appended to {dir}/{}", history::HISTORY_LOG);
}

fn usage() -> ! {
    eprintln!(
        "usage: paracrash --fs <BeeGFS|OrangeFS|GlusterFS|GPFS|Lustre|ext4|all>\n\
         \x20                --program <ARVR|CR|RC|WAL|H5-create|...|all>\n\
         \x20                [--config <file>] [--dump-trace <file>] [--paper]\n\
         \x20                [--faults <spec>|chaos] [--fail-fast]\n\
         \x20                [--telemetry-out <file>] [--telemetry-format <json|chrome>]\n\
         \x20                [--explain-out <dir>] [--events-out <file>]\n\
         \x20                [--profile-out <file>] [--history-dir <dir>]\n\
         \x20      paracrash fuzz [--bound <n>] [--seed <n>] [--sample <n>]\n\
         \x20                [--fs <list|all>] [--modes <data,ordered,writeback,none|all>]\n\
         \x20                [--findings-out <dir>] [--events-out <file>] [--paper]\n\
         \x20                [--profile-out <file>] [--history-dir <dir>]\n\
         \x20      paracrash campaign [fuzz flags] [--state-dir <dir>] [--resume]\n\
         \x20                [--cell-timeout <secs>] [--max-retries <n>]\n\
         \x20                [--checkpoint-every <n>]\n\
         \x20      paracrash report --events <file> [--telemetry <file>]\n\
         \x20                [--bench <file>]... [--profile <file>] [--out <file>]\n\
         \x20      paracrash history <show|diff|regressions>\n\
         \x20                [--history-dir <dir>] [--band <ratio>]\n\n\
         `campaign` is the crash-safe resumable sweep: every cell commits\n\
         to an append-only CRC-checked log under `--state-dir`, checkpoints\n\
         land atomically, and `--resume` replays the log to continue a\n\
         killed run with a byte-identical final report. Cells that hang\n\
         past `--cell-timeout` or panic through `--max-retries` retries\n\
         are quarantined, not fatal.\n\n\
         `--events-out` streams flight-recorder events (cells, findings,\n\
         spans, campaign snapshots) as JSON lines while the run is live;\n\
         `report` renders them (plus optional telemetry JSON, BENCH_*.json\n\
         suites, and a `--profile` .folded aggregate as an SVG flame view)\n\
         into one self-contained HTML dashboard.\n\n\
         `--profile-out` arms the cooperative sampling profiler (rate from\n\
         PC_PROF_HZ, default 97 Hz) and writes a flamegraph-compatible\n\
         .folded stack aggregate on exit; PC_PROFILE=FILE is the env-var\n\
         spelling. `--history-dir` appends one perf record per run to a\n\
         durable CRC-checked log; `history show|diff|regressions` renders,\n\
         compares (last two runs), or scans it, flagging any metric that\n\
         slowed by more than `--band` (default 1.5x) with exit 1.\n\n\
         `--faults` takes a comma-separated spec (seed=N,drop=R,dup=R,delay=R,\n\
         retries=N,partition=S[:H],torn=BOOL) or the word `chaos`; the\n\
         PC_CHAOS_SEED / PC_FAULT_RATE environment variables arm the same\n\
         plane when the flag is absent.\n\n\
         The configuration file uses `key = value` lines:\n{}",
        CheckConfig::paper_default().render()
    );
    std::process::exit(2);
}

/// Parse one flag shared between the `fuzz` and `campaign` subcommands
/// into `opts`; returns `false` when the flag is not a fuzz flag so the
/// caller can try its own set. Every output path goes through
/// [`prepare_out`] so an unwritable target fails at launch with exit 2
/// instead of hours in: `--events-out` attaches the stream sink
/// immediately, `--profile-out` arms the sampling profiler, and
/// `--history-dir` is carried in `prof_opts` for the end-of-run append.
fn parse_fuzz_flag(
    opts: &mut FuzzOptions,
    paper: &mut bool,
    prof_opts: &mut ProfOpts,
    a: &str,
    value: &mut dyn FnMut(&str) -> String,
) -> bool {
    match a {
        "--bound" => {
            opts.bound = value("--bound")
                .parse()
                .unwrap_or_else(|_| die(format_args!("--bound must be a number")));
            if opts.bound == 0 || opts.bound > 4 {
                die(format_args!(
                    "--bound must be 1..=4 (the corpus is exponential)"
                ));
            }
        }
        "--seed" => {
            opts.seed = value("--seed")
                .parse()
                .unwrap_or_else(|_| die(format_args!("--seed must be a number")));
        }
        "--sample" => {
            opts.sample = Some(
                value("--sample")
                    .parse()
                    .unwrap_or_else(|_| die(format_args!("--sample must be a number"))),
            );
        }
        "--fs" => {
            let spec = value("--fs");
            opts.file_systems = if spec.eq_ignore_ascii_case("all") {
                FsKind::all().to_vec()
            } else {
                spec.split(',')
                    .map(|s| {
                        FsKind::parse(s)
                            .unwrap_or_else(|| die(format_args!("unknown file system: {s}")))
                    })
                    .collect()
            };
        }
        "--modes" => {
            let spec = value("--modes");
            opts.modes =
                parse_modes(&spec).unwrap_or_else(|| die(format_args!("bad --modes spec: {spec}")));
        }
        "--findings-out" => {
            opts.findings_out = Some(prepare_out(
                OutTarget::Dir,
                "--findings-out",
                value("--findings-out"),
            ));
        }
        "--events-out" => {
            let path = prepare_out(OutTarget::File, "--events-out", value("--events-out"));
            pc_rt::obs::stream::set_sink(&path)
                .unwrap_or_else(|e| die(format_args!("cannot open {path}: {e}")));
        }
        "--profile-out" => {
            arm_profile(prepare_out(
                OutTarget::File,
                "--profile-out",
                value("--profile-out"),
            ));
        }
        "--history-dir" => {
            pc_rt::obs::set_enabled(true);
            prof_opts.history_dir = Some(prepare_out(
                OutTarget::Dir,
                "--history-dir",
                value("--history-dir"),
            ));
        }
        "--paper" => *paper = true,
        _ => return false,
    }
    true
}

/// The `fuzz` subcommand: bounded black-box campaign over the
/// generated-workload corpus. Stdout carries exactly the canonical
/// report so CI can diff runs; everything else goes to stderr.
fn run_fuzz(args: &[String]) -> ! {
    let mut opts = FuzzOptions::pr_tier();
    let mut paper = false;
    let mut prof_opts = ProfOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| die(format_args!("{what} needs a value")))
        };
        if parse_fuzz_flag(&mut opts, &mut paper, &mut prof_opts, a, &mut value) {
            continue;
        }
        match a.as_str() {
            "--help" | "-h" => usage(),
            other => {
                pc_rt::pc_error!("unknown fuzz argument: {other}");
                usage();
            }
        }
    }
    if paper {
        opts.params = Params::paper();
    }
    let start = std::time::Instant::now();
    let report = fuzz_campaign(&opts).unwrap_or_else(|e| die(format_args!("{e}")));
    let wall = start.elapsed();
    let secs = wall.as_secs_f64();
    pc_rt::obs::stream::close();
    finish_profile_and_history(
        &prof_opts,
        "fuzz",
        &format!("bound={} seed={}", opts.bound, opts.seed),
        report.corpus.cells as u64,
        wall,
    );
    print!("{}", report.corpus.canonical_report());
    pc_rt::pc_info!(
        "fuzz: {} workloads, {} cells in {:.1}s ({:.1} workloads/s), {} findings, {} bundles",
        report.workloads,
        report.corpus.cells,
        secs,
        report.workloads as f64 / secs.max(1e-9),
        report.corpus.finding_count(),
        report.bundles,
    );
    std::process::exit(0);
}

/// The `campaign` subcommand: the crash-safe resumable sweep. Same
/// surface as `fuzz` plus the durability knobs; stdout is still exactly
/// the canonical report (resume/retry accounting goes to stderr, so a
/// resumed run diffs clean against an uninterrupted one).
fn run_campaign_cli(args: &[String]) -> ! {
    let mut opts = CampaignOptions::new(FuzzOptions::pr_tier(), "campaign-state");
    let mut paper = false;
    let mut prof_opts = ProfOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| die(format_args!("{what} needs a value")))
        };
        if parse_fuzz_flag(&mut opts.fuzz, &mut paper, &mut prof_opts, a, &mut value) {
            continue;
        }
        match a.as_str() {
            "--state-dir" => opts.state_dir = value("--state-dir"),
            "--resume" => opts.resume = true,
            "--cell-timeout" => {
                let secs: f64 = value("--cell-timeout")
                    .parse()
                    .unwrap_or_else(|_| die(format_args!("--cell-timeout must be seconds")));
                if !secs.is_finite() || secs <= 0.0 {
                    die(format_args!("--cell-timeout must be positive"));
                }
                opts.cell_timeout = Some(Duration::from_secs_f64(secs));
            }
            "--max-retries" => {
                opts.max_retries = value("--max-retries")
                    .parse()
                    .unwrap_or_else(|_| die(format_args!("--max-retries must be a number")));
            }
            "--checkpoint-every" => {
                opts.checkpoint_every = value("--checkpoint-every")
                    .parse()
                    .unwrap_or_else(|_| die(format_args!("--checkpoint-every must be a number")));
                if opts.checkpoint_every == 0 {
                    die(format_args!("--checkpoint-every must be at least 1"));
                }
            }
            "--help" | "-h" => usage(),
            other => {
                pc_rt::pc_error!("unknown campaign argument: {other}");
                usage();
            }
        }
    }
    if paper {
        opts.fuzz.params = Params::paper();
    }
    let start = std::time::Instant::now();
    let report = run_campaign(&opts).unwrap_or_else(|e| die(format_args!("{e}")));
    let wall = start.elapsed();
    let secs = wall.as_secs_f64();
    pc_rt::obs::stream::close();
    finish_profile_and_history(
        &prof_opts,
        "campaign",
        &format!("bound={} seed={}", opts.fuzz.bound, opts.fuzz.seed),
        report.corpus.cells as u64,
        wall,
    );
    print!("{}", report.corpus.canonical_report());
    pc_rt::pc_info!(
        "campaign: {}/{} cells this run ({} resumed, {} retries, {} quarantined) \
         in {:.1}s, {} findings, state in {}",
        report.cells_run,
        report.total_cells,
        report.resumed_cells,
        report.retries,
        report.quarantined,
        secs,
        report.corpus.finding_count(),
        opts.state_dir,
    );
    std::process::exit(0);
}

/// The `report` subcommand: fold a run's artifacts — the `--events-out`
/// stream, an optional `--telemetry-out` snapshot, any `BENCH_*.json`
/// suites — into one self-contained HTML dashboard.
fn run_report(args: &[String]) -> ! {
    let mut events_path: Option<String> = None;
    let mut telemetry_path: Option<String> = None;
    let mut bench_paths: Vec<String> = Vec::new();
    let mut profile_path: Option<String> = None;
    let mut out_path = "paracrash-report.html".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| die(format_args!("{what} needs a value")))
        };
        match a.as_str() {
            "--events" => events_path = Some(value("--events")),
            "--telemetry" => telemetry_path = Some(value("--telemetry")),
            "--bench" => bench_paths.push(value("--bench")),
            "--profile" => profile_path = Some(value("--profile")),
            "--out" => out_path = value("--out"),
            "--help" | "-h" => usage(),
            other => {
                pc_rt::pc_error!("unknown report argument: {other}");
                usage();
            }
        }
    }
    let Some(events_path) = events_path else {
        pc_rt::pc_error!("report needs --events <file>");
        usage();
    };
    let read = |path: &str| {
        std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(format_args!("cannot read {path}: {e}")))
    };
    let events_text = read(&events_path);
    let telemetry = telemetry_path.as_deref().map(|p| {
        Json::parse(&read(p)).unwrap_or_else(|e| die(format_args!("bad telemetry {p}: {e}")))
    });
    let benches: Vec<(String, Json)> = bench_paths
        .iter()
        .map(|p| {
            let j = Json::parse(&read(p))
                .unwrap_or_else(|e| die(format_args!("bad bench json {p}: {e}")));
            (p.clone(), j)
        })
        .collect();
    let profile_text = profile_path.as_deref().map(read);
    let html = render_dashboard(
        &events_text,
        telemetry.as_ref(),
        &benches,
        profile_text.as_deref(),
    )
    .unwrap_or_else(|e| die(format_args!("bad report input ({events_path}): {e}")));
    std::fs::write(&out_path, &html)
        .unwrap_or_else(|e| die(format_args!("cannot write {out_path}: {e}")));
    println!(
        "dashboard written to {out_path} ({} bytes from {events_path})",
        html.len()
    );
    std::process::exit(0);
}

/// The `history` subcommand: render, compare, or scan the durable
/// perf-history log that `--history-dir` runs append to. `diff`
/// compares the last two records and `regressions` walks every
/// consecutive pair; both exit 1 when a headline metric slowed by
/// `--band` or more, so CI can gate on run-to-run drift.
fn run_history(args: &[String]) -> ! {
    let mut dir = "perf-history".to_string();
    let mut band = history::DEFAULT_BAND;
    let mut action: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| die(format_args!("{what} needs a value")))
        };
        match a.as_str() {
            "--history-dir" => dir = value("--history-dir"),
            "--band" => {
                band = value("--band")
                    .parse()
                    .unwrap_or_else(|_| die(format_args!("--band must be a ratio")));
                if !band.is_finite() || band <= 1.0 {
                    die(format_args!("--band must be a finite ratio above 1.0"));
                }
            }
            "show" | "diff" | "regressions" if action.is_none() => action = Some(a.clone()),
            "--help" | "-h" => usage(),
            other => {
                pc_rt::pc_error!("unknown history argument: {other}");
                usage();
            }
        }
    }
    let Some(action) = action else {
        pc_rt::pc_error!("history needs an action: show, diff, or regressions");
        usage();
    };
    let records = history::load(std::path::Path::new(&dir))
        .unwrap_or_else(|e| die(format_args!("cannot load history from {dir}: {e}")));
    match action.as_str() {
        "show" => {
            print!("{}", history::render_show(&records));
            std::process::exit(0);
        }
        "diff" => {
            if records.len() < 2 {
                die(format_args!(
                    "history diff needs at least two recorded runs in {dir} (found {})",
                    records.len()
                ));
            }
            let (text, flagged) = history::diff(
                &records[records.len() - 2],
                &records[records.len() - 1],
                band,
            );
            print!("{text}");
            std::process::exit(i32::from(flagged));
        }
        _ => {
            let (text, flagged) = history::regressions(&records, band);
            print!("{text}");
            std::process::exit(i32::from(flagged));
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("fuzz") {
        run_fuzz(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("campaign") {
        run_campaign_cli(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("report") {
        run_report(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("history") {
        run_history(&args[1..]);
    }
    let mut fs_arg = None;
    let mut program_arg = None;
    let mut config_path = None;
    let mut dump_trace = None;
    let mut paper = false;
    let mut telemetry_out = None;
    let mut telemetry_format = "json".to_string();
    let mut faults_arg: Option<String> = None;
    let mut fail_fast = false;
    let mut explain_out: Option<String> = None;
    let mut events_out: Option<String> = None;
    let mut prof_opts = ProfOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| die(format_args!("{what} needs a value")))
        };
        match a.as_str() {
            "--events-out" => {
                events_out = Some(prepare_out(
                    OutTarget::File,
                    "--events-out",
                    value("--events-out"),
                ));
            }
            "--profile-out" => {
                arm_profile(prepare_out(
                    OutTarget::File,
                    "--profile-out",
                    value("--profile-out"),
                ));
            }
            "--history-dir" => {
                pc_rt::obs::set_enabled(true);
                prof_opts.history_dir = Some(prepare_out(
                    OutTarget::Dir,
                    "--history-dir",
                    value("--history-dir"),
                ));
            }
            "--fs" => fs_arg = it.next().cloned(),
            "--program" => program_arg = it.next().cloned(),
            "--config" => config_path = it.next().cloned(),
            "--dump-trace" => dump_trace = it.next().cloned(),
            "--paper" => paper = true,
            "--faults" => faults_arg = it.next().cloned(),
            "--fail-fast" => fail_fast = true,
            "--explain-out" => explain_out = it.next().cloned(),
            "--telemetry-out" => telemetry_out = it.next().cloned(),
            "--telemetry-format" => {
                telemetry_format = it.next().cloned().unwrap_or_default();
                if !matches!(telemetry_format.as_str(), "json" | "chrome") {
                    pc_rt::pc_error!("unknown telemetry format: {telemetry_format}");
                    usage();
                }
            }
            "--help" | "-h" => usage(),
            other => {
                pc_rt::pc_error!("unknown argument: {other}");
                usage();
            }
        }
    }
    let (Some(fs_arg), Some(program_arg)) = (fs_arg, program_arg) else {
        usage();
    };
    if telemetry_out.is_some() {
        pc_rt::obs::set_enabled(true);
    }
    if let Some(path) = &events_out {
        pc_rt::obs::stream::set_sink(path)
            .unwrap_or_else(|e| die(format_args!("cannot open {path}: {e}")));
    }
    // Outermost span: everything from configuration to the last verdict
    // lands under it, so the emitted timeline covers the full run.
    let start = std::time::Instant::now();
    let cli_span = pc_rt::obs::span_cat("cli.run", "cli");

    let mut cfg = CheckConfig::paper_default();
    if let Some(path) = config_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| die(format_args!("cannot read {path}: {e}")));
        cfg = CheckConfig::parse(&text)
            .unwrap_or_else(|e| die(format_args!("bad configuration {path}: {e}")));
    }
    cfg.fail_fast |= fail_fast;
    if let Some(dir) = &explain_out {
        cfg.explain = true;
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| die(format_args!("cannot create {dir}: {e}")));
    }
    // `--faults` wins over the config file; the environment is the
    // fallback when neither names a plane.
    match &faults_arg {
        Some(spec) => {
            cfg.faults = FaultConfig::parse_spec(spec)
                .unwrap_or_else(|e| die(format_args!("bad --faults spec: {e}")));
        }
        None => {
            if let Some(env_cfg) = FaultConfig::from_env() {
                cfg.faults = env_cfg;
            }
        }
    }
    let mut params = if paper {
        Params::paper()
    } else {
        Params::quick()
    };
    params = params
        .with_servers(cfg.servers.0, cfg.servers.1)
        .with_clients(cfg.clients);
    if paper {
        params = params.with_stripe(cfg.stripe_size);
    }
    if cfg.faults.enabled() {
        params = params.with_faults(cfg.faults.clone());
    }

    let systems: Vec<FsKind> = if fs_arg.eq_ignore_ascii_case("all") {
        FsKind::all().to_vec()
    } else {
        match FsKind::parse(&fs_arg) {
            Some(f) => vec![f],
            None => {
                pc_rt::pc_error!("unknown file system: {fs_arg}");
                usage();
            }
        }
    };
    let programs: Vec<Program> = if program_arg.eq_ignore_ascii_case("all") {
        Program::paper_eleven().to_vec()
    } else {
        match Program::paper_eleven()
            .into_iter()
            .chain([Program::CdfRename])
            .find(|p| p.name().eq_ignore_ascii_case(&program_arg))
        {
            Some(p) => vec![p],
            None => {
                pc_rt::pc_error!("unknown program: {program_arg}");
                usage();
            }
        }
    };

    if let Some(path) = &dump_trace {
        // Trace-only mode companion: record the first (program, fs) cell
        // and write its per-process trace files next to `path`.
        let stack = programs[0].run(systems[0], &params);
        std::fs::write(path, tracer::save_trace(&stack.rec)).unwrap_or_else(|e| {
            pc_rt::pc_error!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!(
            "trace of {} on {} written to {path} ({} events)",
            programs[0].name(),
            systems[0].name(),
            stack.rec.len()
        );
    }

    let mut total_bugs = 0usize;
    let mut total_bundles = 0usize;
    let mut total_states_checked = 0u64;
    for &program in &programs {
        for &fs in &systems {
            let cell = run_program_swept(program, fs, &params, &cfg);
            total_states_checked += cell.outcome.stats.states_checked as u64;
            println!(
                "== {} on {} ==  ({} crash states, {} checked, {} pruned, {:.1}s simulated)",
                program.name(),
                fs.name(),
                cell.outcome.stats.states_total,
                cell.outcome.stats.states_checked,
                cell.outcome.stats.states_pruned,
                cell.outcome.stats.sim_seconds,
            );
            if cell.outcome.bugs.is_empty() {
                println!("   no crash-consistency bugs found");
            }
            for bug in &cell.outcome.bugs {
                total_bugs += 1;
                println!("   {}", render_bug(bug));
                for w in bug.witness.iter().take(4) {
                    println!("      witness: {w}");
                }
            }
            for d in &cell.outcome.diagnostics {
                println!("   diagnostic: {d}");
            }
            if let Some(dir) = &explain_out {
                let context = format!("{} on {}", program.name(), fs.name());
                for (i, e) in cell.outcome.explanations.iter().enumerate() {
                    let stem = format!(
                        "{}-{}-bug{:02}",
                        sanitize(program.name()),
                        sanitize(fs.name()),
                        i + 1
                    );
                    let write = |ext: &str, text: String| {
                        let path = format!("{dir}/{stem}.{ext}");
                        std::fs::write(&path, text).unwrap_or_else(|err| {
                            pc_rt::pc_error!("cannot write {path}: {err}");
                            std::process::exit(1);
                        });
                    };
                    write("md", e.to_markdown(&context));
                    write("dot", e.to_dot());
                    let mut json = e.to_json().pretty();
                    json.push('\n');
                    write("json", json);
                    total_bundles += 1;
                }
            }
        }
    }
    println!("\n{total_bugs} unique crash-consistency bug(s) reported.");
    if let Some(dir) = &explain_out {
        println!("{total_bundles} explain bundle(s) written to {dir}/ (.md + .dot + .json each).");
    }
    drop(cli_span);
    pc_rt::obs::stream::close();
    finish_profile_and_history(
        &prof_opts,
        "check",
        &format!("{program_arg} on {fs_arg}"),
        total_states_checked,
        start.elapsed(),
    );
    if let Some(path) = &telemetry_out {
        let snap = pc_rt::obs::snapshot();
        let json = if telemetry_format == "chrome" {
            chrome_trace(&snap)
        } else {
            telemetry_json(&snap)
        };
        let mut text = json.pretty();
        text.push('\n');
        std::fs::write(path, text).unwrap_or_else(|e| {
            pc_rt::pc_error!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        pc_rt::pc_info!(
            "telemetry ({telemetry_format}) written to {path}: {} spans, {} counters",
            snap.spans.len(),
            snap.counters.len()
        );
    }
    let exit = i32::from(
        programs.len() == 1
            && systems.len() == 1
            && total_bugs > 0
            && programs[0].name() != "CDF-rename",
    );
    // Exit 1 when a targeted single-cell check found bugs (CI-friendly).
    std::process::exit(if programs.len() == 1 && systems.len() == 1 {
        exit
    } else {
        0
    });
}
