//! Validates artifacts of the live-observability plane (verify gate
//! 12): event streams written by `--events-out` / `PC_EVENTS`, and the
//! HTML dashboards `paracrash report` renders from them.
//!
//! ```sh
//! events-check events.jsonl            # stream re-parses + schema ok
//! events-check --canonical-diff a.jsonl b.jsonl
//!                                      # canonical projections equal
//! events-check --html report.html      # dashboard lint
//! ```
//!
//! `--canonical-diff` compares the deterministic projection
//! (`paracrash::telemetry::canonical_event_lines`) of two streams —
//! the check the determinism contract rests on: a sequential and a
//! parallel run of the same campaign must project identically even
//! though their timestamps, span events and interleavings differ.
//!
//! `--html` lints a rendered dashboard: it must embed at least one
//! non-empty inline SVG and carry every documented `data-metric`
//! element, so a "green" report cannot silently drop a panel.
//!
//! Exits 0 when valid, 1 with a diagnostic otherwise.

use h5sim::json::Json;
use paracrash::telemetry::{canonical_event_lines, parse_event_stream};

fn fail(msg: &str) -> ! {
    // eprintln, not pc_error!: the verdict must print regardless of
    // PC_LOG.
    eprintln!("events-check: FAIL: {msg}");
    std::process::exit(1);
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")))
}

/// Every metric element the dashboard documents; a rendered report must
/// carry all of them.
const REQUIRED_METRICS: &[&str] = &[
    "cells",
    "findings",
    "behaviors",
    "saturation",
    "throughput",
    "coverage-curve",
    "stage-breakdown",
    "heatmap",
];

/// Lint a rendered dashboard: inline SVG present and non-empty, every
/// documented metric element present, no scripts or external fetches.
fn check_html(path: &str) -> ! {
    let html = read(path);
    let Some(svg_at) = html.find("<svg") else {
        fail(&format!("{path}: no inline <svg> element"));
    };
    let svg_end = html[svg_at..]
        .find("</svg>")
        .unwrap_or_else(|| fail(&format!("{path}: unterminated <svg> element")));
    let svg_body = &html[svg_at..svg_at + svg_end];
    if !svg_body.contains("<polyline") && !svg_body.contains("<rect") {
        fail(&format!("{path}: first <svg> draws no marks"));
    }
    for metric in REQUIRED_METRICS {
        if !html.contains(&format!("data-metric=\"{metric}\"")) {
            fail(&format!("{path}: missing data-metric=\"{metric}\""));
        }
    }
    if html.contains("<script") {
        fail(&format!("{path}: dashboard must not contain scripts"));
    }
    if html.contains("http://") || html.contains("https://") {
        fail(&format!("{path}: dashboard must be self-contained"));
    }
    println!(
        "events-check: OK — {path}: dashboard carries all {} metric panels, inline SVG",
        REQUIRED_METRICS.len()
    );
    std::process::exit(0);
}

/// Compare the canonical projections of two streams line by line.
fn check_canonical_diff(a_path: &str, b_path: &str) -> ! {
    let a =
        canonical_event_lines(&read(a_path)).unwrap_or_else(|e| fail(&format!("{a_path}: {e}")));
    let b =
        canonical_event_lines(&read(b_path)).unwrap_or_else(|e| fail(&format!("{b_path}: {e}")));
    if a.len() != b.len() {
        fail(&format!(
            "canonical projections differ in length: {a_path} has {} lines, {b_path} has {}",
            a.len(),
            b.len()
        ));
    }
    for (i, (la, lb)) in a.iter().zip(&b).enumerate() {
        if la != lb {
            fail(&format!(
                "canonical projections diverge at line {i}:\n  {a_path}: {la}\n  {b_path}: {lb}"
            ));
        }
    }
    println!(
        "events-check: OK — canonical projections equal ({} lines): {a_path} == {b_path}",
        a.len()
    );
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--html") => match args.get(1) {
            Some(path) => check_html(path),
            None => fail("--html needs a file"),
        },
        Some("--canonical-diff") => match (args.get(1), args.get(2)) {
            (Some(a), Some(b)) => check_canonical_diff(a, b),
            _ => fail("--canonical-diff needs two files"),
        },
        Some(path) => {
            let text = read(path);
            let events =
                parse_event_stream(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
            if events.is_empty() {
                fail(&format!("{path}: stream carries no events"));
            }
            let cells = events
                .iter()
                .filter(|e| e.get("kind").and_then(Json::as_str) == Some("cell"))
                .count();
            println!(
                "events-check: OK — {path}: {} events ({cells} cells), schema v{}, seq monotonic",
                events.len(),
                pc_rt::obs::stream::SCHEMA_VERSION,
            );
        }
        None => {
            eprintln!(
                "usage: events-check <events.jsonl> | --canonical-diff <a> <b> | --html <report.html>"
            );
            std::process::exit(2);
        }
    }
}
