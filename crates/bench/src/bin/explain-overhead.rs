//! Asserts the provenance engine's *disabled* overhead budget (verify
//! gate 7): with `explain = false` (the production default) the checker
//! pays only the witness bookkeeping the explain pass later reads — one
//! `(signature, layer) -> state index` map insert per *unique* bug —
//! plus one gate branch per check. That price must stay under 3% of a
//! full check run.
//!
//! We cannot diff against an explain-free build (there isn't one), so
//! the bound is computed:
//!
//! 1. measure the per-bug cost `c` of the bookkeeping — cloning a real
//!    bug signature and inserting it into the witness-state map;
//! 2. count the unique bugs `B` the verify workload (ARVR on BeeGFS,
//!    quick scale) reports;
//! 3. measure the median wall time `t` of that full check with explain
//!    off;
//! 4. assert `B * c / t < 3%`.
//!
//! Exits 0 when the bound holds, 1 with a diagnostic when it does not.

use paracrash::{check_stack, CheckConfig};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;
use workloads::{FsKind, Params, Program};

/// Maximum tolerated disabled-explain share of the check runtime.
const BUDGET: f64 = 0.03;

fn main() {
    let params = Params::quick();
    let stack = Program::Arvr.run(FsKind::BeeGfs, &params);
    let factory = FsKind::BeeGfs.factory(&params);
    let cfg = CheckConfig::paper_default();
    assert!(!cfg.explain, "explain must default off");

    let outcome = check_stack(&stack, &factory, &cfg);
    let bugs = outcome.bugs;
    assert!(!bugs.is_empty(), "verify workload must report bugs");
    assert!(
        outcome.explanations.is_empty(),
        "no bundles may be built when explain is off"
    );

    // (1) per-bug bookkeeping cost, amortized over many inserts of the
    // workload's real signatures.
    const REPS: usize = 20_000;
    let t = Instant::now();
    for i in 0..REPS {
        let mut witness_state: BTreeMap<_, usize> = BTreeMap::new();
        for (idx, bug) in bugs.iter().enumerate() {
            witness_state.insert((bug.signature.clone(), bug.layer), black_box(i + idx));
        }
        black_box(&witness_state);
    }
    let per_bug_ns = t.elapsed().as_nanos() as f64 / (REPS * bugs.len()) as f64;

    // (2) unique bugs in the verify workload.
    let n_bugs = bugs.len();

    // (3) median wall time of the full check, explain off.
    let mut runs: Vec<u64> = (0..9)
        .map(|_| {
            let t = Instant::now();
            black_box(check_stack(&stack, &factory, &cfg).bugs.len());
            t.elapsed().as_nanos() as u64
        })
        .collect();
    runs.sort_unstable();
    let t_check_ns = runs[runs.len() / 2] as f64;

    // (4) the bound. The witness-state map holds one entry per unique
    // bug, so the per-insert cost is the whole story.
    let overhead = n_bugs as f64 * per_bug_ns / t_check_ns;
    println!(
        "explain-overhead: {n_bugs} bugs x {per_bug_ns:.2} ns bookkeeping \
         / {:.2} ms check = {:.4}% (budget {:.0}%)",
        t_check_ns / 1e6,
        overhead * 100.0,
        BUDGET * 100.0,
    );
    if overhead >= BUDGET {
        pc_rt::pc_error!(
            "disabled explain overhead {:.3}% exceeds the {:.0}% budget",
            overhead * 100.0,
            BUDGET * 100.0
        );
        std::process::exit(1);
    }
}
