//! Regenerate Figure 10: exploration time per test program under the
//! three crash-state exploration strategies (brute-force, pruning,
//! optimized), for BeeGFS, OrangeFS and GlusterFS.
//!
//! Times are the cost model's simulated seconds (per-PFS restart costs ×
//! reconstruction counts — see `paracrash::explore::CostModel`); the
//! wall-clock seconds of this reproduction are also printed.
//!
//! Usage: `cargo run --release -p pc-bench --bin fig10 [--paper]`

use paracrash::ExploreMode;
use pc_bench::{params_from_args, run_with_mode};
use workloads::{FsKind, Program};

fn main() {
    let params = params_from_args();
    let programs = Program::paper_eleven();

    for fs in [FsKind::BeeGfs, FsKind::OrangeFs, FsKind::GlusterFs] {
        println!("\n=== ({}) ===", fs.name());
        println!(
            "{:<20} {:>12} {:>12} {:>12} {:>9} {:>9} {:>8}",
            "program", "brute(s)", "pruning(s)", "optim.(s)", "states", "pruned", "speedup"
        );
        let mut totals = [0.0f64; 3];
        for program in programs {
            let brute = run_with_mode(program, fs, &params, ExploreMode::BruteForce);
            let pruned = run_with_mode(program, fs, &params, ExploreMode::Pruning);
            let optim = run_with_mode(program, fs, &params, ExploreMode::Optimized);
            totals[0] += brute.stats.sim_seconds;
            totals[1] += pruned.stats.sim_seconds;
            totals[2] += optim.stats.sim_seconds;
            println!(
                "{:<20} {:>12.1} {:>12.1} {:>12.1} {:>9} {:>9} {:>7.1}x",
                program.name(),
                brute.stats.sim_seconds,
                pruned.stats.sim_seconds,
                optim.stats.sim_seconds,
                brute.stats.states_total,
                pruned.stats.states_pruned,
                brute.stats.sim_seconds / optim.stats.sim_seconds.max(0.001),
            );
        }
        println!(
            "{:<20} {:>12.1} {:>12.1} {:>12.1}   overall speedup {:.1}x (pruning {:.1}x)",
            "TOTAL",
            totals[0],
            totals[1],
            totals[2],
            totals[0] / totals[2].max(0.001),
            totals[0] / totals[1].max(0.001),
        );
    }
    println!(
        "\nexpected shape (paper §6.4): pruning alone up to 2.9x (POSIX) / 7.3x (HDF5);\n\
         incremental reconstruction ~4.2x per state; combined ~5x on BeeGFS (largest\n\
         restart cost); up to 12.6x overall."
    );
}
