//! Regenerate Figure 9: the ARVR program's traces on BeeGFS, OrangeFS,
//! GlusterFS and GPFS, and the legal storage states under causal
//! consistency.
//!
//! Usage: `cargo run --release -p pc-bench --bin fig9 [--paper]`

use paracrash::model::Model;
use paracrash::stack::replay_pfs;
use pc_bench::params_from_args;
use tracer::CausalityGraph;
use workloads::{FsKind, Program};

fn main() {
    let params = params_from_args();

    // (a) Legal PFS states under causal consistency.
    println!("(a) legal PFS states of ARVR under causal crash consistency\n");
    let fs = FsKind::BeeGfs;
    let stack = Program::Arvr.run(fs, &params);
    let factory = fs.factory(&params);
    let graph = CausalityGraph::build(&stack.rec);
    let ops = stack.calls.event_ids();
    let mut seen = std::collections::BTreeSet::new();
    for set in Model::Causal.preserved_sets(&graph, &ops, &[]) {
        let subset = stack.calls.subset(&set);
        let names: Vec<String> = subset.iter().map(|(_, c)| c.name().to_string()).collect();
        if let Some(view) = replay_pfs(&factory, &stack.pre_calls, &subset) {
            if seen.insert(view.digest()) {
                println!("preserved {{{}}}:", names.join(", "));
                for line in view.to_string().lines() {
                    println!("    {line}");
                }
            }
        }
    }

    // (b)–(d) traces per PFS.
    for fs in [
        FsKind::BeeGfs,
        FsKind::OrangeFs,
        FsKind::GlusterFs,
        FsKind::Gpfs,
    ] {
        println!(
            "\n({}) ARVR trace on {}\n",
            fs.name().to_lowercase(),
            fs.name()
        );
        let stack = Program::Arvr.run(fs, &params);
        print!("{}", stack.rec.render());
    }
}
