//! The fuzzing campaign driver: generated corpus × (file system ×
//! journaling mode) through `check_stack`, folded into a
//! [`FuzzCorpus`], with automatic triage of novel findings.
//!
//! Cells run **sequentially** on purpose: `check_stack` already
//! parallelizes internally over crash states, and its
//! `canonical_report` is `PC_THREADS`-invariant — so running the cell
//! loop in-order makes the whole campaign's report byte-identical
//! whatever the thread count, which is exactly the determinism contract
//! the CI crash gate diffs (`paracrash::fuzz` module docs).
//!
//! Triage: [`FuzzCorpus::record_cell`] returns the keys a cell *newly*
//! contributed. Only those cells are re-run with the explain engine
//! enabled (the provenance pass costs real time on buggy cells), and
//! each novel finding gets a self-contained bundle under
//! `findings_out`: Markdown report, Graphviz causal graph, JSON
//! (minimal witness + violated edges + state diff), plus a `.repro`
//! file with the exact workload label and re-run command line.
//!
//! Live observability rides along without touching the fold: each cell
//! gets a fresh causal trace id, its wall time feeds the
//! [`crate::progress::CampaignMeter`] (PC_PROGRESS lines, stall and
//! throughput-regression warnings), and — when the event stream is on —
//! the driver publishes a `cell` event per completed cell, a `finding`
//! event per novel finding, and a `snapshot` event with the Good–Turing
//! saturation estimate every [`SNAPSHOT_EVERY`] cells, flushing the
//! flight recorder to the sink after every cell so a killed campaign
//! leaves a readable stream behind.

use paracrash::fuzz::FindingKey;
use paracrash::{check_stack, CheckConfig, FuzzCorpus};
use pc_rt::obs::stream;
use pc_rt::pc_warn;
use simfs::JournalMode;
use workloads::generated::{self, GeneratedWorkload};
use workloads::{FsKind, Params};

use crate::progress::CampaignMeter;

/// Emit a `snapshot` delta event (and flush) every this many cells.
pub const SNAPSHOT_EVERY: usize = 32;

/// Short journaling-mode label used in reports, bundle names and the
/// CLI (`--modes data,ordered,…`).
pub fn mode_label(mode: JournalMode) -> &'static str {
    match mode {
        JournalMode::Data => "data",
        JournalMode::Ordered => "ordered",
        JournalMode::Writeback => "writeback",
        JournalMode::None => "none",
    }
}

/// Parse a `--modes` list: comma-separated short labels or `all`.
pub fn parse_modes(spec: &str) -> Option<Vec<JournalMode>> {
    if spec.eq_ignore_ascii_case("all") {
        return Some(vec![
            JournalMode::Data,
            JournalMode::Ordered,
            JournalMode::Writeback,
            JournalMode::None,
        ]);
    }
    spec.split(',').map(JournalMode::parse).collect()
}

/// Everything one fuzzing campaign needs.
pub struct FuzzOptions {
    /// Maximum POSIX sequence length (HDF5/MPI-IO sequences are one op
    /// shorter — `workloads::generated` module docs).
    pub bound: usize,
    /// Seed for the sampling mode (ignored when `sample` is `None`, but
    /// still recorded in `.repro` files so a finding names its run).
    pub seed: u64,
    /// `Some(n)`: check a seeded deterministic sample of `n` workloads
    /// instead of the exhaustive corpus (the nightly tier).
    pub sample: Option<usize>,
    /// File systems under test.
    pub file_systems: Vec<FsKind>,
    /// Journaling modes of the servers' local stores (the sweep axis
    /// GPFS ignores — it journals at the block layer).
    pub modes: Vec<JournalMode>,
    /// Directory for per-finding triage bundles; `None` skips triage.
    pub findings_out: Option<String>,
    /// Workload parameters (quick or paper scale).
    pub params: Params,
    /// Checker configuration (explain is forced on only for the triage
    /// re-runs, never for the sweep itself).
    pub cfg: CheckConfig,
}

impl FuzzOptions {
    /// The PR-tier defaults: exhaustive bound-2 corpus, BeeGFS +
    /// OrangeFS, data journaling, quick parameters, no triage output.
    /// Representative-state digests are collected so the corpus (and
    /// its pinned report) counts distinct crash states, not just
    /// verdict classes.
    pub fn pr_tier() -> FuzzOptions {
        let mut cfg = CheckConfig::paper_default();
        cfg.collect_rep_digests = true;
        FuzzOptions {
            bound: 2,
            seed: 42,
            sample: None,
            file_systems: vec![FsKind::BeeGfs, FsKind::OrangeFs],
            modes: vec![JournalMode::Data],
            findings_out: None,
            params: Params::quick(),
            cfg,
        }
    }
}

/// What a campaign produced.
pub struct FuzzReport {
    /// The deduplicated findings corpus.
    pub corpus: FuzzCorpus,
    /// Workloads drawn from the generator (corpus or sample size).
    pub workloads: usize,
    /// Triage bundles written (0 without `findings_out`).
    pub bundles: usize,
}

/// Filesystem-safe bundle-name component.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

/// Run one campaign: every generated workload through every
/// `(fs, mode)` cell, deduplicating into a [`FuzzCorpus`] and writing
/// triage bundles for novel findings.
pub fn fuzz_campaign(opts: &FuzzOptions) -> Result<FuzzReport, String> {
    let workloads = match opts.sample {
        Some(n) => generated::sample(opts.bound, opts.seed, n),
        None => generated::corpus(opts.bound),
    };
    let mut corpus = FuzzCorpus::new();
    let mut bundles = 0usize;
    let total_cells = workloads.len() * opts.file_systems.len() * opts.modes.len();
    let mut meter = CampaignMeter::new(total_cells);
    for w in &workloads {
        for &fs in &opts.file_systems {
            for &mode in &opts.modes {
                let params = opts.params.clone().with_journal(mode);
                let label = w.label();
                let cell_label = format!("{label}@{}/{}", fs.name(), mode_label(mode));
                // Fresh causal trace id: every span this cell opens —
                // replay, checker stages, simnet RPC on pool workers —
                // tags it, giving Chrome-trace one flow per check.
                pc_rt::obs::set_trace_id(pc_rt::obs::next_trace_id());
                let started = std::time::Instant::now();
                let stack = w.run(fs, &params);
                let factory = fs.factory(&params);
                let outcome = check_stack(&stack, &factory, &opts.cfg);
                let wall_ns = started.elapsed().as_nanos() as u64;
                let novel = corpus.record_cell(&label, fs.name(), mode_label(mode), &outcome);
                if stream::enabled() {
                    for (key_fs, journal, signature, layer) in &novel {
                        stream::emit(
                            stream::EventKind::Finding,
                            &format!("{key_fs}/{journal}"),
                            1,
                            &format!("{signature} [{layer:?}] first={label}"),
                        );
                    }
                    stream::emit(
                        stream::EventKind::Cell,
                        &cell_label,
                        wall_ns,
                        &format!(
                            "behaviors={} findings={} buggy={}",
                            corpus.behavior_count(),
                            corpus.finding_count(),
                            corpus.buggy_cells,
                        ),
                    );
                }
                pc_rt::obs::set_trace_id(0);
                if !novel.is_empty() {
                    if let Some(dir) = &opts.findings_out {
                        bundles += triage(dir, w, fs, &params, &opts.cfg, &novel, opts)?;
                    }
                }
                for warning in meter.note_cell(&cell_label, wall_ns) {
                    pc_warn!("{warning}");
                }
                meter.maybe_print(
                    corpus.behavior_count(),
                    corpus.finding_count(),
                    corpus.saturation(),
                );
                if stream::enabled() {
                    let done = meter.done();
                    if done % SNAPSHOT_EVERY == 0 || done == total_cells {
                        stream::emit(
                            stream::EventKind::Snapshot,
                            "campaign",
                            done as u64,
                            &format!(
                                "cells={done}/{total_cells} behaviors={} findings={} \
                                 saturation_pct={:.0}",
                                corpus.behavior_count(),
                                corpus.finding_count(),
                                corpus.saturation() * 100.0,
                            ),
                        );
                    }
                    // Per-cell drain: a killed or wedged campaign still
                    // leaves everything up to its last finished cell.
                    stream::flush();
                }
            }
        }
    }
    Ok(FuzzReport {
        corpus,
        workloads: workloads.len(),
        bundles,
    })
}

/// Re-run one novel cell through the explain engine and write one
/// bundle per novel finding key. Returns the number of bundles written.
/// Shared with the resumable campaign driver ([`crate::campaign`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn triage(
    dir: &str,
    w: &GeneratedWorkload,
    fs: FsKind,
    params: &Params,
    cfg: &CheckConfig,
    novel: &[FindingKey],
    opts: &FuzzOptions,
) -> Result<usize, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    let mut explain_cfg = cfg.clone();
    explain_cfg.explain = true;
    let stack = w.run(fs, params);
    let factory = fs.factory(params);
    let outcome = check_stack(&stack, &factory, &explain_cfg);
    let mut written = 0usize;
    for (i, key) in novel.iter().enumerate() {
        let (_, journal, signature, layer) = key;
        let stem = format!(
            "{}-{}-{}",
            sanitize(fs.name()),
            sanitize(journal),
            sanitize(&format!("{}-{:02}", w.label(), i + 1)),
        );
        let write = |ext: &str, text: String| -> Result<(), String> {
            let path = format!("{dir}/{stem}.{ext}");
            std::fs::write(&path, text).map_err(|e| format!("cannot write {path}: {e}"))
        };
        let context = format!("{} on {} ({journal})", w.label(), fs.name());
        if let Some(e) = outcome
            .explanations
            .iter()
            .find(|e| e.signature.to_string() == *signature && e.layer == *layer)
        {
            write("md", e.to_markdown(&context))?;
            write("dot", e.to_dot())?;
            let mut json = e.to_json().pretty();
            json.push('\n');
            write("json", json)?;
        }
        let sample_arg = match opts.sample {
            Some(n) => format!(" --sample {n}"),
            None => String::new(),
        };
        write(
            "repro",
            format!(
                "workload: {}\nfs: {}\njournal: {}\nsignature: {}\nlayer: {:?}\n\
                 repro: paracrash fuzz --bound {} --seed {}{} --fs {} --modes {}\n",
                w.label(),
                fs.name(),
                journal,
                signature,
                layer,
                opts.bound,
                opts.seed,
                sample_arg,
                fs.name(),
                journal,
            ),
        )?;
        written += 1;
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing_roundtrips() {
        assert_eq!(parse_modes("all").unwrap().len(), 4);
        assert_eq!(
            parse_modes("data,none").unwrap(),
            vec![JournalMode::Data, JournalMode::None]
        );
        assert!(parse_modes("data,wat").is_none());
        for m in parse_modes("all").unwrap() {
            assert_eq!(parse_modes(mode_label(m)).unwrap(), vec![m]);
        }
    }

    #[test]
    fn tiny_campaign_is_deterministic() {
        // One FS, one mode, sampled corpus: two runs must render
        // byte-identical reports.
        let opts = FuzzOptions {
            sample: Some(6),
            file_systems: vec![FsKind::BeeGfs],
            ..FuzzOptions::pr_tier()
        };
        let a = fuzz_campaign(&opts).unwrap();
        let b = fuzz_campaign(&opts).unwrap();
        assert_eq!(a.workloads, 6);
        assert_eq!(
            a.corpus.canonical_report(),
            b.corpus.canonical_report(),
            "same seed+bound must reproduce byte-identically"
        );
        assert_eq!(a.corpus.cells, 6);
    }
}
