//! The crash-safe, resumable campaign driver (`paracrash campaign`).
//!
//! A representative-testing sweep at campaign scale runs long enough to
//! be killed, OOM-ed or power-cycled mid-run, so this driver applies
//! the discipline the checker demands of the systems it tests to its
//! own state:
//!
//! * **Persistent corpus** — every finished cell appends one record to
//!   an append-only, CRC-checked [`pc_rt::durable::RecordLog`]
//!   (`<state-dir>/corpus.log`): the cell's verdict essentials (bugs,
//!   diagnostics, representative crash-state digests) serialized as
//!   JSON. The append is the cell's *commit point* — triage bundles are
//!   written before it, so a crash between them merely re-runs the cell
//!   and rewrites identical bundles.
//! * **Checkpoint/resume** — every [`CampaignOptions::checkpoint_every`]
//!   cells (and at the end) the driver publishes
//!   `<state-dir>/checkpoint.json` via [`pc_rt::durable::write_atomic`]:
//!   cursor, consumed-record count, and the full
//!   [`FuzzCorpus::to_json`] serialization. On `--resume` the driver
//!   loads the checkpoint, replays only the log tail through the *same*
//!   [`FuzzCorpus::record_cell`] fold as a live run, and continues at
//!   the first unrecorded cell — so a resumed campaign's final
//!   [`FuzzCorpus::canonical_report`] is byte-identical to an
//!   uninterrupted one (pinned by `tests/campaign_resume.rs` and
//!   verify gate 13).
//! * **Per-cell fault tolerance** — each cell runs on a watchdog
//!   thread. A panic is retried with exponential backoff up to
//!   [`CampaignOptions::max_retries`] times; a cell that exceeds
//!   [`CampaignOptions::cell_timeout`] or exhausts its retries is
//!   **quarantined**: the sweep records a `quarantined:` diagnostic
//!   (part of the canonical report — a ledger, not a silent skip) and
//!   moves on. A hung cell's thread is deliberately leaked; only the
//!   watchdog returns.
//!
//! Robustness counters (`campaign.resumed_cells`, `campaign.retries`,
//! `campaign.quarantined`) flow through [`pc_rt::obs::count`] into the
//! telemetry registry, the event stream, and the `paracrash report`
//! dashboard; they are deliberately *not* part of the canonical report,
//! which must stay byte-identical between a clean run and a
//! crash-and-resume run.
//!
//! Self-crash-testing: arm `PC_DURABLE_CRASH=at=N[,tear=K][,mode=..]`
//! (see [`pc_rt::durable`]) to kill the campaign at its N-th durability
//! point — mid-append, torn, or mid-checkpoint — then resume with
//! `--resume`. `PC_CAMPAIGN_POISON=<label-substr>:<panic|panic-once|hang>`
//! poisons matching cells to exercise the watchdog plane.

use h5sim::json::Json;
use paracrash::{
    check_stack, BugKind, BugSignature, CheckOutcome, FuzzCorpus, Inconsistency, LayerVerdict,
    Model,
};
use pc_rt::durable::{write_atomic, RecordLog};
use pc_rt::obs::stream;
use pc_rt::pc_warn;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::time::Duration;
use workloads::generated::{self, GeneratedWorkload};
use workloads::FsKind;

use crate::fuzz_driver::{mode_label, triage, FuzzOptions, SNAPSHOT_EVERY};
use crate::progress::CampaignMeter;
use simfs::JournalMode;

/// Environment variable poisoning matching cells (watchdog testing):
/// `<label-substring>:<panic|panic-once|hang>`.
pub const POISON_ENV: &str = "PC_CAMPAIGN_POISON";

/// Everything one resumable campaign needs on top of the fuzz sweep.
pub struct CampaignOptions {
    /// The underlying sweep: corpus bound/seed/sample, file systems,
    /// journal modes, triage output, params, checker config.
    pub fuzz: FuzzOptions,
    /// Directory holding `corpus.log` and `checkpoint.json`.
    pub state_dir: String,
    /// Continue from existing state instead of refusing to clobber it.
    pub resume: bool,
    /// Per-cell watchdog deadline; `None` waits forever (no watchdog
    /// timeout, panics still retried).
    pub cell_timeout: Option<Duration>,
    /// Retries (with exponential backoff) before a panicking cell is
    /// quarantined.
    pub max_retries: usize,
    /// Checkpoint cadence in cells (a final checkpoint is always
    /// written).
    pub checkpoint_every: usize,
}

impl CampaignOptions {
    /// Defaults on top of a fuzz sweep: no resume, no deadline, two
    /// retries, checkpoint every 16 cells.
    pub fn new(fuzz: FuzzOptions, state_dir: &str) -> CampaignOptions {
        CampaignOptions {
            fuzz,
            state_dir: state_dir.to_string(),
            resume: false,
            cell_timeout: None,
            max_retries: 2,
            checkpoint_every: 16,
        }
    }
}

/// What one campaign run (or resume) produced.
#[derive(Debug)]
pub struct CampaignReport {
    /// The corpus, including everything recovered from prior runs.
    pub corpus: FuzzCorpus,
    /// Workloads drawn from the generator.
    pub workloads: usize,
    /// Total cells in the sweep (workloads × fs × modes).
    pub total_cells: usize,
    /// Cells recovered from the log/checkpoint instead of re-checked.
    pub resumed_cells: usize,
    /// Cells actually checked by this process.
    pub cells_run: usize,
    /// Panicking cell attempts that were retried.
    pub retries: usize,
    /// Cells quarantined (hung past the deadline or panicked on every
    /// attempt).
    pub quarantined: usize,
    /// Triage bundles written by this process.
    pub bundles: usize,
}

/// Why a cell attempt did not return an outcome.
enum CellFailure {
    /// The watchdog deadline elapsed; the cell thread is leaked.
    Timeout(Duration),
    /// The cell panicked; message from the payload.
    Panic(String),
}

/// Test hook: poison matching cells (see [`POISON_ENV`]). Runs on the
/// cell thread, inside its `catch_unwind`, before the check.
fn poison_hook(label: &str, attempt: usize) {
    let Ok(spec) = std::env::var(POISON_ENV) else {
        return;
    };
    let Some((substr, mode)) = spec.rsplit_once(':') else {
        return;
    };
    if substr.is_empty() || !label.contains(substr) {
        return;
    }
    match mode {
        "panic" => panic!("injected poison: {label}"),
        "panic-once" if attempt == 0 => panic!("injected poison (first attempt): {label}"),
        "hang" => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
        _ => {}
    }
}

/// One watchdog-guarded attempt: the check runs on its own thread, the
/// caller waits at most `timeout`. A timed-out thread is leaked — it
/// may be wedged inside simulation code that cannot be cancelled, and
/// killing threads is UB; the leak is the price of keeping the sweep
/// alive, and the quarantine ledger records it.
fn run_cell_attempt(
    w: &GeneratedWorkload,
    fs: FsKind,
    params: &workloads::Params,
    cfg: &paracrash::CheckConfig,
    label: &str,
    attempt: usize,
    timeout: Option<Duration>,
) -> Result<CheckOutcome, CellFailure> {
    let (tx, rx) = mpsc::channel();
    let (w, params, cfg, label) = (w.clone(), params.clone(), cfg.clone(), label.to_string());
    let handle = std::thread::Builder::new()
        .name("pc-campaign-cell".into())
        .spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                poison_hook(&label, attempt);
                let stack = w.run(fs, &params);
                let factory = fs.factory(&params);
                check_stack(&stack, &factory, &cfg)
            }))
            .map_err(|p| pc_rt::pool::panic_message(p.as_ref()));
            let _ = tx.send(result);
        })
        .expect("cannot spawn campaign cell thread");
    let result = match timeout {
        Some(t) => match rx.recv_timeout(t) {
            Ok(r) => r,
            Err(_) => return Err(CellFailure::Timeout(t)),
        },
        None => rx
            .recv()
            .unwrap_or_else(|_| Err("cell thread vanished".to_string())),
    };
    let _ = handle.join();
    result.map_err(CellFailure::Panic)
}

/// Bounded retry with exponential backoff around [`run_cell_attempt`].
/// `Err` means the cell must be quarantined.
fn run_cell_guarded(
    w: &GeneratedWorkload,
    fs: FsKind,
    params: &workloads::Params,
    cfg: &paracrash::CheckConfig,
    label: &str,
    max_retries: usize,
    timeout: Option<Duration>,
    retries: &mut usize,
) -> Result<CheckOutcome, String> {
    let mut attempt = 0usize;
    loop {
        match run_cell_attempt(w, fs, params, cfg, label, attempt, timeout) {
            Ok(outcome) => return Ok(outcome),
            Err(CellFailure::Timeout(t)) => {
                return Err(format!(
                    "cell deadline of {:.1}s exceeded (thread abandoned)",
                    t.as_secs_f64()
                ));
            }
            Err(CellFailure::Panic(msg)) => {
                if attempt >= max_retries {
                    return Err(format!("panicked on all {} attempts: {msg}", attempt + 1));
                }
                attempt += 1;
                *retries += 1;
                pc_rt::obs::count("campaign.retries", 1);
                // Exponential backoff, capped: transient failures (a
                // temporarily exhausted resource) get breathing room.
                std::thread::sleep(Duration::from_millis(5u64 << attempt.min(6)));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Record (de)serialization. The replay fold reconstructs each cell's
// CheckOutcome essentials and pushes them through the *same*
// FuzzCorpus::record_cell as the live run, so recovered state is
// byte-identical by construction, not by parallel bookkeeping.
// ---------------------------------------------------------------------------

fn get_int(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(Json::as_int)
        .ok_or_else(|| format!("campaign record: missing int {key}"))
}

fn get_str(j: &Json, key: &str) -> Result<String, String> {
    Ok(j.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("campaign record: missing string {key}"))?
        .to_string())
}

fn get_arr<'a>(j: &'a Json, key: &str) -> Result<&'a [Json], String> {
    j.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("campaign record: missing array {key}"))
}

fn str_arr(items: &[String]) -> Json {
    Json::Arr(items.iter().cloned().map(Json::Str).collect())
}

fn meta_record(opts: &FuzzOptions) -> Json {
    Json::Obj(vec![
        ("kind".into(), Json::Str("meta".into())),
        ("bound".into(), Json::Int(opts.bound as u64)),
        ("seed".into(), Json::Int(opts.seed)),
        (
            "sample".into(),
            match opts.sample {
                Some(n) => Json::Int(n as u64),
                None => Json::Null,
            },
        ),
        (
            "fs".into(),
            Json::Arr(
                opts.file_systems
                    .iter()
                    .map(|f| Json::Str(f.name().to_string()))
                    .collect(),
            ),
        ),
        (
            "modes".into(),
            Json::Arr(
                opts.modes
                    .iter()
                    .map(|&m| Json::Str(mode_label(m).to_string()))
                    .collect(),
            ),
        ),
    ])
}

/// Reject resuming with different sweep parameters: the cursor is an
/// index into the cell enumeration, so a changed corpus would silently
/// mis-attribute every recovered record.
fn check_meta(meta: &Json, opts: &FuzzOptions) -> Result<(), String> {
    let expected = meta_record(opts);
    if *meta != expected {
        return Err(format!(
            "campaign state was written by a different sweep \
             (logged {} vs requested {}); remove the state dir or rerun \
             with the original --bound/--seed/--sample/--fs/--modes",
            compact(meta),
            compact(&expected),
        ));
    }
    Ok(())
}

fn compact(j: &Json) -> String {
    j.pretty()
        .replace('\n', " ")
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
}

fn cell_record(idx: usize, workload: &str, fs: &str, journal: &str, o: &CheckOutcome) -> Json {
    let bugs = o
        .bugs
        .iter()
        .map(|b| {
            Json::Obj(vec![
                (
                    "kind".into(),
                    Json::Str(
                        match b.signature.kind {
                            BugKind::Reordering => "reordering",
                            BugKind::Atomicity => "atomicity",
                        }
                        .into(),
                    ),
                ),
                ("members".into(), str_arr(&b.signature.members)),
                (
                    "layer".into(),
                    Json::Str(
                        match b.layer {
                            LayerVerdict::IoLibBug => "iolib",
                            LayerVerdict::PfsBug => "pfs",
                        }
                        .into(),
                    ),
                ),
                (
                    "violated_model".into(),
                    Json::Str(b.violated_model.as_str().into()),
                ),
                ("witness".into(), str_arr(&b.witness)),
                ("occurrences".into(), Json::Int(b.occurrences as u64)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("kind".into(), Json::Str("cell".into())),
        ("idx".into(), Json::Int(idx as u64)),
        ("workload".into(), Json::Str(workload.into())),
        ("fs".into(), Json::Str(fs.into())),
        ("journal".into(), Json::Str(journal.into())),
        (
            "raw_inconsistent".into(),
            Json::Int(o.raw_inconsistent_states as u64),
        ),
        ("diagnostics".into(), str_arr(&o.diagnostics)),
        (
            "rep_digests".into(),
            Json::Arr(o.rep_digests.iter().map(|&d| Json::Int(d)).collect()),
        ),
        ("bugs".into(), Json::Arr(bugs)),
    ])
}

fn quarantine_record(idx: usize, workload: &str, fs: &str, journal: &str, reason: &str) -> Json {
    Json::Obj(vec![
        ("kind".into(), Json::Str("quarantine".into())),
        ("idx".into(), Json::Int(idx as u64)),
        ("workload".into(), Json::Str(workload.into())),
        ("fs".into(), Json::Str(fs.into())),
        ("journal".into(), Json::Str(journal.into())),
        ("reason".into(), Json::Str(reason.into())),
    ])
}

/// Rebuild the [`CheckOutcome`] essentials a `cell` record carries.
fn outcome_from_record(rec: &Json) -> Result<CheckOutcome, String> {
    let mut bugs = Vec::new();
    for b in get_arr(rec, "bugs")? {
        let kind = match get_str(b, "kind")?.as_str() {
            "reordering" => BugKind::Reordering,
            "atomicity" => BugKind::Atomicity,
            other => return Err(format!("campaign record: unknown bug kind {other}")),
        };
        let layer = match get_str(b, "layer")?.as_str() {
            "iolib" => LayerVerdict::IoLibBug,
            "pfs" => LayerVerdict::PfsBug,
            other => return Err(format!("campaign record: unknown layer {other}")),
        };
        let model_str = get_str(b, "violated_model")?;
        let violated_model = Model::parse(&model_str)
            .ok_or_else(|| format!("campaign record: unknown model {model_str}"))?;
        let to_strings = |key: &str| -> Result<Vec<String>, String> {
            get_arr(b, key)?
                .iter()
                .map(|s| {
                    Ok(s.as_str()
                        .ok_or_else(|| format!("campaign record: non-string in {key}"))?
                        .to_string())
                })
                .collect()
        };
        bugs.push(Inconsistency {
            signature: BugSignature {
                kind,
                members: to_strings("members")?,
            },
            layer,
            violated_model,
            witness: to_strings("witness")?,
            occurrences: get_int(b, "occurrences")? as usize,
        });
    }
    let mut diagnostics = Vec::new();
    for d in get_arr(rec, "diagnostics")? {
        diagnostics.push(
            d.as_str()
                .ok_or("campaign record: non-string diagnostic")?
                .to_string(),
        );
    }
    let mut rep_digests = Vec::new();
    for d in get_arr(rec, "rep_digests")? {
        rep_digests.push(d.as_int().ok_or("campaign record: non-int rep digest")?);
    }
    Ok(CheckOutcome {
        bugs,
        raw_inconsistent_states: get_int(rec, "raw_inconsistent")? as usize,
        diagnostics,
        rep_digests,
        ..Default::default()
    })
}

/// Fold a quarantine into the corpus: the ledger line is part of the
/// canonical report (same path live and on replay).
fn fold_quarantine(corpus: &mut FuzzCorpus, workload: &str, fs: &str, journal: &str, reason: &str) {
    corpus.diagnostics.push(format!(
        "{workload} on {fs}/{journal}: quarantined: {reason}"
    ));
}

// ---------------------------------------------------------------------------
// Recovery.
// ---------------------------------------------------------------------------

/// State recovered from `<state-dir>`: the rebuilt corpus and the index
/// of the first cell that still needs checking.
struct Recovered {
    corpus: FuzzCorpus,
    cursor: usize,
}

/// Replay `records` (already CRC-validated by [`RecordLog::open`])
/// through the corpus fold, optionally fast-forwarding from a
/// checkpoint. Record `idx` fields must be contiguous from the cursor —
/// anything else means the state dir was tampered with or mixes runs.
fn recover(
    opts: &CampaignOptions,
    records: &[Vec<u8>],
    checkpoint: Option<&Json>,
) -> Result<Recovered, String> {
    let parsed: Vec<Json> = records
        .iter()
        .enumerate()
        .map(|(i, bytes)| {
            let text = std::str::from_utf8(bytes)
                .map_err(|_| format!("campaign log: record {i} is not UTF-8"))?;
            Json::parse(text).map_err(|e| format!("campaign log: record {i}: {e}"))
        })
        .collect::<Result<_, _>>()?;
    if let Some(first) = parsed.first() {
        check_meta(first, &opts.fuzz)?;
    }
    let mut corpus = FuzzCorpus::new();
    let mut cursor = 0usize;
    let mut consumed = parsed.len().min(1); // the meta record
    if let Some(ckpt) = checkpoint {
        // A checkpoint fast-forwards the replay; a stale or foreign one
        // is ignored (the log alone is sufficient), never trusted past
        // what the log can corroborate.
        match checkpoint_state(ckpt, parsed.len()) {
            Ok((c, n, recovered_corpus)) => {
                corpus = recovered_corpus;
                cursor = c;
                consumed = n;
            }
            Err(why) => pc_warn!("campaign: ignoring checkpoint ({why}); replaying full log"),
        }
    }
    for rec in &parsed[consumed..] {
        let idx = get_int(rec, "idx")? as usize;
        if idx != cursor {
            return Err(format!(
                "campaign log: record for cell {idx} where cell {cursor} was expected \
                 (state dir corrupted or mixed between runs)"
            ));
        }
        let workload = get_str(rec, "workload")?;
        let fs = get_str(rec, "fs")?;
        let journal = get_str(rec, "journal")?;
        match get_str(rec, "kind")?.as_str() {
            "cell" => {
                let outcome = outcome_from_record(rec)?;
                corpus.record_cell(&workload, &fs, &journal, &outcome);
            }
            "quarantine" => {
                fold_quarantine(
                    &mut corpus,
                    &workload,
                    &fs,
                    &journal,
                    &get_str(rec, "reason")?,
                );
            }
            other => return Err(format!("campaign log: unknown record kind {other}")),
        }
        cursor += 1;
    }
    Ok(Recovered { corpus, cursor })
}

/// Validate and unpack a checkpoint against the replayed log length.
fn checkpoint_state(ckpt: &Json, log_records: usize) -> Result<(usize, usize, FuzzCorpus), String> {
    if get_str(ckpt, "kind")? != "checkpoint" {
        return Err("not a campaign checkpoint".into());
    }
    let cursor = get_int(ckpt, "cursor")? as usize;
    let consumed = get_int(ckpt, "records")? as usize;
    if consumed > log_records {
        // The checkpoint claims records the (truncated) log no longer
        // has — possible only if the log was damaged *behind* its tail.
        return Err(format!(
            "checkpoint covers {consumed} records but the log holds {log_records}"
        ));
    }
    if consumed != cursor + 1 {
        return Err(format!(
            "checkpoint cursor {cursor} inconsistent with {consumed} records"
        ));
    }
    let corpus = ckpt
        .get("corpus")
        .ok_or("checkpoint missing corpus")
        .and_then(|c| FuzzCorpus::from_json(c).map_err(|_| "unreadable corpus"))
        .map_err(String::from)?;
    Ok((cursor, consumed, corpus))
}

fn write_checkpoint(path: &Path, cursor: usize, corpus: &FuzzCorpus) -> Result<(), String> {
    let ckpt = Json::Obj(vec![
        ("kind".into(), Json::Str("checkpoint".into())),
        ("cursor".into(), Json::Int(cursor as u64)),
        ("records".into(), Json::Int(cursor as u64 + 1)),
        ("corpus".into(), corpus.to_json()),
    ]);
    let mut text = ckpt.pretty();
    text.push('\n');
    write_atomic(path, text.as_bytes())
        .map_err(|e| format!("cannot write checkpoint {}: {e}", path.display()))
}

// ---------------------------------------------------------------------------
// The driver.
// ---------------------------------------------------------------------------

/// Run (or resume) one campaign. See the module docs for the crash-
/// safety contract; stdout formatting is the caller's job — the report
/// carries the corpus.
pub fn run_campaign(opts: &CampaignOptions) -> Result<CampaignReport, String> {
    let workloads = match opts.fuzz.sample {
        Some(n) => generated::sample(opts.fuzz.bound, opts.fuzz.seed, n),
        None => generated::corpus(opts.fuzz.bound),
    };
    // Flat, deterministic cell enumeration — the same nesting order as
    // the fuzzer (workload outer, fs, then mode), so cursor N always
    // names the same cell for a given meta record.
    let cells: Vec<(usize, FsKind, JournalMode)> = workloads
        .iter()
        .enumerate()
        .flat_map(|(wi, _)| {
            opts.fuzz
                .file_systems
                .iter()
                .flat_map(move |&fs| opts.fuzz.modes.iter().map(move |&mode| (wi, fs, mode)))
        })
        .collect();
    let total_cells = cells.len();

    let state_dir = PathBuf::from(&opts.state_dir);
    let log_path = state_dir.join("corpus.log");
    let ckpt_path = state_dir.join("checkpoint.json");
    if !opts.resume && log_path.exists() {
        return Err(format!(
            "campaign state already exists at {}; pass --resume to continue it \
             or remove the directory to start over",
            state_dir.display()
        ));
    }
    let (mut log, raw_records) = RecordLog::open(&log_path)
        .map_err(|e| format!("cannot open campaign log {}: {e}", log_path.display()))?;
    let checkpoint_text = if opts.resume {
        std::fs::read_to_string(&ckpt_path).ok()
    } else {
        None
    };
    let checkpoint = match &checkpoint_text {
        Some(text) => match Json::parse(text) {
            Ok(j) => Some(j),
            Err(e) => {
                pc_warn!("campaign: unreadable checkpoint ({e}); replaying full log");
                None
            }
        },
        None => None,
    };
    let recovered = recover(opts, &raw_records, checkpoint.as_ref())?;
    let mut corpus = recovered.corpus;
    let start_cursor = recovered.cursor;
    if start_cursor > total_cells {
        return Err(format!(
            "campaign log holds {start_cursor} cells but the sweep only has {total_cells}"
        ));
    }
    if raw_records.is_empty() {
        let mut text = meta_record(&opts.fuzz).pretty();
        text.push('\n');
        log.append(text.as_bytes())
            .map_err(|e| format!("cannot append campaign meta record: {e}"))?;
    }
    if start_cursor > 0 {
        pc_rt::obs::count("campaign.resumed_cells", start_cursor as u64);
    }

    let mut report = CampaignReport {
        corpus: FuzzCorpus::new(), // placeholder, swapped in at the end
        workloads: workloads.len(),
        total_cells,
        resumed_cells: start_cursor,
        cells_run: 0,
        retries: 0,
        quarantined: 0,
        bundles: 0,
    };
    let mut meter = CampaignMeter::new(total_cells);
    for (idx, &(wi, fs, mode)) in cells.iter().enumerate().skip(start_cursor) {
        let w = &workloads[wi];
        let params = opts.fuzz.params.clone().with_journal(mode);
        let label = w.label();
        let journal = mode_label(mode);
        let cell_label = format!("{label}@{}/{journal}", fs.name());
        pc_rt::obs::set_trace_id(pc_rt::obs::next_trace_id());
        let started = std::time::Instant::now();
        let guarded = run_cell_guarded(
            w,
            fs,
            &params,
            &opts.fuzz.cfg,
            &cell_label,
            opts.max_retries,
            opts.cell_timeout,
            &mut report.retries,
        );
        let wall_ns = started.elapsed().as_nanos() as u64;
        let record = match guarded {
            Ok(outcome) => {
                let novel = corpus.record_cell(&label, fs.name(), journal, &outcome);
                if stream::enabled() {
                    for (key_fs, key_journal, signature, layer) in &novel {
                        stream::emit(
                            stream::EventKind::Finding,
                            &format!("{key_fs}/{key_journal}"),
                            1,
                            &format!("{signature} [{layer:?}] first={label}"),
                        );
                    }
                    stream::emit(
                        stream::EventKind::Cell,
                        &cell_label,
                        wall_ns,
                        &format!(
                            "behaviors={} findings={} buggy={}",
                            corpus.behavior_count(),
                            corpus.finding_count(),
                            corpus.buggy_cells,
                        ),
                    );
                }
                // Bundles first, then the commit-point append: a crash
                // between them re-runs the cell and rewrites identical
                // bundles, never the reverse (a record without bundles).
                if !novel.is_empty() {
                    if let Some(dir) = &opts.fuzz.findings_out {
                        report.bundles +=
                            triage(dir, w, fs, &params, &opts.fuzz.cfg, &novel, &opts.fuzz)?;
                    }
                }
                cell_record(idx, &label, fs.name(), journal, &outcome)
            }
            Err(reason) => {
                report.quarantined += 1;
                pc_rt::obs::count("campaign.quarantined", 1);
                pc_warn!("campaign: quarantined {cell_label}: {reason}");
                fold_quarantine(&mut corpus, &label, fs.name(), journal, &reason);
                quarantine_record(idx, &label, fs.name(), journal, &reason)
            }
        };
        pc_rt::obs::set_trace_id(0);
        let mut text = record.pretty();
        text.push('\n');
        log.append(text.as_bytes())
            .map_err(|e| format!("cannot append campaign record {idx}: {e}"))?;
        report.cells_run += 1;
        for warning in meter.note_cell(&cell_label, wall_ns) {
            pc_warn!("{warning}");
        }
        meter.maybe_print(
            corpus.behavior_count(),
            corpus.finding_count(),
            corpus.saturation(),
        );
        if stream::enabled() {
            let done = idx + 1;
            if done % SNAPSHOT_EVERY == 0 || done == total_cells {
                stream::emit(
                    stream::EventKind::Snapshot,
                    "campaign",
                    done as u64,
                    &format!(
                        "cells={done}/{total_cells} behaviors={} findings={} \
                         rep_states={} saturation_pct={:.0}",
                        corpus.behavior_count(),
                        corpus.finding_count(),
                        corpus.rep_state_count(),
                        corpus.saturation() * 100.0,
                    ),
                );
            }
            stream::flush();
        }
        if report.cells_run % opts.checkpoint_every == 0 {
            write_checkpoint(&ckpt_path, idx + 1, &corpus)?;
        }
    }
    write_checkpoint(&ckpt_path, total_cells, &corpus)?;
    if pc_rt::obs::summary_enabled() {
        eprintln!(
            "campaign: campaign.resumed_cells = {}  campaign.retries = {}  \
             campaign.quarantined = {}",
            report.resumed_cells, report.retries, report.quarantined,
        );
    }
    report.corpus = corpus;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_rt::durable::{arm_crash, disarm_crash, reset_points, CrashMode, CrashSpec};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, MutexGuard};

    /// Crash-injection and poison state are process-global; serialize
    /// the campaign tests.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock_tests() -> MutexGuard<'static, ()> {
        match TEST_LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "pc-campaign-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tiny_opts(dir: &Path) -> CampaignOptions {
        let fuzz = FuzzOptions {
            sample: Some(5),
            file_systems: vec![FsKind::BeeGfs],
            ..FuzzOptions::pr_tier()
        };
        let mut opts = CampaignOptions::new(fuzz, dir.to_str().unwrap());
        opts.checkpoint_every = 2;
        opts
    }

    #[test]
    fn campaign_matches_fuzz_and_refuses_clobber() {
        let _g = lock_tests();
        disarm_crash();
        let dir = scratch_dir("basic");
        let opts = tiny_opts(&dir);
        let report = run_campaign(&opts).unwrap();
        assert_eq!(report.total_cells, 5);
        assert_eq!(report.cells_run, 5);
        assert_eq!(report.resumed_cells, 0);
        // Same sweep through the plain fuzzer: identical corpus.
        let fuzz_report = crate::fuzz_driver::fuzz_campaign(&opts.fuzz).unwrap();
        assert_eq!(
            report.corpus.canonical_report(),
            fuzz_report.corpus.canonical_report(),
            "campaign and fuzz folds must agree cell-for-cell"
        );
        assert!(report.corpus.rep_state_count() > 0, "digests collected");
        // Re-running without --resume must refuse, not clobber.
        let err = run_campaign(&opts).unwrap_err();
        assert!(err.contains("--resume"), "got: {err}");
        // Resuming a *finished* campaign replays to the same report.
        let resumed = run_campaign(&CampaignOptions {
            resume: true,
            ..tiny_opts(&dir)
        })
        .unwrap();
        assert_eq!(resumed.resumed_cells, 5);
        assert_eq!(resumed.cells_run, 0);
        assert_eq!(
            resumed.corpus.canonical_report(),
            report.corpus.canonical_report()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_mid_sweep_resumes_byte_identically() {
        let _g = lock_tests();
        disarm_crash();
        let ref_dir = scratch_dir("crash-ref");
        let reference = run_campaign(&tiny_opts(&ref_dir)).unwrap();
        // Crash at the 4th durability point: meta append + cells, so
        // mid-sweep with some cells committed.
        let dir = scratch_dir("crash-resume");
        reset_points();
        arm_crash(CrashSpec {
            at: 4,
            tear: Some(9),
            mode: CrashMode::Panic,
        });
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_campaign(&tiny_opts(&dir))
        }));
        disarm_crash();
        assert!(crashed.is_err(), "armed crash must fire mid-campaign");
        let resumed = run_campaign(&CampaignOptions {
            resume: true,
            ..tiny_opts(&dir)
        })
        .unwrap();
        assert!(resumed.resumed_cells > 0, "some cells survived the crash");
        assert!(resumed.cells_run > 0, "the tail was re-run");
        assert_eq!(
            resumed.corpus.canonical_report(),
            reference.corpus.canonical_report(),
            "resume must be byte-identical to the uninterrupted run"
        );
        std::fs::remove_dir_all(&ref_dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_with_different_sweep_is_rejected() {
        let _g = lock_tests();
        disarm_crash();
        let dir = scratch_dir("meta");
        run_campaign(&tiny_opts(&dir)).unwrap();
        let mut other = tiny_opts(&dir);
        other.resume = true;
        other.fuzz.seed = 7;
        other.fuzz.sample = Some(4);
        let err = run_campaign(&other).unwrap_err();
        assert!(err.contains("different sweep"), "got: {err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn watchdog_retries_and_quarantines() {
        let _g = lock_tests();
        disarm_crash();
        let clean_dir = scratch_dir("poison-clean");
        let clean = run_campaign(&tiny_opts(&clean_dir)).unwrap();
        let victim = {
            let opts = tiny_opts(&clean_dir);
            generated::sample(opts.fuzz.bound, opts.fuzz.seed, 5)[0].label()
        };

        // panic-once: the retry succeeds, so the corpus is unaffected.
        let retry_dir = scratch_dir("poison-retry");
        std::env::set_var(POISON_ENV, format!("{victim}:panic-once"));
        let retried = run_campaign(&tiny_opts(&retry_dir));
        std::env::remove_var(POISON_ENV);
        let retried = retried.unwrap();
        assert_eq!(retried.retries, 1);
        assert_eq!(retried.quarantined, 0);
        assert_eq!(
            retried.corpus.canonical_report(),
            clean.corpus.canonical_report(),
            "a retried transient failure must not change the corpus"
        );

        // persistent panic: retries exhaust, the cell is quarantined.
        let q_dir = scratch_dir("poison-quarantine");
        std::env::set_var(POISON_ENV, format!("{victim}:panic"));
        let quarantined = run_campaign(&tiny_opts(&q_dir));
        std::env::remove_var(POISON_ENV);
        let quarantined = quarantined.unwrap();
        assert_eq!(quarantined.quarantined, 1);
        assert!(quarantined.retries >= 2, "bounded retries happened first");
        let report = quarantined.corpus.canonical_report();
        assert!(
            report.contains("quarantined: panicked"),
            "ledger line missing from: {report}"
        );

        // hang: the watchdog deadline fires and the cell is quarantined
        // without any retry (the thread is abandoned, not re-run).
        let h_dir = scratch_dir("poison-hang");
        let mut hang_opts = tiny_opts(&h_dir);
        hang_opts.cell_timeout = Some(Duration::from_millis(800));
        std::env::set_var(POISON_ENV, format!("{victim}:hang"));
        let hung = run_campaign(&hang_opts);
        std::env::remove_var(POISON_ENV);
        let hung = hung.unwrap();
        assert_eq!(hung.quarantined, 1);
        assert!(hung
            .corpus
            .canonical_report()
            .contains("quarantined: cell deadline"));

        // Quarantine state also survives a resume: replay the hang
        // dir's log without poison; the ledger line must persist.
        let resumed = run_campaign(&CampaignOptions {
            resume: true,
            ..tiny_opts(&h_dir)
        })
        .unwrap();
        assert!(resumed
            .corpus
            .canonical_report()
            .contains("quarantined: cell deadline"));

        for d in [&clean_dir, &retry_dir, &q_dir, &h_dir] {
            std::fs::remove_dir_all(d).unwrap();
        }
    }
}
