#![warn(missing_docs)]

//! Shared harness machinery for the figure/table regeneration binaries
//! and the wall-clock benches.
//!
//! Every evaluation artifact of the paper reduces to running a set of
//! `(program, file system, placement, parameters)` cells through
//! `paracrash::check_stack` and aggregating the outcomes:
//!
//! * Table 3 — the union of unique bugs over the full matrix;
//! * Figure 8 — inconsistent-state counts per cell;
//! * Figure 10 — exploration time per cell under the three modes;
//! * Figure 11 — exploration time as the server count grows.
//!
//! The wall-clock benches (formerly criterion bench targets) live in
//! [`benches`] and run on `pc-rt`'s harness through the `bench` binary:
//! `cargo run --release -p pc-bench --bin bench -- [filter] [--json PATH]`.

use h5sim::json::Json;
use paracrash::{check_stack, CheckConfig, CheckOutcome, ExploreMode, Inconsistency, LayerVerdict};
use pc_rt::bench::Sample;
use workloads::{FsKind, Params, Program};

pub mod campaign;
pub mod fuzz_driver;
pub mod progress;

pub use pc_rt::bench::fmt_ns;

/// The wall-clock benchmark suites (ported from the criterion benches).
pub mod benches {
    pub mod ablation;
    pub mod explain;
    pub mod explore;
    pub mod faults;
    pub mod fuzz;
    pub mod profiling;
    pub mod scalability;
    pub mod scale;
    pub mod substrate;
    pub mod telemetry;
}

/// One evaluated cell of the matrix.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Test program.
    pub program: Program,
    /// File system.
    pub fs: FsKind,
    /// Placement-variant label ("default", "split-dirs", …).
    pub placement: &'static str,
    /// Check result.
    pub outcome: CheckOutcome,
}

impl MatrixCell {
    /// The number of unique inconsistencies (Figure 8 bar height).
    pub fn unique_bugs(&self) -> usize {
        self.outcome.bugs.len()
    }
}

/// Run one `(program, fs)` cell under one placement.
pub fn run_cell(
    program: Program,
    fs: FsKind,
    placement_name: &'static str,
    params: &Params,
    cfg: &CheckConfig,
) -> MatrixCell {
    // One causal trace id per cell: every span this check opens — trace
    // generation, checker stages, simnet RPC deliveries on pool worker
    // threads — tags this id, so Chrome-trace export renders the cell
    // as one cross-layer flow.
    pc_rt::obs::set_trace_id(pc_rt::obs::next_trace_id());
    let started = std::time::Instant::now();
    let trace_span = pc_rt::obs::span_cat("trace.generate", "trace");
    let stack = program.run(fs, params);
    drop(trace_span);
    let factory = fs.factory(params);
    let outcome = check_stack(&stack, &factory, cfg);
    if pc_rt::obs::stream::enabled() {
        pc_rt::obs::stream::emit(
            pc_rt::obs::stream::EventKind::Cell,
            &format!("{}@{}/{placement_name}", program.name(), fs.name()),
            started.elapsed().as_nanos() as u64,
            &format!(
                "bugs={} states={}",
                outcome.bugs.len(),
                outcome.stats.states_checked
            ),
        );
        pc_rt::obs::stream::flush();
    }
    pc_rt::obs::set_trace_id(0);
    MatrixCell {
        program,
        fs,
        placement: placement_name,
        outcome,
    }
}

/// Sum one replay cache's traffic into an accumulator (placement /
/// dims-sweep merging).
fn merge_cache(acc: &mut paracrash::explore::CacheStats, cell: &paracrash::explore::CacheStats) {
    acc.hits += cell.hits;
    acc.misses += cell.misses;
    acc.evictions += cell.evictions;
}

/// Merge explain bundles into an accumulator, one per `(signature,
/// layer)`, keeping the first variant's bundle (mirrors the bug-witness
/// policy: the first state to expose a cause is its witness).
fn merge_explanations(
    acc: &mut Vec<paracrash::BugExplanation>,
    from: Vec<paracrash::BugExplanation>,
) {
    for expl in from {
        if !acc
            .iter()
            .any(|e| e.signature == expl.signature && e.layer == expl.layer)
        {
            acc.push(expl);
        }
    }
}

/// Run a program on a file system across its placement variants and
/// merge the outcomes (union of bugs, summed state counts — the paper
/// tests "different distribution patterns" and reports the union).
pub fn run_program(program: Program, fs: FsKind, params: &Params, cfg: &CheckConfig) -> MatrixCell {
    let mut merged: Option<MatrixCell> = None;
    for (name, placement) in program.placements() {
        let cell_params = params.clone().with_placement(placement);
        let cell = run_cell(program, fs, name, &cell_params, cfg);
        merged = Some(match merged {
            None => cell,
            Some(mut acc) => {
                acc.outcome.raw_inconsistent_states += cell.outcome.raw_inconsistent_states;
                acc.outcome.h5_bad_pfs_ok_states += cell.outcome.h5_bad_pfs_ok_states;
                acc.outcome.stats.states_total += cell.outcome.stats.states_total;
                acc.outcome.stats.states_checked += cell.outcome.stats.states_checked;
                acc.outcome.stats.states_pruned += cell.outcome.stats.states_pruned;
                acc.outcome.stats.states_diagnostic += cell.outcome.stats.states_diagnostic;
                acc.outcome.diagnostics.extend(cell.outcome.diagnostics);
                acc.outcome.stats.sim_seconds += cell.outcome.stats.sim_seconds;
                acc.outcome.stats.wall_seconds += cell.outcome.stats.wall_seconds;
                acc.outcome.stats.server_rebuilds += cell.outcome.stats.server_rebuilds;
                acc.outcome.stats.legal_replays += cell.outcome.stats.legal_replays;
                merge_cache(
                    &mut acc.outcome.stats.pfs_cache,
                    &cell.outcome.stats.pfs_cache,
                );
                merge_cache(
                    &mut acc.outcome.stats.h5_cache,
                    &cell.outcome.stats.h5_cache,
                );
                merge_explanations(&mut acc.outcome.explanations, cell.outcome.explanations);
                for bug in cell.outcome.bugs {
                    if let Some(existing) = acc
                        .outcome
                        .bugs
                        .iter_mut()
                        .find(|b| b.signature == bug.signature && b.layer == bug.layer)
                    {
                        existing.occurrences += bug.occurrences;
                    } else {
                        acc.outcome.bugs.push(bug);
                    }
                }
                acc
            }
        });
    }
    merged.expect("every program has at least one placement")
}

/// Dataset-dimension variants for I/O-library programs: §6.2 "we test
/// them with a variety of dataset dimensions (from 200×200 to
/// 1000×1000)" — whether group structures and new-object headers land
/// on the *same* storage server (journal-ordered, safe) or different
/// ones (reorderable) depends on the data size between them, so a
/// single dimension can mask cross-server hazards.
pub fn dims_variants(program: Program, params: &Params) -> Vec<Params> {
    if program.uses_iolib() {
        let d = params.dims;
        vec![
            params.clone(),
            params.clone().with_dims(d + d / 4),
            params.clone().with_dims(d + d / 2),
        ]
    } else {
        vec![params.clone()]
    }
}

/// [`run_program`] unioned over the paper's dataset-dimension sweep.
pub fn run_program_swept(
    program: Program,
    fs: FsKind,
    params: &Params,
    cfg: &CheckConfig,
) -> MatrixCell {
    let mut merged: Option<MatrixCell> = None;
    for v in dims_variants(program, params) {
        let cell = run_program(program, fs, &v, cfg);
        merged = Some(match merged {
            None => cell,
            Some(mut acc) => {
                acc.outcome.raw_inconsistent_states += cell.outcome.raw_inconsistent_states;
                acc.outcome.h5_bad_pfs_ok_states += cell.outcome.h5_bad_pfs_ok_states;
                acc.outcome.stats.states_diagnostic += cell.outcome.stats.states_diagnostic;
                acc.outcome.diagnostics.extend(cell.outcome.diagnostics);
                merge_explanations(&mut acc.outcome.explanations, cell.outcome.explanations);
                for bug in cell.outcome.bugs {
                    if let Some(existing) = acc
                        .outcome
                        .bugs
                        .iter_mut()
                        .find(|b| b.signature == bug.signature && b.layer == bug.layer)
                    {
                        existing.occurrences += bug.occurrences;
                    } else {
                        acc.outcome.bugs.push(bug);
                    }
                }
                acc
            }
        });
    }
    merged.expect("at least one dims variant")
}

/// Run the full matrix.
pub fn run_matrix(
    programs: &[Program],
    file_systems: &[FsKind],
    params: &Params,
    cfg: &CheckConfig,
) -> Vec<MatrixCell> {
    let mut cells = Vec::new();
    for &program in programs {
        for &fs in file_systems {
            // POSIX programs run on every FS including the ext4 control;
            // I/O-library programs only make sense on the PFSs + ext4.
            cells.push(run_program(program, fs, params, cfg));
        }
    }
    cells
}

/// Scale selector for the harness binaries: `--paper` runs the full
/// Table 2 configuration, the default runs the scaled-down configuration
/// with identical cross-server structure.
pub fn params_from_args() -> Params {
    if std::env::args().any(|a| a == "--paper") {
        Params::paper()
    } else {
        Params::quick()
    }
}

/// Default checker configuration for the harnesses.
pub fn default_config() -> CheckConfig {
    CheckConfig::paper_default()
}

/// Render one inconsistency like a Table 3 row body.
pub fn render_bug(bug: &Inconsistency) -> String {
    let layer = match bug.layer {
        LayerVerdict::IoLibBug => "I/O library",
        LayerVerdict::PfsBug => "PFS",
    };
    format!(
        "{} | violates {} | {} (x{})",
        layer,
        bug.violated_model.as_str(),
        bug.signature,
        bug.occurrences
    )
}

/// Bench-friendly single-cell runner with explicit mode.
pub fn run_with_mode(
    program: Program,
    fs: FsKind,
    params: &Params,
    mode: ExploreMode,
) -> CheckOutcome {
    let cfg = CheckConfig {
        mode,
        ..CheckConfig::paper_default()
    };
    run_program(program, fs, params, &cfg).outcome
}

/// Serialize bench results as JSON (via `h5sim`'s vendored writer —
/// the same one `h5inspect` uses, keeping the workspace registry-free).
pub fn bench_samples_json(samples: &[Sample]) -> Json {
    Json::Arr(
        samples
            .iter()
            .map(|s| {
                let mut fields = vec![
                    ("name".into(), Json::Str(s.name.clone())),
                    ("iters".into(), Json::Int(u64::from(s.iters))),
                    ("min_ns".into(), Json::Int(s.min_ns.round() as u64)),
                    ("mean_ns".into(), Json::Int(s.mean_ns.round() as u64)),
                    ("median_ns".into(), Json::Int(s.median_ns.round() as u64)),
                    ("p95_ns".into(), Json::Int(s.p95_ns.round() as u64)),
                ];
                for (k, v) in &s.extra {
                    fields.push((k.clone(), Json::Int(v.round() as u64)));
                }
                Json::Obj(fields)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_variants_sweep_only_iolib_programs() {
        let params = Params::quick();
        assert_eq!(dims_variants(Program::Arvr, &params).len(), 1);
        let swept = dims_variants(Program::H5Create, &params);
        assert_eq!(swept.len(), 3);
        assert!(swept[1].dims > swept[0].dims && swept[2].dims > swept[1].dims);
    }

    #[test]
    fn run_program_merges_placement_variants() {
        // WAL has two placement variants; the merged cell must account
        // for both explorations.
        let params = Params::quick();
        let cfg = default_config();
        let merged = run_program(Program::Wal, FsKind::GlusterFs, &params, &cfg);
        let single = run_cell(Program::Wal, FsKind::GlusterFs, "default", &params, &cfg);
        assert!(merged.outcome.stats.states_total > single.outcome.stats.states_total);
        assert!(merged.unique_bugs() >= single.outcome.bugs.len());
    }
}
