//! Benches for the bug-provenance engine (`paracrash::explain`).
//!
//! The engine only runs on buggy cells, so its cost is dominated by
//! delta-debugging: every ddmin probe is a crash-state materialization
//! plus a recover-and-mount check. Three questions matter:
//!
//! * **disabled cost** — a full check with `explain = false` (the
//!   production default). The `explain-overhead` verify gate asserts
//!   this stays within 3% of the pre-explain checker; here it is the
//!   baseline sample;
//! * **prefix-shared shrink** — explain on, probes materialized in
//!   batches through the snapshot engine's prefix-sharing replay, so
//!   probes that share an op prefix share COW nodes;
//! * **per-probe shrink** — the reference engine: every probe replays
//!   from the baseline on its own. The gap between the last two is the
//!   prefix-sharing win on shrink workloads (same shape as Figure 10's
//!   replay-engine gap, but over ddmin's probe sets instead of the
//!   exhaustive state list).
//!
//! The cell is ARVR on BeeGFS — two REPRODUCED bugs, so every sample
//! includes two full shrink runs.

use paracrash::{check_stack, CheckConfig, ReplayEngine};
use pc_rt::bench::{black_box, Bench};
use workloads::{FsKind, Params, Program};

/// Register the provenance-engine benches.
pub fn register(b: &mut Bench) {
    let params = Params::quick();
    let stack = Program::Arvr.run(FsKind::BeeGfs, &params);
    let factory = FsKind::BeeGfs.factory(&params);

    let run = |cfg: &CheckConfig| {
        let outcome = check_stack(&stack, &factory, cfg);
        black_box((outcome.bugs.len(), outcome.explanations.len()))
    };

    let off = CheckConfig::paper_default();
    assert!(!off.explain, "explain must default off");
    b.bench("explain/check/off", || run(&off));

    let prefix = CheckConfig {
        explain: true,
        explain_engine: ReplayEngine::PrefixShared,
        ..CheckConfig::paper_default()
    };
    b.bench("explain/shrink/prefix-shared", || run(&prefix));

    let per_probe = CheckConfig {
        explain_engine: ReplayEngine::PerProbe,
        ..prefix.clone()
    };
    b.bench("explain/shrink/per-probe", || run(&per_probe));
}
