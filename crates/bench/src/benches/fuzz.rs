//! Benches for the bounded black-box fuzzer.
//!
//! The headline is `fuzz/campaign/pr-tier-slice`: checked generated
//! workloads per second on the PR-tier cell shape (quick parameters,
//! BeeGFS, data journaling). The PR crash gate sweeps ~400 cells, so
//! per-workload cost directly bounds the gate's wall time. The other
//! entries split that cost into its parts: pure enumeration (no I/O
//! stack at all), trace generation (workload replay, no checking), and
//! the full per-cell check. Committed as `BENCH_fuzz.json`.

use paracrash::{check_stack, CheckConfig};
use pc_rt::bench::{black_box, Bench};
use workloads::generated;
use workloads::{FsKind, Params};

/// Register the fuzzer benches.
pub fn register(b: &mut Bench) {
    // Enumeration alone: the corpus for the nightly bound. Pure CPU,
    // no stack construction — this is the generator's floor.
    b.bench("fuzz/enumerate/bound-3", || {
        black_box(generated::corpus(3).len())
    });
    b.bench("fuzz/enumerate/bound-2", || {
        black_box(generated::corpus(2).len())
    });

    // Trace generation for one representative 2-op POSIX workload:
    // preamble + replay, no crash-state exploration.
    let params = Params::quick();
    let sample = generated::sample(2, 42, 8);
    b.bench("fuzz/trace/gen-workload", || {
        let w = &sample[0];
        black_box(w.run(FsKind::BeeGfs, &params).calls.len())
    });

    // Full per-cell check (trace + crash-state enumeration + recovery +
    // verdict) — the unit the campaign multiplies by cells.
    let cfg = CheckConfig::paper_default();
    b.bench("fuzz/check/cell", || {
        let w = &sample[0];
        let stack = w.run(FsKind::BeeGfs, &params);
        let factory = FsKind::BeeGfs.factory(&params);
        black_box(check_stack(&stack, &factory, &cfg).bugs.len())
    });

    // The headline: an 8-workload slice of the PR-tier campaign,
    // reported per-slice (divide by 8 for per-workload; the CI gate's
    // wall time is this × corpus/8).
    b.bench("fuzz/campaign/pr-tier-slice", || {
        let mut corpus = paracrash::FuzzCorpus::new();
        for w in &sample {
            let stack = w.run(FsKind::BeeGfs, &params);
            let factory = FsKind::BeeGfs.factory(&params);
            let outcome = check_stack(&stack, &factory, &cfg);
            corpus.record_cell(&w.label(), "BeeGFS", "data", &outcome);
        }
        black_box(corpus.finding_count())
    });
}
