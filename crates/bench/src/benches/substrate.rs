//! Micro-benches for the substrates: local-FS replay, causality-graph
//! construction, persistence analysis, crash-state enumeration, and
//! HDF5 image checking. These are the inner loops of the framework —
//! Figure 10's wall time is mostly spent here.

use paracrash::{crash_states, PersistAnalysis};
use pc_rt::bench::Bench;
use simfs::{FsOp, FsState, JournalMode};
use tracer::CausalityGraph;
use workloads::{FsKind, Params, Program};

/// Register the substrate micro-benches.
pub fn register(b: &mut Bench) {
    let ops: Vec<FsOp> = (0..200)
        .map(|i| match i % 4 {
            0 => FsOp::Creat {
                path: format!("/f{i}"),
            },
            1 => FsOp::Pwrite {
                path: format!("/f{}", i - 1),
                offset: 0,
                data: vec![0u8; 256],
            },
            2 => FsOp::SetXattr {
                path: format!("/f{}", i - 2),
                key: "user.k".into(),
                value: vec![1; 16],
            },
            _ => FsOp::Rename {
                src: format!("/f{}", i - 3),
                dst: format!("/g{i}"),
            },
        })
        .collect();
    b.bench("simfs/replay-200-ops", || {
        let mut fs = FsState::new();
        let failed = fs.apply_lenient(ops.iter());
        assert!(failed.is_empty());
        fs.digest()
    });

    let stack = Program::H5Create.run(FsKind::BeeGfs, &Params::quick());
    b.bench("pfs/baseline-snapshot-clone", || {
        stack.pfs.baseline().clone()
    });

    b.bench("tracer/causality-graph-build", || {
        CausalityGraph::build(&stack.rec)
    });
    let graph = CausalityGraph::build(&stack.rec);
    b.bench("tracer/consistent-cuts", || {
        graph.consistent_cuts(&stack.rec.lowermost_events())
    });

    b.bench("paracrash/persist-analysis", || {
        PersistAnalysis::build(&stack.rec, &graph, |_| Some(JournalMode::Data))
    });
    let pa = PersistAnalysis::build(&stack.rec, &graph, |_| Some(JournalMode::Data));
    b.bench("paracrash/crash-state-enumeration", || {
        crash_states(&stack.rec, &graph, &pa, 1, None).len()
    });

    let view = stack.pfs.client_view(stack.pfs.live());
    let bytes = view.read("/file.h5").unwrap().to_vec();
    b.bench("h5sim/h5check-parse", || h5sim::check(&bytes).unwrap());
    b.bench("h5sim/h5inspect", || {
        h5sim::h5inspect(&bytes).unwrap().len()
    });
}
