//! Benches for Figure 10: real wall-clock exploration time of the
//! three crash-state exploration strategies.
//!
//! The figure harness (`--bin fig10`) reports the calibrated simulated
//! seconds; these benches measure what this reproduction actually costs,
//! so regressions in the framework itself are visible.

use paracrash::{crash_states, prepare_states, ExploreMode, PersistAnalysis};
use pc_rt::bench::Bench;
use pfs::recover_and_mount;
use tracer::CausalityGraph;
use workloads::{FsKind, Params, Program};

use crate::run_with_mode;

/// Register the Figure 10 exploration-mode benches.
pub fn register(b: &mut Bench) {
    let params = Params::quick();
    for (program, fs) in [
        (Program::Arvr, FsKind::BeeGfs),
        (Program::Cr, FsKind::Gpfs),
        (Program::H5Delete, FsKind::BeeGfs),
    ] {
        for mode in [
            ExploreMode::BruteForce,
            ExploreMode::Pruning,
            ExploreMode::Optimized,
        ] {
            b.bench(
                &format!(
                    "fig10-explore/{}-{}/{}",
                    program.name(),
                    fs.name(),
                    mode.as_str()
                ),
                || {
                    let outcome = run_with_mode(program, fs, &params, mode);
                    assert!(outcome.stats.states_checked > 0);
                    outcome
                },
            );
        }
    }
    for fs in FsKind::all() {
        b.bench(&format!("trace-generation/ARVR/{}", fs.name()), || {
            Program::Arvr.run(fs, &params)
        });
    }
    // Snapshot-engine comparison over an exhaustive (k = 1) crash-state
    // enumeration — exactly the two code paths `check_stack` switches
    // between on `PC_NAIVE_SNAPSHOTS` (tests/snapshot_equivalence.rs
    // asserts they produce bit-identical reports). Two levels per cell:
    //
    // * `materialize`: produce every crash state's pre-recovery server
    //   snapshot. This is the work the engine replaced — a shared prefix
    //   tree of O(1) COW forks versus a deep clone of the baseline plus
    //   a full replay per state — so the gap here is the gap the
    //   refactor created.
    // * `verdict`: materialize, then recover and mount every state (the
    //   checker's full per-state fan-out). Recovery and view
    //   construction are engine-independent and bound the end-to-end
    //   ratio from above.
    //
    // WAL with a deep page queue is the replay-bound shape the engine
    // targets: every extra page multiplies both the state count and
    // each state's replay prefix, so the naive O(states × trace) replay
    // grows quadratically while the shared prefix tree holds one path.
    for (program, fs, cell_params) in [
        (Program::Arvr, FsKind::BeeGfs, params.clone()),
        (
            Program::Wal,
            FsKind::BeeGfs,
            Params {
                wal_pages: 64,
                ..Params::quick()
            },
        ),
    ] {
        let stack = program.run(fs, &cell_params);
        let graph = CausalityGraph::build(&stack.rec);
        let pa = PersistAnalysis::build(&stack.rec, &graph, |s| stack.journal_of(s));
        let states = crash_states(&stack.rec, &graph, &pa, 1, None);
        assert!(!states.is_empty());
        let cell = format!("{}-{}", program.name(), fs.name());
        b.bench(&format!("snapshot-engine/{cell}/materialize/cow"), || {
            prepare_states(&stack.rec, stack.pfs.baseline(), &states).prepared
        });
        b.bench(&format!("snapshot-engine/{cell}/materialize/naive"), || {
            states
                .iter()
                .map(|state| {
                    let mut st = stack.pfs.baseline().deep_clone();
                    st.apply_events(&stack.rec, state.persisted.iter());
                    st
                })
                .collect::<Vec<_>>()
        });
        b.bench(&format!("snapshot-engine/{cell}/verdict/cow"), || {
            let plan = prepare_states(&stack.rec, stack.pfs.baseline(), &states);
            let mut digest = 0u64;
            for prepared in &plan.prepared {
                let mut st = prepared.fork();
                let (_, view) = recover_and_mount(stack.pfs.as_ref(), &mut st);
                digest ^= view.digest();
            }
            digest
        });
        b.bench(&format!("snapshot-engine/{cell}/verdict/naive"), || {
            let mut digest = 0u64;
            for state in &states {
                let mut st = stack.pfs.baseline().deep_clone();
                st.apply_events(&stack.rec, state.persisted.iter());
                let (_, view) = recover_and_mount(stack.pfs.as_ref(), &mut st);
                digest ^= view.digest();
            }
            digest
        });
    }
}
