//! Benches for Figure 10: real wall-clock exploration time of the
//! three crash-state exploration strategies.
//!
//! The figure harness (`--bin fig10`) reports the calibrated simulated
//! seconds; these benches measure what this reproduction actually costs,
//! so regressions in the framework itself are visible.

use paracrash::ExploreMode;
use pc_rt::bench::Bench;
use workloads::{FsKind, Params, Program};

use crate::run_with_mode;

/// Register the Figure 10 exploration-mode benches.
pub fn register(b: &mut Bench) {
    let params = Params::quick();
    for (program, fs) in [
        (Program::Arvr, FsKind::BeeGfs),
        (Program::Cr, FsKind::Gpfs),
        (Program::H5Delete, FsKind::BeeGfs),
    ] {
        for mode in [
            ExploreMode::BruteForce,
            ExploreMode::Pruning,
            ExploreMode::Optimized,
        ] {
            b.bench(
                &format!(
                    "fig10-explore/{}-{}/{}",
                    program.name(),
                    fs.name(),
                    mode.as_str()
                ),
                || {
                    let outcome = run_with_mode(program, fs, &params, mode);
                    assert!(outcome.stats.states_checked > 0);
                    outcome
                },
            );
        }
    }
    for fs in FsKind::all() {
        b.bench(&format!("trace-generation/ARVR/{}", fs.name()), || {
            Program::Arvr.run(fs, &params)
        });
    }
}
