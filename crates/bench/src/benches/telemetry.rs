//! Benches for the `pc_rt::obs` telemetry layer itself.
//!
//! Two questions matter:
//!
//! * **disabled cost** — what does an instrumentation site cost when
//!   telemetry is off (the default)? This is the price every production
//!   run pays and must stay at a single atomic load (~1 ns);
//! * **enabled cost** — what does recording cost when telemetry is on?
//!   This bounds how much a `--telemetry-out` run distorts the
//!   timings it reports.
//!
//! The `telemetry-overhead` binary (the `scripts/verify.sh` gate)
//! additionally asserts the end-to-end disabled overhead on the
//! snapshot-engine microbench stays under 3%; these benches are the
//! per-operation view committed as `BENCH_telemetry.json`.

use paracrash::{crash_states, prepare_states, PersistAnalysis};
use pc_rt::bench::{black_box, Bench};
use tracer::CausalityGraph;
use workloads::{FsKind, Params, Program};

/// Register the telemetry-layer benches.
pub fn register(b: &mut Bench) {
    // Per-operation costs, disabled vs enabled. `set_enabled` overrides
    // whatever PC_TRACE says, and is restored to off afterwards so the
    // other suites bench the production configuration.
    pc_rt::obs::set_enabled(false);
    b.bench("telemetry/span/disabled", || {
        for _ in 0..1000 {
            let _s = black_box(pc_rt::obs::span("bench.telemetry.span"));
        }
    });
    b.bench("telemetry/counter/disabled", || {
        for _ in 0..1000 {
            pc_rt::obs::count("bench.telemetry.ctr", black_box(1));
        }
    });
    pc_rt::obs::set_enabled(true);
    b.bench("telemetry/span/enabled", || {
        for _ in 0..1000 {
            let _s = black_box(pc_rt::obs::span("bench.telemetry.span"));
        }
    });
    b.bench("telemetry/counter/enabled", || {
        for _ in 0..1000 {
            pc_rt::obs::count("bench.telemetry.ctr", black_box(1));
        }
    });
    pc_rt::obs::reset();
    pc_rt::obs::set_enabled(false);

    // End-to-end: the snapshot-engine materialization microbench (the
    // same workload the verify gate measures) with telemetry off and on.
    let params = Params::quick();
    let stack = Program::Arvr.run(FsKind::BeeGfs, &params);
    let graph = CausalityGraph::build(&stack.rec);
    let pa = PersistAnalysis::build(&stack.rec, &graph, |s| stack.journal_of(s));
    let states = crash_states(&stack.rec, &graph, &pa, 1, None);
    assert!(!states.is_empty());
    b.bench("telemetry/snapshot-materialize/off", || {
        prepare_states(&stack.rec, stack.pfs.baseline(), &states).prepared
    });
    pc_rt::obs::set_enabled(true);
    b.bench("telemetry/snapshot-materialize/on", || {
        prepare_states(&stack.rec, stack.pfs.baseline(), &states).prepared
    });
    pc_rt::obs::reset();
    pc_rt::obs::set_enabled(false);
}
