//! The self-profiling suite behind the committed `BENCH_profiling.json`:
//! engine throughput with the sampling profiler off vs on, and
//! per-stage allocation accounting at 16 and 64 servers.
//!
//! The throughput pair brackets the *enabled* sampler's cost (the
//! disabled path is a separate contract, gated by `prof-overhead`):
//!
//! * `profiling/sampler-off/16-servers` — the batched verdict engine
//!   with telemetry on but no sampler thread;
//! * `profiling/sampler-on/16-servers` — the same loop while the
//!   sampler folds every worker's span stack at 997 Hz.
//!
//! Both annotate `states_per_sec`; the `-on` sample adds
//! `samples_per_sec` (how fast the fold actually ran).
//!
//! The `profiling/alloc/{16,64}-servers` samples time one full checker
//! run, then re-run it once with allocation accounting on and annotate
//! what the counting allocator attributed:
//!
//! * `alloc_bytes` / `alloc_peak_bytes` — run-total allocation volume
//!   and peak net footprint;
//! * `trace_alloc_bytes` / `trace_events` / `trace_bytes_per_event` —
//!   bytes attributed to the `trace.generate` span per recorded trace
//!   event, the per-event heap-allocation baseline the ROADMAP's
//!   extreme-scale round-2 item wants pinned before `tracer::Record`
//!   goes arena-backed.

use paracrash::{crash_states, prepare_states, ExploreMode, PersistAnalysis};
use pc_rt::bench::Bench;
use pc_rt::obs::prof;
use pfs::{recover_and_mount, PfsView};
use tracer::CausalityGraph;
use workloads::{FsKind, Params, Program};

use crate::run_with_mode;

/// Sampling rate for the `-on` sample: a prime well above the default
/// 97 Hz so the bench exercises a deliberately aggressive fold cadence.
const BENCH_HZ: u32 = 997;

/// Server-count parameterization shared with the `scale` suite.
fn scale_params(servers: u32) -> Params {
    let base = Params::quick();
    let stripe = (base.stripe * 4 / u64::from(servers)).max(256);
    base.with_servers(servers / 2, servers / 2)
        .with_stripe(stripe)
}

/// Annotate engine throughput on the just-benched sample (no-op when a
/// name filter skipped it).
fn annotate_throughput(b: &mut Bench, before: usize, states: usize) {
    if b.samples().len() == before {
        return;
    }
    let median_ns = b.samples().last().expect("just pushed").median_ns;
    b.annotate("states_checked", states as f64);
    b.annotate("states_per_sec", states as f64 / (median_ns / 1e9));
}

/// Register the profiling suite.
pub fn register(b: &mut Bench) {
    // The engine loop under test: identical to `scale/engine-batched`.
    let params = scale_params(16);
    let stack = Program::Arvr.run(FsKind::BeeGfs, &params);
    let graph = CausalityGraph::build(&stack.rec);
    let pa = PersistAnalysis::build(&stack.rec, &graph, |s| stack.journal_of(s));
    let states = crash_states(&stack.rec, &graph, &pa, 1, None);
    assert!(!states.is_empty());
    let engine = || {
        let plan = prepare_states(&stack.rec, stack.pfs.baseline(), &states);
        let mut views: Vec<Option<PfsView>> = (0..states.len()).map(|_| None).collect();
        let mut digest = 0u64;
        for (i, &rep) in plan.rep.iter().enumerate() {
            debug_assert!(rep <= i);
            if views[rep].is_none() {
                let mut st = plan.prepared[rep].fork();
                let (_, view) = recover_and_mount(stack.pfs.as_ref(), &mut st);
                views[rep] = Some(view);
            }
            digest ^= views[rep].as_ref().expect("recovered above").digest();
        }
        digest
    };

    // Telemetry on for both sides so the only delta is the sampler.
    pc_rt::obs::reset();
    pc_rt::obs::set_enabled(true);

    let before = b.samples().len();
    b.bench("profiling/sampler-off/16-servers", engine);
    annotate_throughput(b, before, states.len());

    prof::enable_sampling(BENCH_HZ);
    let sampled_from = prof::samples_total();
    let t = std::time::Instant::now();
    let before = b.samples().len();
    b.bench("profiling/sampler-on/16-servers", engine);
    let wall = t.elapsed().as_secs_f64();
    let sampled = prof::samples_total() - sampled_from;
    prof::disable_sampling();
    annotate_throughput(b, before, states.len());
    if b.samples().len() > before {
        b.annotate("samples_per_sec", sampled as f64 / wall.max(1e-9));
    }

    pc_rt::obs::set_enabled(false);
    pc_rt::obs::reset();

    // Allocation accounting: time the plain checker run, then account
    // one run outside the timing loop and pin what it allocated.
    for &servers in &[16u32, 64] {
        let cell_params = scale_params(servers);
        let before = b.samples().len();
        b.bench(&format!("profiling/alloc/{servers}-servers"), || {
            run_with_mode(
                Program::H5Create,
                FsKind::BeeGfs,
                &cell_params,
                ExploreMode::Optimized,
            )
        });
        if b.samples().len() == before {
            continue;
        }
        // Event count from an unaccounted run; the accounted run below
        // attributes trace allocation through `run_cell`'s own
        // `trace.generate` span.
        let events = Program::H5Create
            .run(FsKind::BeeGfs, &cell_params)
            .rec
            .len();
        pc_rt::obs::reset();
        pc_rt::obs::set_enabled(true);
        run_with_mode(
            Program::H5Create,
            FsKind::BeeGfs,
            &cell_params,
            ExploreMode::Optimized,
        );
        let snap = pc_rt::obs::snapshot();
        pc_rt::obs::set_enabled(false);
        pc_rt::obs::reset();
        let trace_bytes = snap
            .allocs
            .iter()
            .find(|(n, _)| n == "trace.generate")
            .map_or(0, |(_, s)| s.bytes);
        b.annotate("alloc_bytes", snap.alloc_total.bytes as f64);
        b.annotate("alloc_peak_bytes", snap.alloc_total.peak_bytes as f64);
        b.annotate("trace_alloc_bytes", trace_bytes as f64);
        b.annotate("trace_events", events as f64);
        b.annotate(
            "trace_bytes_per_event",
            trace_bytes as f64 / (events.max(1)) as f64,
        );
    }
}
