//! The extreme-scale suite behind the committed `BENCH_scale.json`:
//! per-state engine throughput (states/sec) of the subtree-batched
//! verdict engine against the pre-refactor oracle at 16 servers, plus
//! Figure 11 extension points at 64 / 128 / 256 servers.
//!
//! The headline pair isolates exactly what the refactor changed — how
//! a crash state becomes a recovered, mountable view:
//!
//! * `engine-batched` — the default engine: one shared prefix tree of
//!   O(1) COW forks materializes every state, and recovery runs once
//!   per *subtree representative* (states with identical storage
//!   sequences share their recovered view, `SnapshotPlan::rep`).
//! * `engine-oracle` — the pre-refactor composition
//!   (`PC_NAIVE_SNAPSHOTS=1` + `PC_NAIVE_BATCH=1`): every state deep-
//!   clones the baseline, replays its full persisted prefix, and runs
//!   its own recovery.
//!
//! Both loops fold every state's view digest, so neither can skip
//! verdict work. The 64/128/256-server points run the full checker
//! (`check_stack`) end to end and report per-check cost.
//!
//! Each sample carries derived metrics next to its timings
//! ([`Bench::annotate`]):
//!
//! * `states_per_sec`  — crash states through the engine / median sec;
//! * `states_checked`  — how many states one iteration processes;
//! * `per_check_ns`    — median wall time / state.
//!
//! The throughput pair drives the ≥2× regression gate and the
//! 64→256-server points drive the sub-linear per-check growth gate —
//! both enforced by `scale-check` against the committed JSON
//! (`scripts/verify.sh` gate 11, methodology in `EXPERIMENTS.md`).

use paracrash::{crash_states, prepare_states, ExploreMode, PersistAnalysis};
use pc_rt::bench::Bench;
use pfs::{recover_and_mount, PfsView};
use tracer::CausalityGraph;
use workloads::{FsKind, Params, Program};

use crate::run_with_mode;

/// Server-count parameterization of the Figure 11 workload, stripe
/// shrinking with the server count as in the paper.
fn scale_params(servers: u32) -> Params {
    let base = Params::quick();
    let stripe = (base.stripe * 4 / u64::from(servers)).max(256);
    base.with_servers(servers / 2, servers / 2)
        .with_stripe(stripe)
}

/// Attach the derived throughput metrics to the just-benched sample,
/// guarding against a name filter having skipped it (annotate must
/// never attach to an earlier suite's sample).
fn annotate_throughput(b: &mut Bench, before: usize, states: usize) {
    if b.samples().len() == before {
        return;
    }
    let median_ns = b.samples().last().expect("just pushed").median_ns;
    b.annotate("states_checked", states as f64);
    b.annotate("states_per_sec", states as f64 / (median_ns / 1e9));
    b.annotate("per_check_ns", median_ns / states.max(1) as f64);
}

/// Register the scale suite.
pub fn register(b: &mut Bench) {
    // Headline pair: ARVR on 16-server BeeGFS, exhaustive k = 1
    // enumeration — the replay- and recovery-bound shape where the
    // engine *is* the cost.
    let params = scale_params(16);
    let stack = Program::Arvr.run(FsKind::BeeGfs, &params);
    let graph = CausalityGraph::build(&stack.rec);
    let pa = PersistAnalysis::build(&stack.rec, &graph, |s| stack.journal_of(s));
    let states = crash_states(&stack.rec, &graph, &pa, 1, None);
    assert!(!states.is_empty());

    let before = b.samples().len();
    b.bench("scale/engine-batched/16-servers", || {
        let plan = prepare_states(&stack.rec, stack.pfs.baseline(), &states);
        let mut views: Vec<Option<PfsView>> = (0..states.len()).map(|_| None).collect();
        let mut digest = 0u64;
        for (i, &rep) in plan.rep.iter().enumerate() {
            debug_assert!(rep <= i);
            if views[rep].is_none() {
                let mut st = plan.prepared[rep].fork();
                let (_, view) = recover_and_mount(stack.pfs.as_ref(), &mut st);
                views[rep] = Some(view);
            }
            digest ^= views[rep].as_ref().expect("recovered above").digest();
        }
        digest
    });
    annotate_throughput(b, before, states.len());

    let before = b.samples().len();
    b.bench("scale/engine-oracle/16-servers", || {
        let mut digest = 0u64;
        for state in &states {
            let mut st = stack.pfs.baseline().deep_clone();
            st.apply_events(&stack.rec, state.persisted.iter());
            let (_, view) = recover_and_mount(stack.pfs.as_ref(), &mut st);
            digest ^= view.digest();
        }
        digest
    });
    annotate_throughput(b, before, states.len());

    // Figure 11 extension: full end-to-end checks as the cluster grows
    // past the paper's largest configuration.
    for &servers in &[64u32, 128, 256] {
        let cell_params = scale_params(servers);
        let before = b.samples().len();
        b.bench(&format!("scale/fig11/{servers}-servers"), || {
            run_with_mode(
                Program::H5Create,
                FsKind::BeeGfs,
                &cell_params,
                ExploreMode::Optimized,
            )
        });
        if b.samples().len() > before {
            let checked = run_with_mode(
                Program::H5Create,
                FsKind::BeeGfs,
                &cell_params,
                ExploreMode::Optimized,
            )
            .stats
            .states_checked;
            annotate_throughput(b, before, checked);
        }
    }
}
