//! Benches for Figure 11: real exploration cost as the server count
//! grows (stripe shrinking proportionally, as in the paper).

use paracrash::ExploreMode;
use pc_rt::bench::Bench;
use workloads::{FsKind, Params, Program};

use crate::run_with_mode;

/// Register the Figure 11 scalability benches.
pub fn register(b: &mut Bench) {
    let base = Params::quick();
    for &servers in &[4u32, 8, 16] {
        let stripe = (base.stripe * 4 / u64::from(servers)).max(256);
        let params = base
            .clone()
            .with_servers(servers / 2, servers / 2)
            .with_stripe(stripe);
        b.bench(
            &format!("fig11-scalability/H5-create-BeeGFS/{servers}-servers"),
            || {
                run_with_mode(
                    Program::H5Create,
                    FsKind::BeeGfs,
                    &params,
                    ExploreMode::Optimized,
                )
            },
        );
    }
}
