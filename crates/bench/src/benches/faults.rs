//! Benches for the `simnet` fault plane.
//!
//! The number that matters is the *disabled* cost: after PR 4 every PFS
//! model routes its RPC traffic through [`simnet::RpcNet::faulty`] with
//! an inactive [`simnet::FaultPlane`], so the per-message price of the
//! plane check is paid by every fault-free run. The `faults-overhead`
//! binary (verify gate) asserts that price stays under 3% of a traced
//! workload run; these benches are the per-operation view committed as
//! `BENCH_faults.json`.

use pc_rt::bench::{black_box, Bench};
use simnet::{FaultConfig, FaultPlane, RpcNet};
use tracer::{Process, Recorder};
use workloads::{FsKind, Params, Program};

/// Messages per bench iteration (fresh recorder each time, so recorder
/// growth does not leak across samples).
const MSGS: u32 = 256;

fn round_trips(net: &mut RpcNet<'_>) {
    for i in 0..MSGS {
        let client = Process::Client(i % 4);
        let server = Process::Server(i % 2);
        let (_, recv) = net.request(client, server, "WRITE", None);
        net.reply(server, client, "OK", Some(recv));
    }
}

/// Register the fault-plane benches.
pub fn register(b: &mut Bench) {
    b.bench("faults/rpc/fault-free", || {
        let mut rec = Recorder::new();
        let mut net = RpcNet::new(&mut rec);
        round_trips(&mut net);
        black_box(rec.len())
    });
    b.bench("faults/rpc/disabled-plane", || {
        let mut rec = Recorder::new();
        let mut plane = FaultPlane::disabled();
        let mut net = RpcNet::faulty(&mut rec, &mut plane);
        round_trips(&mut net);
        black_box(rec.len())
    });
    b.bench("faults/rpc/chaos-plane", || {
        let mut rec = Recorder::new();
        let mut plane = FaultPlane::new(FaultConfig::chaos(42));
        let mut net = RpcNet::faulty(&mut rec, &mut plane);
        round_trips(&mut net);
        black_box(rec.len())
    });

    // End to end: one traced workload run, fault-free vs chaos. The
    // chaos run's extra cost is the injected events themselves (lost
    // sends, duplicate deliveries), not bookkeeping.
    let clean = Params::quick();
    let chaos = Params::quick().with_faults(FaultConfig::chaos(42));
    b.bench("faults/run/fault-free", || {
        black_box(Program::Arvr.run(FsKind::BeeGfs, &clean).rec.len())
    });
    b.bench("faults/run/chaos", || {
        black_box(Program::Arvr.run(FsKind::BeeGfs, &chaos).rec.len())
    });
}
