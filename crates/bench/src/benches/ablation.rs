//! Ablation benches for the design choices DESIGN.md calls out:
//! the victim bound `k` (Algorithm 1), and the local-FS journaling mode
//! (Algorithm 2's branches). Both change the crash-state space, so the
//! bench reports wall time while the assertions pin the state counts'
//! monotonicity.

use paracrash::{check_stack, CheckConfig, Stack, StackFactory};
use pc_rt::bench::Bench;
use pfs::beegfs::BeeGfs;
use pfs::{Pfs, PfsCall, Placement};
use simfs::JournalMode;
use simnet::ClusterTopology;
use workloads::{FsKind, Params, Program};

fn arvr_on_journal(mode: JournalMode) -> paracrash::CheckOutcome {
    let make = move || -> Box<dyn Pfs> {
        Box::new(BeeGfs::with_journal(
            ClusterTopology::paper_dedicated_default(),
            Placement::new(),
            2048,
            mode,
        ))
    };
    let mut stack = Stack::new(make());
    stack.posix(
        0,
        PfsCall::Creat {
            path: "/file".into(),
        },
    );
    stack.posix(
        0,
        PfsCall::Pwrite {
            path: "/file".into(),
            offset: 0,
            data: b"old".to_vec(),
        },
    );
    stack.seal_preamble();
    stack.posix(
        0,
        PfsCall::Creat {
            path: "/tmp".into(),
        },
    );
    stack.posix(
        0,
        PfsCall::Pwrite {
            path: "/tmp".into(),
            offset: 0,
            data: b"new".to_vec(),
        },
    );
    stack.posix(
        0,
        PfsCall::Rename {
            src: "/tmp".into(),
            dst: "/file".into(),
        },
    );
    let factory: StackFactory = Box::new(make);
    check_stack(&stack, &factory, &CheckConfig::paper_default())
}

/// Register the victim-bound and journal-mode ablation benches.
pub fn register(b: &mut Bench) {
    let params = Params::quick();
    for k in [0usize, 1, 2] {
        b.bench(&format!("ablation-victims/ARVR-BeeGFS/k{k}"), || {
            let stack = Program::Arvr.run(FsKind::BeeGfs, &params);
            let factory = FsKind::BeeGfs.factory(&params);
            let outcome = check_stack(
                &stack,
                &factory,
                &CheckConfig {
                    k,
                    ..CheckConfig::paper_default()
                },
            );
            // k strictly enlarges the state space…
            assert!(outcome.stats.states_total >= 1);
            outcome
        });
    }

    for mode in [
        JournalMode::Data,
        JournalMode::Ordered,
        JournalMode::Writeback,
        JournalMode::None,
    ] {
        b.bench(
            &format!("ablation-journal/ARVR-BeeGFS/{}", mode.as_str()),
            || arvr_on_journal(mode),
        );
    }
}
