//! Campaign-level live metrics: throughput, ETA, and anomaly detection
//! for the fuzz driver's cell loop.
//!
//! A multi-hour campaign must be legible while it runs. This module
//! owns the three live views the driver threads through
//! [`crate::fuzz_driver::fuzz_campaign`]:
//!
//! * **progress lines** — `PC_PROGRESS=1` prints a one-line meter to
//!   stderr (cells done, throughput, ETA, behavior classes, findings,
//!   coverage saturation), rate-limited so a fast campaign does not
//!   spam the terminal;
//! * **stall detection** — a cell whose wall time blows past the
//!   exponentially-weighted moving average by [`STALL_FACTOR`]×
//!   produces a `pc_warn!` naming the offending cell (the classic
//!   symptom: one pathological workload × journal-mode combination
//!   wedging an otherwise-healthy sweep);
//! * **throughput-regression detection** — the rolling
//!   [`WINDOW`]-cell wall time is compared against the best window seen
//!   so far; a [`REGRESSION_FACTOR`]× slowdown warns once per window,
//!   again naming the slowest cell inside it.
//!
//! The meter is pure bookkeeping over caller-supplied wall times — it
//! never touches the checker, so it cannot perturb the campaign's
//! deterministic fold (the `canonical_report()` contract). Detection
//! thresholds are deliberately coarse: the goal is "a human notices
//! within seconds", not statistics.

use std::collections::VecDeque;
use std::time::Instant;

/// `PC_PROGRESS` environment variable: any truthy value turns on the
/// stderr progress meter.
pub const PROGRESS_ENV: &str = "PC_PROGRESS";

/// A cell this many times slower than the rolling mean is a stall.
pub const STALL_FACTOR: f64 = 8.0;

/// Ignore stall candidates faster than this — microsecond cells jitter
/// far beyond 8× without meaning anything.
pub const STALL_MIN_NS: u64 = 50_000_000;

/// Rolling window, in cells, for throughput-regression detection.
pub const WINDOW: usize = 32;

/// A window this many times slower than the best window is a regression.
pub const REGRESSION_FACTOR: f64 = 4.0;

/// Minimum seconds between progress lines.
const PROGRESS_INTERVAL_SECS: f64 = 0.5;

fn env_truthy(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| {
        !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "" | "0" | "off" | "false"
        )
    })
}

/// Live campaign bookkeeping: throughput, ETA, stall and regression
/// detection. One instance per campaign, fed once per completed cell.
pub struct CampaignMeter {
    total_cells: usize,
    done: usize,
    started: Instant,
    last_print: Instant,
    progress_on: bool,
    /// EWMA of per-cell wall time (ns); 0 until the first cell.
    ewma_ns: f64,
    /// Last [`WINDOW`] cells: (label, wall_ns).
    window: VecDeque<(String, u64)>,
    /// Fastest full-window total seen so far (ns).
    best_window_ns: Option<u64>,
    /// Cells to skip before the next regression warning (anti-spam).
    regression_cooldown: usize,
}

impl CampaignMeter {
    /// A meter for a campaign of `total_cells` cells. Reads
    /// `PC_PROGRESS` once.
    pub fn new(total_cells: usize) -> CampaignMeter {
        CampaignMeter::with_progress(total_cells, env_truthy(PROGRESS_ENV))
    }

    /// Like [`CampaignMeter::new`] with the progress switch explicit
    /// (tests).
    pub fn with_progress(total_cells: usize, progress_on: bool) -> CampaignMeter {
        let now = Instant::now();
        CampaignMeter {
            total_cells,
            done: 0,
            started: now,
            last_print: now,
            progress_on,
            ewma_ns: 0.0,
            window: VecDeque::with_capacity(WINDOW),
            best_window_ns: None,
            regression_cooldown: 0,
        }
    }

    /// Cells recorded so far.
    pub fn done(&self) -> usize {
        self.done
    }

    /// Fold one completed cell in and return any anomaly messages
    /// (already formatted for `pc_warn!`). Pure function of the fed
    /// wall times — no clocks, no I/O — so the detectors are unit
    /// testable with synthetic durations.
    pub fn note_cell(&mut self, label: &str, wall_ns: u64) -> Vec<String> {
        let mut warnings = Vec::new();
        self.done += 1;

        // Stall: compare against the EWMA *before* folding this cell
        // in, so the stall itself does not raise the bar it is judged
        // against.
        if self.done > 4 && wall_ns > STALL_MIN_NS {
            let bar = self.ewma_ns * STALL_FACTOR;
            if self.ewma_ns > 0.0 && (wall_ns as f64) > bar {
                warnings.push(format!(
                    "fuzz: stalled cell {label}: {} ({:.1}x the {} rolling mean)",
                    crate::fmt_ns(wall_ns as f64),
                    wall_ns as f64 / self.ewma_ns,
                    crate::fmt_ns(self.ewma_ns),
                ));
            }
        }
        self.ewma_ns = if self.ewma_ns == 0.0 {
            wall_ns as f64
        } else {
            0.8 * self.ewma_ns + 0.2 * wall_ns as f64
        };

        // Throughput regression over the rolling window.
        if self.window.len() == WINDOW {
            self.window.pop_front();
        }
        self.window.push_back((label.to_string(), wall_ns));
        self.regression_cooldown = self.regression_cooldown.saturating_sub(1);
        if self.window.len() == WINDOW {
            let total: u64 = self.window.iter().map(|&(_, ns)| ns).sum();
            let best = self.best_window_ns.get_or_insert(total);
            if total < *best {
                *best = total;
            } else if self.regression_cooldown == 0
                && *best > 0
                && (total as f64) > (*best as f64) * REGRESSION_FACTOR
            {
                let (slowest, slow_ns) = self
                    .window
                    .iter()
                    .max_by_key(|&&(_, ns)| ns)
                    .cloned()
                    .expect("window is non-empty");
                warnings.push(format!(
                    "fuzz: throughput regression: last {WINDOW} cells took {} \
                     ({:.1}x the best window); slowest cell {slowest} at {}",
                    crate::fmt_ns(total as f64),
                    total as f64 / *best as f64,
                    crate::fmt_ns(slow_ns as f64),
                ));
                self.regression_cooldown = WINDOW;
            }
        }
        warnings
    }

    /// Build the one-line progress meter. `saturation` is the corpus's
    /// Good–Turing estimate in `[0, 1]`. Total math is guarded against
    /// the degenerate corpora a filtered campaign can produce (zero
    /// cells, zero elapsed time): every field renders finite.
    pub fn progress_line(&self, behaviors: usize, findings: usize, saturation: f64) -> String {
        let elapsed = self.started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 && self.done > 0 {
            self.done as f64 / elapsed
        } else {
            0.0
        };
        let eta = if rate > 0.0 && self.total_cells > self.done {
            format!("{:.0}s", (self.total_cells - self.done) as f64 / rate)
        } else {
            "0s".to_string()
        };
        let pct = if self.total_cells > 0 {
            100 * self.done / self.total_cells
        } else {
            100
        };
        format!(
            "[fuzz] {}/{} cells ({pct}%) | {rate:.1} cells/s | eta {eta} | \
             behaviors {behaviors} | findings {findings} | saturation {:.0}%",
            self.done,
            self.total_cells,
            saturation * 100.0,
        )
    }

    /// Print the progress line to stderr when `PC_PROGRESS` is on,
    /// rate-limited to one line per half second (the final cell always
    /// prints).
    pub fn maybe_print(&mut self, behaviors: usize, findings: usize, saturation: f64) {
        if !self.progress_on {
            return;
        }
        let last = self.done == self.total_cells;
        if !last && self.last_print.elapsed().as_secs_f64() < PROGRESS_INTERVAL_SECS {
            return;
        }
        self.last_print = Instant::now();
        eprintln!("{}", self.progress_line(behaviors, findings, saturation));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_detector_names_the_offending_cell() {
        let mut m = CampaignMeter::with_progress(100, false);
        for i in 0..10 {
            assert!(m
                .note_cell(&format!("w{i}@BeeGFS/data"), 60_000_000)
                .is_empty());
        }
        let w = m.note_cell("slow@OrangeFS/none", 900_000_000);
        assert_eq!(w.len(), 1);
        assert!(w[0].contains("stalled cell slow@OrangeFS/none"), "{}", w[0]);
        // Sub-threshold cells never stall, however slow relatively.
        let mut m = CampaignMeter::with_progress(100, false);
        for _ in 0..10 {
            m.note_cell("w", 1_000);
        }
        assert!(m.note_cell("w", 40_000_000).is_empty());
    }

    #[test]
    fn regression_detector_warns_once_per_window() {
        let mut m = CampaignMeter::with_progress(1000, false);
        for i in 0..WINDOW {
            assert!(m.note_cell(&format!("fast{i}"), 1_000_000).is_empty());
        }
        // 5x slower cells: the rolling window degrades past 4x best.
        let mut warned = 0;
        for i in 0..2 * WINDOW {
            warned += m.note_cell(&format!("slow{i}"), 5_000_000).len();
        }
        assert!(warned >= 1, "no regression warning");
        assert!(warned <= 3, "warning spam: {warned}");
    }

    #[test]
    fn degenerate_meters_stay_finite() {
        // Zero-cell campaign (everything filtered out): the line must
        // render without NaN/inf and claim completion.
        let m = CampaignMeter::with_progress(0, false);
        let line = m.progress_line(0, 0, 0.0);
        assert!(line.contains("0/0 cells (100%)"), "{line}");
        assert!(!line.contains("NaN") && !line.contains("inf"), "{line}");
        // All-zero wall times (a mocked clock): the regression detector
        // must not divide by a zero best window.
        let mut m = CampaignMeter::with_progress(1000, false);
        for i in 0..WINDOW {
            assert!(m.note_cell(&format!("z{i}"), 0).is_empty());
        }
        for i in 0..WINDOW {
            for w in m.note_cell(&format!("s{i}"), 1_000_000) {
                assert!(!w.contains("inf"), "{w}");
            }
        }
        let line = m.progress_line(1, 0, 1.0);
        assert!(!line.contains("NaN") && !line.contains("inf"), "{line}");
    }

    #[test]
    fn progress_line_reports_totals_and_saturation() {
        let mut m = CampaignMeter::with_progress(8, false);
        for i in 0..4 {
            m.note_cell(&format!("w{i}"), 1_000_000);
        }
        let line = m.progress_line(3, 2, 0.75);
        assert!(line.contains("4/8 cells (50%)"), "{line}");
        assert!(line.contains("behaviors 3"), "{line}");
        assert!(line.contains("findings 2"), "{line}");
        assert!(line.contains("saturation 75%"), "{line}");
        assert!(line.contains("cells/s"), "{line}");
    }
}
