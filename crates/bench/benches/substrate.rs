//! Micro-benches for the substrates: local-FS replay, causality-graph
//! construction, persistence analysis, crash-state enumeration, and
//! HDF5 image checking. These are the inner loops of the framework —
//! Figure 10's wall time is mostly spent here.

use criterion::{criterion_group, criterion_main, Criterion};
use paracrash::{crash_states, PersistAnalysis};
use simfs::{FsOp, FsState, JournalMode};
use tracer::CausalityGraph;
use workloads::{FsKind, Params, Program};

fn bench_fsstate_replay(c: &mut Criterion) {
    let ops: Vec<FsOp> = (0..200)
        .map(|i| match i % 4 {
            0 => FsOp::Creat {
                path: format!("/f{i}"),
            },
            1 => FsOp::Pwrite {
                path: format!("/f{}", i - 1),
                offset: 0,
                data: vec![0u8; 256],
            },
            2 => FsOp::SetXattr {
                path: format!("/f{}", i - 2),
                key: "user.k".into(),
                value: vec![1; 16],
            },
            _ => FsOp::Rename {
                src: format!("/f{}", i - 3),
                dst: format!("/g{i}"),
            },
        })
        .collect();
    c.bench_function("simfs/replay-200-ops", |b| {
        b.iter(|| {
            let mut fs = FsState::new();
            let failed = fs.apply_lenient(ops.iter());
            assert!(failed.is_empty());
            fs.digest()
        })
    });
}

fn bench_snapshot_clone(c: &mut Criterion) {
    let stack = Program::H5Create.run(FsKind::BeeGfs, &Params::quick());
    c.bench_function("pfs/baseline-snapshot-clone", |b| {
        b.iter(|| stack.pfs.baseline().clone())
    });
}

fn bench_causality(c: &mut Criterion) {
    let stack = Program::H5Create.run(FsKind::BeeGfs, &Params::quick());
    c.bench_function("tracer/causality-graph-build", |b| {
        b.iter(|| CausalityGraph::build(&stack.rec))
    });
    let graph = CausalityGraph::build(&stack.rec);
    c.bench_function("tracer/consistent-cuts", |b| {
        b.iter(|| graph.consistent_cuts(&stack.rec.lowermost_events()))
    });
}

fn bench_persistence(c: &mut Criterion) {
    let stack = Program::H5Create.run(FsKind::BeeGfs, &Params::quick());
    let graph = CausalityGraph::build(&stack.rec);
    c.bench_function("paracrash/persist-analysis", |b| {
        b.iter(|| PersistAnalysis::build(&stack.rec, &graph, |_| Some(JournalMode::Data)))
    });
    let pa = PersistAnalysis::build(&stack.rec, &graph, |_| Some(JournalMode::Data));
    c.bench_function("paracrash/crash-state-enumeration", |b| {
        b.iter(|| crash_states(&stack.rec, &graph, &pa, 1, None).len())
    });
}

fn bench_h5check(c: &mut Criterion) {
    let stack = Program::H5Create.run(FsKind::BeeGfs, &Params::quick());
    let view = stack.pfs.client_view(stack.pfs.live());
    let bytes = view.read("/file.h5").unwrap().to_vec();
    c.bench_function("h5sim/h5check-parse", |b| {
        b.iter(|| h5sim::check(&bytes).unwrap())
    });
    c.bench_function("h5sim/h5inspect", |b| {
        b.iter(|| h5sim::h5inspect(&bytes).unwrap().len())
    });
}

criterion_group!(
    benches,
    bench_fsstate_replay,
    bench_snapshot_clone,
    bench_causality,
    bench_persistence,
    bench_h5check
);
criterion_main!(benches);
