//! Criterion benches for Figure 11: real exploration cost as the server
//! count grows (stripe shrinking proportionally, as in the paper).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use paracrash::ExploreMode;
use pc_bench::run_with_mode;
use workloads::{FsKind, Params, Program};

fn bench_scaling(c: &mut Criterion) {
    let base = Params::quick();
    let mut group = c.benchmark_group("fig11-scalability");
    group.sample_size(10);
    for &servers in &[4u32, 8, 16] {
        let stripe = (base.stripe * 4 / u64::from(servers)).max(256);
        let params = base
            .clone()
            .with_servers(servers / 2, servers / 2)
            .with_stripe(stripe);
        group.throughput(Throughput::Elements(u64::from(servers)));
        group.bench_with_input(
            BenchmarkId::new("H5-create-BeeGFS", servers),
            &params,
            |b, params| {
                b.iter(|| {
                    run_with_mode(
                        Program::H5Create,
                        FsKind::BeeGfs,
                        params,
                        ExploreMode::Optimized,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
