//! Ablation benches for the design choices DESIGN.md calls out:
//! the victim bound `k` (Algorithm 1), and the local-FS journaling mode
//! (Algorithm 2's branches). Both change the crash-state space, so the
//! bench reports wall time while the assertions pin the state counts'
//! monotonicity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paracrash::{check_stack, CheckConfig, Stack, StackFactory};
use pfs::beegfs::BeeGfs;
use pfs::{Pfs, PfsCall, Placement};
use simfs::JournalMode;
use simnet::ClusterTopology;
use workloads::{FsKind, Params, Program};

fn bench_victim_bound(c: &mut Criterion) {
    let params = Params::quick();
    let mut group = c.benchmark_group("ablation-victims");
    group.sample_size(10);
    for k in [0usize, 1, 2] {
        group.bench_with_input(BenchmarkId::new("ARVR-BeeGFS", k), &k, |b, &k| {
            b.iter(|| {
                let stack = Program::Arvr.run(FsKind::BeeGfs, &params);
                let factory = FsKind::BeeGfs.factory(&params);
                let outcome = check_stack(
                    &stack,
                    &factory,
                    &CheckConfig {
                        k,
                        ..CheckConfig::paper_default()
                    },
                );
                // k strictly enlarges the state space…
                assert!(outcome.stats.states_total >= 1);
                outcome
            })
        });
    }
    group.finish();
}

fn arvr_on_journal(mode: JournalMode) -> paracrash::CheckOutcome {
    let make = move || -> Box<dyn Pfs> {
        Box::new(BeeGfs::with_journal(
            ClusterTopology::paper_dedicated_default(),
            Placement::new(),
            2048,
            mode,
        ))
    };
    let mut stack = Stack::new(make());
    stack.posix(0, PfsCall::Creat { path: "/file".into() });
    stack.posix(
        0,
        PfsCall::Pwrite {
            path: "/file".into(),
            offset: 0,
            data: b"old".to_vec(),
        },
    );
    stack.seal_preamble();
    stack.posix(0, PfsCall::Creat { path: "/tmp".into() });
    stack.posix(
        0,
        PfsCall::Pwrite {
            path: "/tmp".into(),
            offset: 0,
            data: b"new".to_vec(),
        },
    );
    stack.posix(
        0,
        PfsCall::Rename {
            src: "/tmp".into(),
            dst: "/file".into(),
        },
    );
    let factory: StackFactory = Box::new(make);
    check_stack(&stack, &factory, &CheckConfig::paper_default())
}

fn bench_journal_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-journal");
    group.sample_size(10);
    for mode in [
        JournalMode::Data,
        JournalMode::Ordered,
        JournalMode::Writeback,
        JournalMode::None,
    ] {
        group.bench_with_input(
            BenchmarkId::new("ARVR-BeeGFS", mode.as_str()),
            &mode,
            |b, &mode| b.iter(|| arvr_on_journal(mode)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_victim_bound, bench_journal_modes);
criterion_main!(benches);
