//! Criterion benches for Figure 10: real wall-clock exploration time of
//! the three crash-state exploration strategies.
//!
//! The figure harness (`--bin fig10`) reports the calibrated simulated
//! seconds; these benches measure what this reproduction actually costs,
//! so regressions in the framework itself are visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paracrash::ExploreMode;
use pc_bench::run_with_mode;
use workloads::{FsKind, Params, Program};

fn bench_modes(c: &mut Criterion) {
    let params = Params::quick();
    let mut group = c.benchmark_group("fig10-explore");
    group.sample_size(10);
    for (program, fs) in [
        (Program::Arvr, FsKind::BeeGfs),
        (Program::Cr, FsKind::Gpfs),
        (Program::H5Delete, FsKind::BeeGfs),
    ] {
        for mode in [
            ExploreMode::BruteForce,
            ExploreMode::Pruning,
            ExploreMode::Optimized,
        ] {
            group.bench_with_input(
                BenchmarkId::new(
                    format!("{}-{}", program.name(), fs.name()),
                    mode.as_str(),
                ),
                &mode,
                |b, &mode| {
                    b.iter(|| {
                        let outcome = run_with_mode(program, fs, &params, mode);
                        assert!(outcome.stats.states_checked > 0);
                        outcome
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let params = Params::quick();
    let mut group = c.benchmark_group("trace-generation");
    for fs in FsKind::all() {
        group.bench_with_input(BenchmarkId::new("ARVR", fs.name()), &fs, |b, &fs| {
            b.iter(|| Program::Arvr.run(fs, &params))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modes, bench_trace_generation);
criterion_main!(benches);
