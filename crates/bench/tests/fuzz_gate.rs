//! The pinned-corpus regression test behind the PR-tier crash gate.
//!
//! `expected_fuzz_pr_tier.txt` is the canonical report of the PR-tier
//! campaign ([`FuzzOptions::pr_tier`]): exhaustive bound-2 corpus on
//! BeeGFS + OrangeFS under data journaling. The report is byte-stable
//! by contract (RNG-free enumeration, `PC_THREADS`-invariant checking,
//! sequential cell order), so any drift here is a *behavior change* in
//! the stack — intended changes must regenerate the file:
//!
//! ```sh
//! cargo run --release -p pc-bench --bin paracrash -- fuzz \
//!     > crates/bench/tests/expected_fuzz_pr_tier.txt
//! ```
//!
//! `scripts/verify.sh` re-checks the same pin through the CLI (and
//! diffs `PC_THREADS=1` against the default pool); this test keeps the
//! gate active under a plain `cargo test` too.

use pc_bench::fuzz_driver::{fuzz_campaign, FuzzOptions};

const EXPECTED: &str = include_str!("expected_fuzz_pr_tier.txt");

#[test]
fn pr_tier_finding_set_is_pinned() {
    let report = fuzz_campaign(&FuzzOptions::pr_tier())
        .expect("campaign runs")
        .corpus
        .canonical_report();
    assert_eq!(
        report, EXPECTED,
        "PR-tier fuzz findings drifted from the pinned corpus; if the \
         change is intended, regenerate expected_fuzz_pr_tier.txt (see \
         module docs)"
    );
}

#[test]
fn sampled_runs_are_byte_identical() {
    // Determinism on the sampling path (the exhaustive path is already
    // pinned above; verify.sh additionally diffs PC_THREADS=1 vs the
    // default pool through the CLI).
    let opts = FuzzOptions {
        sample: Some(60),
        ..FuzzOptions::pr_tier()
    };
    let a = fuzz_campaign(&opts).expect("run a");
    let b = fuzz_campaign(&opts).expect("run b");
    assert_eq!(
        a.corpus.canonical_report(),
        b.corpus.canonical_report(),
        "same bound and seed must reproduce byte-identically"
    );
    assert_eq!(a.workloads, 60);
}
