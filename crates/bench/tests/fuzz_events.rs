//! Campaign-level event-stream tests: enabling the flight recorder must
//! not perturb the deterministic fold, and the stream's canonical
//! projection must itself be deterministic.
//!
//! These live in `pc-bench` (not the root test package) because they
//! drive [`fuzz_campaign`]; the recorder is process-global, so the
//! tests serialize on a lock and restore the disabled default.

use h5sim::json::Json;
use paracrash::telemetry::{canonical_event_lines, parse_event_stream};
use pc_bench::fuzz_driver::{fuzz_campaign, FuzzOptions};
use pc_rt::obs::stream;
use std::sync::Mutex;
use workloads::FsKind;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn small_opts() -> FuzzOptions {
    FuzzOptions {
        sample: Some(8),
        file_systems: vec![FsKind::BeeGfs],
        ..FuzzOptions::pr_tier()
    }
}

/// Run a small campaign with the stream sinking to `path`; returns the
/// canonical report and the sink file's text.
fn run_streamed(path: &std::path::Path) -> (String, String) {
    let path_str = path.to_str().unwrap();
    stream::set_capacity(4096);
    stream::set_sink(path_str).expect("sink opens");
    let report = fuzz_campaign(&small_opts())
        .expect("campaign runs")
        .corpus
        .canonical_report();
    stream::close();
    stream::set_enabled(false);
    pc_rt::obs::set_enabled(false);
    pc_rt::obs::reset();
    let text = std::fs::read_to_string(path).expect("stream file exists");
    std::fs::remove_file(path).ok();
    (report, text)
}

#[test]
fn streamed_campaign_reports_identically_and_projects_deterministically() {
    let _guard = TEST_LOCK.lock().unwrap();

    // Baseline: no stream.
    let plain = fuzz_campaign(&small_opts())
        .expect("campaign runs")
        .corpus
        .canonical_report();

    let dir = std::env::temp_dir();
    let (report_a, stream_a) = run_streamed(&dir.join("pc-fuzz-events-a.jsonl"));
    let (report_b, stream_b) = run_streamed(&dir.join("pc-fuzz-events-b.jsonl"));

    // The recorder observes the fold; it must never change it.
    assert_eq!(plain, report_a, "events sink must not perturb the report");
    assert_eq!(report_a, report_b);

    // The raw streams differ (timestamps, seqs); the canonical
    // projection must not.
    let canon_a = canonical_event_lines(&stream_a).expect("stream a projects");
    let canon_b = canonical_event_lines(&stream_b).expect("stream b projects");
    assert!(!canon_a.is_empty(), "campaign produced finding/cell events");
    assert_eq!(
        canon_a, canon_b,
        "canonical projection must be run-invariant"
    );
}

#[test]
fn stream_carries_one_cell_event_per_campaign_cell() {
    let _guard = TEST_LOCK.lock().unwrap();
    let dir = std::env::temp_dir();
    let (_, text) = run_streamed(&dir.join("pc-fuzz-events-cells.jsonl"));
    let events = parse_event_stream(&text).expect("stream re-parses");
    let opts = small_opts();
    let expected_cells = 8 * opts.file_systems.len() * opts.modes.len();
    let cells = events
        .iter()
        .filter(|e| e.get("kind").and_then(Json::as_str) == Some("cell"))
        .count();
    assert_eq!(cells, expected_cells, "one cell event per campaign cell");
    // Every cell event carries a nonzero causal trace id, and ids are
    // distinct across cells (one flow per check).
    let mut ids: Vec<u64> = events
        .iter()
        .filter(|e| e.get("kind").and_then(Json::as_str) == Some("cell"))
        .map(|e| e.get("trace_id").and_then(Json::as_int).unwrap())
        .collect();
    assert!(ids.iter().all(|&id| id > 0), "cells must be trace-tagged");
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), expected_cells, "trace ids are per-cell unique");
    // The driver stamped at least one Good–Turing snapshot.
    assert!(
        events
            .iter()
            .any(|e| e.get("kind").and_then(Json::as_str) == Some("snapshot")),
        "campaign end emits a saturation snapshot"
    );
}
