//! Cluster topology: which servers exist and what they do.
//!
//! Mirrors the paper's Table 2 configurations: BeeGFS / OrangeFS / Lustre
//! run dedicated metadata servers and storage servers (2 + 2 by default);
//! GlusterFS and GPFS run *combined* servers that each hold both data and
//! metadata (2 by default). The scalability study (Figure 11) grows the
//! server count from 4 to 32.

/// What a server stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerRole {
    /// Dedicated metadata server (BeeGFS `meta`, OrangeFS metadata DB,
    /// Lustre MDS).
    Metadata,
    /// Dedicated data/storage server (BeeGFS `storage`, Lustre OST).
    Storage,
    /// Holds both data and metadata (GlusterFS brick, GPFS NSD).
    Combined,
}

/// One server in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerSpec {
    /// Dense server index used everywhere (`Process::Server(id)`).
    pub id: u32,
    /// Role.
    pub role: ServerRole,
}

/// The full cluster shape for one test run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterTopology {
    servers: Vec<ServerSpec>,
    clients: u32,
}

impl ClusterTopology {
    /// Build a topology with dedicated metadata and storage servers
    /// (BeeGFS / OrangeFS / Lustre shape).
    pub fn dedicated(meta: u32, storage: u32, clients: u32) -> Self {
        let mut servers = Vec::with_capacity((meta + storage) as usize);
        for id in 0..meta {
            servers.push(ServerSpec {
                id,
                role: ServerRole::Metadata,
            });
        }
        for id in meta..meta + storage {
            servers.push(ServerSpec {
                id,
                role: ServerRole::Storage,
            });
        }
        ClusterTopology { servers, clients }
    }

    /// Build a topology of combined servers (GlusterFS / GPFS shape).
    pub fn combined(servers: u32, clients: u32) -> Self {
        ClusterTopology {
            servers: (0..servers)
                .map(|id| ServerSpec {
                    id,
                    role: ServerRole::Combined,
                })
                .collect(),
            clients,
        }
    }

    /// The paper's default: 2 metadata + 2 storage, 2 clients.
    pub fn paper_dedicated_default() -> Self {
        Self::dedicated(2, 2, 2)
    }

    /// The paper's default for combined-server PFS: 2 servers, 2 clients.
    pub fn paper_combined_default() -> Self {
        Self::combined(2, 2)
    }

    /// All servers.
    pub fn servers(&self) -> &[ServerSpec] {
        &self.servers
    }

    /// Total server count.
    pub fn server_count(&self) -> u32 {
        self.servers.len() as u32
    }

    /// Number of application clients.
    pub fn client_count(&self) -> u32 {
        self.clients
    }

    /// Ids of servers that can hold metadata.
    pub fn metadata_servers(&self) -> Vec<u32> {
        self.servers
            .iter()
            .filter(|s| matches!(s.role, ServerRole::Metadata | ServerRole::Combined))
            .map(|s| s.id)
            .collect()
    }

    /// Ids of servers that can hold data.
    pub fn storage_servers(&self) -> Vec<u32> {
        self.servers
            .iter()
            .filter(|s| matches!(s.role, ServerRole::Storage | ServerRole::Combined))
            .map(|s| s.id)
            .collect()
    }

    /// Role of a server id.
    pub fn role(&self, id: u32) -> Option<ServerRole> {
        self.servers.iter().find(|s| s.id == id).map(|s| s.role)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedicated_shape() {
        let t = ClusterTopology::dedicated(2, 2, 2);
        assert_eq!(t.server_count(), 4);
        assert_eq!(t.metadata_servers(), vec![0, 1]);
        assert_eq!(t.storage_servers(), vec![2, 3]);
        assert_eq!(t.role(0), Some(ServerRole::Metadata));
        assert_eq!(t.role(3), Some(ServerRole::Storage));
        assert_eq!(t.role(9), None);
        assert_eq!(t.client_count(), 2);
    }

    #[test]
    fn combined_shape() {
        let t = ClusterTopology::combined(2, 1);
        assert_eq!(t.metadata_servers(), vec![0, 1]);
        assert_eq!(t.storage_servers(), vec![0, 1]);
    }

    #[test]
    fn paper_defaults_match_table2() {
        assert_eq!(ClusterTopology::paper_dedicated_default().server_count(), 4);
        assert_eq!(ClusterTopology::paper_combined_default().server_count(), 2);
    }

    #[test]
    fn scaling_shapes_for_figure11() {
        for n in [4u32, 6, 8, 16, 32] {
            let t = ClusterTopology::dedicated(n / 2, n / 2, 2);
            assert_eq!(t.server_count(), n);
        }
    }
}
