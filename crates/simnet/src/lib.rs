#![warn(missing_docs)]

//! # simnet — deterministic simulated cluster
//!
//! ParaCrash's evaluation runs each PFS server as "a separate process …
//! listening on a distinct network port" on one machine (§6.1). This crate
//! is the in-process equivalent: a cluster **topology** (metadata servers,
//! storage servers, combined servers, clients), **vector clocks** for
//! happens-before bookkeeping, and an **RPC** helper that records matched
//! `sendto` / `recvfrom` trace events with sender→receiver causality edges
//! — the raw material from which the `tracer` crate builds the multi-layer
//! causality graph.
//!
//! Determinism is load-bearing: crash-state exploration must be exactly
//! reproducible across runs, so all message delivery is synchronous and
//! ordered by program logic, never by wall-clock time.

pub mod clock;
pub mod fault;
pub mod rpc;
pub mod topology;

pub use clock::{assign_clocks, VectorClock};
pub use fault::{Fate, FaultConfig, FaultPlane};
pub use rpc::RpcNet;
pub use topology::{ClusterTopology, ServerRole, ServerSpec};
