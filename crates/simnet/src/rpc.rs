//! RPC tracing helper.
//!
//! Every client↔server interaction in the PFS models goes through
//! [`RpcNet`], which records the `sendto` / `recvfrom` event pair and the
//! sender→receiver causality edge — exactly the information ParaCrash
//! extracts from strace'd socket calls to "order the client events with
//! respect to the server events" (§4.2).
//!
//! A net can carry a [`FaultPlane`]: each message then draws a
//! [`Fate`], and drops/duplicates/delays surface as *real trace events*
//! (lost sends, annotated retries, duplicate deliveries) while delivery
//! stays eventual and exactly-once-effective — see the
//! [`fault`](crate::fault) module for why that keeps live state
//! bit-identical to a fault-free run.

use crate::fault::{Fate, FaultPlane};
use tracer::{EventId, Layer, Payload, Process, Recorder};

/// Synchronous RPC recorder over a shared [`Recorder`].
///
/// RPCs are delivered immediately (the simulation is synchronous); what
/// matters for crash consistency is only the causal edge, not timing.
pub struct RpcNet<'r> {
    rec: &'r mut Recorder,
    plane: Option<&'r mut FaultPlane>,
}

fn layer_of(p: Process) -> Layer {
    match p {
        Process::Client(_) => Layer::PfsClient,
        Process::Server(_) => Layer::PfsServer,
    }
}

fn server_id(p: Process) -> Option<u32> {
    match p {
        Process::Server(s) => Some(s),
        Process::Client(_) => None,
    }
}

impl<'r> RpcNet<'r> {
    /// Wrap a recorder (fault-free delivery).
    pub fn new(rec: &'r mut Recorder) -> Self {
        RpcNet { rec, plane: None }
    }

    /// Wrap a recorder plus a fault plane: every message's fate is drawn
    /// from the plane. An inactive plane behaves exactly like
    /// [`RpcNet::new`].
    pub fn faulty(rec: &'r mut Recorder, plane: &'r mut FaultPlane) -> Self {
        RpcNet {
            rec,
            plane: Some(plane),
        }
    }

    /// Access the underlying recorder.
    pub fn recorder(&mut self) -> &mut Recorder {
        self.rec
    }

    /// Record a one-way message `from → to`; returns `(send_id, recv_id)`.
    ///
    /// `parent` is the upper-layer call on the sending side that issued
    /// the message (caller–callee edge). Under an active fault plane the
    /// message may be preceded by lost sends (`[lost]` + a `[retry n]`
    /// resend), duplicated (`[dup]` extra delivery) or delayed
    /// (`[delayed]` annotation); the returned `recv_id` is always the
    /// delivery that carries the causal edge server work hangs off.
    pub fn message(
        &mut self,
        from: Process,
        to: Process,
        msg: &str,
        parent: Option<EventId>,
    ) -> (EventId, EventId) {
        let fate = match self.plane.as_mut() {
            Some(plane) => plane.fate(server_id(from), server_id(to)),
            None => Fate::Deliver,
        };
        // The rpc span ties each delivery to the ambient causal trace
        // id, so a Chrome-trace export groups the RPC flow under the
        // workload cell that caused it (one pid lane per check).
        let _rpc_span = pc_rt::obs::span_cat("rpc.message", "rpc");
        pc_rt::obs::count("rpc.messages", 1);
        pc_rt::pc_debug!("rpc {from:?} -> {to:?}: {msg} ({fate:?})");
        match fate {
            Fate::Deliver => self.record_pair(from, to, msg, parent),
            Fate::Drop { attempts } => {
                // The transport loses `attempts` sends; each shows up in
                // the trace (no matching recv — the paper's strace would
                // show the timed-out sendto), then the retry succeeds.
                for a in 1..=attempts {
                    pc_rt::obs::count("rpc.dropped", 1);
                    pc_rt::obs::count("rpc.retries", 1);
                    self.rec.record(
                        layer_of(from),
                        from,
                        Payload::Send {
                            to,
                            msg: format!("{msg} [lost {a}]"),
                        },
                        parent,
                    );
                }
                self.record_pair(from, to, &format!("{msg} [retry {attempts}]"), parent)
            }
            Fate::Duplicate => {
                let (send, recv) = self.record_pair(from, to, msg, parent);
                // The duplicate delivery: received again, deduplicated
                // by the server (no second execution of the work).
                pc_rt::obs::count("rpc.duplicates", 1);
                self.rec.record(
                    layer_of(to),
                    to,
                    Payload::Recv {
                        from,
                        msg: format!("{msg} [dup]"),
                    },
                    Some(send),
                );
                (send, recv)
            }
            Fate::Delay => {
                pc_rt::obs::count("rpc.delayed", 1);
                self.record_pair(from, to, &format!("{msg} [delayed]"), parent)
            }
        }
    }

    fn record_pair(
        &mut self,
        from: Process,
        to: Process,
        msg: &str,
        parent: Option<EventId>,
    ) -> (EventId, EventId) {
        let send = self.rec.record(
            layer_of(from),
            from,
            Payload::Send {
                to,
                msg: msg.to_string(),
            },
            parent,
        );
        // The recv's parent is the matching send: sender–receiver pairs
        // are both causal edges and caller–callee links (the ancestor
        // walk that associates server work with the client call that
        // caused it goes through them).
        let recv = self.rec.record(
            layer_of(to),
            to,
            Payload::Recv {
                from,
                msg: msg.to_string(),
            },
            Some(send),
        );
        (send, recv)
    }

    /// Record a request/..../reply round trip skeleton: request message
    /// now; call [`RpcNet::reply`] for the reply after recording the
    /// server-side work so the reply's send happens after it both in
    /// program order and via the caller edge.
    pub fn request(
        &mut self,
        client: Process,
        server: Process,
        msg: &str,
        parent: Option<EventId>,
    ) -> (EventId, EventId) {
        self.message(client, server, msg, parent)
    }

    /// Record the reply leg of a round trip. `parent` is the server-side
    /// work event that produced the reply, so the reply send is causally
    /// ordered after it (not just by same-process program order).
    pub fn reply(
        &mut self,
        server: Process,
        client: Process,
        msg: &str,
        parent: Option<EventId>,
    ) -> (EventId, EventId) {
        self.message(server, client, msg, parent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use tracer::CausalityGraph;

    #[test]
    fn round_trip_orders_client_and_server_work() {
        let mut rec = Recorder::new();
        let client = Process::Client(0);
        let server = Process::Server(0);
        let call = rec.record(
            Layer::PfsClient,
            client,
            Payload::Call {
                name: "creat".into(),
                args: vec!["/mnt/foo".into()],
            },
            None,
        );
        let mut net = RpcNet::new(&mut rec);
        let (_, recv) = net.request(client, server, "CREAT foo", Some(call));
        // Server-side local-FS work after receiving the request.
        let work = net.recorder().record(
            Layer::LocalFs,
            server,
            Payload::Fs {
                server: 0,
                op: simfs::FsOp::Creat {
                    path: "/meta/dentries/foo".into(),
                },
            },
            Some(recv),
        );
        let mut net = RpcNet::new(&mut rec);
        let (_, ack) = net.reply(server, client, "OK", Some(work));
        // Client continues after the ack.
        let after = rec.record(
            Layer::PfsClient,
            client,
            Payload::Call {
                name: "close".into(),
                args: vec![],
            },
            None,
        );
        let g = CausalityGraph::build(&rec);
        assert!(g.happens_before(call, work));
        assert!(g.happens_before(work, ack));
        assert!(g.happens_before(work, after));
    }

    /// Regression: `reply` must thread the server-side work's event id
    /// as the reply send's parent. Historically it hardcoded `None`, so
    /// the work→ack ordering held only through same-process program
    /// order — which evaporates for work recorded on a *different*
    /// server process than the replying one (e.g. a metadata server
    /// acking on behalf of forwarded storage work).
    #[test]
    fn reply_carries_the_causal_parent_across_processes() {
        let mut rec = Recorder::new();
        let client = Process::Client(0);
        let meta = Process::Server(0);
        let storage = Process::Server(1);
        let mut net = RpcNet::new(&mut rec);
        let (_, recv) = net.request(client, meta, "WRITE", None);
        let (_, fwd_recv) = net.message(meta, storage, "FWD WRITE", Some(recv));
        let work = net.recorder().record(
            Layer::LocalFs,
            storage,
            Payload::Fs {
                server: 1,
                op: simfs::FsOp::Creat {
                    path: "/chunk".into(),
                },
            },
            Some(fwd_recv),
        );
        // The *metadata* server replies after the storage-side work.
        let mut net = RpcNet::new(&mut rec);
        let (ack_send, _) = net.reply(meta, client, "OK", Some(work));
        assert_eq!(rec.event(ack_send).parent, Some(work));
        let g = CausalityGraph::build(&rec);
        assert!(
            g.happens_before(work, ack_send),
            "reply must be ordered after the work that produced it"
        );
    }

    #[test]
    fn two_servers_stay_concurrent_without_messages() {
        let mut rec = Recorder::new();
        let a = rec.record(
            Layer::LocalFs,
            Process::Server(0),
            Payload::Fs {
                server: 0,
                op: simfs::FsOp::Creat { path: "/a".into() },
            },
            None,
        );
        let b = rec.record(
            Layer::LocalFs,
            Process::Server(1),
            Payload::Fs {
                server: 1,
                op: simfs::FsOp::Creat { path: "/b".into() },
            },
            None,
        );
        let g = CausalityGraph::build(&rec);
        assert!(g.concurrent(a, b));
    }

    #[test]
    fn inactive_plane_records_the_same_trace_as_no_plane() {
        let mut clean = Recorder::new();
        RpcNet::new(&mut clean).message(Process::Client(0), Process::Server(0), "PING", None);
        let mut plane = FaultPlane::disabled();
        let mut faulted = Recorder::new();
        RpcNet::faulty(&mut faulted, &mut plane).message(
            Process::Client(0),
            Process::Server(0),
            "PING",
            None,
        );
        assert_eq!(clean.len(), faulted.len());
    }

    #[test]
    fn dropped_message_leaves_lost_sends_then_a_delivered_retry() {
        let cfg = FaultConfig {
            drop_rate: 1.0,
            max_retries: 2,
            ..FaultConfig::disabled()
        };
        let mut plane = FaultPlane::new(cfg);
        let mut rec = Recorder::new();
        let (send, recv) = RpcNet::faulty(&mut rec, &mut plane).message(
            Process::Client(0),
            Process::Server(0),
            "CREAT",
            None,
        );
        // Lost sends precede the successful retry pair.
        assert!(rec.len() > 2, "lost sends must appear in the trace");
        let send_ev = rec.event(send);
        match &send_ev.payload {
            Payload::Send { msg, .. } => assert!(msg.contains("[retry"), "got {msg}"),
            other => panic!("expected a send, got {other:?}"),
        }
        // The returned recv still carries the causal edge.
        assert_eq!(rec.event(recv).parent, Some(send));
        let lost = rec
            .events()
            .iter()
            .filter(|e| matches!(&e.payload, Payload::Send { msg, .. } if msg.contains("[lost")))
            .count();
        assert!(lost >= 1);
    }

    #[test]
    fn duplicate_message_adds_a_deduplicated_second_delivery() {
        let cfg = FaultConfig {
            dup_rate: 1.0,
            ..FaultConfig::disabled()
        };
        let mut plane = FaultPlane::new(cfg);
        let mut rec = Recorder::new();
        let (send, recv) = RpcNet::faulty(&mut rec, &mut plane).message(
            Process::Client(0),
            Process::Server(0),
            "CREAT",
            None,
        );
        assert_eq!(rec.len(), 3, "send + recv + duplicate recv");
        assert_eq!(rec.event(recv).parent, Some(send));
        let dups = rec
            .events()
            .iter()
            .filter(|e| matches!(&e.payload, Payload::Recv { msg, .. } if msg.contains("[dup]")))
            .count();
        assert_eq!(dups, 1);
    }
}
