//! RPC tracing helper.
//!
//! Every client↔server interaction in the PFS models goes through
//! [`RpcNet`], which records the `sendto` / `recvfrom` event pair and the
//! sender→receiver causality edge — exactly the information ParaCrash
//! extracts from strace'd socket calls to "order the client events with
//! respect to the server events" (§4.2).

use tracer::{EventId, Layer, Payload, Process, Recorder};

/// Synchronous RPC recorder over a shared [`Recorder`].
///
/// RPCs are delivered immediately (the simulation is synchronous); what
/// matters for crash consistency is only the causal edge, not timing.
pub struct RpcNet<'r> {
    rec: &'r mut Recorder,
}

impl<'r> RpcNet<'r> {
    /// Wrap a recorder.
    pub fn new(rec: &'r mut Recorder) -> Self {
        RpcNet { rec }
    }

    /// Access the underlying recorder.
    pub fn recorder(&mut self) -> &mut Recorder {
        self.rec
    }

    /// Record a one-way message `from → to`; returns `(send_id, recv_id)`.
    ///
    /// `parent` is the upper-layer call on the sending side that issued
    /// the message (caller–callee edge).
    pub fn message(
        &mut self,
        from: Process,
        to: Process,
        msg: &str,
        parent: Option<EventId>,
    ) -> (EventId, EventId) {
        let layer_of = |p: Process| match p {
            Process::Client(_) => Layer::PfsClient,
            Process::Server(_) => Layer::PfsServer,
        };
        pc_rt::obs::count("rpc.messages", 1);
        pc_rt::pc_debug!("rpc {from:?} -> {to:?}: {msg}");
        let send = self.rec.record(
            layer_of(from),
            from,
            Payload::Send {
                to,
                msg: msg.to_string(),
            },
            parent,
        );
        // The recv's parent is the matching send: sender–receiver pairs
        // are both causal edges and caller–callee links (the ancestor
        // walk that associates server work with the client call that
        // caused it goes through them).
        let recv = self.rec.record(
            layer_of(to),
            to,
            Payload::Recv {
                from,
                msg: msg.to_string(),
            },
            Some(send),
        );
        (send, recv)
    }

    /// Record a request/..../reply round trip skeleton: request message
    /// now; call [`RpcNet::message`] again for the reply after recording
    /// the server-side work so the reply's send happens after it in
    /// program order.
    pub fn request(
        &mut self,
        client: Process,
        server: Process,
        msg: &str,
        parent: Option<EventId>,
    ) -> (EventId, EventId) {
        self.message(client, server, msg, parent)
    }

    /// Record the reply leg of a round trip.
    pub fn reply(&mut self, server: Process, client: Process, msg: &str) -> (EventId, EventId) {
        self.message(server, client, msg, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracer::CausalityGraph;

    #[test]
    fn round_trip_orders_client_and_server_work() {
        let mut rec = Recorder::new();
        let client = Process::Client(0);
        let server = Process::Server(0);
        let call = rec.record(
            Layer::PfsClient,
            client,
            Payload::Call {
                name: "creat".into(),
                args: vec!["/mnt/foo".into()],
            },
            None,
        );
        let mut net = RpcNet::new(&mut rec);
        let (_, recv) = net.request(client, server, "CREAT foo", Some(call));
        // Server-side local-FS work after receiving the request.
        let work = net.recorder().record(
            Layer::LocalFs,
            server,
            Payload::Fs {
                server: 0,
                op: simfs::FsOp::Creat {
                    path: "/meta/dentries/foo".into(),
                },
            },
            Some(recv),
        );
        let mut net = RpcNet::new(&mut rec);
        let (_, ack) = net.reply(server, client, "OK");
        // Client continues after the ack.
        let after = rec.record(
            Layer::PfsClient,
            client,
            Payload::Call {
                name: "close".into(),
                args: vec![],
            },
            None,
        );
        let g = CausalityGraph::build(&rec);
        assert!(g.happens_before(call, work));
        assert!(g.happens_before(work, ack));
        assert!(g.happens_before(work, after));
    }

    #[test]
    fn two_servers_stay_concurrent_without_messages() {
        let mut rec = Recorder::new();
        let a = rec.record(
            Layer::LocalFs,
            Process::Server(0),
            Payload::Fs {
                server: 0,
                op: simfs::FsOp::Creat { path: "/a".into() },
            },
            None,
        );
        let b = rec.record(
            Layer::LocalFs,
            Process::Server(1),
            Payload::Fs {
                server: 1,
                op: simfs::FsOp::Creat { path: "/b".into() },
            },
            None,
        );
        let g = CausalityGraph::build(&rec);
        assert!(g.concurrent(a, b));
    }
}
