//! Vector clocks (Lamport, as cited by the paper for its happens-before
//! definition).
//!
//! The causality graph in `tracer` answers happens-before by reachability;
//! vector clocks are the classic alternative characterization. We keep
//! both: the graph drives the framework, and vector clocks are used in
//! property tests to cross-check the graph (two independent
//! implementations of the same partial order).

use std::cmp::Ordering;

/// A vector clock over a fixed number of processes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VectorClock {
    ticks: Vec<u64>,
}

impl VectorClock {
    /// Zero clock for `n` processes.
    pub fn new(n: usize) -> Self {
        VectorClock { ticks: vec![0; n] }
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// `true` if the clock tracks zero processes.
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    /// Advance process `p`'s component (a local event).
    pub fn tick(&mut self, p: usize) {
        self.ticks[p] += 1;
    }

    /// Component for process `p`.
    pub fn get(&self, p: usize) -> u64 {
        self.ticks[p]
    }

    /// All components, indexed by process (for serialization — the
    /// explain layer exports per-event clocks into its causal-graph
    /// JSON/DOT bundles).
    pub fn components(&self) -> &[u64] {
        &self.ticks
    }

    /// Merge in a received clock (component-wise max), then tick `p`
    /// (message receipt).
    pub fn receive(&mut self, p: usize, other: &VectorClock) {
        for (a, b) in self.ticks.iter_mut().zip(&other.ticks) {
            *a = (*a).max(*b);
        }
        self.tick(p);
    }

    /// Happens-before: `self ≤ other` component-wise and `self ≠ other`.
    pub fn happens_before(&self, other: &VectorClock) -> bool {
        self.partial_cmp_clock(other) == Some(Ordering::Less)
    }

    /// Concurrency: neither precedes the other.
    pub fn concurrent(&self, other: &VectorClock) -> bool {
        self.partial_cmp_clock(other).is_none()
    }

    /// The component-wise partial order.
    pub fn partial_cmp_clock(&self, other: &VectorClock) -> Option<Ordering> {
        debug_assert_eq!(self.len(), other.len());
        let mut lt = false;
        let mut gt = false;
        for (a, b) in self.ticks.iter().zip(&other.ticks) {
            match a.cmp(b) {
                Ordering::Less => lt = true,
                Ordering::Greater => gt = true,
                Ordering::Equal => {}
            }
        }
        match (lt, gt) {
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => Some(Ordering::Equal),
            (true, true) => None,
        }
    }
}

/// Assign a vector clock to every event of a trace.
///
/// The trace is given abstractly so callers outside `simnet` (the tracer
/// crosscheck test, `paracrash::explain`) can use it without a dependency
/// cycle: `events[i]` is `(process index, causal predecessor event
/// indices)` for event `i`, with predecessors `< i` (events arrive in
/// trace order). Program order within a process is implicit — each event
/// starts from its process's running clock; explicit predecessors
/// (caller, message senders) are merged on top. By the classic
/// vector-clock theorem the returned clocks satisfy
/// `clocks[a].happens_before(&clocks[b])` iff `a → b` in the trace's
/// happens-before relation (cross-checked against the reachability-based
/// causality graph in `tests/vector_clock_crosscheck.rs`).
pub fn assign_clocks(n_procs: usize, events: &[(usize, Vec<usize>)]) -> Vec<VectorClock> {
    let mut clocks: Vec<VectorClock> = Vec::with_capacity(events.len());
    let mut proc_state: Vec<VectorClock> =
        (0..n_procs).map(|_| VectorClock::new(n_procs)).collect();
    for (i, (pi, preds)) in events.iter().enumerate() {
        // Start from the program-order predecessor's clock…
        let mut clock = proc_state[*pi].clone();
        // …merge every explicit causal predecessor…
        for &src in preds {
            debug_assert!(src < i, "predecessor {src} of event {i} is not earlier");
            clock.receive(*pi, &clocks[src].clone());
        }
        // …and tick the local component when nothing was merged
        // (`receive` already ticked once per merge; exactly one tick per
        // event keeps the clocks canonical).
        if preds.is_empty() {
            clock.tick(*pi);
        }
        proc_state[*pi] = clock.clone();
        clocks.push(clock);
    }
    clocks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_clocks_orders_chain_and_keeps_branches_concurrent() {
        // P0: e0 → e1 (program order); e1 sends to P1's e2; e3 is an
        // independent local event on P2.
        let events = vec![(0, vec![]), (0, vec![]), (1, vec![1]), (2, vec![])];
        let clocks = assign_clocks(3, &events);
        assert!(clocks[0].happens_before(&clocks[1]));
        assert!(clocks[1].happens_before(&clocks[2]));
        assert!(clocks[0].happens_before(&clocks[2]));
        assert!(clocks[3].concurrent(&clocks[2]));
        assert!(clocks[3].concurrent(&clocks[0]));
    }

    #[test]
    fn components_expose_ticks() {
        let mut c = VectorClock::new(2);
        c.tick(1);
        c.tick(1);
        assert_eq!(c.components(), &[0, 2]);
    }

    #[test]
    fn local_events_order_within_process() {
        let mut a = VectorClock::new(2);
        a.tick(0);
        let snapshot = a.clone();
        a.tick(0);
        assert!(snapshot.happens_before(&a));
        assert!(!a.happens_before(&snapshot));
    }

    #[test]
    fn message_passing_creates_order() {
        let mut p0 = VectorClock::new(2);
        let mut p1 = VectorClock::new(2);
        p0.tick(0); // e1 on P0
        let msg = p0.clone();
        p1.receive(1, &msg); // e2 on P1
        assert!(msg.happens_before(&p1));
    }

    #[test]
    fn independent_events_are_concurrent() {
        let mut p0 = VectorClock::new(2);
        let mut p1 = VectorClock::new(2);
        p0.tick(0);
        p1.tick(1);
        assert!(p0.concurrent(&p1));
        assert_eq!(p0.partial_cmp_clock(&p1), None);
    }

    #[test]
    fn equal_clocks() {
        let a = VectorClock::new(3);
        let b = VectorClock::new(3);
        assert_eq!(a.partial_cmp_clock(&b), Some(Ordering::Equal));
        assert!(!a.happens_before(&b));
        assert!(!a.concurrent(&b));
    }
}
