//! Deterministic fault injection for the simulated cluster.
//!
//! ParaCrash's clean replay (§4) delivers every RPC instantly and in
//! order; real deployments lose, duplicate and delay messages and heal
//! partitions, and the client libraries mask all of that with retries.
//! This module is the seeded fault plane that widens the recorded trace
//! with exactly those masked events: a [`FaultPlane`] draws a
//! [`Fate`] for every message from a [`pc_rt::rng`] stream seeded by
//! [`FaultConfig::seed`], and [`RpcNet`](crate::RpcNet) turns the fate
//! into *real trace events* — lost sends, annotated retries, duplicate
//! deliveries — while keeping the live server state bit-identical to a
//! fault-free run.
//!
//! # Why delivery faults are trace-visible but state-invariant
//!
//! Every PFS the paper studies runs its RPCs over an at-most-once
//! transport: clients retry timed-out requests until the server
//! acknowledges, and servers deduplicate replayed requests, so the
//! *persistent effect* of a call is the same whether its messages took
//! one attempt or five. The fault plane models that contract: a dropped
//! request becomes `n` lost sends followed by a successful retry whose
//! `recv` carries the causal edge, a duplicate becomes a second
//! (deduplicated) delivery, and a delay annotates the message. The
//! recorded causal graph — and hence the crash-state space — gains the
//! retry events; the golden states do not move. That is what makes the
//! chaos suite's "no false positives from retries alone" property hold
//! by construction. State-*visible* faults are injected at the disk
//! layer instead ([`FaultConfig::torn_writes`], applied at crash points
//! by the checker).
//!
//! Determinism is load-bearing: the plane owns its own
//! [`pc_rt::rng::Rng`] and every fate is drawn on the (single
//! threaded) dispatch path, so one seed yields one trace regardless of
//! `PC_THREADS` or wall-clock time.

use pc_rt::rng::Rng;

/// Environment variable carrying the chaos seed (enables the plane).
pub const CHAOS_SEED_ENV: &str = "PC_CHAOS_SEED";
/// Environment variable carrying the default per-message fault rate.
pub const FAULT_RATE_ENV: &str = "PC_FAULT_RATE";

/// Every knob of the cross-layer fault plane.
///
/// The default ([`FaultConfig::disabled`]) injects nothing and consumes
/// no randomness, so a zero-fault run is bit-identical to a build
/// without the plane.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for the fault stream. The same seed reproduces the same
    /// faults on every platform and thread count.
    pub seed: u64,
    /// Probability a message is dropped (and retried) per attempt.
    pub drop_rate: f64,
    /// Probability a delivered message is duplicated.
    pub dup_rate: f64,
    /// Probability a delivered message is delayed (annotated; delivery
    /// order within the synchronous simulation is unchanged).
    pub delay_rate: f64,
    /// Upper bound on retry attempts for one message — after this many
    /// lost sends the transport delivers (the at-most-once contract:
    /// clients retry until acknowledged, so delivery is eventual).
    pub max_retries: u32,
    /// Partitioned server id: messages to/from it are dropped first.
    pub partition: Option<u32>,
    /// How many messages the partition swallows before it heals.
    pub partition_heal_after: u32,
    /// Disk-layer fault: torn multi-block writes at crash points
    /// (applied by the checker when materializing crash states, not by
    /// the RPC plane).
    pub torn_writes: bool,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::disabled()
    }
}

impl FaultConfig {
    /// No faults at all — the configuration every pre-existing code
    /// path gets. Draws nothing from any RNG.
    pub fn disabled() -> FaultConfig {
        FaultConfig {
            seed: 0,
            drop_rate: 0.0,
            dup_rate: 0.0,
            delay_rate: 0.0,
            max_retries: 3,
            partition: None,
            partition_heal_after: 0,
            torn_writes: false,
        }
    }

    /// A ready-made chaos profile: moderate drop/dup/delay rates plus
    /// torn writes, all driven by `seed`.
    pub fn chaos(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            drop_rate: 0.2,
            dup_rate: 0.1,
            delay_rate: 0.1,
            max_retries: 3,
            partition: None,
            partition_heal_after: 0,
            torn_writes: true,
        }
    }

    /// `true` if any fault can actually fire.
    pub fn enabled(&self) -> bool {
        self.drop_rate > 0.0
            || self.dup_rate > 0.0
            || self.delay_rate > 0.0
            || self.partition.is_some()
            || self.torn_writes
    }

    /// Read the plane from the environment: `PC_CHAOS_SEED=<u64>`
    /// enables the [`chaos`](FaultConfig::chaos) profile with that seed;
    /// `PC_FAULT_RATE=<f64>` overrides the drop/dup/delay rates.
    /// Returns `None` when `PC_CHAOS_SEED` is unset or unparsable.
    pub fn from_env() -> Option<FaultConfig> {
        let seed: u64 = std::env::var(CHAOS_SEED_ENV).ok()?.trim().parse().ok()?;
        let mut cfg = FaultConfig::chaos(seed);
        if let Ok(rate) = std::env::var(FAULT_RATE_ENV) {
            if let Ok(r) = rate.trim().parse::<f64>() {
                let r = r.clamp(0.0, 1.0);
                cfg.drop_rate = r;
                cfg.dup_rate = r / 2.0;
                cfg.delay_rate = r / 2.0;
            }
        }
        Some(cfg)
    }

    /// Parse a `--faults` spec: comma-separated `key=value` pairs with
    /// keys `seed`, `drop`, `dup`, `delay`, `retries`, `partition`
    /// (`server` or `server:heal_after`) and `torn` (bool). The string
    /// `chaos` alone selects [`FaultConfig::chaos`] with seed 0.
    ///
    /// ```
    /// use simnet::FaultConfig;
    /// let f = FaultConfig::parse_spec("seed=7,drop=0.2,torn=true").unwrap();
    /// assert_eq!(f.seed, 7);
    /// assert!(f.torn_writes && f.enabled());
    /// ```
    pub fn parse_spec(spec: &str) -> Result<FaultConfig, String> {
        let spec = spec.trim();
        if spec.eq_ignore_ascii_case("chaos") {
            return Ok(FaultConfig::chaos(0));
        }
        let mut cfg = FaultConfig::disabled();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("bad fault spec element (want key=value): {part}"))?;
            let bad = |what: &str| format!("bad fault {what}: {value}");
            let rate = |v: &str| -> Result<f64, String> {
                let r: f64 = v.parse().map_err(|_| bad("rate"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(bad("rate (must be in [0, 1])"));
                }
                Ok(r)
            };
            match key.trim() {
                "seed" => cfg.seed = value.parse().map_err(|_| bad("seed"))?,
                "drop" => cfg.drop_rate = rate(value)?,
                "dup" => cfg.dup_rate = rate(value)?,
                "delay" => cfg.delay_rate = rate(value)?,
                "retries" => cfg.max_retries = value.parse().map_err(|_| bad("retries"))?,
                "torn" => {
                    cfg.torn_writes = match value {
                        "1" | "true" => true,
                        "0" | "false" => false,
                        _ => return Err(bad("bool")),
                    }
                }
                "partition" => {
                    let (srv, heal) = match value.split_once(':') {
                        Some((s, h)) => (s, h.parse().map_err(|_| bad("partition"))?),
                        None => (value, 4u32),
                    };
                    cfg.partition = Some(srv.parse().map_err(|_| bad("partition"))?);
                    cfg.partition_heal_after = heal;
                }
                other => return Err(format!("unknown fault key: {other}")),
            }
        }
        Ok(cfg)
    }

    /// Render back to the [`parse_spec`](FaultConfig::parse_spec)
    /// format (round-trips).
    pub fn render_spec(&self) -> String {
        let mut s = format!(
            "seed={},drop={},dup={},delay={},retries={},torn={}",
            self.seed,
            self.drop_rate,
            self.dup_rate,
            self.delay_rate,
            self.max_retries,
            self.torn_writes
        );
        if let Some(p) = self.partition {
            s.push_str(&format!(",partition={p}:{}", self.partition_heal_after));
        }
        s
    }
}

/// What happens to one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Delivered first try, as in the fault-free simulation.
    Deliver,
    /// Lost `attempts` times; the sender's retry then succeeds.
    Drop {
        /// Number of lost sends before the successful retry.
        attempts: u32,
    },
    /// Delivered, then delivered again (the server deduplicates).
    Duplicate,
    /// Delivered late (annotated; ordering within the synchronous
    /// simulation is unchanged).
    Delay,
}

/// The per-instance fault engine: configuration plus its private RNG.
///
/// Each PFS model instance owns one plane, seeded at construction, so
/// two instances built from the same factory inject the same faults —
/// the determinism the golden-state replay relies on.
#[derive(Debug, Clone)]
pub struct FaultPlane {
    cfg: FaultConfig,
    rng: Rng,
    partition_left: u32,
    injected: u64,
}

impl Default for FaultPlane {
    fn default() -> Self {
        FaultPlane::disabled()
    }
}

impl FaultPlane {
    /// A plane that always returns [`Fate::Deliver`] and consumes no
    /// randomness.
    pub fn disabled() -> FaultPlane {
        FaultPlane::new(FaultConfig::disabled())
    }

    /// A plane driven by `cfg` (its own RNG, seeded by `cfg.seed`).
    pub fn new(cfg: FaultConfig) -> FaultPlane {
        let rng = Rng::new(cfg.seed);
        let partition_left = if cfg.partition.is_some() {
            cfg.partition_heal_after
        } else {
            0
        };
        FaultPlane {
            cfg,
            rng,
            partition_left,
            injected: 0,
        }
    }

    /// The configuration this plane runs.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// `true` if any RPC fault can fire.
    pub fn active(&self) -> bool {
        self.cfg.drop_rate > 0.0
            || self.cfg.dup_rate > 0.0
            || self.cfg.delay_rate > 0.0
            || self.partition_left > 0
    }

    /// Faults injected so far by this plane.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Decide the fate of one message between `from` and `to` (server
    /// ids when the endpoint is a server, `None` for clients).
    ///
    /// The inactive plane returns [`Fate::Deliver`] without touching
    /// the RNG, which is what makes a zero-fault run bit-identical to
    /// the pre-fault-plane code.
    pub fn fate(&mut self, from: Option<u32>, to: Option<u32>) -> Fate {
        if !self.active() {
            return Fate::Deliver;
        }
        // A live partition swallows traffic deterministically before
        // any random draw, so `partition=S:N` alone is reproducible
        // even with all rates at zero.
        if let Some(p) = self.cfg.partition {
            if self.partition_left > 0 && (from == Some(p) || to == Some(p)) {
                let attempts = self.partition_left.min(self.cfg.max_retries.max(1));
                self.partition_left -= attempts.min(self.partition_left);
                self.injected += 1;
                pc_rt::obs::count("faults.injected", 1);
                return Fate::Drop { attempts };
            }
        }
        if self.cfg.drop_rate > 0.0 && self.rng.gen_bool(self.cfg.drop_rate) {
            let mut attempts = 1;
            while attempts < self.cfg.max_retries.max(1) && self.rng.gen_bool(self.cfg.drop_rate) {
                attempts += 1;
            }
            self.injected += 1;
            pc_rt::obs::count("faults.injected", 1);
            return Fate::Drop { attempts };
        }
        if self.cfg.dup_rate > 0.0 && self.rng.gen_bool(self.cfg.dup_rate) {
            self.injected += 1;
            pc_rt::obs::count("faults.injected", 1);
            return Fate::Duplicate;
        }
        if self.cfg.delay_rate > 0.0 && self.rng.gen_bool(self.cfg.delay_rate) {
            self.injected += 1;
            pc_rt::obs::count("faults.injected", 1);
            return Fate::Delay;
        }
        Fate::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plane_always_delivers_and_consumes_no_rng() {
        let mut plane = FaultPlane::disabled();
        for _ in 0..100 {
            assert_eq!(plane.fate(None, Some(0)), Fate::Deliver);
        }
        assert_eq!(plane.injected(), 0);
        assert!(!plane.active());
    }

    #[test]
    fn same_seed_same_fates() {
        let cfg = FaultConfig::chaos(42);
        let mut a = FaultPlane::new(cfg.clone());
        let mut b = FaultPlane::new(cfg);
        let fa: Vec<Fate> = (0..200).map(|i| a.fate(None, Some(i % 4))).collect();
        let fb: Vec<Fate> = (0..200).map(|i| b.fate(None, Some(i % 4))).collect();
        assert_eq!(fa, fb);
        assert!(a.injected() > 0, "chaos profile must inject something");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FaultPlane::new(FaultConfig::chaos(1));
        let mut b = FaultPlane::new(FaultConfig::chaos(2));
        let fa: Vec<Fate> = (0..200).map(|_| a.fate(None, Some(0))).collect();
        let fb: Vec<Fate> = (0..200).map(|_| b.fate(None, Some(0))).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn drop_attempts_capped_by_max_retries() {
        let cfg = FaultConfig {
            drop_rate: 1.0,
            max_retries: 2,
            ..FaultConfig::disabled()
        };
        let mut plane = FaultPlane::new(cfg);
        for _ in 0..50 {
            match plane.fate(None, Some(0)) {
                Fate::Drop { attempts } => assert!(attempts >= 1 && attempts <= 2),
                other => panic!("drop_rate=1.0 must drop, got {other:?}"),
            }
        }
    }

    #[test]
    fn partition_swallows_then_heals() {
        let cfg = FaultConfig {
            partition: Some(1),
            partition_heal_after: 3,
            max_retries: 8,
            ..FaultConfig::disabled()
        };
        let mut plane = FaultPlane::new(cfg);
        // Traffic not touching server 1 is unaffected.
        assert_eq!(plane.fate(None, Some(0)), Fate::Deliver);
        // The partition swallows its budget…
        assert_eq!(plane.fate(None, Some(1)), Fate::Drop { attempts: 3 });
        // …then heals: later traffic to server 1 flows.
        assert_eq!(plane.fate(Some(1), None), Fate::Deliver);
        assert!(!plane.active());
    }

    #[test]
    fn spec_round_trip() {
        for spec in [
            "seed=7,drop=0.25,dup=0.1,delay=0.05,retries=4,torn=true",
            "seed=0,drop=0,dup=0,delay=0,retries=3,torn=false,partition=2:5",
        ] {
            let cfg = FaultConfig::parse_spec(spec).unwrap();
            let again = FaultConfig::parse_spec(&cfg.render_spec()).unwrap();
            assert_eq!(cfg, again);
        }
        assert!(FaultConfig::parse_spec("chaos").unwrap().enabled());
        assert!(FaultConfig::parse_spec("drop=2.0").is_err());
        assert!(FaultConfig::parse_spec("wat=1").is_err());
        assert!(FaultConfig::parse_spec("drop").is_err());
    }

    #[test]
    fn zero_rate_config_is_disabled() {
        let cfg = FaultConfig::parse_spec("seed=9").unwrap();
        assert!(!cfg.enabled());
        assert!(!FaultPlane::new(cfg).active());
    }
}
