//! Error type for local file-system operations.

use std::fmt;

/// Result alias used throughout `simfs`.
pub type FsResult<T> = Result<T, FsError>;

/// Errors produced when applying an [`crate::FsOp`] to an
/// [`crate::FsState`]. The variants mirror the POSIX errnos the real stack
/// would return, which matters because ParaCrash's replay distinguishes
/// "operation could not have persisted" from "file system corrupted".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// `ENOENT`: a path component does not exist.
    NotFound(String),
    /// `EEXIST`: target already exists (e.g. `mkdir` over a file).
    AlreadyExists(String),
    /// `ENOTDIR`: a non-directory appears where a directory is required.
    NotADirectory(String),
    /// `EISDIR`: a directory appears where a file is required.
    IsADirectory(String),
    /// `ENOTEMPTY`: removing / renaming over a non-empty directory.
    NotEmpty(String),
    /// `EINVAL`: structurally invalid request (bad path, rename into self…).
    Invalid(String),
    /// `ENOATTR`: extended attribute not present.
    NoAttr(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "ENOENT: {p}"),
            FsError::AlreadyExists(p) => write!(f, "EEXIST: {p}"),
            FsError::NotADirectory(p) => write!(f, "ENOTDIR: {p}"),
            FsError::IsADirectory(p) => write!(f, "EISDIR: {p}"),
            FsError::NotEmpty(p) => write!(f, "ENOTEMPTY: {p}"),
            FsError::Invalid(m) => write!(f, "EINVAL: {m}"),
            FsError::NoAttr(a) => write!(f, "ENOATTR: {a}"),
        }
    }
}

impl std::error::Error for FsError {}
