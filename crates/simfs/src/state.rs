//! In-memory POSIX-like file-system state.
//!
//! [`FsState`] is the storage target onto which ParaCrash replays operation
//! subsets. It is inode-based (so hard links behave correctly — BeeGFS
//! metadata servers `link()` idfiles into dentry directories) and fully
//! deterministic: two states produced by replaying the same operations are
//! structurally equal, which is what the golden-master comparison relies on.

use crate::error::{FsError, FsResult};
use crate::ops::FsOp;
use pc_rt::intern::{naive_syms, Sym};
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

/// Inode number.
pub type Ino = u64;

const ROOT_INO: Ino = 1;

/// A file or directory inode.
///
/// Entry and xattr names are interned [`Sym`]s: map probes compare
/// 4-byte ids, and unsharing a directory under copy-on-write copies ids
/// instead of re-allocating every name. Map iteration order is id
/// order, an implementation detail — every observable consumer
/// ([`FsState::walk`], [`FsState::readdir`], fsck, digests) sorts by
/// the resolved string at the boundary.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Inode {
    /// Regular file: raw content plus extended attributes.
    File {
        /// File content.
        data: Vec<u8>,
        /// Extended attributes.
        xattrs: BTreeMap<Sym, Vec<u8>>,
    },
    /// Directory: name → inode map plus extended attributes.
    Dir {
        /// Child entries.
        entries: BTreeMap<Sym, Ino>,
        /// Extended attributes.
        xattrs: BTreeMap<Sym, Vec<u8>>,
    },
}

impl Inode {
    fn empty_file() -> Self {
        Inode::File {
            data: Vec::new(),
            xattrs: BTreeMap::new(),
        }
    }

    fn empty_dir() -> Self {
        Inode::Dir {
            entries: BTreeMap::new(),
            xattrs: BTreeMap::new(),
        }
    }

    /// Extended attributes of either inode kind (keys are interned).
    pub fn xattrs(&self) -> &BTreeMap<Sym, Vec<u8>> {
        match self {
            Inode::File { xattrs, .. } | Inode::Dir { xattrs, .. } => xattrs,
        }
    }

    fn xattrs_mut(&mut self) -> &mut BTreeMap<Sym, Vec<u8>> {
        match self {
            Inode::File { xattrs, .. } | Inode::Dir { xattrs, .. } => xattrs,
        }
    }

    /// `true` for directories.
    pub fn is_dir(&self) -> bool {
        matches!(self, Inode::Dir { .. })
    }
}

/// A snapshot-able, comparable local file system.
///
/// Cloning an `FsState` is the simulation analogue of taking an LVM/ext4
/// snapshot of a storage server before crash emulation (§4.3). The inode
/// table is a persistent (copy-on-write) structure: `clone`/[`FsState::fork`]
/// are O(1) Arc bumps, and mutation unshares only the touched nodes via
/// `Arc::make_mut`, so memory grows with divergence rather than state size.
#[derive(Clone)]
pub struct FsState {
    inodes: Arc<BTreeMap<Ino, Arc<Inode>>>,
    next_ino: Ino,
    /// Memoized [`FsState::digest`]. Abandoned (not cleared) on mutation so
    /// forks sharing the cell never observe a diverged state's digest.
    digest_memo: Arc<OnceLock<u64>>,
}

impl Default for FsState {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for FsState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FsState")
            .field("inodes", &self.inodes)
            .field("next_ino", &self.next_ino)
            .finish()
    }
}

impl PartialEq for FsState {
    fn eq(&self, other: &Self) -> bool {
        self.next_ino == other.next_ino
            && (Arc::ptr_eq(&self.inodes, &other.inodes) || self.inodes == other.inodes)
    }
}

impl Eq for FsState {}

impl FsState {
    /// An empty file system containing only `/`.
    pub fn new() -> Self {
        let mut inodes = BTreeMap::new();
        inodes.insert(ROOT_INO, Arc::new(Inode::empty_dir()));
        FsState {
            inodes: Arc::new(inodes),
            next_ino: ROOT_INO + 1,
            digest_memo: Arc::new(OnceLock::new()),
        }
    }

    /// O(1) copy-on-write snapshot: shares the whole inode table with
    /// `self` until either side mutates. This is the fast path the replay
    /// engine forks crash states from.
    pub fn fork(&self) -> FsState {
        self.clone()
    }

    /// A structurally independent copy sharing no nodes with `self`. Only
    /// the `PC_NAIVE_SNAPSHOTS=1` oracle uses this — it reproduces the
    /// historical clone-everything cost model.
    pub fn deep_clone(&self) -> FsState {
        FsState {
            inodes: Arc::new(
                self.inodes
                    .iter()
                    .map(|(k, v)| (*k, Arc::new((**v).clone())))
                    .collect(),
            ),
            next_ino: self.next_ino,
            digest_memo: Arc::new(OnceLock::new()),
        }
    }

    /// Invalidate the digest memo ahead of a mutation. A shared or
    /// initialized cell is abandoned rather than cleared: forks still
    /// holding it keep their (valid) memo, and this state re-memoizes
    /// lazily. Any live fork keeps a strong reference, so sharing is
    /// always visible in `strong_count`.
    fn touch(&mut self) {
        if self.digest_memo.get().is_some() || Arc::strong_count(&self.digest_memo) > 1 {
            self.digest_memo = Arc::new(OnceLock::new());
        }
    }

    /// Unshared access to the inode table (clones the table's Arc spine on
    /// first mutation after a fork; individual inodes stay shared).
    fn inodes_mut(&mut self) -> &mut BTreeMap<Ino, Arc<Inode>> {
        self.touch();
        Arc::make_mut(&mut self.inodes)
    }

    /// Unshared access to one inode (clones just that inode if shared).
    fn inode_mut(&mut self, ino: Ino) -> &mut Inode {
        Arc::make_mut(
            self.inodes_mut()
                .get_mut(&ino)
                .expect("invariant: resolved ino exists"),
        )
    }

    /// Split an absolute path into components; rejects empty / relative
    /// paths. `/` itself yields an empty component list.
    fn components(path: &str) -> FsResult<Vec<&str>> {
        if !path.starts_with('/') {
            return Err(FsError::Invalid(format!("path not absolute: {path}")));
        }
        Ok(path.split('/').filter(|c| !c.is_empty()).collect())
    }

    /// Resolve a path to an inode number.
    pub fn resolve(&self, path: &str) -> FsResult<Ino> {
        let mut cur = ROOT_INO;
        for comp in Self::components(path)? {
            let node = self
                .inodes
                .get(&cur)
                .ok_or_else(|| FsError::NotFound(path.to_string()))?;
            match &**node {
                Inode::Dir { entries, .. } => {
                    cur = *entries
                        .get(&Sym::new(comp))
                        .ok_or_else(|| FsError::NotFound(path.to_string()))?;
                }
                Inode::File { .. } => return Err(FsError::NotADirectory(path.to_string())),
            }
        }
        Ok(cur)
    }

    /// Resolve the parent directory of `path`, returning `(parent_ino,
    /// final_component)`.
    fn resolve_parent<'p>(&self, path: &'p str) -> FsResult<(Ino, &'p str)> {
        let comps = Self::components(path)?;
        let (last, dirs) = comps
            .split_last()
            .ok_or_else(|| FsError::Invalid(format!("no final component in {path}")))?;
        let mut cur = ROOT_INO;
        for comp in dirs {
            let node = self
                .inodes
                .get(&cur)
                .ok_or_else(|| FsError::NotFound(path.to_string()))?;
            match &**node {
                Inode::Dir { entries, .. } => {
                    cur = *entries
                        .get(&Sym::new(comp))
                        .ok_or_else(|| FsError::NotFound(path.to_string()))?;
                }
                Inode::File { .. } => return Err(FsError::NotADirectory(path.to_string())),
            }
        }
        Ok((cur, last))
    }

    fn dir_entries_mut(&mut self, ino: Ino) -> &mut BTreeMap<Sym, Ino> {
        match self.inode_mut(ino) {
            Inode::Dir { entries, .. } => entries,
            Inode::File { .. } => unreachable!("invariant: parent resolution returns directories"),
        }
    }

    /// Immutable inode lookup for inos obtained from a successful
    /// resolution — existence is a table invariant, so a miss is a bug
    /// in `FsState` itself, never bad user input.
    fn inode_ref(&self, ino: Ino) -> &Inode {
        self.inodes
            .get(&ino)
            .expect("invariant: resolved ino exists")
    }

    /// `true` if `path` resolves to any inode.
    pub fn exists(&self, path: &str) -> bool {
        self.resolve(path).is_ok()
    }

    /// `true` if `path` resolves to a directory.
    pub fn is_dir(&self, path: &str) -> bool {
        self.resolve(path)
            .map(|i| self.inode_ref(i).is_dir())
            .unwrap_or(false)
    }

    /// Read full file contents.
    pub fn read(&self, path: &str) -> FsResult<&[u8]> {
        let ino = self.resolve(path)?;
        match self.inode_ref(ino) {
            Inode::File { data, .. } => Ok(data),
            Inode::Dir { .. } => Err(FsError::IsADirectory(path.to_string())),
        }
    }

    /// Read an extended attribute.
    pub fn getxattr(&self, path: &str, key: &str) -> FsResult<&[u8]> {
        let ino = self.resolve(path)?;
        self.inode_ref(ino)
            .xattrs()
            .get(&Sym::new(key))
            .map(|v| v.as_slice())
            .ok_or_else(|| FsError::NoAttr(format!("{path}#{key}")))
    }

    /// List directory entry names (sorted lexicographically, whatever
    /// the interned-id order of the underlying map).
    pub fn readdir(&self, path: &str) -> FsResult<Vec<String>> {
        let ino = self.resolve(path)?;
        match self.inode_ref(ino) {
            Inode::Dir { entries, .. } => {
                let mut names: Vec<&'static str> = entries.keys().map(|s| s.as_str()).collect();
                names.sort_unstable();
                Ok(names.into_iter().map(str::to_string).collect())
            }
            Inode::File { .. } => Err(FsError::NotADirectory(path.to_string())),
        }
    }

    /// Recursively list every path in the file system (sorted, files and
    /// directories, excluding `/`). Used for state comparison and fsck.
    pub fn walk(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk_from(ROOT_INO, String::new(), &mut out);
        out.sort();
        out
    }

    fn walk_from(&self, ino: Ino, prefix: String, out: &mut Vec<String>) {
        if let Inode::Dir { entries, .. } = self.inode_ref(ino) {
            for (name, child) in entries {
                let path = format!("{prefix}/{}", name.as_str());
                out.push(path.clone());
                self.walk_from(*child, path, out);
            }
        }
    }

    /// Number of live inodes (including `/`).
    pub fn inode_count(&self) -> usize {
        self.inodes.len()
    }

    /// Direct inode access (used by `fsck`).
    pub fn inode(&self, ino: Ino) -> Option<&Inode> {
        self.inodes.get(&ino).map(|a| &**a)
    }

    /// Root inode number.
    pub fn root(&self) -> Ino {
        ROOT_INO
    }

    /// Apply one operation, mutating the state. Sync operations are no-ops
    /// at the state level (they only matter for persistence ordering).
    pub fn apply(&mut self, op: &FsOp) -> FsResult<()> {
        match op {
            FsOp::Creat { path } => self.creat(path),
            FsOp::Mkdir { path } => self.mkdir(path),
            FsOp::Pwrite { path, offset, data } => self.pwrite(path, *offset, data),
            FsOp::Append { path, data } => self.append(path, data),
            FsOp::Truncate { path, size } => self.truncate(path, *size),
            FsOp::Rename { src, dst } => self.rename(src, dst),
            FsOp::Link { src, dst } => self.link(src, dst),
            FsOp::Unlink { path } => self.unlink(path),
            FsOp::Rmdir { path } => self.rmdir(path),
            FsOp::SetXattr { path, key, value } => self.setxattr(path, key, value),
            FsOp::RemoveXattr { path, key } => self.removexattr(path, key),
            FsOp::Fsync { .. } | FsOp::Fdatasync { .. } | FsOp::SyncFs => Ok(()),
        }
    }

    /// Apply a sequence of operations, skipping ones that fail (a crash
    /// state may contain an operation whose prerequisite was dropped).
    /// Returns the operations that could not be applied.
    pub fn apply_lenient<'o>(
        &mut self,
        ops: impl IntoIterator<Item = &'o FsOp>,
    ) -> Vec<(&'o FsOp, FsError)> {
        let mut failed = Vec::new();
        for op in ops {
            if let Err(e) = self.apply(op) {
                failed.push((op, e));
            }
        }
        failed
    }

    /// `creat`: create or truncate a regular file.
    pub fn creat(&mut self, path: &str) -> FsResult<()> {
        let (parent, name) = self.resolve_parent(path)?;
        let name = Sym::new(name);
        let fresh_ino = self.next_ino;
        match self.dir_entries_mut(parent).entry(name) {
            Entry::Occupied(e) => {
                let ino = *e.get();
                match self.inode_mut(ino) {
                    Inode::File { data, .. } => {
                        data.clear();
                        Ok(())
                    }
                    Inode::Dir { .. } => Err(FsError::IsADirectory(path.to_string())),
                }
            }
            Entry::Vacant(e) => {
                e.insert(fresh_ino);
                self.next_ino += 1;
                self.inodes_mut()
                    .insert(fresh_ino, Arc::new(Inode::empty_file()));
                Ok(())
            }
        }
    }

    /// `mkdir`.
    pub fn mkdir(&mut self, path: &str) -> FsResult<()> {
        let (parent, name) = self.resolve_parent(path)?;
        let name = Sym::new(name);
        if self.dir_entries_mut(parent).contains_key(&name) {
            return Err(FsError::AlreadyExists(path.to_string()));
        }
        let ino = self.next_ino;
        self.next_ino += 1;
        self.dir_entries_mut(parent).insert(name, ino);
        self.inodes_mut().insert(ino, Arc::new(Inode::empty_dir()));
        Ok(())
    }

    /// `mkdir -p` convenience for preambles.
    pub fn mkdir_all(&mut self, path: &str) -> FsResult<()> {
        let comps = Self::components(path)?;
        let mut cur = String::new();
        for c in comps {
            cur.push('/');
            cur.push_str(c);
            match self.mkdir(&cur) {
                Ok(()) | Err(FsError::AlreadyExists(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// `pwrite`: positional write, zero-filling any hole.
    pub fn pwrite(&mut self, path: &str, offset: u64, buf: &[u8]) -> FsResult<()> {
        let ino = self.resolve(path)?;
        match self.inode_mut(ino) {
            Inode::File { data, .. } => {
                let off = offset as usize;
                let end = off + buf.len();
                if data.len() < end {
                    data.resize(end, 0);
                }
                data[off..end].copy_from_slice(buf);
                Ok(())
            }
            Inode::Dir { .. } => Err(FsError::IsADirectory(path.to_string())),
        }
    }

    /// `append`: write at end of file.
    pub fn append(&mut self, path: &str, buf: &[u8]) -> FsResult<()> {
        let ino = self.resolve(path)?;
        match self.inode_mut(ino) {
            Inode::File { data, .. } => {
                data.extend_from_slice(buf);
                Ok(())
            }
            Inode::Dir { .. } => Err(FsError::IsADirectory(path.to_string())),
        }
    }

    /// `truncate`.
    pub fn truncate(&mut self, path: &str, size: u64) -> FsResult<()> {
        let ino = self.resolve(path)?;
        match self.inode_mut(ino) {
            Inode::File { data, .. } => {
                data.resize(size as usize, 0);
                Ok(())
            }
            Inode::Dir { .. } => Err(FsError::IsADirectory(path.to_string())),
        }
    }

    /// `rename`: atomically move `src` over `dst` (replacing a file or an
    /// empty directory).
    pub fn rename(&mut self, src: &str, dst: &str) -> FsResult<()> {
        let src_ino = self.resolve(src)?;
        let (src_parent, src_name) = self.resolve_parent(src)?;
        let src_name = Sym::new(src_name);
        let (dst_parent, dst_name) = self.resolve_parent(dst)?;
        let dst_name = Sym::new(dst_name);
        if let Some(&existing) = self.dir_entries_mut(dst_parent).get(&dst_name) {
            if existing != src_ino {
                if let Inode::Dir { entries, .. } = self.inode_ref(existing) {
                    if !entries.is_empty() {
                        return Err(FsError::NotEmpty(dst.to_string()));
                    }
                }
            }
        }
        self.dir_entries_mut(src_parent).remove(&src_name);
        let replaced = self.dir_entries_mut(dst_parent).insert(dst_name, src_ino);
        if let Some(old) = replaced {
            if old != src_ino {
                self.drop_if_unreferenced(old);
            }
        }
        Ok(())
    }

    /// `link`: create a hard link `dst` to the file at `src`.
    pub fn link(&mut self, src: &str, dst: &str) -> FsResult<()> {
        let src_ino = self.resolve(src)?;
        if self.inode_ref(src_ino).is_dir() {
            return Err(FsError::IsADirectory(src.to_string()));
        }
        let (dst_parent, dst_name) = self.resolve_parent(dst)?;
        let dst_name = Sym::new(dst_name);
        if self.dir_entries_mut(dst_parent).contains_key(&dst_name) {
            return Err(FsError::AlreadyExists(dst.to_string()));
        }
        self.dir_entries_mut(dst_parent).insert(dst_name, src_ino);
        Ok(())
    }

    /// `unlink`: remove one name; the inode is freed when no directory
    /// entry references it any more.
    pub fn unlink(&mut self, path: &str) -> FsResult<()> {
        let ino = self.resolve(path)?;
        if self.inode_ref(ino).is_dir() {
            return Err(FsError::IsADirectory(path.to_string()));
        }
        let (parent, name) = self.resolve_parent(path)?;
        let name = Sym::new(name);
        self.dir_entries_mut(parent).remove(&name);
        self.drop_if_unreferenced(ino);
        Ok(())
    }

    /// `rmdir`: remove an empty directory.
    pub fn rmdir(&mut self, path: &str) -> FsResult<()> {
        let ino = self.resolve(path)?;
        match self.inode_ref(ino) {
            Inode::Dir { entries, .. } => {
                if !entries.is_empty() {
                    return Err(FsError::NotEmpty(path.to_string()));
                }
            }
            Inode::File { .. } => return Err(FsError::NotADirectory(path.to_string())),
        }
        let (parent, name) = self.resolve_parent(path)?;
        let name = Sym::new(name);
        self.dir_entries_mut(parent).remove(&name);
        self.inodes_mut().remove(&ino);
        Ok(())
    }

    /// `setxattr`.
    pub fn setxattr(&mut self, path: &str, key: &str, value: &[u8]) -> FsResult<()> {
        let ino = self.resolve(path)?;
        self.inode_mut(ino)
            .xattrs_mut()
            .insert(Sym::new(key), value.to_vec());
        Ok(())
    }

    /// `removexattr`.
    pub fn removexattr(&mut self, path: &str, key: &str) -> FsResult<()> {
        let ino = self.resolve(path)?;
        let removed = self.inode_mut(ino).xattrs_mut().remove(&Sym::new(key));
        if removed.is_none() {
            return Err(FsError::NoAttr(format!("{path}#{key}")));
        }
        Ok(())
    }

    /// Reference count of `ino` across all directories.
    fn nlink(&self, ino: Ino) -> usize {
        self.inodes
            .values()
            .filter_map(|i| match &**i {
                Inode::Dir { entries, .. } => Some(entries.values().filter(|&&e| e == ino).count()),
                Inode::File { .. } => None,
            })
            .sum()
    }

    fn drop_if_unreferenced(&mut self, ino: Ino) {
        if self.nlink(ino) == 0 {
            self.inodes_mut().remove(&ino);
        }
    }

    /// A canonical 64-bit digest of the full state. Two states compare
    /// equal iff their digests match (modulo hash collisions); ParaCrash
    /// uses digests to dedup crash states cheaply before falling back to a
    /// structural comparison. Memoized: repeated digests of an unmutated
    /// state (and of its unmutated forks) are O(1).
    ///
    /// The digest *value* is identical in both sym modes: the fast path
    /// collects the tree in one DFS while the `PC_NAIVE_SYMS=1` oracle
    /// re-resolves every walked path (the historical algorithm), but
    /// both hash the same resolved-string stream. Digest-derived
    /// orderings (state dedup, cost-model fingerprints) therefore can't
    /// diverge between modes.
    pub fn digest(&self) -> u64 {
        *self.digest_memo.get_or_init(|| {
            if naive_syms() {
                self.compute_digest_naive()
            } else {
                self.compute_digest()
            }
        })
    }

    /// Hash xattrs exactly as the historical `BTreeMap<String, Vec<u8>>`
    /// did: via a string-keyed view (`&str` hashes identically to
    /// `String`, and `BTreeMap` orders by the resolved key either way).
    fn hash_xattrs<H: Hasher>(xattrs: &BTreeMap<Sym, Vec<u8>>, h: &mut H) {
        let view: BTreeMap<&str, &Vec<u8>> = xattrs.iter().map(|(k, v)| (k.as_str(), v)).collect();
        view.hash(h);
    }

    fn hash_node<H: Hasher>(&self, node: &Inode, h: &mut H) {
        match node {
            Inode::File { data, xattrs } => {
                0u8.hash(h);
                data.hash(h);
                Self::hash_xattrs(xattrs, h);
            }
            Inode::Dir { xattrs, .. } => {
                1u8.hash(h);
                Self::hash_xattrs(xattrs, h);
            }
        }
    }

    fn compute_digest(&self) -> u64 {
        // Hash the *logical* tree (paths + contents), not raw inode
        // numbers: two states reached by different op interleavings must
        // compare equal when their visible trees match. One DFS collects
        // every (path, node) pair; sorting by path reproduces the walk()
        // order (and thus the exact naive hash stream) without
        // re-resolving each path from the root.
        let mut nodes: Vec<(String, &Inode)> = Vec::new();
        self.collect_nodes(ROOT_INO, "", &mut nodes);
        nodes.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for (path, node) in nodes {
            path.hash(&mut h);
            self.hash_node(node, &mut h);
        }
        h.finish()
    }

    fn collect_nodes<'s>(&'s self, ino: Ino, prefix: &str, out: &mut Vec<(String, &'s Inode)>) {
        if let Inode::Dir { entries, .. } = self.inode_ref(ino) {
            for (name, child) in entries {
                let path = format!("{prefix}/{}", name.as_str());
                let node = self.inode_ref(*child);
                if node.is_dir() {
                    self.collect_nodes(*child, &path, out);
                }
                out.push((path, node));
            }
        }
    }

    /// The historical string-keyed digest: walk the sorted path list,
    /// re-resolve each path, hash. Kept verbatim as the `PC_NAIVE_SYMS`
    /// oracle; must produce the same value as [`Self::compute_digest`].
    fn compute_digest_naive(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for path in self.walk() {
            path.hash(&mut h);
            if let Ok(ino) = self.resolve(&path) {
                self.hash_node(self.inode_ref(ino), &mut h);
            }
        }
        h.finish()
    }

    /// Logical equality: same visible tree (paths, kinds, contents,
    /// xattrs), ignoring inode numbering. This is the comparison the
    /// golden-master check uses.
    ///
    /// Fast path: structural recursion comparing interned name sets —
    /// O(1) per component, no path strings built. `PC_NAIVE_SYMS=1`
    /// runs the historical walk-both-trees comparison instead; the two
    /// agree because sym↔string is a bijection.
    pub fn same_tree(&self, other: &FsState) -> bool {
        if naive_syms() {
            return self.same_tree_naive(other);
        }
        self.same_subtree(ROOT_INO, other, ROOT_INO)
    }

    fn same_subtree(&self, a: Ino, other: &FsState, b: Ino) -> bool {
        match (self.inode_ref(a), other.inode_ref(b)) {
            (
                Inode::File {
                    data: da,
                    xattrs: xa,
                },
                Inode::File {
                    data: db,
                    xattrs: xb,
                },
            ) => da == db && xa == xb,
            (
                Inode::Dir {
                    entries: ea,
                    xattrs: xa,
                },
                Inode::Dir {
                    entries: eb,
                    xattrs: xb,
                },
            ) => {
                xa == xb
                    && ea.len() == eb.len()
                    && ea.iter().all(|(name, &ca)| {
                        eb.get(name)
                            .is_some_and(|&cb| self.same_subtree(ca, other, cb))
                    })
            }
            _ => false,
        }
    }

    fn same_tree_naive(&self, other: &FsState) -> bool {
        let a = self.walk();
        if a != other.walk() {
            return false;
        }
        for path in &a {
            let (ia, ib) = (self.resolve(path), other.resolve(path));
            match (ia, ib) {
                (Ok(ia), Ok(ib)) => {
                    let (na, nb) = (self.inode_ref(ia), other.inode_ref(ib));
                    match (na, nb) {
                        (
                            Inode::File {
                                data: da,
                                xattrs: xa,
                            },
                            Inode::File {
                                data: db,
                                xattrs: xb,
                            },
                        ) => {
                            if da != db || xa != xb {
                                return false;
                            }
                        }
                        (Inode::Dir { xattrs: xa, .. }, Inode::Dir { xattrs: xb, .. }) => {
                            if xa != xb {
                                return false;
                            }
                        }
                        _ => return false,
                    }
                }
                _ => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs_with(paths: &[&str]) -> FsState {
        let mut fs = FsState::new();
        for p in paths {
            if let Some(dir) = p.rfind('/') {
                if dir > 0 {
                    fs.mkdir_all(&p[..dir]).unwrap();
                }
            }
            fs.creat(p).unwrap();
        }
        fs
    }

    #[test]
    fn create_write_read_roundtrip() {
        let mut fs = FsState::new();
        fs.creat("/foo").unwrap();
        fs.pwrite("/foo", 0, b"hello").unwrap();
        assert_eq!(fs.read("/foo").unwrap(), b"hello");
        fs.pwrite("/foo", 3, b"XYZ").unwrap();
        assert_eq!(fs.read("/foo").unwrap(), b"helXYZ");
    }

    #[test]
    fn pwrite_zero_fills_holes() {
        let mut fs = fs_with(&["/f"]);
        fs.pwrite("/f", 4, b"ab").unwrap();
        assert_eq!(fs.read("/f").unwrap(), &[0, 0, 0, 0, b'a', b'b']);
    }

    #[test]
    fn append_extends() {
        let mut fs = fs_with(&["/f"]);
        fs.append("/f", b"aa").unwrap();
        fs.append("/f", b"bb").unwrap();
        assert_eq!(fs.read("/f").unwrap(), b"aabb");
    }

    #[test]
    fn creat_truncates_existing() {
        let mut fs = fs_with(&["/f"]);
        fs.append("/f", b"data").unwrap();
        fs.creat("/f").unwrap();
        assert_eq!(fs.read("/f").unwrap(), b"");
    }

    #[test]
    fn rename_replaces_and_frees_target() {
        let mut fs = fs_with(&["/tmp", "/file"]);
        fs.pwrite("/tmp", 0, b"new").unwrap();
        fs.pwrite("/file", 0, b"old").unwrap();
        let inodes_before = fs.inode_count();
        fs.rename("/tmp", "/file").unwrap();
        assert!(!fs.exists("/tmp"));
        assert_eq!(fs.read("/file").unwrap(), b"new");
        assert_eq!(fs.inode_count(), inodes_before - 1);
    }

    #[test]
    fn rename_into_nonempty_dir_fails() {
        let mut fs = FsState::new();
        fs.mkdir("/a").unwrap();
        fs.mkdir("/b").unwrap();
        fs.creat("/b/x").unwrap();
        assert_eq!(
            fs.rename("/a", "/b"),
            Err(FsError::NotEmpty("/b".to_string()))
        );
    }

    #[test]
    fn hard_links_share_content_until_last_unlink() {
        let mut fs = fs_with(&["/idfile"]);
        fs.mkdir("/dentries").unwrap();
        fs.link("/idfile", "/dentries/foo").unwrap();
        fs.pwrite("/idfile", 0, b"id").unwrap();
        assert_eq!(fs.read("/dentries/foo").unwrap(), b"id");
        fs.unlink("/idfile").unwrap();
        // Still alive through the second link.
        assert_eq!(fs.read("/dentries/foo").unwrap(), b"id");
        let n = fs.inode_count();
        fs.unlink("/dentries/foo").unwrap();
        assert_eq!(fs.inode_count(), n - 1);
    }

    #[test]
    fn xattrs_roundtrip() {
        let mut fs = fs_with(&["/f"]);
        fs.setxattr("/f", "user.stripe", b"128K").unwrap();
        assert_eq!(fs.getxattr("/f", "user.stripe").unwrap(), b"128K");
        fs.removexattr("/f", "user.stripe").unwrap();
        assert!(matches!(
            fs.getxattr("/f", "user.stripe"),
            Err(FsError::NoAttr(_))
        ));
    }

    #[test]
    fn rmdir_only_empty() {
        let mut fs = FsState::new();
        fs.mkdir("/d").unwrap();
        fs.creat("/d/f").unwrap();
        assert!(matches!(fs.rmdir("/d"), Err(FsError::NotEmpty(_))));
        fs.unlink("/d/f").unwrap();
        fs.rmdir("/d").unwrap();
        assert!(!fs.exists("/d"));
    }

    #[test]
    fn walk_lists_everything_sorted() {
        let mut fs = FsState::new();
        fs.mkdir("/b").unwrap();
        fs.creat("/b/z").unwrap();
        fs.creat("/a").unwrap();
        assert_eq!(fs.walk(), vec!["/a", "/b", "/b/z"]);
    }

    #[test]
    fn same_tree_ignores_inode_numbers() {
        // Build the same logical tree via different op orders.
        let mut a = FsState::new();
        a.creat("/x").unwrap();
        a.creat("/y").unwrap();
        let mut b = FsState::new();
        b.creat("/y").unwrap();
        b.creat("/x").unwrap();
        assert!(a.same_tree(&b));
        assert_eq!(a.digest(), b.digest());
        b.pwrite("/x", 0, b"!").unwrap();
        assert!(!a.same_tree(&b));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn apply_dispatches_all_ops() {
        let mut fs = FsState::new();
        let script = [
            FsOp::Mkdir { path: "/d".into() },
            FsOp::Creat {
                path: "/d/f".into(),
            },
            FsOp::Pwrite {
                path: "/d/f".into(),
                offset: 0,
                data: b"abc".to_vec(),
            },
            FsOp::Append {
                path: "/d/f".into(),
                data: b"de".to_vec(),
            },
            FsOp::Truncate {
                path: "/d/f".into(),
                size: 4,
            },
            FsOp::SetXattr {
                path: "/d/f".into(),
                key: "user.k".into(),
                value: b"v".to_vec(),
            },
            FsOp::Fsync {
                path: "/d/f".into(),
            },
            FsOp::Link {
                src: "/d/f".into(),
                dst: "/d/g".into(),
            },
            FsOp::Rename {
                src: "/d/g".into(),
                dst: "/d/h".into(),
            },
            FsOp::Unlink {
                path: "/d/h".into(),
            },
            FsOp::SyncFs,
        ];
        for op in &script {
            fs.apply(op).unwrap();
        }
        assert_eq!(fs.read("/d/f").unwrap(), b"abcd");
        assert!(!fs.exists("/d/h"));
    }

    #[test]
    fn apply_lenient_reports_failures() {
        let mut fs = FsState::new();
        let ops = [
            FsOp::Creat { path: "/ok".into() },
            FsOp::Unlink {
                path: "/missing".into(),
            },
        ];
        let failed = fs.apply_lenient(ops.iter());
        assert_eq!(failed.len(), 1);
        assert!(fs.exists("/ok"));
    }

    #[test]
    fn snapshot_is_independent() {
        let mut fs = fs_with(&["/f"]);
        let snap = fs.clone();
        fs.pwrite("/f", 0, b"mutated").unwrap();
        assert_eq!(snap.read("/f").unwrap(), b"");
        assert!(!snap.same_tree(&fs));
    }

    #[test]
    fn fork_is_independent_both_ways() {
        let mut fs = fs_with(&["/f", "/g"]);
        fs.pwrite("/f", 0, b"base").unwrap();
        let mut fork = fs.fork();
        fork.pwrite("/f", 0, b"FORK").unwrap();
        fs.pwrite("/g", 0, b"ORIG").unwrap();
        assert_eq!(fs.read("/f").unwrap(), b"base");
        assert_eq!(fork.read("/f").unwrap(), b"FORK");
        assert_eq!(fork.read("/g").unwrap(), b"");
    }

    #[test]
    fn fork_matches_deep_clone() {
        let mut fs = fs_with(&["/a/f"]);
        fs.setxattr("/a/f", "user.k", b"v").unwrap();
        let fork = fs.fork();
        let deep = fs.deep_clone();
        assert_eq!(fork, deep);
        assert!(fork.same_tree(&deep));
        assert_eq!(fork.digest(), deep.digest());
    }

    #[test]
    fn fast_digest_matches_naive_digest_value() {
        // The interned DFS digest and the historical walk+resolve digest
        // must agree on the exact value (not just equality classes), so
        // digest-derived orderings can't diverge between sym modes.
        let mut fs = FsState::new();
        fs.mkdir_all("/a/b").unwrap();
        fs.creat("/a/b/f").unwrap();
        fs.pwrite("/a/b/f", 0, b"payload").unwrap();
        fs.setxattr("/a/b/f", "user.stripe", b"128K").unwrap();
        fs.setxattr("/a", "user.owner", b"mds0").unwrap();
        fs.creat("/a!edge").unwrap(); // '!' < '/': DFS order != sorted-path order
        fs.mkdir("/a!edge-dir").unwrap();
        fs.link("/a/b/f", "/a/hard").unwrap();
        assert_eq!(fs.compute_digest(), fs.compute_digest_naive());
        assert!(fs.same_tree_naive(&fs.fork()));
        assert!(fs.same_tree(&fs.fork()));
    }

    #[test]
    fn digest_memo_survives_fork_and_resets_on_mutation() {
        let mut fs = fs_with(&["/f"]);
        fs.pwrite("/f", 0, b"x").unwrap();
        let d0 = fs.digest();
        let fork = fs.fork();
        assert_eq!(fork.digest(), d0);
        fs.pwrite("/f", 0, b"y").unwrap();
        assert_ne!(fs.digest(), d0);
        // The fork still sees the original content and digest.
        assert_eq!(fork.digest(), d0);
        assert_eq!(fork.read("/f").unwrap(), b"x");
        // Reverting the mutation restores the original digest.
        fs.pwrite("/f", 0, b"x").unwrap();
        assert_eq!(fs.digest(), d0);
    }
}
