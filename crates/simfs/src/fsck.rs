//! Structural consistency checking for [`FsState`] — the local analogue of
//! `e2fsck`.
//!
//! ParaCrash runs the storage system's own checker first (§4.4.3): it is
//! cheap and catches *structural* corruption, but says nothing about which
//! pre-crash operations survived. Our simulated local FS cannot corrupt its
//! own structures (operations are transactional), so the interesting
//! checkers live in the `pfs` and `h5sim` crates; this module provides the
//! shared machinery: issue reporting and generic invariant checks that PFS
//! checkers build on (dangling references recorded in xattrs, marker files,
//! etc.), plus a self-check used in property tests.

use crate::state::{FsState, Inode};
use std::collections::BTreeSet;
use std::fmt;

/// One problem found by a checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckIssue {
    /// Path (or object) the issue is about.
    pub subject: String,
    /// Human-readable description, in the style of fsck tool output.
    pub detail: String,
    /// Whether the checker's repair pass can fix it.
    pub repairable: bool,
}

impl fmt::Display for FsckIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ({})",
            self.subject,
            self.detail,
            if self.repairable {
                "repairable"
            } else {
                "unrepairable"
            }
        )
    }
}

/// Generic structural checker over a local file system.
pub struct Fsck;

impl Fsck {
    /// Verify internal invariants of the inode table itself: every
    /// directory entry resolves, and every inode is reachable from the
    /// root. Returns issues (empty = clean).
    ///
    /// `FsState` maintains these invariants by construction; this check
    /// exists so property tests can assert them after arbitrary replay
    /// schedules, the same way the paper trusts but verifies ext4.
    pub fn check(fs: &FsState) -> Vec<FsckIssue> {
        let _span = pc_rt::obs::span_cat("simfs.fsck", "simfs");
        let mut issues = Vec::new();
        // Reachability sweep.
        let mut reachable: BTreeSet<u64> = BTreeSet::new();
        let mut stack = vec![fs.root()];
        while let Some(ino) = stack.pop() {
            if !reachable.insert(ino) {
                continue;
            }
            match fs.inode(ino) {
                Some(Inode::Dir { entries, .. }) => {
                    // Iterate in resolved-name order: entry maps are
                    // keyed by interned ids whose order is arbitrary,
                    // but issue order is observable output.
                    let mut named: Vec<(&'static str, u64)> =
                        entries.iter().map(|(n, c)| (n.as_str(), *c)).collect();
                    named.sort_unstable_by_key(|(n, _)| *n);
                    for (name, child) in named {
                        if fs.inode(child).is_none() {
                            issues.push(FsckIssue {
                                subject: name.to_string(),
                                detail: format!("dangling entry -> inode {child}"),
                                repairable: true,
                            });
                        } else {
                            stack.push(child);
                        }
                    }
                }
                Some(Inode::File { .. }) => {}
                None => issues.push(FsckIssue {
                    subject: format!("inode {ino}"),
                    detail: "referenced inode missing".into(),
                    repairable: false,
                }),
            }
        }
        // Orphan sweep.
        for ino in 0..=fs.inode_count() as u64 * 4 {
            if fs.inode(ino).is_some() && !reachable.contains(&ino) {
                issues.push(FsckIssue {
                    subject: format!("inode {ino}"),
                    detail: "orphan inode (unreachable from /)".into(),
                    repairable: true,
                });
            }
        }
        pc_rt::obs::count("simfs.fsck_issues", issues.len() as u64);
        issues
    }

    /// `true` if the file system is structurally clean.
    pub fn is_clean(fs: &FsState) -> bool {
        Self::check(fs).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::FsOp;

    #[test]
    fn fresh_fs_is_clean() {
        assert!(Fsck::is_clean(&FsState::new()));
    }

    #[test]
    fn populated_fs_is_clean() {
        let mut fs = FsState::new();
        fs.mkdir_all("/a/b/c").unwrap();
        fs.creat("/a/b/c/f").unwrap();
        fs.link("/a/b/c/f", "/a/g").unwrap();
        assert!(Fsck::is_clean(&fs));
    }

    #[test]
    fn lenient_replay_keeps_fs_clean() {
        // Even when half the operations fail to apply, the FS invariants
        // hold — this is the property ParaCrash relies on when replaying
        // crash states.
        let mut fs = FsState::new();
        let ops = [
            FsOp::Creat { path: "/a".into() },
            FsOp::Rename {
                src: "/nope".into(),
                dst: "/b".into(),
            },
            FsOp::Unlink {
                path: "/gone".into(),
            },
            FsOp::Link {
                src: "/a".into(),
                dst: "/c".into(),
            },
        ];
        fs.apply_lenient(ops.iter());
        assert!(Fsck::is_clean(&fs));
    }
}
