//! Block-device substrate for kernel-level parallel file systems.
//!
//! GPFS and Lustre do not issue POSIX calls against a local file system;
//! they write disk blocks directly. The paper mounts them on iSCSI disks
//! and traces `scsi_write(LBA)` / `scsi_synchronize_cache` commands
//! (Figure 7). Each traced block write is *tagged* with the on-disk
//! structure it updates (Figure 9(d): "log file", "inode of file",
//! "parent dir", "inode allocation map"), which is what ParaCrash's
//! semantic analysis and bug reports consume.
//!
//! Persistence semantics: a disk may persist outstanding writes in any
//! order; ordering is only enforced by cache-flush barriers
//! (`scsi_synchronize_cache`). Writes may also be grouped into *atomic log
//! groups* by the file system's journal — the group is a promise the FS
//! makes, and ParaCrash checks whether a crash can break it (Table 3
//! bug 3).

use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

/// The on-disk structure a tagged block write updates.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StructTag {
    /// File-system journal / log file block.
    LogFile,
    /// Inode of the named object.
    Inode(String),
    /// Directory-entry block of the named directory.
    DirEntry(String),
    /// Inode / block allocation map.
    AllocMap,
    /// Content block of the named file.
    FileContent(String),
    /// File-system superblock.
    Superblock,
    /// Anything else.
    Other(String),
}

impl StructTag {
    /// `true` for tags that represent file-system metadata.
    pub fn is_meta(&self) -> bool {
        !matches!(self, StructTag::FileContent(_))
    }

    /// The object name the tag refers to, if any.
    pub fn object(&self) -> Option<&str> {
        match self {
            StructTag::Inode(n) | StructTag::DirEntry(n) | StructTag::FileContent(n) => Some(n),
            _ => None,
        }
    }
}

impl fmt::Display for StructTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructTag::LogFile => write!(f, "log file"),
            StructTag::Inode(n) => write!(f, "inode of {n}"),
            StructTag::DirEntry(n) => write!(f, "d_entry of {n}"),
            StructTag::AllocMap => write!(f, "inode allocation map"),
            StructTag::FileContent(n) => write!(f, "content of {n}"),
            StructTag::Superblock => write!(f, "superblock"),
            StructTag::Other(s) => write!(f, "{s}"),
        }
    }
}

/// One traced block-level command.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BlockOp {
    /// `scsi_write(LBA)` — tagged with the structure it updates and,
    /// optionally, the atomic journal group it belongs to.
    Write {
        lba: u64,
        payload: Vec<u8>,
        tag: StructTag,
        /// Writes sharing a group id are intended by the FS journal to be
        /// all-or-nothing.
        atomic_group: Option<u32>,
    },
    /// `scsi_synchronize_cache` — persistence barrier: every write issued
    /// before it (on this device) is persisted before any write issued
    /// after it.
    SyncCache,
}

impl BlockOp {
    /// Convenience constructor for a tagged write.
    pub fn write(lba: u64, tag: StructTag, payload: impl Into<Vec<u8>>) -> Self {
        BlockOp::Write {
            lba,
            payload: payload.into(),
            tag,
            atomic_group: None,
        }
    }

    /// Convenience constructor for a tagged write inside an atomic group.
    pub fn write_in_group(
        lba: u64,
        tag: StructTag,
        payload: impl Into<Vec<u8>>,
        group: u32,
    ) -> Self {
        BlockOp::Write {
            lba,
            payload: payload.into(),
            tag,
            atomic_group: Some(group),
        }
    }

    /// `true` for the barrier command.
    pub fn is_sync(&self) -> bool {
        matches!(self, BlockOp::SyncCache)
    }

    /// `true` if the command mutates the device.
    pub fn is_update(&self) -> bool {
        !self.is_sync()
    }

    /// The structure tag, if this is a write.
    pub fn tag(&self) -> Option<&StructTag> {
        match self {
            BlockOp::Write { tag, .. } => Some(tag),
            BlockOp::SyncCache => None,
        }
    }

    /// The atomic group id, if any.
    pub fn atomic_group(&self) -> Option<u32> {
        match self {
            BlockOp::Write { atomic_group, .. } => *atomic_group,
            BlockOp::SyncCache => None,
        }
    }

    /// Payload size in bytes (0 for barriers).
    pub fn payload_len(&self) -> usize {
        match self {
            BlockOp::Write { payload, .. } => payload.len(),
            BlockOp::SyncCache => 0,
        }
    }

    /// Torn version of this command: the write the disk actually
    /// completed when a crash hit after `keep` payload bytes. `None`
    /// when nothing partial can persist (barriers; writes of < 2 bytes
    /// are sector-atomic here).
    pub fn torn(&self, keep: usize) -> Option<BlockOp> {
        match self {
            BlockOp::Write {
                lba,
                payload,
                tag,
                atomic_group,
            } if payload.len() >= 2 => {
                let keep = keep.clamp(1, payload.len() - 1);
                Some(BlockOp::Write {
                    lba: *lba,
                    payload: payload[..keep].to_vec(),
                    tag: tag.clone(),
                    atomic_group: *atomic_group,
                })
            }
            _ => None,
        }
    }
}

impl fmt::Display for BlockOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockOp::Write { lba, tag, .. } => write!(f, "scsi_write(LBA: {lba}, {tag})"),
            BlockOp::SyncCache => write!(f, "scsi_synchronize_cache()"),
        }
    }
}

/// Block-level persistence rule: with write-back caching, two writes on the
/// same device are ordered only if a cache-flush barrier was issued between
/// them (`op1 → sync → op2` in happens-before order). The caller scans the
/// trace for such a barrier and passes the result.
pub fn block_persists_before(op1: &BlockOp, op2: &BlockOp, barrier_between: bool) -> bool {
    op1.is_update() && op2.is_update() && barrier_between
}

/// An addressable block device, snapshot-able like [`crate::FsState`].
///
/// Like `FsState`, the block table is persistent (copy-on-write):
/// `clone`/[`BlockDev::fork`] are O(1), per-block payloads stay shared
/// between forks until overwritten, and the digest is memoized.
#[derive(Clone, Default)]
pub struct BlockDev {
    blocks: Arc<BTreeMap<u64, Arc<(StructTag, Vec<u8>)>>>,
    digest_memo: Arc<OnceLock<u64>>,
}

impl fmt::Debug for BlockDev {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BlockDev")
            .field("blocks", &self.blocks)
            .finish()
    }
}

impl PartialEq for BlockDev {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.blocks, &other.blocks) || self.blocks == other.blocks
    }
}

impl Eq for BlockDev {}

impl BlockDev {
    /// An empty (all-zero) device.
    pub fn new() -> Self {
        Self::default()
    }

    /// O(1) copy-on-write snapshot (see [`crate::FsState::fork`]).
    pub fn fork(&self) -> BlockDev {
        self.clone()
    }

    /// A structurally independent copy sharing no blocks with `self`
    /// (the `PC_NAIVE_SNAPSHOTS=1` oracle's clone-everything cost model).
    pub fn deep_clone(&self) -> BlockDev {
        BlockDev {
            blocks: Arc::new(
                self.blocks
                    .iter()
                    .map(|(k, v)| (*k, Arc::new((**v).clone())))
                    .collect(),
            ),
            digest_memo: Arc::new(OnceLock::new()),
        }
    }

    /// Apply one command. `SyncCache` is a no-op at the state level.
    pub fn apply(&mut self, op: &BlockOp) {
        if let BlockOp::Write {
            lba, payload, tag, ..
        } = op
        {
            if self.digest_memo.get().is_some() || Arc::strong_count(&self.digest_memo) > 1 {
                self.digest_memo = Arc::new(OnceLock::new());
            }
            Arc::make_mut(&mut self.blocks).insert(*lba, Arc::new((tag.clone(), payload.clone())));
        }
    }

    /// Read the content last written to `lba`, if any.
    pub fn read(&self, lba: u64) -> Option<&[u8]> {
        self.blocks.get(&lba).map(|b| b.1.as_slice())
    }

    /// Read the tag of the block at `lba`, if written.
    pub fn tag_at(&self, lba: u64) -> Option<&StructTag> {
        self.blocks.get(&lba).map(|b| &b.0)
    }

    /// All written blocks in LBA order.
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &StructTag, &[u8])> {
        self.blocks.iter().map(|(l, b)| (l, &b.0, b.1.as_slice()))
    }

    /// Number of written blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` if nothing was ever written.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Canonical digest for crash-state dedup (memoized like
    /// [`crate::FsState::digest`]).
    pub fn digest(&self) -> u64 {
        *self.digest_memo.get_or_init(|| {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            self.blocks.hash(&mut h);
            h.finish()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_land_and_overwrite() {
        let mut dev = BlockDev::new();
        dev.apply(&BlockOp::write(8, StructTag::LogFile, vec![1]));
        dev.apply(&BlockOp::write(8, StructTag::LogFile, vec![2]));
        assert_eq!(dev.read(8), Some(&[2u8][..]));
        assert_eq!(dev.len(), 1);
    }

    #[test]
    fn sync_cache_is_stateless() {
        let mut dev = BlockDev::new();
        let d0 = dev.digest();
        dev.apply(&BlockOp::SyncCache);
        assert_eq!(dev.digest(), d0);
        assert!(dev.is_empty());
    }

    #[test]
    fn barrier_rule() {
        let w1 = BlockOp::write(0, StructTag::Superblock, vec![0]);
        let w2 = BlockOp::write(1, StructTag::LogFile, vec![0]);
        assert!(block_persists_before(&w1, &w2, true));
        assert!(!block_persists_before(&w1, &w2, false));
        assert!(!block_persists_before(&BlockOp::SyncCache, &w2, true));
    }

    #[test]
    fn tags_classify_and_name() {
        assert!(StructTag::Inode("f".into()).is_meta());
        assert!(!StructTag::FileContent("f".into()).is_meta());
        assert_eq!(StructTag::DirEntry("d".into()).object(), Some("d"));
        assert_eq!(StructTag::AllocMap.object(), None);
        assert_eq!(
            BlockOp::write(2297128, StructTag::LogFile, vec![]).to_string(),
            "scsi_write(LBA: 2297128, log file)"
        );
    }

    #[test]
    fn atomic_groups_recorded() {
        let w = BlockOp::write_in_group(4, StructTag::AllocMap, vec![1], 7);
        assert_eq!(w.atomic_group(), Some(7));
        assert_eq!(BlockOp::SyncCache.atomic_group(), None);
    }

    #[test]
    fn fork_is_independent_and_digest_memo_is_safe() {
        let mut a = BlockDev::new();
        a.apply(&BlockOp::write(1, StructTag::LogFile, vec![1]));
        let d0 = a.digest();
        let fork = a.fork();
        assert_eq!(fork.digest(), d0);
        a.apply(&BlockOp::write(1, StructTag::LogFile, vec![2]));
        assert_ne!(a.digest(), d0);
        assert_eq!(fork.digest(), d0);
        assert_eq!(fork.read(1), Some(&[1u8][..]));
        assert_eq!(a.deep_clone(), a);
    }

    #[test]
    fn digests_differ_on_content() {
        let mut a = BlockDev::new();
        let mut b = BlockDev::new();
        a.apply(&BlockOp::write(1, StructTag::LogFile, vec![1]));
        b.apply(&BlockOp::write(1, StructTag::LogFile, vec![2]));
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a, b);
    }
}
