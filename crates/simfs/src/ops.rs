//! The local file-system operation vocabulary.
//!
//! These are the *lowermost-level* I/O operations of the paper for
//! user-level parallel file systems: the POSIX calls a PFS server process
//! issues against its backing ext4 store, as captured by `strace` in the
//! original system. ParaCrash's crash emulation replays subsets of these
//! operations; its persistence analysis classifies each as a *data* or
//! *metadata* operation (journaling modes order them differently).

use std::fmt;

/// Classification of an operation for journaling purposes.
///
/// ext4's `ordered` and `writeback` journal modes only order *metadata*
/// updates; data block writes may be persisted out of order. `data`
/// journaling orders everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Updates file content only (`pwrite`, `append`).
    Data,
    /// Updates namespace / inode metadata (`creat`, `rename`, `link`, …).
    Meta,
    /// A commit point (`fsync`, `fdatasync`, `syncfs`) — persists nothing
    /// itself but constrains the persistence order of other operations.
    Sync,
}

/// A single local file-system operation.
///
/// Paths are absolute within one server's local namespace
/// (e.g. `/data/chunks/4-5F.../chunk0`). The parallel-file-system models in
/// the `pfs` crate generate these; ParaCrash replays them. Variant fields
/// are self-describing POSIX call arguments (`path`, `offset`, `data`,
/// `src`, `dst`, `key`, `value`, `size`).
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FsOp {
    /// `creat(path)` — create an empty regular file (truncates if present).
    Creat { path: String },
    /// `mkdir(path)`.
    Mkdir { path: String },
    /// `pwrite(path, offset, data)` — positional write, extends the file if
    /// needed.
    Pwrite {
        path: String,
        offset: u64,
        data: Vec<u8>,
    },
    /// `append(path, data)` — write at end-of-file (the paper traces
    /// chunk-file appends on BeeGFS storage servers).
    Append { path: String, data: Vec<u8> },
    /// `truncate(path, size)`.
    Truncate { path: String, size: u64 },
    /// `rename(src, dst)` — atomic within one local FS.
    Rename { src: String, dst: String },
    /// `link(src, dst)` — hard link; BeeGFS links idfiles into dentry dirs.
    Link { src: String, dst: String },
    /// `unlink(path)` — remove one name (file is gone when nlink hits 0).
    Unlink { path: String },
    /// `rmdir(path)` — remove an empty directory.
    Rmdir { path: String },
    /// `setxattr(path, key, value)` — BeeGFS/GlusterFS store PFS metadata in
    /// extended attributes.
    SetXattr {
        path: String,
        key: String,
        value: Vec<u8>,
    },
    /// `removexattr(path, key)`.
    RemoveXattr { path: String, key: String },
    /// `fsync(path)` — commit data *and* metadata of one file.
    Fsync { path: String },
    /// `fdatasync(path)` — commit the data (and size) of one file;
    /// OrangeFS issues this after every Berkeley-DB page write.
    Fdatasync { path: String },
    /// `syncfs` — commit everything on this local file system.
    SyncFs,
}

impl FsOp {
    /// Journal classification of this operation.
    pub fn class(&self) -> OpClass {
        match self {
            FsOp::Pwrite { .. } | FsOp::Append { .. } => OpClass::Data,
            FsOp::Fsync { .. } | FsOp::Fdatasync { .. } | FsOp::SyncFs => OpClass::Sync,
            _ => OpClass::Meta,
        }
    }

    /// `true` if this operation is a metadata update.
    pub fn is_meta(&self) -> bool {
        self.class() == OpClass::Meta
    }

    /// `true` if this operation is a data update.
    pub fn is_data(&self) -> bool {
        self.class() == OpClass::Data
    }

    /// `true` for commit operations (`fsync` family).
    pub fn is_sync(&self) -> bool {
        self.class() == OpClass::Sync
    }

    /// `true` if the operation mutates persistent state (sync ops do not).
    pub fn is_update(&self) -> bool {
        !self.is_sync()
    }

    /// The primary path this operation touches (the file whose persistence
    /// an `fsync` would commit). `Rename`/`Link` return their *source*;
    /// use [`FsOp::paths`] for every touched path.
    pub fn primary_path(&self) -> Option<&str> {
        match self {
            FsOp::Creat { path }
            | FsOp::Mkdir { path }
            | FsOp::Pwrite { path, .. }
            | FsOp::Append { path, .. }
            | FsOp::Truncate { path, .. }
            | FsOp::Unlink { path }
            | FsOp::Rmdir { path }
            | FsOp::SetXattr { path, .. }
            | FsOp::RemoveXattr { path, .. }
            | FsOp::Fsync { path }
            | FsOp::Fdatasync { path } => Some(path),
            FsOp::Rename { src, .. } | FsOp::Link { src, .. } => Some(src),
            FsOp::SyncFs => None,
        }
    }

    /// Every path this operation touches.
    pub fn paths(&self) -> Vec<&str> {
        match self {
            FsOp::Rename { src, dst } | FsOp::Link { src, dst } => vec![src, dst],
            FsOp::SyncFs => vec![],
            _ => self.primary_path().into_iter().collect(),
        }
    }

    /// `true` if `self` and `other` touch at least one common path.
    pub fn touches_same_file(&self, other: &FsOp) -> bool {
        let a = self.paths();
        if a.is_empty() {
            return false;
        }
        other.paths().iter().any(|p| a.contains(p))
    }

    /// Short syscall-style mnemonic used in traces and bug reports,
    /// mirroring the notation of Table 3 (`append`, `rename`, `unlink`, …).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            FsOp::Creat { .. } => "creat",
            FsOp::Mkdir { .. } => "mkdir",
            FsOp::Pwrite { .. } => "pwrite",
            FsOp::Append { .. } => "append",
            FsOp::Truncate { .. } => "truncate",
            FsOp::Rename { .. } => "rename",
            FsOp::Link { .. } => "link",
            FsOp::Unlink { .. } => "unlink",
            FsOp::Rmdir { .. } => "rmdir",
            FsOp::SetXattr { .. } => "setxattr",
            FsOp::RemoveXattr { .. } => "removexattr",
            FsOp::Fsync { .. } => "fsync",
            FsOp::Fdatasync { .. } => "fdatasync",
            FsOp::SyncFs => "syncfs",
        }
    }
}

impl fmt::Display for FsOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsOp::Creat { path } => write!(f, "creat({path})"),
            FsOp::Mkdir { path } => write!(f, "mkdir({path})"),
            FsOp::Pwrite { path, offset, data } => {
                write!(f, "pwrite({path}, off={offset}, len={})", data.len())
            }
            FsOp::Append { path, data } => write!(f, "append({path}, len={})", data.len()),
            FsOp::Truncate { path, size } => write!(f, "truncate({path}, {size})"),
            FsOp::Rename { src, dst } => write!(f, "rename({src}, {dst})"),
            FsOp::Link { src, dst } => write!(f, "link({src}, {dst})"),
            FsOp::Unlink { path } => write!(f, "unlink({path})"),
            FsOp::Rmdir { path } => write!(f, "rmdir({path})"),
            FsOp::SetXattr { path, key, .. } => write!(f, "setxattr({path}, {key})"),
            FsOp::RemoveXattr { path, key } => write!(f, "removexattr({path}, {key})"),
            FsOp::Fsync { path } => write!(f, "fsync({path})"),
            FsOp::Fdatasync { path } => write!(f, "fdatasync({path})"),
            FsOp::SyncFs => write!(f, "syncfs()"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(path: &str) -> FsOp {
        FsOp::Pwrite {
            path: path.into(),
            offset: 0,
            data: vec![1],
        }
    }

    #[test]
    fn classification_matches_journal_semantics() {
        assert_eq!(w("/f").class(), OpClass::Data);
        assert_eq!(
            FsOp::Append {
                path: "/f".into(),
                data: vec![]
            }
            .class(),
            OpClass::Data
        );
        assert_eq!(FsOp::Creat { path: "/f".into() }.class(), OpClass::Meta);
        assert_eq!(
            FsOp::Rename {
                src: "/a".into(),
                dst: "/b".into()
            }
            .class(),
            OpClass::Meta
        );
        assert_eq!(FsOp::Fsync { path: "/f".into() }.class(), OpClass::Sync);
        assert!(FsOp::SyncFs.is_sync());
        assert!(!FsOp::SyncFs.is_update());
    }

    #[test]
    fn rename_touches_both_paths() {
        let r = FsOp::Rename {
            src: "/a".into(),
            dst: "/b".into(),
        };
        assert_eq!(r.paths(), vec!["/a", "/b"]);
        assert!(r.touches_same_file(&w("/a")));
        assert!(r.touches_same_file(&w("/b")));
        assert!(!r.touches_same_file(&w("/c")));
    }

    #[test]
    fn syncfs_touches_nothing_by_path() {
        assert!(FsOp::SyncFs.paths().is_empty());
        assert!(!FsOp::SyncFs.touches_same_file(&w("/a")));
    }

    #[test]
    fn mnemonics_are_stable() {
        assert_eq!(w("/f").mnemonic(), "pwrite");
        assert_eq!(
            FsOp::SetXattr {
                path: "/f".into(),
                key: "user.k".into(),
                value: vec![]
            }
            .mnemonic(),
            "setxattr"
        );
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(w("/f").to_string(), "pwrite(/f, off=0, len=1)");
        assert_eq!(FsOp::SyncFs.to_string(), "syncfs()");
    }
}
