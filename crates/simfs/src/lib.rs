#![warn(missing_docs)]

//! # simfs — simulated local storage substrate for the ParaCrash reproduction
//!
//! The original ParaCrash (SC '21) replays traced POSIX calls onto ext4
//! snapshots and traced SCSI commands onto iSCSI disk images. This crate is
//! the Rust stand-in for that lowest layer of the HPC I/O stack:
//!
//! * [`ops::FsOp`] — the vocabulary of local file-system operations that a
//!   parallel-file-system server issues against its backing store
//!   (`creat`, `pwrite`, `append`, `rename`, `link`, `unlink`, `setxattr`,
//!   `fsync`, …).
//! * [`state::FsState`] — an in-memory, inode-based POSIX-like file system
//!   with hard links, extended attributes, snapshots and canonical hashing,
//!   onto which operation subsets ("crash states") are replayed.
//! * [`journal::JournalMode`] — the journaling model of the local file
//!   system, which determines the *persists-before* partial order between
//!   operations on the same local FS (Algorithm 2 of the paper).
//! * [`block`] — a block device with `scsi_write` / `scsi_synchronize_cache`
//!   and tagged writes, used by kernel-level PFS models (GPFS, Lustre) the
//!   way the paper traces block I/O through Open-iSCSI.
//! * [`fsck`] — an e2fsck-style structural checker and repairer for
//!   [`state::FsState`].
//!
//! Everything is deterministic and `Clone`-snapshot friendly: ParaCrash's
//! crash emulation materializes hundreds of crash states per test program by
//! replaying operation subsets on snapshots of the initial state.

pub mod block;
pub mod error;
pub mod fsck;
pub mod journal;
pub mod ops;
pub mod state;

pub use block::{BlockDev, BlockOp, StructTag};
pub use error::{FsError, FsResult};
pub use fsck::{Fsck, FsckIssue};
pub use journal::{torn_write, CommitRecord, JournalMode};
pub use ops::{FsOp, OpClass};
pub use state::{FsState, Ino};
