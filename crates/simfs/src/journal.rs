//! Journaling modes and the intra-file-system persistence ordering rule.
//!
//! This is the local-FS half of **Algorithm 2** in the paper
//! (`persists_before`). Operations executed on the *same* local file system
//! are ordered on persistent storage according to the journaling mode of
//! that file system:
//!
//! * **data journaling** — every update (data and metadata) is journaled, so
//!   updates persist exactly in their execution (happens-before) order. The
//!   paper's evaluation runs ext4 in this, its safest, mode.
//! * **ordered** (ext4 default) — metadata updates persist in order, and the
//!   data blocks a metadata update references are flushed before the
//!   metadata commits; independent data writes may reorder freely.
//! * **writeback** — only metadata updates are ordered; data writes may
//!   persist in any order relative to everything else.
//! * **none** — nothing is ordered except by explicit commits (`fsync`);
//!   also used to model local file systems such as Btrfs that may reorder
//!   directory operations (Figure 2 case ③).
//!
//! Cross-file-system ordering (the `else` branch of Algorithm 2: an `fsync`
//! that happened between the two operations) is implemented in the
//! `paracrash` crate, which owns the full causality graph.

use crate::ops::{FsOp, OpClass};

/// Journaling mode of one local file system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum JournalMode {
    /// Everything persists in execution order (`data=journal`).
    #[default]
    Data,
    /// Metadata ordered; data ordered only relative to metadata that
    /// references the same file (`data=ordered`).
    Ordered,
    /// Only metadata ordered (`data=writeback`).
    Writeback,
    /// No ordering at all without explicit commits (models FSs that can
    /// reorder even directory operations).
    None,
}

impl JournalMode {
    /// Parse the mount-option spelling used in configuration files.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "data" | "journal" | "data=journal" => Some(JournalMode::Data),
            "ordered" | "data=ordered" => Some(JournalMode::Ordered),
            "writeback" | "data=writeback" => Some(JournalMode::Writeback),
            "none" => Some(JournalMode::None),
            _ => None,
        }
    }

    /// Mount-option spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            JournalMode::Data => "data=journal",
            JournalMode::Ordered => "data=ordered",
            JournalMode::Writeback => "data=writeback",
            JournalMode::None => "none",
        }
    }
}

/// Same-local-FS persistence rule of Algorithm 2.
///
/// Given two *update* operations `op1`, `op2` executed on the same local
/// file system and the fact `hb12 = happens_before(op1, op2)`, decide
/// whether the journal guarantees `op1` is persisted no later than `op2`.
///
/// Sync operations never participate (they impose ordering through the
/// cross-FS commit rule instead).
pub fn same_fs_persists_before(mode: JournalMode, op1: &FsOp, op2: &FsOp, hb12: bool) -> bool {
    if !hb12 || op1.is_sync() || op2.is_sync() {
        return false;
    }
    match mode {
        JournalMode::Data => true,
        JournalMode::Ordered => match (op1.class(), op2.class()) {
            (OpClass::Meta, OpClass::Meta) => true,
            // Data blocks are flushed before a later metadata commit that
            // references the same file.
            (OpClass::Data, OpClass::Meta) => op1.touches_same_file(op2),
            _ => false,
        },
        JournalMode::Writeback => op1.is_meta() && op2.is_meta(),
        JournalMode::None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(path: &str) -> FsOp {
        FsOp::Append {
            path: path.into(),
            data: vec![0],
        }
    }

    fn meta(path: &str) -> FsOp {
        FsOp::Creat { path: path.into() }
    }

    #[test]
    fn data_journal_orders_everything_in_hb() {
        let (a, b) = (data("/x"), meta("/y"));
        assert!(same_fs_persists_before(JournalMode::Data, &a, &b, true));
        assert!(same_fs_persists_before(JournalMode::Data, &b, &a, true));
        assert!(!same_fs_persists_before(JournalMode::Data, &a, &b, false));
    }

    #[test]
    fn writeback_orders_only_metadata() {
        let (d1, d2) = (data("/x"), data("/y"));
        let (m1, m2) = (meta("/x"), meta("/y"));
        assert!(same_fs_persists_before(
            JournalMode::Writeback,
            &m1,
            &m2,
            true
        ));
        assert!(!same_fs_persists_before(
            JournalMode::Writeback,
            &d1,
            &d2,
            true
        ));
        assert!(!same_fs_persists_before(
            JournalMode::Writeback,
            &d1,
            &m2,
            true
        ));
        assert!(!same_fs_persists_before(
            JournalMode::Writeback,
            &m1,
            &d2,
            true
        ));
    }

    #[test]
    fn ordered_flushes_data_before_same_file_metadata() {
        let d = data("/f");
        let m_same = FsOp::Truncate {
            path: "/f".into(),
            size: 0,
        };
        let m_other = meta("/g");
        assert!(same_fs_persists_before(
            JournalMode::Ordered,
            &d,
            &m_same,
            true
        ));
        assert!(!same_fs_persists_before(
            JournalMode::Ordered,
            &d,
            &m_other,
            true
        ));
        assert!(same_fs_persists_before(
            JournalMode::Ordered,
            &m_other,
            &m_same,
            true
        ));
        assert!(!same_fs_persists_before(
            JournalMode::Ordered,
            &m_same,
            &d,
            true
        ));
        assert!(!same_fs_persists_before(
            JournalMode::Ordered,
            &data("/f"),
            &data("/f"),
            true
        ));
    }

    #[test]
    fn none_orders_nothing() {
        let (m1, m2) = (meta("/x"), meta("/y"));
        assert!(!same_fs_persists_before(JournalMode::None, &m1, &m2, true));
    }

    #[test]
    fn sync_ops_do_not_participate() {
        let s = FsOp::Fsync { path: "/f".into() };
        let m = meta("/f");
        assert!(!same_fs_persists_before(JournalMode::Data, &s, &m, true));
        assert!(!same_fs_persists_before(JournalMode::Data, &m, &s, true));
    }

    #[test]
    fn mode_parse_roundtrip() {
        for mode in [
            JournalMode::Data,
            JournalMode::Ordered,
            JournalMode::Writeback,
            JournalMode::None,
        ] {
            assert_eq!(JournalMode::parse(mode.as_str()), Some(mode));
        }
        assert_eq!(JournalMode::parse("data"), Some(JournalMode::Data));
        assert_eq!(JournalMode::parse("bogus"), None);
    }
}
