//! Journaling modes and the intra-file-system persistence ordering rule.
//!
//! This is the local-FS half of **Algorithm 2** in the paper
//! (`persists_before`). Operations executed on the *same* local file system
//! are ordered on persistent storage according to the journaling mode of
//! that file system:
//!
//! * **data journaling** — every update (data and metadata) is journaled, so
//!   updates persist exactly in their execution (happens-before) order. The
//!   paper's evaluation runs ext4 in this, its safest, mode.
//! * **ordered** (ext4 default) — metadata updates persist in order, and the
//!   data blocks a metadata update references are flushed before the
//!   metadata commits; independent data writes may reorder freely.
//! * **writeback** — only metadata updates are ordered; data writes may
//!   persist in any order relative to everything else.
//! * **none** — nothing is ordered except by explicit commits (`fsync`);
//!   also used to model local file systems such as Btrfs that may reorder
//!   directory operations (Figure 2 case ③).
//!
//! Cross-file-system ordering (the `else` branch of Algorithm 2: an `fsync`
//! that happened between the two operations) is implemented in the
//! `paracrash` crate, which owns the full causality graph.

use crate::ops::{FsOp, OpClass};

/// Journaling mode of one local file system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum JournalMode {
    /// Everything persists in execution order (`data=journal`).
    #[default]
    Data,
    /// Metadata ordered; data ordered only relative to metadata that
    /// references the same file (`data=ordered`).
    Ordered,
    /// Only metadata ordered (`data=writeback`).
    Writeback,
    /// No ordering at all without explicit commits (models FSs that can
    /// reorder even directory operations).
    None,
}

impl JournalMode {
    /// Parse the mount-option spelling used in configuration files.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "data" | "journal" | "data=journal" => Some(JournalMode::Data),
            "ordered" | "data=ordered" => Some(JournalMode::Ordered),
            "writeback" | "data=writeback" => Some(JournalMode::Writeback),
            "none" => Some(JournalMode::None),
            _ => None,
        }
    }

    /// Mount-option spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            JournalMode::Data => "data=journal",
            JournalMode::Ordered => "data=ordered",
            JournalMode::Writeback => "data=writeback",
            JournalMode::None => "none",
        }
    }
}

/// Same-local-FS persistence rule of Algorithm 2.
///
/// Given two *update* operations `op1`, `op2` executed on the same local
/// file system and the fact `hb12 = happens_before(op1, op2)`, decide
/// whether the journal guarantees `op1` is persisted no later than `op2`.
///
/// Sync operations never participate (they impose ordering through the
/// cross-FS commit rule instead).
pub fn same_fs_persists_before(mode: JournalMode, op1: &FsOp, op2: &FsOp, hb12: bool) -> bool {
    if !hb12 || op1.is_sync() || op2.is_sync() {
        return false;
    }
    match mode {
        JournalMode::Data => true,
        JournalMode::Ordered => match (op1.class(), op2.class()) {
            (OpClass::Meta, OpClass::Meta) => true,
            // Data blocks are flushed before a later metadata commit that
            // references the same file.
            (OpClass::Data, OpClass::Meta) => op1.touches_same_file(op2),
            _ => false,
        },
        JournalMode::Writeback => op1.is_meta() && op2.is_meta(),
        JournalMode::None => false,
    }
}

/// A journal commit record with an end-to-end checksum, as ext4/jbd2
/// writes at the end of every transaction.
///
/// The record stores a digest of the data blocks the transaction
/// covers; recovery replays a transaction only if recomputing the
/// digest over what actually reached the disk matches. This is the
/// mechanism that makes *data journaling* torn-write-proof: a crash in
/// the middle of the journal write leaves a record whose checksum
/// fails, and replay discards the whole transaction instead of
/// exposing a partial write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitRecord {
    /// Transaction sequence number.
    pub seq: u64,
    /// Number of payload bytes the transaction covers.
    pub len: u64,
    /// Digest of the covered payload bytes.
    pub payload_digest: u64,
    /// Checksum over the record fields themselves.
    pub checksum: u64,
}

/// FNV-1a, the cheap stable digest used for commit records.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01B3);
    }
    h
}

impl CommitRecord {
    /// Size of an encoded record in bytes.
    pub const ENCODED_LEN: usize = 32;

    /// Build the record a journal commit writes for `payload`.
    pub fn new(seq: u64, payload: &[u8]) -> CommitRecord {
        let payload_digest = fnv1a(payload);
        CommitRecord {
            seq,
            len: payload.len() as u64,
            payload_digest,
            checksum: Self::mix(seq, payload.len() as u64, payload_digest),
        }
    }

    fn mix(seq: u64, len: u64, digest: u64) -> u64 {
        fnv1a(&[seq.to_le_bytes(), len.to_le_bytes(), digest.to_le_bytes()].concat())
    }

    /// `true` if the record's own checksum is intact.
    pub fn is_intact(&self) -> bool {
        self.checksum == Self::mix(self.seq, self.len, self.payload_digest)
    }

    /// `true` if the record is intact *and* covers exactly the bytes
    /// that reached the disk — the recovery-time replay gate.
    pub fn validates(&self, on_disk: &[u8]) -> bool {
        self.is_intact()
            && self.len == on_disk.len() as u64
            && self.payload_digest == fnv1a(on_disk)
    }

    /// Serialize (little-endian field order).
    pub fn encode(&self) -> [u8; Self::ENCODED_LEN] {
        let mut out = [0u8; Self::ENCODED_LEN];
        out[0..8].copy_from_slice(&self.seq.to_le_bytes());
        out[8..16].copy_from_slice(&self.len.to_le_bytes());
        out[16..24].copy_from_slice(&self.payload_digest.to_le_bytes());
        out[24..32].copy_from_slice(&self.checksum.to_le_bytes());
        out
    }

    /// Deserialize; `None` if `bytes` is not a whole record (e.g. the
    /// record itself was torn).
    pub fn decode(bytes: &[u8]) -> Option<CommitRecord> {
        if bytes.len() != Self::ENCODED_LEN {
            return None;
        }
        let f = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
        Some(CommitRecord {
            seq: f(0),
            len: f(8),
            payload_digest: f(16),
            checksum: f(24),
        })
    }
}

/// Disposition of a *crash-victim* write under torn-write injection:
/// what, if anything, of `op` reaches the disk when the crash hits
/// after `keep` payload bytes.
///
/// * Metadata operations are single-block and atomic on every mode —
///   nothing partial can persist, so the op stays a plain victim
///   (`None`).
/// * Multi-byte data writes tear: the first `keep` bytes persist
///   (`Some(truncated op)`) — **except** under data journaling, where
///   the torn transaction's [`CommitRecord`] fails validation and
///   recovery discards the whole write (`None`).
pub fn torn_write(mode: JournalMode, op: &FsOp, keep: usize) -> Option<FsOp> {
    match op {
        FsOp::Pwrite { path, offset, data } if data.len() >= 2 => {
            let keep = keep.clamp(1, data.len() - 1);
            if journaled_data_survives_torn(mode, data, keep) {
                Some(FsOp::Pwrite {
                    path: path.clone(),
                    offset: *offset,
                    data: data[..keep].to_vec(),
                })
            } else {
                None
            }
        }
        FsOp::Append { path, data } if data.len() >= 2 => {
            let keep = keep.clamp(1, data.len() - 1);
            if journaled_data_survives_torn(mode, data, keep) {
                Some(FsOp::Append {
                    path: path.clone(),
                    data: data[..keep].to_vec(),
                })
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Whether a torn data write survives to the main file area: under
/// `data=journal` the commit record's checksum catches the tear and
/// replay drops the transaction; the other modes write data in place,
/// so the prefix is simply there after the crash.
fn journaled_data_survives_torn(mode: JournalMode, full: &[u8], keep: usize) -> bool {
    match mode {
        JournalMode::Data => {
            let record = CommitRecord::new(0, full);
            // The tear hit the journal: only `keep` bytes of the
            // transaction's data made it. Validation must fail — which
            // is exactly why the op is discarded.
            debug_assert!(!record.validates(&full[..keep]));
            record.validates(&full[..keep])
        }
        JournalMode::Ordered | JournalMode::Writeback | JournalMode::None => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(path: &str) -> FsOp {
        FsOp::Append {
            path: path.into(),
            data: vec![0],
        }
    }

    fn meta(path: &str) -> FsOp {
        FsOp::Creat { path: path.into() }
    }

    #[test]
    fn data_journal_orders_everything_in_hb() {
        let (a, b) = (data("/x"), meta("/y"));
        assert!(same_fs_persists_before(JournalMode::Data, &a, &b, true));
        assert!(same_fs_persists_before(JournalMode::Data, &b, &a, true));
        assert!(!same_fs_persists_before(JournalMode::Data, &a, &b, false));
    }

    #[test]
    fn writeback_orders_only_metadata() {
        let (d1, d2) = (data("/x"), data("/y"));
        let (m1, m2) = (meta("/x"), meta("/y"));
        assert!(same_fs_persists_before(
            JournalMode::Writeback,
            &m1,
            &m2,
            true
        ));
        assert!(!same_fs_persists_before(
            JournalMode::Writeback,
            &d1,
            &d2,
            true
        ));
        assert!(!same_fs_persists_before(
            JournalMode::Writeback,
            &d1,
            &m2,
            true
        ));
        assert!(!same_fs_persists_before(
            JournalMode::Writeback,
            &m1,
            &d2,
            true
        ));
    }

    #[test]
    fn ordered_flushes_data_before_same_file_metadata() {
        let d = data("/f");
        let m_same = FsOp::Truncate {
            path: "/f".into(),
            size: 0,
        };
        let m_other = meta("/g");
        assert!(same_fs_persists_before(
            JournalMode::Ordered,
            &d,
            &m_same,
            true
        ));
        assert!(!same_fs_persists_before(
            JournalMode::Ordered,
            &d,
            &m_other,
            true
        ));
        assert!(same_fs_persists_before(
            JournalMode::Ordered,
            &m_other,
            &m_same,
            true
        ));
        assert!(!same_fs_persists_before(
            JournalMode::Ordered,
            &m_same,
            &d,
            true
        ));
        assert!(!same_fs_persists_before(
            JournalMode::Ordered,
            &data("/f"),
            &data("/f"),
            true
        ));
    }

    #[test]
    fn none_orders_nothing() {
        let (m1, m2) = (meta("/x"), meta("/y"));
        assert!(!same_fs_persists_before(JournalMode::None, &m1, &m2, true));
    }

    #[test]
    fn sync_ops_do_not_participate() {
        let s = FsOp::Fsync { path: "/f".into() };
        let m = meta("/f");
        assert!(!same_fs_persists_before(JournalMode::Data, &s, &m, true));
        assert!(!same_fs_persists_before(JournalMode::Data, &m, &s, true));
    }

    #[test]
    fn commit_record_round_trips_and_validates() {
        let payload = b"journal transaction payload bytes";
        let rec = CommitRecord::new(7, payload);
        assert!(rec.is_intact());
        assert!(rec.validates(payload));
        let decoded = CommitRecord::decode(&rec.encode()).unwrap();
        assert_eq!(decoded, rec);
        assert!(CommitRecord::decode(&rec.encode()[..16]).is_none());
    }

    #[test]
    fn commit_record_rejects_torn_payloads_and_bit_flips() {
        let payload = b"0123456789abcdef";
        let rec = CommitRecord::new(1, payload);
        // Torn data: any strict prefix fails validation.
        for keep in 1..payload.len() {
            assert!(!rec.validates(&payload[..keep]), "prefix {keep} validated");
        }
        // Same length, different content.
        assert!(!rec.validates(b"0123456789abcdeX"));
        // A corrupted record field breaks the record's own checksum.
        let mut bytes = rec.encode();
        bytes[3] ^= 0x40;
        let corrupt = CommitRecord::decode(&bytes).unwrap();
        assert!(!corrupt.is_intact());
        assert!(!corrupt.validates(payload));
    }

    #[test]
    fn torn_writes_tear_except_under_data_journaling() {
        let w = FsOp::Pwrite {
            path: "/f".into(),
            offset: 4,
            data: vec![1, 2, 3, 4, 5, 6],
        };
        // data=journal: checksum-invalid commit record -> whole op gone.
        assert_eq!(torn_write(JournalMode::Data, &w, 3), None);
        // The in-place modes expose the prefix.
        for mode in [
            JournalMode::Ordered,
            JournalMode::Writeback,
            JournalMode::None,
        ] {
            match torn_write(mode, &w, 3) {
                Some(FsOp::Pwrite { offset, data, .. }) => {
                    assert_eq!(offset, 4);
                    assert_eq!(data, vec![1, 2, 3]);
                }
                other => panic!("{mode:?}: expected torn pwrite, got {other:?}"),
            }
        }
        // keep is clamped into 1..len: a torn write is never empty and
        // never the full write.
        match torn_write(JournalMode::None, &w, 100) {
            Some(FsOp::Pwrite { data, .. }) => assert_eq!(data.len(), 5),
            other => panic!("expected clamped torn pwrite, got {other:?}"),
        }
        // Appends tear the same way.
        let a = FsOp::Append {
            path: "/f".into(),
            data: vec![9, 8, 7],
        };
        assert!(matches!(
            torn_write(JournalMode::Ordered, &a, 1),
            Some(FsOp::Append { data, .. }) if data == vec![9]
        ));
        assert_eq!(torn_write(JournalMode::Data, &a, 1), None);
    }

    #[test]
    fn metadata_and_tiny_writes_never_tear() {
        let m = FsOp::Creat { path: "/f".into() };
        assert_eq!(torn_write(JournalMode::None, &m, 1), None);
        let tiny = FsOp::Pwrite {
            path: "/f".into(),
            offset: 0,
            data: vec![1],
        };
        assert_eq!(torn_write(JournalMode::None, &tiny, 1), None);
    }

    #[test]
    fn mode_parse_roundtrip() {
        for mode in [
            JournalMode::Data,
            JournalMode::Ordered,
            JournalMode::Writeback,
            JournalMode::None,
        ] {
            assert_eq!(JournalMode::parse(mode.as_str()), Some(mode));
        }
        assert_eq!(JournalMode::parse("data"), Some(JournalMode::Data));
        assert_eq!(JournalMode::parse("bogus"), None);
    }
}
