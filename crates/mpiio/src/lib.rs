#![warn(missing_docs)]

//! # mpiio — simulated MPI-IO middleware
//!
//! The MPI-IO layer (MPICH 3.0.4 in the paper's stack, Table 2) sits
//! between the parallel I/O library and the PFS. For crash-consistency
//! analysis its essential contributions are (§4.2):
//!
//! * translating `MPI_File_*` calls into PFS client calls (open → creat,
//!   `MPI_File_write_at` → `pwrite` at an explicit offset — Figure 4);
//! * establishing **happens-before edges between ranks** through
//!   synchronization: `MPI_Barrier`, point-to-point send/recv, and the
//!   implicit synchronization of collective calls.
//!
//! Every MPI call is traced at [`Layer::MpiIo`] with a caller–callee link
//! to the I/O-library call above it and to the PFS client calls below.
//!
//! Besides the hand-written workloads, this layer is driven by the
//! fuzzer's generated MPI-IO call sequences (`workloads::generated`,
//! DESIGN.md §11): short bounded `write_at`/`sync`/`barrier`/`close`
//! programs enumerated exhaustively and replayed through the same
//! [`MpiIo`] adapter the fixed programs use.

use pfs::{ClientTrace, Pfs, PfsCall};
use tracer::{EventId, Layer, Payload, Process, Recorder};

/// The MPI-IO layer bound to a PFS instance and a trace recorder.
///
/// One `MpiIo` value represents the whole communicator; rank identity is
/// passed per call (the simulation interleaves ranks deterministically).
pub struct MpiIo<'a> {
    pfs: &'a mut dyn Pfs,
    rec: &'a mut Recorder,
    /// PFS-level calls recorded for preserved-set replay.
    trace: &'a mut ClientTrace,
}

impl<'a> MpiIo<'a> {
    /// Bind the layer to a PFS, a recorder and a PFS-call trace.
    pub fn new(pfs: &'a mut dyn Pfs, rec: &'a mut Recorder, trace: &'a mut ClientTrace) -> Self {
        MpiIo { pfs, rec, trace }
    }

    /// Access the underlying recorder.
    pub fn recorder(&mut self) -> &mut Recorder {
        self.rec
    }

    fn mpi_event(
        &mut self,
        rank: u32,
        name: &str,
        args: Vec<String>,
        parent: Option<EventId>,
    ) -> EventId {
        self.rec.record(
            Layer::MpiIo,
            Process::Client(rank),
            Payload::Call {
                name: name.into(),
                args,
            },
            parent,
        )
    }

    fn dispatch(&mut self, rank: u32, call: PfsCall, parent: EventId) -> EventId {
        // MPI-IO only issues calls against files it opened itself, so a
        // dispatch error here is a broken replay, not bad user input. The
        // checker runs replays under catch_unwind and reports the panic as
        // a diagnostic.
        let ev = self
            .pfs
            .dispatch(self.rec, Process::Client(rank), &call, Some(parent))
            .unwrap_or_else(|e| panic!("MPI-IO dispatch of {}: {e}", call.name()));
        self.trace.push(ev, Process::Client(rank), call);
        ev
    }

    /// `MPI_File_open` — collective. With `create`, rank 0 performs the
    /// PFS create; all ranks then synchronize (collective semantics).
    pub fn file_open(
        &mut self,
        ranks: &[u32],
        path: &str,
        create: bool,
        parent: Option<EventId>,
    ) -> EventId {
        let mut events = Vec::new();
        for &r in ranks {
            let mode = if create { "MODE_CREATE" } else { "MODE_RDWR" };
            events.push(self.mpi_event(r, "MPI_File_open", vec![path.into(), mode.into()], parent));
        }
        if create {
            self.dispatch(ranks[0], PfsCall::Creat { path: path.into() }, events[0]);
        }
        self.sync_edges(&events);
        events[0]
    }

    /// `MPI_File_write_at` from one rank.
    pub fn file_write_at(
        &mut self,
        rank: u32,
        path: &str,
        offset: u64,
        data: &[u8],
        parent: Option<EventId>,
    ) -> EventId {
        let ev = self.mpi_event(
            rank,
            "MPI_File_write_at",
            vec![
                path.into(),
                offset.to_string(),
                format!("len={}", data.len()),
            ],
            parent,
        );
        self.dispatch(
            rank,
            PfsCall::Pwrite {
                path: path.into(),
                offset,
                data: data.to_vec(),
            },
            ev,
        );
        ev
    }

    /// `MPI_File_sync` from one rank.
    pub fn file_sync(&mut self, rank: u32, path: &str, parent: Option<EventId>) -> EventId {
        let ev = self.mpi_event(rank, "MPI_File_sync", vec![path.into()], parent);
        self.dispatch(rank, PfsCall::Fsync { path: path.into() }, ev);
        ev
    }

    /// `MPI_File_close` — collective; rank 0 performs the PFS close.
    pub fn file_close(&mut self, ranks: &[u32], path: &str, parent: Option<EventId>) -> EventId {
        let mut events = Vec::new();
        for &r in ranks {
            events.push(self.mpi_event(r, "MPI_File_close", vec![path.into()], parent));
        }
        self.dispatch(ranks[0], PfsCall::Close { path: path.into() }, events[0]);
        self.sync_edges(&events);
        events[0]
    }

    /// `MPI_Barrier`: all-to-all happens-before among the participants.
    pub fn barrier(&mut self, ranks: &[u32], parent: Option<EventId>) -> Vec<EventId> {
        let enters: Vec<EventId> = ranks
            .iter()
            .map(|&r| {
                self.rec.record(
                    Layer::MpiIo,
                    Process::Client(r),
                    Payload::Sync {
                        name: "MPI_Barrier".into(),
                    },
                    parent,
                )
            })
            .collect();
        let exits: Vec<EventId> = ranks
            .iter()
            .map(|&r| {
                self.rec.record(
                    Layer::MpiIo,
                    Process::Client(r),
                    Payload::Sync {
                        name: "MPI_Barrier_exit".into(),
                    },
                    None,
                )
            })
            .collect();
        for &e in &enters {
            for &x in &exits {
                self.rec.add_edge(e, x);
            }
        }
        exits
    }

    /// Point-to-point `MPI_Send` / `MPI_Recv` pair.
    pub fn send_recv(
        &mut self,
        from: u32,
        to: u32,
        tag: &str,
        parent: Option<EventId>,
    ) -> (EventId, EventId) {
        let s = self.rec.record(
            Layer::MpiIo,
            Process::Client(from),
            Payload::Send {
                to: Process::Client(to),
                msg: tag.to_string(),
            },
            parent,
        );
        let r = self.rec.record(
            Layer::MpiIo,
            Process::Client(to),
            Payload::Recv {
                from: Process::Client(from),
                msg: tag.to_string(),
            },
            None,
        );
        self.rec.add_edge(s, r);
        (s, r)
    }

    /// Collective synchronization: every listed event happens before a
    /// shared completion point (modelled as mutual edges).
    fn sync_edges(&mut self, events: &[EventId]) {
        if events.len() < 2 {
            return;
        }
        // All-to-all via the earliest event as hub exit would create
        // backward edges; instead add a fresh completion event per rank.
        let exits: Vec<EventId> = events
            .iter()
            .map(|&e| {
                let proc = self.rec.event(e).proc;
                self.rec.record(
                    Layer::MpiIo,
                    proc,
                    Payload::Sync {
                        name: "collective_complete".into(),
                    },
                    None,
                )
            })
            .collect();
        for &e in events {
            for &x in &exits {
                self.rec.add_edge(e, x);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfs::beegfs::BeeGfs;
    use tracer::CausalityGraph;

    #[test]
    fn write_at_lowers_to_pfs_pwrite() {
        let mut fs = BeeGfs::paper_default();
        let mut rec = Recorder::new();
        let mut trace = ClientTrace::new();
        let mut mpi = MpiIo::new(&mut fs, &mut rec, &mut trace);
        mpi.file_open(&[0, 1], "/out.h5", true, None);
        mpi.file_write_at(0, "/out.h5", 0, b"head", None);
        mpi.file_close(&[0, 1], "/out.h5", None);
        assert!(trace
            .entries()
            .iter()
            .any(|(_, _, c)| matches!(c, PfsCall::Pwrite { offset: 0, .. })));
        let view = fs.client_view(fs.live());
        assert_eq!(view.read("/out.h5"), Some(&b"head"[..]));
    }

    #[test]
    fn barrier_orders_cross_rank_writes() {
        let mut fs = BeeGfs::paper_default();
        let mut rec = Recorder::new();
        let mut trace = ClientTrace::new();
        let mut mpi = MpiIo::new(&mut fs, &mut rec, &mut trace);
        mpi.file_open(&[0, 1], "/f", true, None);
        let w0 = mpi.file_write_at(0, "/f", 0, b"a", None);
        mpi.barrier(&[0, 1], None);
        let w1 = mpi.file_write_at(1, "/f", 1, b"b", None);
        let g = CausalityGraph::build(&rec);
        assert!(
            g.happens_before(w0, w1),
            "barrier must order rank 0 before rank 1"
        );
    }

    #[test]
    fn concurrent_writes_without_barrier() {
        let mut fs = BeeGfs::paper_default();
        let mut rec = Recorder::new();
        let mut trace = ClientTrace::new();
        let mut mpi = MpiIo::new(&mut fs, &mut rec, &mut trace);
        mpi.file_open(&[0, 1], "/f", true, None);
        let w0 = mpi.file_write_at(0, "/f", 0, b"a", None);
        let w1 = mpi.file_write_at(1, "/f", 1, b"b", None);
        let g = CausalityGraph::build(&rec);
        // Both causally follow the collective open, but not each other.
        assert!(g.concurrent(w0, w1));
    }

    #[test]
    fn send_recv_orders_ranks() {
        let mut fs = BeeGfs::paper_default();
        let mut rec = Recorder::new();
        let mut trace = ClientTrace::new();
        let mut mpi = MpiIo::new(&mut fs, &mut rec, &mut trace);
        mpi.file_open(&[0, 1], "/f", true, None);
        let w0 = mpi.file_write_at(0, "/f", 0, b"a", None);
        mpi.send_recv(0, 1, "token", None);
        let w1 = mpi.file_write_at(1, "/f", 1, b"b", None);
        let g = CausalityGraph::build(&rec);
        assert!(g.happens_before(w0, w1));
    }

    #[test]
    fn collective_open_synchronizes_all_ranks() {
        let mut fs = BeeGfs::paper_default();
        let mut rec = Recorder::new();
        let mut trace = ClientTrace::new();
        let mut mpi = MpiIo::new(&mut fs, &mut rec, &mut trace);
        let open_ev = mpi.file_open(&[0, 1, 2], "/f", true, None);
        let w2 = mpi.file_write_at(2, "/f", 0, b"z", None);
        let g = CausalityGraph::build(&rec);
        // Rank 2's write follows the collective open (and hence rank 0's
        // create) even though rank 2 issued no create itself.
        assert!(g.happens_before(open_ev, w2));
    }

    #[test]
    fn reopen_without_create_issues_no_pfs_calls() {
        let mut fs = BeeGfs::paper_default();
        let mut rec = Recorder::new();
        let mut trace = ClientTrace::new();
        {
            let mut mpi = MpiIo::new(&mut fs, &mut rec, &mut trace);
            mpi.file_open(&[0, 1], "/pre", true, None);
        }
        let before = trace.len();
        {
            let mut mpi = MpiIo::new(&mut fs, &mut rec, &mut trace);
            mpi.file_open(&[0, 1], "/pre", false, None);
        }
        assert_eq!(trace.len(), before, "reopen must not create");
    }

    #[test]
    fn collective_close_follows_every_rank() {
        let mut fs = BeeGfs::paper_default();
        let mut rec = Recorder::new();
        let mut trace = ClientTrace::new();
        let mut mpi = MpiIo::new(&mut fs, &mut rec, &mut trace);
        mpi.file_open(&[0, 1], "/f", true, None);
        let w1 = mpi.file_write_at(1, "/f", 0, b"a", None);
        mpi.file_close(&[0, 1], "/f", None);
        // Anything rank 0 does after the collective close is causally
        // after rank 1's pre-close write.
        let after = mpi.file_write_at(0, "/f", 1, b"b", None);
        let g = CausalityGraph::build(&rec);
        assert!(g.happens_before(w1, after));
    }

    #[test]
    fn barriers_chain_transitively() {
        let mut fs = BeeGfs::paper_default();
        let mut rec = Recorder::new();
        let mut trace = ClientTrace::new();
        let mut mpi = MpiIo::new(&mut fs, &mut rec, &mut trace);
        mpi.file_open(&[0, 1, 2], "/f", true, None);
        let w0 = mpi.file_write_at(0, "/f", 0, b"a", None);
        mpi.barrier(&[0, 1], None);
        let w1 = mpi.file_write_at(1, "/f", 1, b"b", None);
        mpi.barrier(&[1, 2], None);
        let w2 = mpi.file_write_at(2, "/f", 2, b"c", None);
        let g = CausalityGraph::build(&rec);
        assert!(g.happens_before(w0, w1));
        assert!(g.happens_before(w1, w2));
        assert!(g.happens_before(w0, w2), "barrier chains compose");
    }

    #[test]
    fn file_sync_lowers_to_pfs_fsync() {
        let mut fs = BeeGfs::paper_default();
        let mut rec = Recorder::new();
        let mut trace = ClientTrace::new();
        let mut mpi = MpiIo::new(&mut fs, &mut rec, &mut trace);
        mpi.file_open(&[0], "/f", true, None);
        mpi.file_write_at(0, "/f", 0, b"x", None);
        mpi.file_sync(0, "/f", None);
        assert!(rec.events().iter().any(|e| e.payload.is_storage_sync()));
    }
}
