//! BeeGFS model.
//!
//! BeeGFS (Table 2: v7.1.2, `tuneRemoteFSync`) runs dedicated metadata
//! servers and storage servers over ext4. Its metadata scheme — traced by
//! the paper in Figure 2 — stores, per directory, a *dentries directory*
//! whose entries are **hard links to idfiles**; file attributes live in
//! extended attributes; file data lives in per-stripe *chunk files* on the
//! storage servers.
//!
//! Crucially for crash consistency, BeeGFS issues **no fsyncs** on its
//! metadata path: metadata updates on one server persist in journal order
//! (ext4 data journaling in the paper's setup), but nothing orders
//! persistence *across* servers. That is the mechanism behind Table 3
//! bugs 1, 2, 4, 5, 6, 7 and 8.
//!
//! Per-server layout used by this model:
//!
//! ```text
//! metadata server:  /dentries/<dirkey>/<name>   hard link to the idfile
//!                                               (or dir marker with
//!                                               user.dirkey xattr)
//!                   /idfiles/<id>               xattrs: user.info, user.size
//!                   /inodes/<dirkey>            directory inode (xattrs)
//! storage server:   /chunks/<id>.<stripe>       one chunk file per stripe
//! ```

use crate::call::PfsCall;
use crate::error::{PfsError, PfsResult};
use crate::placement::Placement;
use crate::store::ServerStates;
use crate::view::{PfsView, RecoveryReport};
use crate::Pfs;
use simfs::{FsOp, FsState, JournalMode};
use simnet::{ClusterTopology, FaultConfig, FaultPlane, RpcNet};
use std::collections::BTreeMap;
use tracer::{EventId, Layer, Payload, Process, Recorder};

/// Runtime info for a directory.
#[derive(Debug, Clone)]
struct DirInfo {
    key: String,
    /// Index into the metadata-server list.
    owner: usize,
}

/// Runtime info for a regular file.
#[derive(Debug, Clone)]
struct FileInfo {
    id: String,
    /// Index into the storage-server list of the first stripe.
    first: usize,
    size: u64,
    /// stripe number → current chunk length.
    chunks: BTreeMap<u64, u64>,
}

/// The BeeGFS model. See the module docs for the layout.
pub struct BeeGfs {
    topo: ClusterTopology,
    placement: Placement,
    stripe: u64,
    journal: JournalMode,
    live: ServerStates,
    baseline: ServerStates,
    dirs: BTreeMap<String, DirInfo>,
    files: BTreeMap<String, FileInfo>,
    next_id: u64,
    faults: FaultPlane,
}

impl BeeGfs {
    /// Create a formatted BeeGFS instance (the `mkfs` + mount step; not
    /// traced). The paper's default: 2 metadata + 2 storage servers,
    /// 128 KiB stripes, ext4 in data-journaling mode underneath.
    pub fn new(topo: ClusterTopology, placement: Placement, stripe: u64) -> Self {
        Self::with_journal(topo, placement, stripe, JournalMode::Data)
    }

    /// Same, with an explicit local-FS journaling mode (the writeback /
    /// none modes model weaker local file systems, Figure 2 case ③).
    pub fn with_journal(
        topo: ClusterTopology,
        placement: Placement,
        stripe: u64,
        journal: JournalMode,
    ) -> Self {
        let mut live = ServerStates::all_fs(topo.server_count(), journal);
        // mkfs: base directories on every server.
        for &m in &topo.metadata_servers() {
            let fs = live.server_mut(m).as_fs_mut();
            fs.mkdir_all("/dentries").unwrap();
            fs.mkdir_all("/idfiles").unwrap();
            fs.mkdir_all("/inodes").unwrap();
        }
        for &s in &topo.storage_servers() {
            live.server_mut(s).as_fs_mut().mkdir_all("/chunks").unwrap();
        }
        let mut dirs = BTreeMap::new();
        let root_owner = placement.dir_index("/", topo.metadata_servers().len());
        dirs.insert(
            "/".to_string(),
            DirInfo {
                key: "root".into(),
                owner: root_owner,
            },
        );
        let root_meta = topo.metadata_servers()[root_owner];
        let fs = live.server_mut(root_meta).as_fs_mut();
        fs.mkdir_all("/dentries/root").unwrap();
        fs.creat("/inodes/root").unwrap();
        let baseline = live.fork();
        BeeGfs {
            topo,
            placement,
            stripe,
            journal,
            live,
            baseline,
            dirs,
            files: BTreeMap::new(),
            next_id: 0,
            faults: FaultPlane::disabled(),
        }
    }

    /// The journaling mode of the servers' local file systems.
    pub fn journal_mode(&self) -> JournalMode {
        self.journal
    }

    /// The paper's default configuration.
    pub fn paper_default() -> Self {
        BeeGfs::new(
            ClusterTopology::paper_dedicated_default(),
            Placement::new(),
            128 * 1024,
        )
    }

    fn meta_server(&self, idx: usize) -> u32 {
        self.topo.metadata_servers()[idx]
    }

    fn storage_server(&self, idx: usize) -> u32 {
        self.topo.storage_servers()[idx]
    }

    fn n_meta(&self) -> usize {
        self.topo.metadata_servers().len()
    }

    fn n_storage(&self) -> usize {
        self.topo.storage_servers().len()
    }

    fn parent_of(path: &str) -> String {
        match path.rfind('/') {
            Some(0) => "/".to_string(),
            Some(i) => path[..i].to_string(),
            None => "/".to_string(),
        }
    }

    fn name_of(path: &str) -> &str {
        path.rsplit('/').next().unwrap_or(path)
    }

    /// Apply a lowermost op to the live state and record it.
    fn emit(
        &mut self,
        rec: &mut Recorder,
        server: u32,
        op: FsOp,
        parent: Option<EventId>,
    ) -> EventId {
        self.live.server_mut(server).apply_fs(&op);
        rec.record(
            Layer::LocalFs,
            Process::Server(server),
            Payload::Fs { server, op },
            parent,
        )
    }

    fn dentry_path(&self, dirkey: &str, name: &str) -> String {
        format!("/dentries/{dirkey}/{name}")
    }

    fn idfile_path(id: &str) -> String {
        format!("/idfiles/{id}")
    }

    fn chunk_path(id: &str, stripe: u64) -> String {
        format!("/chunks/{id}.{stripe}")
    }

    fn dir_info(&self, path: &str) -> PfsResult<&DirInfo> {
        self.dirs
            .get(path)
            .ok_or_else(|| PfsError::UnknownPath(path.to_string()))
    }

    fn file_info(&self, path: &str) -> PfsResult<&FileInfo> {
        self.files
            .get(path)
            .ok_or_else(|| PfsError::UnknownPath(path.to_string()))
    }

    fn file_mut(&mut self, path: &str) -> &mut FileInfo {
        self.files
            .get_mut(path)
            .expect("invariant: file checked present earlier in this call")
    }

    /// RPC net routed through this instance's fault plane.
    fn net<'a>(&'a mut self, rec: &'a mut Recorder) -> RpcNet<'a> {
        RpcNet::faulty(rec, &mut self.faults)
    }

    fn do_creat(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        path: &str,
        cev: EventId,
    ) -> PfsResult<()> {
        let parent_dir = Self::parent_of(path);
        let name = Self::name_of(path).to_string();
        let pinfo = self.dir_info(&parent_dir)?.clone();
        let meta = self.meta_server(pinfo.owner);
        let id = format!("f{}", self.next_id);
        self.next_id += 1;
        let first = self.placement.file_index(path, self.n_storage());

        // Figure 2: creat(idfile); link(idfile, dentries/<name>);
        // setxattr(dir_inode) on the metadata server, driven by an RPC
        // from the client.
        let (_, recv) = self.net(rec).request(
            client,
            Process::Server(meta),
            &format!("CREAT {path}"),
            Some(cev),
        );
        let idf = Self::idfile_path(&id);
        let e1 = self.emit(rec, meta, FsOp::Creat { path: idf.clone() }, Some(recv));
        self.emit(
            rec,
            meta,
            FsOp::SetXattr {
                path: idf.clone(),
                key: "user.info".into(),
                value: format!("id={id};first={first}").into_bytes(),
            },
            Some(e1),
        );
        self.emit(
            rec,
            meta,
            FsOp::Link {
                src: idf,
                dst: self.dentry_path(&pinfo.key, &name),
            },
            Some(recv),
        );
        let w = self.emit(
            rec,
            meta,
            FsOp::SetXattr {
                path: format!("/inodes/{}", pinfo.key),
                key: "user.mtime".into(),
                value: b"t".to_vec(),
            },
            Some(recv),
        );
        self.net(rec)
            .reply(Process::Server(meta), client, "OK", Some(w));

        self.files.insert(
            path.to_string(),
            FileInfo {
                id,
                first,
                size: 0,
                chunks: BTreeMap::new(),
            },
        );
        Ok(())
    }

    fn do_mkdir(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        path: &str,
        cev: EventId,
    ) -> PfsResult<()> {
        let parent_dir = Self::parent_of(path);
        let name = Self::name_of(path).to_string();
        let pinfo = self.dir_info(&parent_dir)?.clone();
        let key = format!("d{}", self.next_id);
        self.next_id += 1;
        let owner = self.placement.dir_index(path, self.n_meta());
        let pmeta = self.meta_server(pinfo.owner);
        let ometa = self.meta_server(owner);

        // Dentry on the parent's owner.
        let (_, recv) = self.net(rec).request(
            client,
            Process::Server(pmeta),
            &format!("MKDIR {path}"),
            Some(cev),
        );
        let dentry = self.dentry_path(&pinfo.key, &name);
        let e = self.emit(
            rec,
            pmeta,
            FsOp::Creat {
                path: dentry.clone(),
            },
            Some(recv),
        );
        self.emit(
            rec,
            pmeta,
            FsOp::SetXattr {
                path: dentry,
                key: "user.dirkey".into(),
                value: format!("{key}:{owner}").into_bytes(),
            },
            Some(e),
        );
        let w = self.emit(
            rec,
            pmeta,
            FsOp::SetXattr {
                path: format!("/inodes/{}", pinfo.key),
                key: "user.mtime".into(),
                value: b"t".to_vec(),
            },
            Some(recv),
        );
        self.net(rec)
            .reply(Process::Server(pmeta), client, "OK", Some(w));

        // Dentries dir + inode on the new directory's owner.
        let (_, recv2) = self.net(rec).request(
            client,
            Process::Server(ometa),
            &format!("MKDIR-OBJ {key}"),
            Some(cev),
        );
        self.emit(
            rec,
            ometa,
            FsOp::Mkdir {
                path: format!("/dentries/{key}"),
            },
            Some(recv2),
        );
        let w2 = self.emit(
            rec,
            ometa,
            FsOp::Creat {
                path: format!("/inodes/{key}"),
            },
            Some(recv2),
        );
        self.net(rec)
            .reply(Process::Server(ometa), client, "OK", Some(w2));

        self.dirs.insert(path.to_string(), DirInfo { key, owner });
        Ok(())
    }

    fn do_pwrite(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        path: &str,
        offset: u64,
        data: &[u8],
        cev: EventId,
    ) -> PfsResult<()> {
        let info = self.file_info(path)?.clone();
        let n_storage = self.n_storage();
        let parent_dir = Self::parent_of(path);
        let meta_owner = self.dir_info(&parent_dir)?.owner;
        let meta = self.meta_server(meta_owner);

        let mut segs = Vec::new();
        {
            // Round-robin from the file's recorded first stripe target.
            let mut off = offset;
            let end = offset + data.len() as u64;
            while off < end {
                let stripe = off / self.stripe;
                let stripe_end = (stripe + 1) * self.stripe;
                let len = stripe_end.min(end) - off;
                let sidx = (info.first + stripe as usize) % n_storage;
                segs.push((sidx, stripe, off, len));
                off += len;
            }
        }

        let mut touched_servers = Vec::new();
        for (sidx, stripe, off, len) in segs {
            let storage = self.storage_server(sidx);
            let (_, recv) = self.net(rec).request(
                client,
                Process::Server(storage),
                &format!("WRITE {path} stripe {stripe}"),
                Some(cev),
            );
            let chunk = Self::chunk_path(&info.id, stripe);
            let chunk_off = off - stripe * self.stripe;
            let cur_len = self
                .files
                .get(path)
                .and_then(|f| f.chunks.get(&stripe))
                .copied();
            if cur_len.is_none() {
                self.emit(
                    rec,
                    storage,
                    FsOp::Creat {
                        path: chunk.clone(),
                    },
                    Some(recv),
                );
                self.file_mut(path).chunks.insert(stripe, 0);
            }
            let cur_len = self.file_mut(path).chunks[&stripe];
            let buf = data[(off - offset) as usize..(off - offset + len) as usize].to_vec();
            let op = if chunk_off == cur_len {
                FsOp::Append {
                    path: chunk.clone(),
                    data: buf,
                }
            } else {
                FsOp::Pwrite {
                    path: chunk.clone(),
                    offset: chunk_off,
                    data: buf,
                }
            };
            let w = self.emit(rec, storage, op, Some(recv));
            let f = self.file_mut(path);
            let new_len = (chunk_off + len).max(cur_len);
            f.chunks.insert(stripe, new_len);
            // Ack to the client: the write call returns before the next
            // client operation runs.
            self.net(rec)
                .reply(Process::Server(storage), client, "OK", Some(w));
            touched_servers.push(storage);
        }

        // Size update on the metadata server, sent by the storage side
        // (Figure 2: storage `sendto(meta-node)`, meta `setxattr(idfile)`,
        // acknowledged before the write call returns).
        let f = self.file_mut(path);
        f.size = f.size.max(offset + data.len() as u64);
        let new_size = f.size;
        let idf = Self::idfile_path(&info.id);
        if let Some(&storage) = touched_servers.last() {
            let (_, recv) = self.net(rec).message(
                Process::Server(storage),
                Process::Server(meta),
                &format!("SIZE {path}"),
                Some(cev),
            );
            let w = self.emit(
                rec,
                meta,
                FsOp::SetXattr {
                    path: idf,
                    key: "user.size".into(),
                    value: new_size.to_string().into_bytes(),
                },
                Some(recv),
            );
            self.net(rec)
                .reply(Process::Server(meta), client, "SIZE-OK", Some(w));
        }
        Ok(())
    }

    fn do_rename(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        src: &str,
        dst: &str,
        cev: EventId,
    ) -> PfsResult<()> {
        if self.dirs.contains_key(src) {
            self.rename_dir(rec, client, src, dst, cev)
        } else {
            self.rename_file(rec, client, src, dst, cev)
        }
    }

    fn rename_dir(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        src: &str,
        dst: &str,
        cev: EventId,
    ) -> PfsResult<()> {
        let sparent = Self::parent_of(src);
        let dparent = Self::parent_of(dst);
        let spinfo = self.dir_info(&sparent)?.clone();
        let dpinfo = self.dir_info(&dparent)?.clone();
        if spinfo.key != dpinfo.key {
            // The model only traces directory renames within one parent.
            return Err(PfsError::BadCall(format!(
                "directory rename across parents: {src} -> {dst}"
            )));
        }
        let meta = self.meta_server(spinfo.owner);
        let (_, recv) = self.net(rec).request(
            client,
            Process::Server(meta),
            &format!("RENAME {src} {dst}"),
            Some(cev),
        );
        self.emit(
            rec,
            meta,
            FsOp::Rename {
                src: self.dentry_path(&spinfo.key, Self::name_of(src)),
                dst: self.dentry_path(&dpinfo.key, Self::name_of(dst)),
            },
            Some(recv),
        );
        let w = self.emit(
            rec,
            meta,
            FsOp::SetXattr {
                path: format!("/inodes/{}", spinfo.key),
                key: "user.mtime".into(),
                value: b"t".to_vec(),
            },
            Some(recv),
        );
        self.net(rec)
            .reply(Process::Server(meta), client, "OK", Some(w));

        // Runtime rebookkeeping: every path under src moves to dst.
        let rewrite = |map_keys: Vec<String>| -> Vec<(String, String)> {
            map_keys
                .into_iter()
                .filter(|k| k == src || k.starts_with(&format!("{src}/")))
                .map(|k| {
                    let new = format!("{dst}{}", &k[src.len()..]);
                    (k, new)
                })
                .collect()
        };
        for (old, new) in rewrite(self.dirs.keys().cloned().collect()) {
            let v = self
                .dirs
                .remove(&old)
                .expect("invariant: key came from this map");
            self.dirs.insert(new, v);
        }
        for (old, new) in rewrite(self.files.keys().cloned().collect()) {
            let v = self
                .files
                .remove(&old)
                .expect("invariant: key came from this map");
            self.files.insert(new, v);
        }
        Ok(())
    }

    fn rename_file(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        src: &str,
        dst: &str,
        cev: EventId,
    ) -> PfsResult<()> {
        let sparent = Self::parent_of(src);
        let dparent = Self::parent_of(dst);
        let spinfo = self.dir_info(&sparent)?.clone();
        let dpinfo = self.dir_info(&dparent)?.clone();
        let sinfo = self.file_info(src)?.clone();
        let overwritten = self.files.get(dst).cloned();

        let smeta = self.meta_server(spinfo.owner);
        if spinfo.owner == dpinfo.owner {
            let (_, recv) = self.net(rec).request(
                client,
                Process::Server(smeta),
                &format!("RENAME {src} {dst}"),
                Some(cev),
            );
            if spinfo.key == dpinfo.key {
                // Same directory: one atomic local rename
                // (Figure 2: rename(dentries/tmp, dentries/file)).
                self.emit(
                    rec,
                    smeta,
                    FsOp::Rename {
                        src: self.dentry_path(&spinfo.key, Self::name_of(src)),
                        dst: self.dentry_path(&dpinfo.key, Self::name_of(dst)),
                    },
                    Some(recv),
                );
            } else {
                // Cross-directory: BeeGFS dentries are hard links, so the
                // move decomposes into link(new) + unlink(old) — the
                // non-atomic pair behind Table 3 bug 4.
                self.emit(
                    rec,
                    smeta,
                    FsOp::Link {
                        src: self.dentry_path(&spinfo.key, Self::name_of(src)),
                        dst: self.dentry_path(&dpinfo.key, Self::name_of(dst)),
                    },
                    Some(recv),
                );
                self.emit(
                    rec,
                    smeta,
                    FsOp::Unlink {
                        path: self.dentry_path(&spinfo.key, Self::name_of(src)),
                    },
                    Some(recv),
                );
            }
            self.emit(
                rec,
                smeta,
                FsOp::SetXattr {
                    path: format!("/inodes/{}", dpinfo.key),
                    key: "user.mtime".into(),
                    value: b"t".to_vec(),
                },
                Some(recv),
            );
            if let Some(old) = &overwritten {
                // Figure 2: unlink(old-idfile) on the metadata server.
                self.emit(
                    rec,
                    smeta,
                    FsOp::Unlink {
                        path: Self::idfile_path(&old.id),
                    },
                    Some(recv),
                );
            }
            let w = self.emit(
                rec,
                smeta,
                FsOp::SetXattr {
                    path: Self::idfile_path(&sinfo.id),
                    key: "user.ctime".into(),
                    value: b"t".to_vec(),
                },
                Some(recv),
            );
            let reply_parent = recv;
            self.net(rec)
                .reply(Process::Server(smeta), client, "OK", Some(w));

            // Asynchronous chunk cleanup of the overwritten file
            // (Figure 2: meta `sendto(storage)`, storage
            // `unlink(old-chunk)` — no ack).
            if let Some(old) = &overwritten {
                self.unlink_chunks(rec, smeta, old, Some(reply_parent));
            }
        } else {
            // Cross-metadata-server move: new idfile + dentry on the
            // destination owner, removal on the source owner.
            let dmeta = self.meta_server(dpinfo.owner);
            let (_, recv) = self.net(rec).request(
                client,
                Process::Server(dmeta),
                &format!("RENAME-IN {dst}"),
                Some(cev),
            );
            let idf = Self::idfile_path(&sinfo.id);
            let e = self.emit(rec, dmeta, FsOp::Creat { path: idf.clone() }, Some(recv));
            self.emit(
                rec,
                dmeta,
                FsOp::SetXattr {
                    path: idf.clone(),
                    key: "user.info".into(),
                    value: format!("id={};first={}", sinfo.id, sinfo.first).into_bytes(),
                },
                Some(e),
            );
            self.emit(
                rec,
                dmeta,
                FsOp::SetXattr {
                    path: idf.clone(),
                    key: "user.size".into(),
                    value: sinfo.size.to_string().into_bytes(),
                },
                Some(e),
            );
            let link_dst = self.dentry_path(&dpinfo.key, Self::name_of(dst));
            let w = self.emit(
                rec,
                dmeta,
                FsOp::Link {
                    src: idf,
                    dst: link_dst,
                },
                Some(recv),
            );
            self.net(rec)
                .reply(Process::Server(dmeta), client, "OK", Some(w));

            let (_, recv2) = self.net(rec).request(
                client,
                Process::Server(smeta),
                &format!("RENAME-OUT {src}"),
                Some(cev),
            );
            self.emit(
                rec,
                smeta,
                FsOp::Unlink {
                    path: self.dentry_path(&spinfo.key, Self::name_of(src)),
                },
                Some(recv2),
            );
            let w2 = self.emit(
                rec,
                smeta,
                FsOp::Unlink {
                    path: Self::idfile_path(&sinfo.id),
                },
                Some(recv2),
            );
            self.net(rec)
                .reply(Process::Server(smeta), client, "OK", Some(w2));

            if let Some(old) = &overwritten {
                self.unlink_chunks(rec, dmeta, old, None);
            }
        }

        self.files.remove(src);
        self.files.insert(dst.to_string(), sinfo);
        Ok(())
    }

    /// Asynchronous chunk removal for a deleted/overwritten file.
    fn unlink_chunks(
        &mut self,
        rec: &mut Recorder,
        meta: u32,
        info: &FileInfo,
        parent: Option<EventId>,
    ) {
        let stripes: Vec<u64> = info.chunks.keys().copied().collect();
        let n_storage = self.n_storage();
        for stripe in stripes {
            let sidx = (info.first + stripe as usize) % n_storage;
            let storage = self.storage_server(sidx);
            let (send, recv) = self.net(rec).message(
                Process::Server(meta),
                Process::Server(storage),
                &format!("UNLINK-CHUNK {}.{stripe}", info.id),
                parent,
            );
            let _ = send;
            self.emit(
                rec,
                storage,
                FsOp::Unlink {
                    path: Self::chunk_path(&info.id, stripe),
                },
                Some(recv),
            );
        }
    }

    fn do_unlink(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        path: &str,
        cev: EventId,
    ) -> PfsResult<()> {
        let parent_dir = Self::parent_of(path);
        let pinfo = self.dir_info(&parent_dir)?.clone();
        let info = self.file_info(path)?.clone();
        let meta = self.meta_server(pinfo.owner);
        let (_, recv) = self.net(rec).request(
            client,
            Process::Server(meta),
            &format!("UNLINK {path}"),
            Some(cev),
        );
        self.emit(
            rec,
            meta,
            FsOp::Unlink {
                path: self.dentry_path(&pinfo.key, Self::name_of(path)),
            },
            Some(recv),
        );
        self.emit(
            rec,
            meta,
            FsOp::Unlink {
                path: Self::idfile_path(&info.id),
            },
            Some(recv),
        );
        let w = self.emit(
            rec,
            meta,
            FsOp::SetXattr {
                path: format!("/inodes/{}", pinfo.key),
                key: "user.mtime".into(),
                value: b"t".to_vec(),
            },
            Some(recv),
        );
        let reply_parent = recv;
        self.net(rec)
            .reply(Process::Server(meta), client, "OK", Some(w));
        self.unlink_chunks(rec, meta, &info, Some(reply_parent));
        self.files.remove(path);
        Ok(())
    }

    fn do_fsync(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        path: &str,
        cev: EventId,
    ) -> PfsResult<()> {
        // tuneRemoteFSync: the client fsync is forwarded to every server
        // holding a piece of the file.
        let Some(info) = self.files.get(path).cloned() else {
            return Ok(());
        };
        let n_storage = self.n_storage();
        for &stripe in info.chunks.keys() {
            let storage = self.storage_server((info.first + stripe as usize) % n_storage);
            let (_, recv) = self.net(rec).request(
                client,
                Process::Server(storage),
                &format!("FSYNC {path} stripe {stripe}"),
                Some(cev),
            );
            let w = self.emit(
                rec,
                storage,
                FsOp::Fsync {
                    path: Self::chunk_path(&info.id, stripe),
                },
                Some(recv),
            );
            self.net(rec)
                .reply(Process::Server(storage), client, "OK", Some(w));
        }
        let parent_dir = Self::parent_of(path);
        let meta = self.meta_server(self.dir_info(&parent_dir)?.owner);
        let (_, recv) = self.net(rec).request(
            client,
            Process::Server(meta),
            &format!("FSYNC-META {path}"),
            Some(cev),
        );
        let w = self.emit(
            rec,
            meta,
            FsOp::Fsync {
                path: Self::idfile_path(&info.id),
            },
            Some(recv),
        );
        self.net(rec)
            .reply(Process::Server(meta), client, "OK", Some(w));
        Ok(())
    }

    /// Walk one directory (by key/owner) of a crashed-or-live state.
    fn walk_dir(
        &self,
        states: &ServerStates,
        key: &str,
        owner: usize,
        vpath: &str,
        view: &mut PfsView,
    ) {
        let meta = self.meta_server(owner);
        let fs = states.server(meta).as_fs();
        let dent_dir = format!("/dentries/{key}");
        let Ok(names) = fs.readdir(&dent_dir) else {
            return;
        };
        for name in names {
            let dentry = format!("{dent_dir}/{name}");
            let child_vpath = if vpath == "/" {
                format!("/{name}")
            } else {
                format!("{vpath}/{name}")
            };
            if let Ok(dk) = fs.getxattr(&dentry, "user.dirkey") {
                // Subdirectory.
                let spec = String::from_utf8_lossy(dk);
                let (ckey, cowner) = spec.split_once(':').unwrap_or(("?", "0"));
                let cowner: usize = cowner.parse().unwrap_or(0);
                view.add_dir(child_vpath.clone());
                self.walk_dir(states, ckey, cowner, &child_vpath, view);
            } else {
                // Regular file: the dentry is a hard link to the idfile.
                self.read_file(states, fs, &dentry, &child_vpath, view);
            }
        }
    }

    fn read_file(
        &self,
        states: &ServerStates,
        meta_fs: &FsState,
        dentry: &str,
        vpath: &str,
        view: &mut PfsView,
    ) {
        let Ok(info) = meta_fs.getxattr(dentry, "user.info") else {
            // idfile attributes never persisted: file exists but cannot
            // be resolved to chunks.
            view.add_damaged_file(vpath);
            return;
        };
        let info = String::from_utf8_lossy(info).to_string();
        let mut id = String::new();
        let mut first = 0usize;
        for part in info.split(';') {
            if let Some(v) = part.strip_prefix("id=") {
                id = v.to_string();
            } else if let Some(v) = part.strip_prefix("first=") {
                first = v.parse().unwrap_or(0);
            }
        }
        // File content is whatever the chunk files hold, concatenated in
        // stripe order until the first gap (the stripe count is implied
        // by the chunks themselves; a never-written file reads as empty,
        // a file whose chunks were lost reads short or empty — exactly
        // what the application would observe).
        let n_storage = self.n_storage();
        let mut content = Vec::new();
        for stripe in 0.. {
            let storage = self.storage_server((first + stripe as usize) % n_storage);
            let chunk = Self::chunk_path(&id, stripe);
            match states.server(storage).as_fs().read(&chunk) {
                Ok(data) => content.extend_from_slice(data),
                Err(_) => break,
            }
        }
        view.add_file(vpath, content);
    }
}

impl Pfs for BeeGfs {
    fn name(&self) -> &'static str {
        "BeeGFS"
    }

    fn topology(&self) -> &ClusterTopology {
        &self.topo
    }

    fn stripe_size(&self) -> u64 {
        self.stripe
    }

    fn dispatch(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        call: &PfsCall,
        parent: Option<EventId>,
    ) -> PfsResult<EventId> {
        let cev = rec.record(
            Layer::PfsClient,
            client,
            Payload::Call {
                name: call.name().into(),
                args: call.args(),
            },
            parent,
        );
        match call {
            PfsCall::Creat { path } => self.do_creat(rec, client, path, cev)?,
            PfsCall::Mkdir { path } => self.do_mkdir(rec, client, path, cev)?,
            PfsCall::Pwrite { path, offset, data } => {
                self.do_pwrite(rec, client, path, *offset, data, cev)?
            }
            PfsCall::Rename { src, dst } => self.do_rename(rec, client, src, dst, cev)?,
            PfsCall::Unlink { path } => self.do_unlink(rec, client, path, cev)?,
            PfsCall::Rmdir { path } => {
                // Dentry removal on the parent's owner; object cleanup is
                // lazy (not modelled — none of the test programs need it).
                let parent_dir = Self::parent_of(path);
                let pinfo = self.dir_info(&parent_dir)?.clone();
                let meta = self.meta_server(pinfo.owner);
                let (_, recv) = self.net(rec).request(
                    client,
                    Process::Server(meta),
                    &format!("RMDIR {path}"),
                    Some(cev),
                );
                let w = self.emit(
                    rec,
                    meta,
                    FsOp::Unlink {
                        path: self.dentry_path(&pinfo.key, Self::name_of(path)),
                    },
                    Some(recv),
                );
                self.net(rec)
                    .reply(Process::Server(meta), client, "OK", Some(w));
                self.dirs.remove(path);
            }
            PfsCall::Close { .. } => {
                // Client-side handle release only; BeeGFS flushes nothing.
            }
            PfsCall::Fsync { path } => self.do_fsync(rec, client, path, cev)?,
        }
        Ok(cev)
    }

    fn seal_baseline(&mut self) {
        self.baseline = self.live.fork();
    }

    fn baseline(&self) -> &ServerStates {
        &self.baseline
    }

    fn live(&self) -> &ServerStates {
        &self.live
    }

    fn install_faults(&mut self, cfg: FaultConfig) {
        self.faults = FaultPlane::new(cfg);
    }

    fn recover(&self, states: &mut ServerStates) -> RecoveryReport {
        let _span = pc_rt::obs::span_cat("recover/BeeGFS", "pfs");
        if std::env::var_os("PC_TEST_POISON_RECOVER").is_some() {
            // Test-only hook: a deliberately broken recovery tool, used to
            // prove a panicking model yields a diagnostic entry instead of
            // aborting the whole checking run.
            panic!("poisoned recover (PC_TEST_POISON_RECOVER)");
        }
        let mut report = RecoveryReport::clean("beegfs-fsck");
        // Pass 1: dentries pointing at idfiles with no attributes, or
        // directories with no dentries object → report; drop directory
        // dentries whose object is missing.
        let metas = self.topo.metadata_servers();
        for &m in &metas {
            let fs = states.server(m).as_fs().fork();
            let Ok(dirkeys) = fs.readdir("/dentries") else {
                continue;
            };
            for key in dirkeys {
                let dent_dir = format!("/dentries/{key}");
                let Ok(names) = fs.readdir(&dent_dir) else {
                    continue;
                };
                for name in names {
                    let dentry = format!("{dent_dir}/{name}");
                    if let Ok(spec) = fs.getxattr(&dentry, "user.dirkey") {
                        let spec = String::from_utf8_lossy(spec).to_string();
                        let (ckey, cowner) = spec.split_once(':').unwrap_or(("?", "0"));
                        let cowner: usize = cowner.parse().unwrap_or(0);
                        let cmeta = self.meta_server(cowner);
                        if !states
                            .server(cmeta)
                            .as_fs()
                            .is_dir(&format!("/dentries/{ckey}"))
                        {
                            report.finding(format!(
                                "dentry {name}: directory object {ckey} missing on meta#{cowner}"
                            ));
                            // Repair: recreate an empty dentries object.
                            let _ = states
                                .server_mut(cmeta)
                                .as_fs_mut()
                                .mkdir_all(&format!("/dentries/{ckey}"));
                            report.repair(format!("recreated empty directory object {ckey}"));
                        }
                    } else if fs.getxattr(&dentry, "user.info").is_err() {
                        report.finding(format!("dentry {name}: idfile has no attributes"));
                        report.unrecovered_damage = true;
                    }
                }
            }
        }
        // Pass 2: idfiles no dentry links to (the create's `link` never
        // persisted, or every dentry was removed) are orphans —
        // disposed, together with their chunks.
        for &m in &metas {
            let fs = states.server(m).as_fs().fork();
            let Ok(ids) = fs.readdir("/idfiles") else {
                continue;
            };
            for id in ids {
                let idf = format!("/idfiles/{id}");
                let Ok(id_ino) = fs.resolve(&idf) else {
                    continue;
                };
                let mut linked = false;
                'outer: for &m2 in &metas {
                    let fs2 = states.server(m2).as_fs();
                    if let Ok(dirs) = fs2.readdir("/dentries") {
                        for key in dirs {
                            if let Ok(names) = fs2.readdir(&format!("/dentries/{key}")) {
                                for name in names {
                                    if m2 == m
                                        && fs2.resolve(&format!("/dentries/{key}/{name}")).ok()
                                            == Some(id_ino)
                                    {
                                        linked = true;
                                        break 'outer;
                                    }
                                }
                            }
                        }
                    }
                }
                if !linked {
                    report.finding(format!("orphan idfile {id} on meta#{m}"));
                    let _ = states.server_mut(m).as_fs_mut().unlink(&idf);
                    report.repair(format!("disposed orphan idfile {id}"));
                }
            }
        }
        // Pass 3: chunks on storage servers with no referencing idfile →
        // garbage-collect; referenced-but-missing chunks → data loss the
        // tool cannot repair (§2.3: "cannot be resolved by beegfs-fsck").
        let mut live_ids: Vec<String> = Vec::new();
        for &m in &metas {
            let fs = states.server(m).as_fs();
            if let Ok(ids) = fs.readdir("/idfiles") {
                live_ids.extend(ids);
            }
        }
        for &s in &self.topo.storage_servers() {
            let fs = states.server(s).as_fs().fork();
            let Ok(chunks) = fs.readdir("/chunks") else {
                continue;
            };
            for chunk in chunks {
                let id = chunk.split('.').next().unwrap_or("").to_string();
                if !live_ids.contains(&id) {
                    report.finding(format!("orphan chunk {chunk} on storage#{s}"));
                    let _ = states
                        .server_mut(s)
                        .as_fs_mut()
                        .unlink(&format!("/chunks/{chunk}"));
                    report.repair(format!("removed orphan chunk {chunk}"));
                }
            }
        }
        report
    }

    fn client_view(&self, states: &ServerStates) -> PfsView {
        let mut view = PfsView::new();
        let root_owner = self.placement.dir_index("/", self.n_meta());
        self.walk_dir(states, "root", root_owner, "/", &mut view);
        view
    }

    fn restart_cost_secs(&self) -> f64 {
        // §6.4: BeeGFS requires the longest restart, up to 7.8 s.
        7.8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recover_and_mount;

    fn arvr_setup() -> (BeeGfs, Recorder, Vec<EventId>) {
        let mut fs = BeeGfs::paper_default();
        let mut rec = Recorder::new();
        let c = Process::Client(0);
        // Preamble: file with old content.
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Creat {
                path: "/file".into(),
            },
            None,
        )
        .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Pwrite {
                path: "/file".into(),
                offset: 0,
                data: b"old".to_vec(),
            },
            None,
        )
        .unwrap();
        fs.seal_baseline();
        let mut rec = Recorder::new();
        // Test program: ARVR.
        let mut evs = vec![fs
            .dispatch(
                &mut rec,
                c,
                &PfsCall::Creat {
                    path: "/tmp".into(),
                },
                None,
            )
            .unwrap()];
        evs.push(
            fs.dispatch(
                &mut rec,
                c,
                &PfsCall::Pwrite {
                    path: "/tmp".into(),
                    offset: 0,
                    data: b"new".to_vec(),
                },
                None,
            )
            .unwrap(),
        );
        evs.push(
            fs.dispatch(
                &mut rec,
                c,
                &PfsCall::Close {
                    path: "/tmp".into(),
                },
                None,
            )
            .unwrap(),
        );
        evs.push(
            fs.dispatch(
                &mut rec,
                c,
                &PfsCall::Rename {
                    src: "/tmp".into(),
                    dst: "/file".into(),
                },
                None,
            )
            .unwrap(),
        );
        (fs, rec, evs)
    }

    #[test]
    fn live_view_after_arvr_shows_new_content() {
        let (fs, _rec, _) = arvr_setup();
        let view = fs.client_view(fs.live());
        assert_eq!(view.read("/file"), Some(&b"new"[..]));
        assert!(!view.exists("/tmp"));
    }

    #[test]
    fn baseline_view_shows_old_content() {
        let (fs, _rec, _) = arvr_setup();
        let view = fs.client_view(fs.baseline());
        assert_eq!(view.read("/file"), Some(&b"old"[..]));
    }

    #[test]
    fn full_replay_on_baseline_matches_live() {
        let (fs, rec, _) = arvr_setup();
        let mut states = fs.baseline().clone();
        states.apply_events(&rec, rec.lowermost_events());
        assert_eq!(fs.client_view(&states), fs.client_view(fs.live()));
    }

    #[test]
    fn dropping_the_append_loses_data_bug1_shape() {
        // Persist everything except the storage-side append of /tmp's
        // chunk: after the rename the file points at an empty chunk —
        // both versions lost (Figure 2 case ①).
        let (fs, rec, _) = arvr_setup();
        let dropped: Vec<EventId> = rec
            .lowermost_events()
            .into_iter()
            .filter(|&id| {
                !matches!(
                    &rec.event(id).payload,
                    Payload::Fs {
                        op: FsOp::Append { .. },
                        ..
                    }
                )
            })
            .collect();
        let mut states = fs.baseline().clone();
        states.apply_events(&rec, dropped);
        let (report, view) = recover_and_mount(&fs, &mut states);
        // The file exists but its content is neither old nor new.
        let got = view.read("/file");
        assert!(
            got != Some(&b"old"[..]) && got != Some(&b"new"[..]),
            "{view}"
        );
        assert!(!view.exists("/tmp"));
        let _ = report;
    }

    #[test]
    fn dropping_meta_rename_after_chunk_unlink_is_bug2_shape() {
        // Persist the storage-side unlink of the old chunk but none of
        // the rename's metadata ops: `file` still points at the (gone)
        // old chunk — data loss (Figure 2 case ②).
        let (fs, rec, _) = arvr_setup();
        let keep: Vec<EventId> = rec
            .lowermost_events()
            .into_iter()
            .filter(|&id| match &rec.event(id).payload {
                // Drop every metadata-server op belonging to the rename
                // flow (rename/link/unlink of idfiles, late xattrs) but
                // keep the storage unlink. The rename flow starts after
                // the tmp write, so filter by op shape.
                Payload::Fs { op, .. } => {
                    !matches!(op, FsOp::Rename { .. })
                        && !matches!(op, FsOp::SetXattr { key, .. } if key == "user.ctime")
                        && !matches!(op, FsOp::Unlink { path } if path.starts_with("/idfiles"))
                }
                _ => true,
            })
            .collect();
        let mut states = fs.baseline().clone();
        states.apply_events(&rec, keep);
        let (report, view) = recover_and_mount(&fs, &mut states);
        // tmp holds the new data; file lost its content (chunk gone).
        assert_eq!(view.read("/tmp"), Some(&b"new"[..]));
        assert!(view.exists("/file"));
        let file = view.read("/file");
        assert!(
            file != Some(&b"old"[..]) && file != Some(&b"new"[..]),
            "{view}"
        );
        let _ = report;
    }

    #[test]
    fn mkdir_and_nested_files() {
        let mut fs = BeeGfs::paper_default();
        let mut rec = Recorder::new();
        let c = Process::Client(0);
        fs.dispatch(&mut rec, c, &PfsCall::Mkdir { path: "/A".into() }, None)
            .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Creat {
                path: "/A/foo".into(),
            },
            None,
        )
        .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Pwrite {
                path: "/A/foo".into(),
                offset: 0,
                data: b"x".to_vec(),
            },
            None,
        )
        .unwrap();
        let view = fs.client_view(fs.live());
        assert!(view.has_dir("/A"));
        assert_eq!(view.read("/A/foo"), Some(&b"x"[..]));
    }

    #[test]
    fn cross_directory_rename_decomposes_into_link_unlink() {
        let mut fs = BeeGfs::paper_default();
        let mut rec = Recorder::new();
        let c = Process::Client(0);
        fs.dispatch(&mut rec, c, &PfsCall::Mkdir { path: "/A".into() }, None)
            .unwrap();
        fs.dispatch(&mut rec, c, &PfsCall::Mkdir { path: "/B".into() }, None)
            .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Creat {
                path: "/A/foo".into(),
            },
            None,
        )
        .unwrap();
        let before = rec.len();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Rename {
                src: "/A/foo".into(),
                dst: "/B/foo".into(),
            },
            None,
        )
        .unwrap();
        let has_link = rec.events()[before..].iter().any(|e| {
            matches!(
                &e.payload,
                Payload::Fs {
                    op: FsOp::Link { .. },
                    ..
                }
            )
        });
        let has_unlink = rec.events()[before..].iter().any(|e| {
            matches!(
                &e.payload,
                Payload::Fs {
                    op: FsOp::Unlink { .. },
                    ..
                }
            )
        });
        assert!(has_link && has_unlink);
        let view = fs.client_view(fs.live());
        assert!(view.exists("/B/foo"));
        assert!(!view.exists("/A/foo"));
    }

    #[test]
    fn striped_file_spans_storage_servers() {
        let mut fs = BeeGfs::new(
            ClusterTopology::paper_dedicated_default(),
            Placement::new().pin_file("/big", 0),
            4, // tiny stripe to force splitting
        );
        let mut rec = Recorder::new();
        let c = Process::Client(0);
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Creat {
                path: "/big".into(),
            },
            None,
        )
        .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Pwrite {
                path: "/big".into(),
                offset: 0,
                data: b"0123456789".to_vec(),
            },
            None,
        )
        .unwrap();
        let view = fs.client_view(fs.live());
        assert_eq!(view.read("/big"), Some(&b"0123456789"[..]));
        // Both storage servers hold chunks.
        let s0 = fs.live().server(2).as_fs().readdir("/chunks").unwrap();
        let s1 = fs.live().server(3).as_fs().readdir("/chunks").unwrap();
        assert!(!s0.is_empty() && !s1.is_empty());
    }

    #[test]
    fn fsck_collects_orphan_chunks() {
        let (fs, rec, _) = arvr_setup();
        // Persist only the storage-side ops of the tmp write: chunks with
        // no metadata.
        let keep: Vec<EventId> = rec
            .lowermost_events()
            .into_iter()
            .filter(|&id| match &rec.event(id).payload {
                Payload::Fs { server, op } => {
                    fs.topo.storage_servers().contains(server)
                        && matches!(op, FsOp::Creat { .. } | FsOp::Append { .. })
                }
                _ => false,
            })
            .collect();
        let mut states = fs.baseline().clone();
        states.apply_events(&rec, keep);
        let report = fs.recover(&mut states);
        assert!(report.findings.iter().any(|f| f.contains("orphan chunk")));
        // After repair the view equals the baseline view.
        assert_eq!(fs.client_view(&states), fs.client_view(fs.baseline()));
    }

    #[test]
    fn fsync_emits_server_side_syncs() {
        let mut fs = BeeGfs::paper_default();
        let mut rec = Recorder::new();
        let c = Process::Client(0);
        fs.dispatch(&mut rec, c, &PfsCall::Creat { path: "/f".into() }, None)
            .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Pwrite {
                path: "/f".into(),
                offset: 0,
                data: b"d".to_vec(),
            },
            None,
        )
        .unwrap();
        fs.dispatch(&mut rec, c, &PfsCall::Fsync { path: "/f".into() }, None)
            .unwrap();
        let syncs = rec
            .events()
            .iter()
            .filter(|e| e.payload.is_storage_sync())
            .count();
        assert!(syncs >= 2); // chunk fsync + idfile fsync
    }
}
