//! Metadata and data placement policy.
//!
//! Table 3's "Sensitivity" column notes that several bugs only trigger
//! under particular *file distribution* patterns (e.g. bug 5 needs the
//! two directories of the RC program on *different* metadata servers;
//! bug 6 needs the two files of the WAL program on *different* storage
//! servers). The paper therefore "tests POSIX programs with different
//! distribution patterns" (§6.2). [`Placement`] makes that pattern an
//! explicit, overridable input.

use pc_rt::intern::Sym;
use std::collections::BTreeMap;

/// Deterministic placement policy for directories (→ metadata server)
/// and files (→ first stripe target).
///
/// Override maps are keyed by interned [`Sym`]s: placement is probed
/// for every striped write a model replays, so the lookup compares
/// 4-byte ids instead of path strings. Interning is bijective, so the
/// derived `Eq` is unchanged from the string-keyed representation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Placement {
    /// Explicit directory → metadata-server-index overrides
    /// (index into the topology's metadata server list).
    dir_overrides: BTreeMap<Sym, usize>,
    /// Explicit file → first-storage-server-index overrides
    /// (index into the topology's storage server list).
    file_overrides: BTreeMap<Sym, usize>,
}

impl Placement {
    /// Default hash-based placement.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pin a directory onto the `idx`-th metadata server.
    pub fn pin_dir(mut self, dir: impl AsRef<str>, idx: usize) -> Self {
        self.dir_overrides.insert(Sym::new(dir.as_ref()), idx);
        self
    }

    /// Pin a file's first stripe onto the `idx`-th storage server.
    pub fn pin_file(mut self, file: impl AsRef<str>, idx: usize) -> Self {
        self.file_overrides.insert(Sym::new(file.as_ref()), idx);
        self
    }

    /// Explicit pin for a file, if any.
    pub fn file_pin(&self, file: &str) -> Option<usize> {
        self.file_overrides.get(&Sym::new(file)).copied()
    }

    /// Explicit pin for a directory, if any.
    pub fn dir_pin(&self, dir: &str) -> Option<usize> {
        self.dir_overrides.get(&Sym::new(dir)).copied()
    }

    /// Stable FNV-1a hash — placement must be identical across runs and
    /// across the fresh replays used for golden-state generation.
    fn fnv(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Index (into the metadata-server list) owning directory `dir`.
    pub fn dir_index(&self, dir: &str, n_meta: usize) -> usize {
        assert!(n_meta > 0, "cluster has no metadata servers");
        self.dir_pin(dir)
            .unwrap_or_else(|| (Self::fnv(dir) as usize) % n_meta)
            % n_meta
    }

    /// Index (into the storage-server list) holding the first stripe of
    /// `file`; subsequent stripes go round-robin from there.
    pub fn file_index(&self, file: &str, n_storage: usize) -> usize {
        assert!(n_storage > 0, "cluster has no storage servers");
        self.file_pin(file)
            .unwrap_or_else(|| (Self::fnv(file) as usize) % n_storage)
            % n_storage
    }

    /// The storage-server index for byte `offset` of `file` under
    /// round-robin striping with the given stripe size (Table 2: chunks
    /// "stored across data servers in a round-robin manner").
    pub fn stripe_index(
        &self,
        file: &str,
        offset: u64,
        stripe_size: u64,
        n_storage: usize,
    ) -> usize {
        let first = self.file_index(file, n_storage);
        let stripe = (offset / stripe_size) as usize;
        (first + stripe) % n_storage
    }

    /// Split a byte range into per-stripe segments:
    /// `(storage_index, stripe_number, offset_within_file, len)`.
    pub fn split_extent(
        &self,
        file: &str,
        offset: u64,
        len: u64,
        stripe_size: u64,
        n_storage: usize,
    ) -> Vec<(usize, u64, u64, u64)> {
        let mut out = Vec::new();
        let mut off = offset;
        let end = offset + len;
        while off < end {
            let stripe = off / stripe_size;
            let stripe_end = (stripe + 1) * stripe_size;
            let seg_len = stripe_end.min(end) - off;
            out.push((
                self.stripe_index(file, off, stripe_size, n_storage),
                stripe,
                off,
                seg_len,
            ));
            off += seg_len;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic() {
        let p = Placement::new();
        assert_eq!(p.dir_index("/A", 2), p.dir_index("/A", 2));
        assert_eq!(p.file_index("/foo", 4), p.file_index("/foo", 4));
    }

    #[test]
    fn overrides_win() {
        let p = Placement::new().pin_dir("/A", 1).pin_file("/foo", 3);
        assert_eq!(p.dir_index("/A", 2), 1);
        assert_eq!(p.file_index("/foo", 4), 3);
        // Overrides are taken modulo the server count.
        assert_eq!(p.file_index("/foo", 2), 1);
    }

    #[test]
    fn striping_is_round_robin_from_first() {
        let p = Placement::new().pin_file("/big", 1);
        let ss = 128 * 1024;
        assert_eq!(p.stripe_index("/big", 0, ss, 4), 1);
        assert_eq!(p.stripe_index("/big", ss, ss, 4), 2);
        assert_eq!(p.stripe_index("/big", 3 * ss, ss, 4), 0);
    }

    #[test]
    fn extent_split_covers_range_exactly() {
        let p = Placement::new().pin_file("/f", 0);
        let segs = p.split_extent("/f", 100, 300, 128, 2);
        let total: u64 = segs.iter().map(|s| s.3).sum();
        assert_eq!(total, 300);
        // First segment ends at the stripe boundary.
        assert_eq!(segs[0], (0, 0, 100, 28));
        assert_eq!(segs[1].0, 1); // next stripe on next server
                                  // Offsets are contiguous.
        for w in segs.windows(2) {
            assert_eq!(w[0].2 + w[0].3, w[1].2);
        }
    }

    #[test]
    fn small_write_stays_on_one_server() {
        let p = Placement::new();
        let segs = p.split_extent("/small", 0, 64, 128 * 1024, 4);
        assert_eq!(segs.len(), 1);
    }
}
