//! Stable human-readable labels for the on-disk structures of all five
//! PFS models — the vocabulary of Table 3's "Details" column and of the
//! explain bundles (`paracrash --explain-out`).
//!
//! Each model stores its state under a fixed server-local namespace, so
//! the path prefix identifies the structure kind:
//!
//! | model     | namespace                         | label         |
//! |-----------|-----------------------------------|---------------|
//! | BeeGFS    | `/chunks/<id>.<stripe>`           | `file chunk`  |
//! | BeeGFS    | `/idfiles/<id>`                   | `idfile`      |
//! | BeeGFS    | `/dentries/<dirkey>/<name>`       | `d_entry`     |
//! | BeeGFS    | `/inodes/<dirkey>`                | `dir_inode`   |
//! | OrangeFS  | `/db/keyval.db`                   | `keyval.db`   |
//! | OrangeFS  | `/db/attrs.db`                    | `attrs.db`    |
//! | OrangeFS  | `/bstreams/<handle>.<stripe>`     | `bstream`     |
//! | Lustre    | `/objects/<id>.<stripe>`          | `object`      |
//! | Lustre    | `/mdt/<path>`                     | `mdt entry`   |
//! | GlusterFS | `/data/<path>`                    | `brick entry` |
//! | GlusterFS | `/chunks/<gfid>.<stripe>`         | `file chunk`  |
//! | GPFS      | block-device writes (see below)   | per-tag       |
//!
//! GPFS is block-based, so its structures are identified by the
//! [`StructTag`] each block write carries rather than by a path;
//! [`block_structure`] maps those. Anything outside the known
//! namespaces (ext4 baseline runs, scratch files) is a plain `file`.
//!
//! These labels are **stable**: bug signatures, `canonical_report()`
//! witnesses and explain bundles all render through them, and golden
//! tests pin the exact strings — change them only with the goldens.

use pc_rt::intern::Sym;
use simfs::StructTag;
use std::sync::OnceLock;

/// Map a server-local path to the PFS structure kind it implements.
pub fn structure_kind(path: &str) -> &'static str {
    if path.starts_with("/chunks/") {
        "file chunk"
    } else if path.starts_with("/idfiles/") {
        "idfile"
    } else if path.starts_with("/dentries/") {
        "d_entry"
    } else if path.starts_with("/inodes/") {
        "dir_inode"
    } else if path.ends_with("keyval.db") {
        "keyval.db"
    } else if path.ends_with("attrs.db") {
        "attrs.db"
    } else if path.starts_with("/bstreams/") {
        "bstream"
    } else if path.starts_with("/objects/") {
        "object"
    } else if path.starts_with("/mdt") {
        "mdt entry"
    } else if path.starts_with("/data") {
        "brick entry"
    } else {
        "file"
    }
}

/// The fixed label vocabulary, pre-interned once so hot paths can key
/// aggregation maps by 4-byte [`Sym`] ids instead of label strings.
/// Index order mirrors the `structure_kind` dispatch chain.
fn label_syms() -> &'static [Sym; 11] {
    static LABELS: OnceLock<[Sym; 11]> = OnceLock::new();
    LABELS.get_or_init(|| {
        [
            Sym::new("file chunk"),
            Sym::new("idfile"),
            Sym::new("d_entry"),
            Sym::new("dir_inode"),
            Sym::new("keyval.db"),
            Sym::new("attrs.db"),
            Sym::new("bstream"),
            Sym::new("object"),
            Sym::new("mdt entry"),
            Sym::new("brick entry"),
            Sym::new("file"),
        ]
    })
}

/// Interned form of [`structure_kind`]: same classification, but the
/// label comes back as a [`Sym`] from a pre-interned vocabulary, so
/// per-event calls on the signature hot path never touch the global
/// intern table's write lock.
pub fn structure_kind_sym(path: &str) -> Sym {
    let l = label_syms();
    if path.starts_with("/chunks/") {
        l[0]
    } else if path.starts_with("/idfiles/") {
        l[1]
    } else if path.starts_with("/dentries/") {
        l[2]
    } else if path.starts_with("/inodes/") {
        l[3]
    } else if path.ends_with("keyval.db") {
        l[4]
    } else if path.ends_with("attrs.db") {
        l[5]
    } else if path.starts_with("/bstreams/") {
        l[6]
    } else if path.starts_with("/objects/") {
        l[7]
    } else if path.starts_with("/mdt") {
        l[8]
    } else if path.starts_with("/data") {
        l[9]
    } else {
        l[10]
    }
}

/// Map a block-store structure tag (GPFS) to its label.
pub fn block_structure(tag: &StructTag) -> String {
    match tag {
        StructTag::LogFile => "log file".to_string(),
        StructTag::Inode(_) => "inode".to_string(),
        StructTag::DirEntry(_) => "d_entry".to_string(),
        StructTag::AllocMap => "alloc map".to_string(),
        StructTag::FileContent(_) => "file content".to_string(),
        StructTag::Superblock => "superblock".to_string(),
        StructTag::Other(s) => s.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beegfs_namespaces() {
        assert_eq!(structure_kind("/chunks/f0.0"), "file chunk");
        assert_eq!(structure_kind("/idfiles/f0"), "idfile");
        assert_eq!(structure_kind("/dentries/root/foo"), "d_entry");
        assert_eq!(structure_kind("/inodes/root"), "dir_inode");
    }

    #[test]
    fn orangefs_namespaces() {
        assert_eq!(structure_kind("/db/keyval.db"), "keyval.db");
        assert_eq!(structure_kind("/db/attrs.db"), "attrs.db");
        assert_eq!(structure_kind("/bstreams/h0.0"), "bstream");
    }

    #[test]
    fn lustre_and_glusterfs_namespaces() {
        assert_eq!(structure_kind("/objects/o0.0"), "object");
        assert_eq!(structure_kind("/mdt/foo"), "mdt entry");
        assert_eq!(structure_kind("/data/foo"), "brick entry");
    }

    #[test]
    fn fallback_is_plain_file() {
        assert_eq!(structure_kind("/whatever"), "file");
        assert_eq!(structure_kind("/scratch/tmp"), "file");
    }

    #[test]
    fn interned_labels_match_string_labels() {
        for p in [
            "/chunks/f0.0",
            "/idfiles/f0",
            "/dentries/root/foo",
            "/inodes/root",
            "/db/keyval.db",
            "/db/attrs.db",
            "/bstreams/h0.0",
            "/objects/o0.0",
            "/mdt/foo",
            "/data/foo",
            "/whatever",
        ] {
            assert_eq!(structure_kind_sym(p).as_str(), structure_kind(p));
        }
    }

    #[test]
    fn gpfs_block_tags() {
        assert_eq!(block_structure(&StructTag::LogFile), "log file");
        assert_eq!(block_structure(&StructTag::AllocMap), "alloc map");
        assert_eq!(block_structure(&StructTag::Inode("f".into())), "inode");
        assert_eq!(block_structure(&StructTag::DirEntry("d".into())), "d_entry");
        assert_eq!(
            block_structure(&StructTag::FileContent("f".into())),
            "file content"
        );
        assert_eq!(block_structure(&StructTag::Superblock), "superblock");
        assert_eq!(
            block_structure(&StructTag::Other("recovery log".into())),
            "recovery log"
        );
    }
}
