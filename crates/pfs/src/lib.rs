#![warn(missing_docs)]

//! # pfs — parallel file system models
//!
//! ParaCrash tested five production parallel file systems: BeeGFS,
//! OrangeFS, GlusterFS, GPFS and Lustre (Table 2). This crate implements
//! a *model* of each: given a client-level PFS call (`creat`, `pwrite`,
//! `rename`, …), the model issues the same per-server lowermost-level
//! operation sequences the paper traced (Figures 2 and 9), records them
//! into the shared trace `Recorder` with caller–callee and RPC causality
//! edges, and knows how to *recover* (its `fsck` tool) and *mount* (derive
//! the client-visible file tree) from any combination of per-server
//! persistent states.
//!
//! Each model captures the persistence-relevant behaviour that determines
//! which Table 3 bugs it exposes:
//!
//! | model | metadata scheme | what makes it (un)safe |
//! |---|---|---|
//! | [`beegfs::BeeGfs`] | idfiles + dentry hard links + dir xattrs on dedicated metadata servers | no metadata syncs → cross-server reorder bugs 1,2,4,5,6,7,8 |
//! | [`orangefs::OrangeFs`] | Berkeley-DB-style record log, `fdatasync` after every update | meta-server commits suppress bug 2; mis-ordered DB updates keep bugs 1,4,6 |
//! | [`glusterfs::GlusterFs`] | metadata colocated with file data on each brick | same-FS ordering shields ARVR; multi-file / multi-stripe bugs 6,8 remain |
//! | [`gpfs::Gpfs`] | shared-disk block FS, logged block writes in atomic groups | partially-persisted log groups → bugs 3,4,5 |
//! | [`lustre::Lustre`] | aggregated updates + accurate barriers on namespace ops | no POSIX-level bugs; open-file data writes still reorder (HDF5 bugs) |
//! | [`ext4::Ext4Direct`] | single local FS in data-journaling mode | the paper's clean baseline (Figure 8: zero bugs) |

pub mod beegfs;
pub mod call;
pub mod error;
pub mod ext4;
pub mod glusterfs;
pub mod gpfs;
pub mod label;
pub mod lustre;
pub mod orangefs;
pub mod placement;
pub mod store;
pub mod view;

pub use call::{ClientTrace, PfsCall};
pub use error::{PfsError, PfsResult};
pub use placement::Placement;
pub use store::{ServerStates, Store};
pub use view::{PfsView, RecoveryReport};

use simnet::{ClusterTopology, FaultConfig};
use tracer::{EventId, Process, Recorder};

/// A parallel file system model.
///
/// Implementations keep a *live* (in-memory, pre-crash) copy of every
/// server's persistent store, updated as calls are dispatched — that is
/// the state the running system sees. Crash emulation never touches the
/// live state: it replays subsets of the recorded lowermost operations
/// onto the sealed *baseline* snapshot.
///
/// Models are `Send + Sync`: crash-state checking reads them from many
/// threads (the live/baseline stores are only mutated during dispatch).
pub trait Pfs: Send + Sync {
    /// Short name as used in the paper's tables ("BeeGFS", …).
    fn name(&self) -> &'static str;

    /// The cluster shape this instance runs on.
    fn topology(&self) -> &ClusterTopology;

    /// Stripe size in bytes (Table 2 default: 128 KiB).
    fn stripe_size(&self) -> u64;

    /// Execute one client call: update live server state, record the
    /// client-level trace event plus every RPC and lowermost-level server
    /// event (with causal links). Returns the id of the client-call event,
    /// or a [`PfsError`] when the call references paths outside the
    /// model's live namespace (malformed workload/trace input).
    fn dispatch(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        call: &PfsCall,
        parent: Option<EventId>,
    ) -> PfsResult<EventId>;

    /// Arm the model's RPC fault plane. Models that simulate client↔server
    /// messaging route every RPC through it; the default is a no-op for
    /// models with no network (e.g. the ext4 baseline).
    fn install_faults(&mut self, _cfg: FaultConfig) {}

    /// Snapshot the current live state as the pre-test baseline. Crash
    /// states are materialized on clones of this snapshot (the paper's
    /// "snapshot of the initial local file system or the image of the
    /// block device", §4.3).
    fn seal_baseline(&mut self);

    /// The sealed baseline snapshot.
    fn baseline(&self) -> &ServerStates;

    /// The live (fully-executed) server states.
    fn live(&self) -> &ServerStates;

    /// Run the PFS's recovery tool (`beegfs-fsck`, `pvfs2-fsck`, `mmfsck`,
    /// …) over crashed server states, mutating them in place, then
    /// remount. Returns what the tool did.
    fn recover(&self, states: &mut ServerStates) -> RecoveryReport;

    /// Mount: derive the client-visible file tree purely from persistent
    /// server states (never from live bookkeeping — a crash destroys
    /// that).
    fn client_view(&self, states: &ServerStates) -> PfsView;

    /// Simulated PFS restart cost in seconds — drives the Figure 10/11
    /// cost model (the paper: BeeGFS restart takes up to 7.8 s).
    fn restart_cost_secs(&self) -> f64;
}

/// Convenience: run the recovery tool and return the recovered view in
/// one step, as the checking workflow of Figure 6 does.
pub fn recover_and_mount(pfs: &dyn Pfs, states: &mut ServerStates) -> (RecoveryReport, PfsView) {
    let report = pfs.recover(states);
    let mount = pc_rt::obs::span_cat("pfs.mount", "pfs");
    let view = pfs.client_view(states);
    drop(mount);
    (report, view)
}

/// Factory that builds a fresh, empty instance of a PFS configuration.
/// The consistency checker uses it to replay legal preserved sets on a
/// pristine stack (golden-master generation, §4.4.3).
pub type PfsFactory = Box<dyn Fn() -> Box<dyn Pfs>>;
