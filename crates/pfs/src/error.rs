//! Typed errors for PFS model dispatch.
//!
//! ParaCrash replays traced workloads, so a model hitting an unknown path
//! or an out-of-namespace file is *bad input* (a malformed trace or
//! workload), not a broken invariant. Dispatch reports such input as a
//! [`PfsError`] instead of panicking, so the checker pipeline can turn it
//! into a diagnostic entry and keep going.

use simfs::FsError;

/// Why a PFS model refused to dispatch a client call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PfsError {
    /// A path in the call does not resolve in the model's live namespace.
    UnknownPath(String),
    /// The call is malformed or unsupported for this model.
    BadCall(String),
    /// The backing local FS rejected an operation derived from the call.
    Fs(FsError),
}

impl std::fmt::Display for PfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PfsError::UnknownPath(p) => write!(f, "unknown path {p}"),
            PfsError::BadCall(m) => write!(f, "bad call: {m}"),
            PfsError::Fs(e) => write!(f, "local fs: {e}"),
        }
    }
}

impl std::error::Error for PfsError {}

impl From<FsError> for PfsError {
    fn from(e: FsError) -> Self {
        PfsError::Fs(e)
    }
}

/// Result alias for dispatch paths.
pub type PfsResult<T> = Result<T, PfsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_line_and_from_fs_works() {
        let e = PfsError::UnknownPath("/mnt/missing".into());
        assert_eq!(e.to_string(), "unknown path /mnt/missing");
        let e: PfsError = FsError::NotFound("/x".into()).into();
        assert!(matches!(e, PfsError::Fs(_)));
        assert!(!e.to_string().contains('\n'));
    }
}
