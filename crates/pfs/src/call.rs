//! Client-level PFS calls — the "PFS operations" layer of the stack.
//!
//! These are the POSIX-style calls a test program (or the MPI-IO layer)
//! issues against the PFS mount point. ParaCrash generates *legal* PFS
//! states by replaying preserved subsets of exactly these calls on a
//! pristine stack (§4.4.2), so each call must be self-contained and
//! replayable.

use tracer::{EventId, Process};

/// One client call against the PFS mount point.
///
/// Variant fields are self-describing POSIX call arguments.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PfsCall {
    /// `creat(path)`.
    Creat { path: String },
    /// `mkdir(path)`.
    Mkdir { path: String },
    /// `pwrite(path, offset, data)`.
    Pwrite {
        path: String,
        offset: u64,
        data: Vec<u8>,
    },
    /// `rename(src, dst)`.
    Rename { src: String, dst: String },
    /// `unlink(path)`.
    Unlink { path: String },
    /// `rmdir(path)`.
    Rmdir { path: String },
    /// `close(path)` — releases the handle; several PFSs flush here.
    Close { path: String },
    /// `fsync(path)` — explicit commit of one file.
    Fsync { path: String },
}

impl PfsCall {
    /// Call name as it appears in traces.
    pub fn name(&self) -> &'static str {
        match self {
            PfsCall::Creat { .. } => "creat",
            PfsCall::Mkdir { .. } => "mkdir",
            PfsCall::Pwrite { .. } => "pwrite",
            PfsCall::Rename { .. } => "rename",
            PfsCall::Unlink { .. } => "unlink",
            PfsCall::Rmdir { .. } => "rmdir",
            PfsCall::Close { .. } => "close",
            PfsCall::Fsync { .. } => "fsync",
        }
    }

    /// Render arguments for the trace event.
    pub fn args(&self) -> Vec<String> {
        match self {
            PfsCall::Creat { path }
            | PfsCall::Mkdir { path }
            | PfsCall::Unlink { path }
            | PfsCall::Rmdir { path }
            | PfsCall::Close { path }
            | PfsCall::Fsync { path } => vec![path.clone()],
            PfsCall::Pwrite { path, offset, data } => {
                vec![
                    path.clone(),
                    offset.to_string(),
                    format!("len={}", data.len()),
                ]
            }
            PfsCall::Rename { src, dst } => vec![src.clone(), dst.clone()],
        }
    }

    /// `true` for calls that change the namespace (several PFSs — notably
    /// Lustre — flush aggregated file data at these points).
    pub fn is_namespace_op(&self) -> bool {
        !matches!(self, PfsCall::Pwrite { .. } | PfsCall::Fsync { .. })
    }

    /// `true` for calls that persist nothing themselves.
    pub fn is_sync(&self) -> bool {
        matches!(self, PfsCall::Fsync { .. } | PfsCall::Close { .. })
    }

    /// The file the call primarily affects.
    pub fn primary_path(&self) -> &str {
        match self {
            PfsCall::Creat { path }
            | PfsCall::Mkdir { path }
            | PfsCall::Pwrite { path, .. }
            | PfsCall::Unlink { path }
            | PfsCall::Rmdir { path }
            | PfsCall::Close { path }
            | PfsCall::Fsync { path } => path,
            PfsCall::Rename { src, .. } => src,
        }
    }
}

/// The PFS-level trace of a test program run: which client issued which
/// call, and the trace event id of the call. The consistency checker
/// projects preserved sets out of this.
#[derive(Debug, Clone, Default)]
pub struct ClientTrace {
    entries: Vec<(EventId, Process, PfsCall)>,
}

impl ClientTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one dispatched call.
    pub fn push(&mut self, event: EventId, client: Process, call: PfsCall) {
        self.entries.push((event, client, call));
    }

    /// All entries in dispatch order.
    pub fn entries(&self) -> &[(EventId, Process, PfsCall)] {
        &self.entries
    }

    /// Number of calls.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no calls were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The calls whose event ids are in `ids`, in dispatch order.
    pub fn subset(&self, ids: &[EventId]) -> Vec<(Process, PfsCall)> {
        self.entries
            .iter()
            .filter(|(e, _, _)| ids.contains(e))
            .map(|(_, p, c)| (*p, c.clone()))
            .collect()
    }

    /// Event ids of all calls.
    pub fn event_ids(&self) -> Vec<EventId> {
        self.entries.iter().map(|(e, _, _)| *e).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_metadata() {
        let w = PfsCall::Pwrite {
            path: "/foo".into(),
            offset: 8,
            data: vec![0; 3],
        };
        assert_eq!(w.name(), "pwrite");
        assert_eq!(w.args(), vec!["/foo", "8", "len=3"]);
        assert!(!w.is_namespace_op());
        assert!(PfsCall::Creat { path: "/x".into() }.is_namespace_op());
        assert!(PfsCall::Fsync { path: "/x".into() }.is_sync());
        assert_eq!(
            PfsCall::Rename {
                src: "/a".into(),
                dst: "/b".into()
            }
            .primary_path(),
            "/a"
        );
    }

    #[test]
    fn trace_subset_preserves_order() {
        let mut t = ClientTrace::new();
        let c = Process::Client(0);
        t.push(10, c, PfsCall::Creat { path: "/a".into() });
        t.push(20, c, PfsCall::Creat { path: "/b".into() });
        t.push(30, c, PfsCall::Unlink { path: "/a".into() });
        let sub = t.subset(&[30, 10]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub[0].1, PfsCall::Creat { path: "/a".into() });
        assert_eq!(sub[1].1, PfsCall::Unlink { path: "/a".into() });
        assert_eq!(t.event_ids(), vec![10, 20, 30]);
    }
}
