//! Per-server persistent stores and crash-state materialization.

use simfs::{BlockDev, BlockOp, FsOp, FsState, JournalMode};
use tracer::{EventId, Payload, Recorder};

/// The persistent store of one server: a local file system (user-level
/// PFS) or a raw block device (kernel-level PFS).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Store {
    /// Local file system with its journaling mode.
    Fs {
        /// The file-system state.
        state: FsState,
        /// Journaling mode in effect.
        journal: JournalMode,
    },
    /// Raw block device.
    Block(BlockDev),
}

impl Store {
    /// A fresh local-FS store.
    pub fn fs(journal: JournalMode) -> Self {
        Store::Fs {
            state: FsState::new(),
            journal,
        }
    }

    /// A fresh block store.
    pub fn block() -> Self {
        Store::Block(BlockDev::new())
    }

    /// The journaling mode, if this is a local FS.
    pub fn journal(&self) -> Option<JournalMode> {
        match self {
            Store::Fs { journal, .. } => Some(*journal),
            Store::Block(_) => None,
        }
    }

    /// Borrow the FS state if this is a local-FS store.
    pub fn try_as_fs(&self) -> Option<&FsState> {
        match self {
            Store::Fs { state, .. } => Some(state),
            Store::Block(_) => None,
        }
    }

    /// Mutable FS state if this is a local-FS store.
    pub fn try_as_fs_mut(&mut self) -> Option<&mut FsState> {
        match self {
            Store::Fs { state, .. } => Some(state),
            Store::Block(_) => None,
        }
    }

    /// Borrow the block device if this is a block store.
    pub fn try_as_block(&self) -> Option<&BlockDev> {
        match self {
            Store::Block(dev) => Some(dev),
            Store::Fs { .. } => None,
        }
    }

    /// Mutable block device if this is a block store.
    pub fn try_as_block_mut(&mut self) -> Option<&mut BlockDev> {
        match self {
            Store::Block(dev) => Some(dev),
            Store::Fs { .. } => None,
        }
    }

    /// Borrow the FS state. A PFS model only ever calls this on its own
    /// stores, whose kind it chose at construction.
    pub fn as_fs(&self) -> &FsState {
        self.try_as_fs()
            .expect("invariant: model addresses its own local-FS store")
    }

    /// Mutable FS state.
    pub fn as_fs_mut(&mut self) -> &mut FsState {
        self.try_as_fs_mut()
            .expect("invariant: model addresses its own local-FS store")
    }

    /// Borrow the block device.
    pub fn as_block(&self) -> &BlockDev {
        self.try_as_block()
            .expect("invariant: model addresses its own block store")
    }

    /// Mutable block device.
    pub fn as_block_mut(&mut self) -> &mut BlockDev {
        self.try_as_block_mut()
            .expect("invariant: model addresses its own block store")
    }

    /// Apply one local-FS op (lenient: a crash state may contain an op
    /// whose prerequisite was dropped; the replay then skips it, matching
    /// the paper's replay of traced calls with Python's `os` module).
    pub fn apply_fs(&mut self, op: &FsOp) {
        let _ = self.as_fs_mut().apply(op);
    }

    /// Apply one block op.
    pub fn apply_block(&mut self, op: &BlockOp) {
        self.as_block_mut().apply(op);
    }

    /// Canonical digest for state dedup.
    pub fn digest(&self) -> u64 {
        match self {
            Store::Fs { state, .. } => state.digest(),
            Store::Block(dev) => dev.digest(),
        }
    }

    /// O(1) copy-on-write snapshot of this store (shares all nodes with
    /// `self` until either side mutates).
    pub fn fork(&self) -> Store {
        match self {
            Store::Fs { state, journal } => Store::Fs {
                state: state.fork(),
                journal: *journal,
            },
            Store::Block(dev) => Store::Block(dev.fork()),
        }
    }

    /// Structurally independent copy (the `PC_NAIVE_SNAPSHOTS=1` oracle's
    /// clone-everything cost model).
    pub fn deep_clone(&self) -> Store {
        match self {
            Store::Fs { state, journal } => Store::Fs {
                state: state.deep_clone(),
                journal: *journal,
            },
            Store::Block(dev) => Store::Block(dev.deep_clone()),
        }
    }
}

/// The persistent state of the whole cluster: one store per server,
/// indexed by server id.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServerStates {
    stores: Vec<Store>,
}

impl ServerStates {
    /// `n` local-FS servers, all with the same journaling mode.
    pub fn all_fs(n: u32, journal: JournalMode) -> Self {
        ServerStates {
            stores: (0..n).map(|_| Store::fs(journal)).collect(),
        }
    }

    /// `n` block-device servers.
    pub fn all_block(n: u32) -> Self {
        ServerStates {
            stores: (0..n).map(|_| Store::block()).collect(),
        }
    }

    /// Store of server `id`.
    pub fn server(&self, id: u32) -> &Store {
        &self.stores[id as usize]
    }

    /// Mutable store of server `id`.
    pub fn server_mut(&mut self, id: u32) -> &mut Store {
        &mut self.stores[id as usize]
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.stores.len()
    }

    /// `true` if no servers.
    pub fn is_empty(&self) -> bool {
        self.stores.is_empty()
    }

    /// Iterate over `(server_id, store)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Store)> {
        self.stores.iter().enumerate().map(|(i, s)| (i as u32, s))
    }

    /// Canonical digest of the whole cluster state: FNV-1a over the
    /// per-server [`Store::digest`] words in server order. Equal states
    /// hash equal whatever engine materialized them — the key the
    /// campaign's representative-state corpus dedups on.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for store in &self.stores {
            for byte in store.digest().to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// Apply a *subset* of recorded lowermost-level events (a crash
    /// state) in trace order. Non-storage events in `ids` are ignored.
    pub fn apply_events(&mut self, rec: &Recorder, ids: impl IntoIterator<Item = EventId>) {
        let mut ids: Vec<EventId> = ids.into_iter().collect();
        ids.sort_unstable();
        pc_rt::obs::count("pfs.events_applied", ids.len() as u64);
        for id in ids {
            match &rec.event(id).payload {
                Payload::Fs { server, op } => self.server_mut(*server).apply_fs(op),
                Payload::Block { server, op } => self.server_mut(*server).apply_block(op),
                _ => {}
            }
        }
    }

    /// Disk-fault widening of a crash state: ops *in flight* at the crash
    /// (the enumeration's victims) may persist partially instead of not at
    /// all. Each eligible victim — a multi-byte file write or multi-byte
    /// block write — tears with probability ½ at an RNG-chosen split point
    /// and its surviving prefix is applied. Under data journaling the torn
    /// transaction's commit record fails its checksum and the whole op is
    /// discarded ([`simfs::torn_write`]), so data-journaled stores never
    /// widen. Returns the number of torn prefixes applied.
    pub fn apply_torn_victims(
        &mut self,
        rec: &Recorder,
        victims: impl IntoIterator<Item = EventId>,
        rng: &mut pc_rt::rng::Rng,
    ) -> usize {
        let mut ids: Vec<EventId> = victims.into_iter().collect();
        ids.sort_unstable();
        let mut applied = 0;
        for id in ids {
            match &rec.event(id).payload {
                Payload::Fs { server, op } => {
                    let Some(mode) = self.server(*server).journal() else {
                        continue;
                    };
                    let len = match op {
                        FsOp::Pwrite { data, .. } | FsOp::Append { data, .. } => data.len(),
                        _ => continue,
                    };
                    if len < 2 || !rng.gen_bool(0.5) {
                        continue;
                    }
                    let keep = rng.gen_range(1..len as u64) as usize;
                    if let Some(torn) = simfs::torn_write(mode, op, keep) {
                        self.server_mut(*server).apply_fs(&torn);
                        applied += 1;
                    }
                }
                Payload::Block { server, op } => {
                    let len = op.payload_len();
                    if len < 2 || !rng.gen_bool(0.5) {
                        continue;
                    }
                    let keep = rng.gen_range(1..len as u64) as usize;
                    if let Some(torn) = op.torn(keep) {
                        self.server_mut(*server).apply_block(&torn);
                        applied += 1;
                    }
                }
                _ => {}
            }
        }
        pc_rt::obs::count("faults.torn", applied as u64);
        applied
    }

    /// Digest over all servers, for crash-state dedup and for the
    /// "distance" metric of the TSP visiting order (§5.3: the distance
    /// between two crash states is the number of servers whose state
    /// differs).
    pub fn per_server_digests(&self) -> Vec<u64> {
        self.stores.iter().map(|s| s.digest()).collect()
    }

    /// Number of servers whose state differs from `other` — the TSP edge
    /// weight of §5.3. Compares memoized per-store digests directly:
    /// the visiting-order pass evaluates O(n²) edges, so this path must
    /// not allocate per edge.
    pub fn server_distance(&self, other: &ServerStates) -> usize {
        self.stores
            .iter()
            .zip(&other.stores)
            .filter(|(a, b)| a.digest() != b.digest())
            .count()
    }

    /// O(1) copy-on-write snapshot of the whole cluster: the simulation
    /// analogue of taking per-server LVM snapshots before crash emulation
    /// (§4.3), minus the copying.
    pub fn fork(&self) -> ServerStates {
        ServerStates {
            stores: self.stores.iter().map(Store::fork).collect(),
        }
    }

    /// Structurally independent copy of every server (the
    /// `PC_NAIVE_SNAPSHOTS=1` oracle's clone-everything cost model).
    pub fn deep_clone(&self) -> ServerStates {
        ServerStates {
            stores: self.stores.iter().map(Store::deep_clone).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracer::{Layer, Process};

    #[test]
    fn stores_construct_and_borrow() {
        let mut s = Store::fs(JournalMode::Data);
        assert_eq!(s.journal(), Some(JournalMode::Data));
        s.as_fs_mut().creat("/f").unwrap();
        assert!(s.as_fs().exists("/f"));
        let b = Store::block();
        assert_eq!(b.journal(), None);
        assert!(b.as_block().is_empty());
    }

    #[test]
    fn apply_events_respects_subset_and_order() {
        let mut rec = Recorder::new();
        let creat = rec.record(
            Layer::LocalFs,
            Process::Server(0),
            Payload::Fs {
                server: 0,
                op: FsOp::Creat { path: "/f".into() },
            },
            None,
        );
        let write = rec.record(
            Layer::LocalFs,
            Process::Server(0),
            Payload::Fs {
                server: 0,
                op: FsOp::Append {
                    path: "/f".into(),
                    data: b"x".to_vec(),
                },
            },
            None,
        );
        let mut full = ServerStates::all_fs(2, JournalMode::Data);
        full.apply_events(&rec, [write, creat]); // out of order on purpose
        assert_eq!(full.server(0).as_fs().read("/f").unwrap(), b"x");

        let mut partial = ServerStates::all_fs(2, JournalMode::Data);
        partial.apply_events(&rec, [write]); // creat dropped -> append skipped
        assert!(!partial.server(0).as_fs().exists("/f"));
    }

    #[test]
    fn server_distance_counts_differing_servers() {
        let mut a = ServerStates::all_fs(3, JournalMode::Data);
        let b = a.clone();
        assert_eq!(a.server_distance(&b), 0);
        a.server_mut(1).as_fs_mut().creat("/x").unwrap();
        assert_eq!(a.server_distance(&b), 1);
        a.server_mut(2).as_fs_mut().creat("/y").unwrap();
        assert_eq!(a.server_distance(&b), 2);
    }
}
