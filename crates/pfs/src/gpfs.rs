//! GPFS (IBM Spectrum Scale) model.
//!
//! GPFS (Table 2: v5.0.4) is a *kernel-level*, shared-disk file system:
//! it bypasses any local file system and writes disk blocks directly, so
//! the paper traces it at the SCSI level through iSCSI (Figure 7) and
//! reasons about **tagged block writes** — `scsi_write(LBA: …, log
//! file)`, `…, inode of file`, `…, parent dir` (Figure 9(d)).
//!
//! The journal groups the block writes of one namespace operation into an
//! **atomic group**; with disk write-back caching and no barriers between
//! the group members, a crash can persist the group partially — exactly
//! Table 3 bug 3 (`[write(log)@server#2, write(parent_dir)@server#2,
//! write(file inode)@server#1, write(parent_dir inode)@server#2]`), whose
//! damage survives even when "accepting all mmfsck fixes".
//!
//! Block-resident structures (each lives at a deterministic LBA derived
//! from its name; recovery and mount scan by tag):
//!
//! * `DirEntry(<dir>)` — the directory's entry map, serialized whole;
//! * `Inode(<id>)` / `Inode(dir:<dir>)` — file / directory inodes;
//! * `FileContent(<id>.<stripe>)` — data chunks;
//! * `LogFile`, `AllocMap` — journal and allocation map blocks.

use crate::call::PfsCall;
use crate::error::{PfsError, PfsResult};
use crate::placement::Placement;
use crate::store::ServerStates;
use crate::view::{PfsView, RecoveryReport};
use crate::Pfs;
use simfs::{BlockOp, StructTag};
use simnet::{ClusterTopology, FaultConfig, FaultPlane, RpcNet};
use std::collections::BTreeMap;
use tracer::{EventId, Layer, Payload, Process, Recorder};

/// Parsed block structures: (directory entries by dirid, inode payloads
/// by id, content bytes by "id.stripe").
type CollectedBlocks = (
    BTreeMap<String, BTreeMap<String, String>>,
    BTreeMap<String, String>,
    BTreeMap<String, Vec<u8>>,
);

#[derive(Debug, Clone)]
struct FileInfo {
    id: String,
    first: usize,
    size: u64,
    /// stripe → chunk content (needed to compose whole-block payloads).
    chunks: BTreeMap<u64, Vec<u8>>,
}

/// The GPFS model over raw block devices.
pub struct Gpfs {
    topo: ClusterTopology,
    placement: Placement,
    stripe: u64,
    live: ServerStates,
    baseline: ServerStates,
    files: BTreeMap<String, FileInfo>,
    /// directory identity → name → entry record (`F:<id>` / `D:<dirid>`).
    /// Directories are identity-keyed (like inode numbers): a rename
    /// changes the parent's entry, never the directory's own block.
    dirents: BTreeMap<String, BTreeMap<String, String>>,
    /// path → directory identity (runtime bookkeeping only).
    dirpaths: BTreeMap<String, String>,
    /// Servers with unflushed data blocks, per client (GPFS's token
    /// protocol forces data to disk before metadata transitions).
    dirty: BTreeMap<Process, std::collections::BTreeSet<u32>>,
    next_id: u64,
    next_group: u32,
    faults: FaultPlane,
}

impl Gpfs {
    /// A formatted GPFS instance over `topo.server_count()` NSD servers.
    pub fn new(topo: ClusterTopology, placement: Placement, stripe: u64) -> Self {
        let mut live = ServerStates::all_block(topo.server_count());
        let mut dirents = BTreeMap::new();
        dirents.insert("root".to_string(), BTreeMap::new());
        let mut dirpaths = BTreeMap::new();
        dirpaths.insert("/".to_string(), "root".to_string());
        // mkfs: superblock + empty root directory block.
        let root_server = placement.dir_index("root", topo.server_count() as usize) as u32;
        live.server_mut(root_server)
            .as_block_mut()
            .apply(&BlockOp::write(
                Self::lba("super"),
                StructTag::Superblock,
                b"gpfs".to_vec(),
            ));
        live.server_mut(root_server)
            .as_block_mut()
            .apply(&BlockOp::write(
                Self::lba("dir:root"),
                StructTag::DirEntry("root".into()),
                Vec::new(),
            ));
        Gpfs {
            topo,
            placement,
            stripe,
            baseline: live.fork(),
            live,
            files: BTreeMap::new(),
            dirents,
            dirpaths,
            dirty: BTreeMap::new(),
            next_id: 0,
            next_group: 0,
            faults: FaultPlane::disabled(),
        }
    }

    /// Flush the client's dirty data with cache barriers before a
    /// namespace transition (like Lustre, GPFS "aggregates intermediate
    /// changes" — this is why the paper's Table 3 lists no GPFS rows
    /// pairing file *content* against metadata).
    fn flush_dirty(&mut self, rec: &mut Recorder, client: Process, cev: EventId) {
        let Some(servers) = self.dirty.remove(&client) else {
            return;
        };
        for server in servers {
            let (_, recv) =
                self.net(rec)
                    .request(client, Process::Server(server), "FLUSH-DATA", Some(cev));
            let w = self.emit(rec, server, BlockOp::SyncCache, Some(recv));
            self.net(rec)
                .reply(Process::Server(server), client, "OK", Some(w));
        }
    }

    /// Paper default: 2 combined NSD servers, 128 KiB stripes.
    pub fn paper_default() -> Self {
        Gpfs::new(
            ClusterTopology::paper_combined_default(),
            Placement::new(),
            128 * 1024,
        )
    }

    fn n(&self) -> usize {
        self.topo.server_count() as usize
    }

    /// Deterministic LBA for a structure name.
    fn lba(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h % 4_000_000 // keep figures readable, as in the paper's traces
    }

    fn parent_of(path: &str) -> String {
        match path.rfind('/') {
            Some(0) => "/".to_string(),
            Some(i) => path[..i].to_string(),
            None => "/".to_string(),
        }
    }

    fn name_of(path: &str) -> &str {
        path.rsplit('/').next().unwrap_or(path)
    }

    /// Server owning a directory's entry block (by directory identity,
    /// stable across renames).
    fn dir_server(&self, dirid: &str) -> u32 {
        self.placement.dir_index(dirid, self.n()) as u32
    }

    /// Directory identity for a path (runtime lookup).
    fn dir_id(&self, path: &str) -> PfsResult<String> {
        self.dirpaths
            .get(path)
            .cloned()
            .ok_or_else(|| PfsError::UnknownPath(path.to_string()))
    }

    fn file_info(&self, path: &str) -> PfsResult<&FileInfo> {
        self.files
            .get(path)
            .ok_or_else(|| PfsError::UnknownPath(path.to_string()))
    }

    fn file_mut(&mut self, path: &str) -> &mut FileInfo {
        self.files
            .get_mut(path)
            .expect("invariant: file checked present earlier in this call")
    }

    fn dirents_mut(&mut self, dirid: &str) -> &mut BTreeMap<String, String> {
        self.dirents
            .get_mut(dirid)
            .expect("invariant: resolved directory identity has an entry map")
    }

    /// RPC net routed through this instance's fault plane.
    fn net<'a>(&'a mut self, rec: &'a mut Recorder) -> RpcNet<'a> {
        RpcNet::faulty(rec, &mut self.faults)
    }

    fn id_server(&self, id: &str) -> u32 {
        (Self::lba(id) % self.n() as u64) as u32
    }

    fn emit(
        &mut self,
        rec: &mut Recorder,
        server: u32,
        op: BlockOp,
        parent: Option<EventId>,
    ) -> EventId {
        self.live.server_mut(server).apply_block(&op);
        rec.record(
            Layer::Block,
            Process::Server(server),
            Payload::Block { server, op },
            parent,
        )
    }

    fn serialize_dir(entries: &BTreeMap<String, String>) -> Vec<u8> {
        let mut s = String::new();
        for (name, rec) in entries {
            s.push_str(name);
            s.push('=');
            s.push_str(rec);
            s.push('\n');
        }
        s.into_bytes()
    }

    fn parse_dir(raw: &[u8]) -> BTreeMap<String, String> {
        let mut out = BTreeMap::new();
        for line in String::from_utf8_lossy(raw).lines() {
            if let Some((name, rec)) = line.split_once('=') {
                out.insert(name.to_string(), rec.to_string());
            }
        }
        out
    }

    /// Write the (whole) current entry block of the directory `dirid`.
    fn write_dirent_block(
        &mut self,
        rec: &mut Recorder,
        dirid: &str,
        group: u32,
        parent: Option<EventId>,
    ) -> EventId {
        let server = self.dir_server(dirid);
        let payload = Self::serialize_dir(&self.dirents[dirid]);
        self.emit(
            rec,
            server,
            BlockOp::write_in_group(
                Self::lba(&format!("dir:{dirid}")),
                StructTag::DirEntry(dirid.to_string()),
                payload,
                group,
            ),
            parent,
        )
    }

    fn write_log(
        &mut self,
        rec: &mut Recorder,
        server: u32,
        what: &str,
        group: u32,
        parent: Option<EventId>,
    ) -> EventId {
        self.emit(
            rec,
            server,
            BlockOp::write_in_group(
                Self::lba(&format!("log@{server}")),
                StructTag::LogFile,
                format!("log: {what}").into_bytes(),
                group,
            ),
            parent,
        )
    }

    fn write_inode(
        &mut self,
        rec: &mut Recorder,
        id: &str,
        payload: String,
        group: Option<u32>,
        parent: Option<EventId>,
    ) -> EventId {
        let server = self.id_server(id);
        let op = match group {
            Some(g) => BlockOp::write_in_group(
                Self::lba(&format!("inode:{id}")),
                StructTag::Inode(id.to_string()),
                payload.into_bytes(),
                g,
            ),
            None => BlockOp::write(
                Self::lba(&format!("inode:{id}")),
                StructTag::Inode(id.to_string()),
                payload.into_bytes(),
            ),
        };
        self.emit(rec, server, op, parent)
    }

    fn write_allocmap(
        &mut self,
        rec: &mut Recorder,
        server: u32,
        group: u32,
        parent: Option<EventId>,
    ) -> EventId {
        self.emit(
            rec,
            server,
            BlockOp::write_in_group(
                Self::lba(&format!("alloc@{server}")),
                StructTag::AllocMap,
                b"bitmap".to_vec(),
                group,
            ),
            parent,
        )
    }

    fn do_creat(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        path: &str,
        cev: EventId,
    ) -> PfsResult<()> {
        let pid = self.dir_id(&Self::parent_of(path))?;
        let id = format!("i{}", self.next_id);
        self.next_id += 1;
        let group = self.next_group;
        self.next_group += 1;
        let first = self.placement.file_index(path, self.n());
        let dsrv = self.dir_server(&pid);

        self.dirents_mut(&pid)
            .insert(Self::name_of(path).to_string(), format!("F:{id}"));

        let (_, recv) = self.net(rec).request(
            client,
            Process::Server(dsrv),
            &format!("CREATE {path}"),
            Some(cev),
        );
        self.write_log(rec, dsrv, &format!("create {path}"), group, Some(recv));
        self.write_dirent_block(rec, &pid, group, Some(recv));
        self.write_inode(
            rec,
            &id,
            format!("size=0;first={first}"),
            Some(group),
            Some(recv),
        );
        let isrv = self.id_server(&id);
        let w = self.write_allocmap(rec, isrv, group, Some(recv));
        self.net(rec)
            .reply(Process::Server(dsrv), client, "OK", Some(w));

        self.files.insert(
            path.to_string(),
            FileInfo {
                id,
                first,
                size: 0,
                chunks: BTreeMap::new(),
            },
        );
        Ok(())
    }

    fn do_mkdir(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        path: &str,
        cev: EventId,
    ) -> PfsResult<()> {
        let pid = self.dir_id(&Self::parent_of(path))?;
        let did = format!("d{}", self.next_id);
        self.next_id += 1;
        let group = self.next_group;
        self.next_group += 1;
        let dsrv = self.dir_server(&pid);
        self.dirents_mut(&pid)
            .insert(Self::name_of(path).to_string(), format!("D:{did}"));
        self.dirents.insert(did.clone(), BTreeMap::new());
        self.dirpaths.insert(path.to_string(), did.clone());
        let (_, recv) = self.net(rec).request(
            client,
            Process::Server(dsrv),
            &format!("MKDIR {path}"),
            Some(cev),
        );
        self.write_log(rec, dsrv, &format!("mkdir {path}"), group, Some(recv));
        self.write_dirent_block(rec, &pid, group, Some(recv));
        self.write_dirent_block(rec, &did, group, Some(recv));
        let w = self.write_inode(
            rec,
            &format!("dir:{did}"),
            "dir".into(),
            Some(group),
            Some(recv),
        );
        self.net(rec)
            .reply(Process::Server(dsrv), client, "OK", Some(w));
        Ok(())
    }

    fn do_pwrite(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        path: &str,
        offset: u64,
        data: &[u8],
        cev: EventId,
    ) -> PfsResult<()> {
        let info = self.file_info(path)?.clone();
        let n = self.n();
        let mut off = offset;
        let end = offset + data.len() as u64;
        while off < end {
            let stripe = off / self.stripe;
            let stripe_end = (stripe + 1) * self.stripe;
            let len = stripe_end.min(end) - off;
            let server = ((info.first + stripe as usize) % n) as u32;
            // Compose the whole chunk payload (block writes replace the
            // entire block).
            let stripe_sz = self.stripe;
            let f = self.file_mut(path);
            let chunk = f.chunks.entry(stripe).or_default();
            let local = (off - stripe * stripe_sz) as usize;
            if chunk.len() < local + len as usize {
                chunk.resize(local + len as usize, 0);
            }
            chunk[local..local + len as usize]
                .copy_from_slice(&data[(off - offset) as usize..(off - offset + len) as usize]);
            let payload = chunk.clone();
            let id = f.id.clone();
            let (_, recv) = self.net(rec).request(
                client,
                Process::Server(server),
                &format!("WRITE {path} stripe {stripe}"),
                Some(cev),
            );
            let w = self.emit(
                rec,
                server,
                BlockOp::write(
                    Self::lba(&format!("content:{id}.{stripe}")),
                    StructTag::FileContent(format!("{id}.{stripe}")),
                    payload,
                ),
                Some(recv),
            );
            self.net(rec)
                .reply(Process::Server(server), client, "OK", Some(w));
            self.dirty.entry(client).or_default().insert(server);
            off += len;
        }
        let f = self.file_mut(path);
        f.size = f.size.max(end);
        let (id, first, size) = (f.id.clone(), f.first, f.size);
        let isrv = self.id_server(&id);
        let (_, recv) = self.net(rec).request(
            client,
            Process::Server(isrv),
            &format!("SETATTR {path}"),
            Some(cev),
        );
        let w = self.write_inode(
            rec,
            &id,
            format!("size={size};first={first}"),
            None,
            Some(recv),
        );
        self.net(rec)
            .reply(Process::Server(isrv), client, "OK", Some(w));
        Ok(())
    }

    fn do_rename(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        src: &str,
        dst: &str,
        cev: EventId,
    ) -> PfsResult<()> {
        let spid = self.dir_id(&Self::parent_of(src))?;
        let dpid = self.dir_id(&Self::parent_of(dst))?;
        let group = self.next_group;
        self.next_group += 1;

        if self.dirpaths.contains_key(src) {
            // Directory rename: only the parent's entry block changes —
            // the directory's own (identity-keyed) block does not.
            let rec_entry = self
                .dirents_mut(&spid)
                .remove(Self::name_of(src))
                .ok_or_else(|| PfsError::UnknownPath(src.to_string()))?;
            self.dirents_mut(&dpid)
                .insert(Self::name_of(dst).to_string(), rec_entry);
            let moved: Vec<(String, String)> = self
                .dirpaths
                .keys()
                .chain(self.files.keys())
                .filter(|k| *k == src || k.starts_with(&format!("{src}/")))
                .map(|k| (k.clone(), format!("{dst}{}", &k[src.len()..])))
                .collect();
            for (old, new) in moved {
                if let Some(v) = self.dirpaths.remove(&old) {
                    self.dirpaths.insert(new.clone(), v);
                }
                if let Some(v) = self.files.remove(&old) {
                    self.files.insert(new, v);
                }
            }
            let dsrv = self.dir_server(&spid);
            let (_, recv) = self.net(rec).request(
                client,
                Process::Server(dsrv),
                &format!("RENAME {src} {dst}"),
                Some(cev),
            );
            self.write_log(rec, dsrv, &format!("rename {src} {dst}"), group, Some(recv));
            self.write_dirent_block(rec, &spid, group, Some(recv));
            let w = self.write_inode(
                rec,
                &format!("dir:{spid}"),
                "dir".into(),
                Some(group),
                Some(recv),
            );
            self.net(rec)
                .reply(Process::Server(dsrv), client, "OK", Some(w));
            return Ok(());
        }

        let info = self.file_info(src)?.clone();
        let overwritten = self.files.get(dst).cloned();
        let entry = self.dirents_mut(&spid).remove(Self::name_of(src));
        let entry = entry.unwrap_or(format!("F:{}", info.id));
        self.dirents_mut(&dpid)
            .insert(Self::name_of(dst).to_string(), entry);

        // Figure 9(d) / bug 3: the atomic group of the ARVR rename —
        // log + parent dir block (+ source dir block if different) on the
        // coordinating server, inode of the overwritten file elsewhere,
        // parent dir inode.
        let dsrv = self.dir_server(&dpid);
        let (_, recv) = self.net(rec).request(
            client,
            Process::Server(dsrv),
            &format!("RENAME {src} {dst}"),
            Some(cev),
        );
        self.write_log(rec, dsrv, &format!("rename {src} {dst}"), group, Some(recv));
        self.write_dirent_block(rec, &dpid, group, Some(recv));
        if spid != dpid {
            self.write_dirent_block(rec, &spid, group, Some(recv));
            self.write_inode(
                rec,
                &format!("dir:{spid}"),
                "dir".into(),
                Some(group),
                Some(recv),
            );
        }
        if let Some(old) = &overwritten {
            self.write_inode(
                rec,
                &old.id.clone(),
                "deleted".into(),
                Some(group),
                Some(recv),
            );
        }
        let w = self.write_inode(
            rec,
            &format!("dir:{dpid}"),
            "dir".into(),
            Some(group),
            Some(recv),
        );
        self.net(rec)
            .reply(Process::Server(dsrv), client, "OK", Some(w));

        self.files.remove(src);
        self.files.insert(dst.to_string(), info);
        Ok(())
    }

    fn do_unlink(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        path: &str,
        cev: EventId,
    ) -> PfsResult<()> {
        let pid = self.dir_id(&Self::parent_of(path))?;
        let info = self.file_info(path)?.clone();
        let group = self.next_group;
        self.next_group += 1;
        self.dirents_mut(&pid).remove(Self::name_of(path));
        let dsrv = self.dir_server(&pid);
        let (_, recv) = self.net(rec).request(
            client,
            Process::Server(dsrv),
            &format!("UNLINK {path}"),
            Some(cev),
        );
        self.write_log(rec, dsrv, &format!("unlink {path}"), group, Some(recv));
        self.write_dirent_block(rec, &pid, group, Some(recv));
        self.write_inode(
            rec,
            &info.id.clone(),
            "deleted".into(),
            Some(group),
            Some(recv),
        );
        let isrv = self.id_server(&info.id);
        let w = self.write_allocmap(rec, isrv, group, Some(recv));
        self.net(rec)
            .reply(Process::Server(dsrv), client, "OK", Some(w));
        self.files.remove(path);
        Ok(())
    }

    fn do_fsync(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        path: &str,
        cev: EventId,
    ) -> PfsResult<()> {
        let Some(info) = self.files.get(path).cloned() else {
            return Ok(());
        };
        // Barrier on every device holding a piece of the file.
        let n = self.n();
        let mut servers: Vec<u32> = info
            .chunks
            .keys()
            .map(|&s| ((info.first + s as usize) % n) as u32)
            .collect();
        servers.push(self.id_server(&info.id));
        servers.sort_unstable();
        servers.dedup();
        for server in servers {
            let (_, recv) = self.net(rec).request(
                client,
                Process::Server(server),
                &format!("SYNC {path}"),
                Some(cev),
            );
            let w = self.emit(rec, server, BlockOp::SyncCache, Some(recv));
            self.net(rec)
                .reply(Process::Server(server), client, "OK", Some(w));
        }
        Ok(())
    }

    /// Collect all blocks by tag across servers.
    fn collect(&self, states: &ServerStates) -> CollectedBlocks {
        let mut dirs = BTreeMap::new();
        let mut inodes = BTreeMap::new();
        let mut contents = BTreeMap::new();
        for (_, store) in states.iter() {
            for (_, tag, data) in store.as_block().iter() {
                match tag {
                    StructTag::DirEntry(d) => {
                        dirs.insert(d.clone(), Self::parse_dir(data));
                    }
                    StructTag::Inode(i) => {
                        inodes.insert(i.clone(), String::from_utf8_lossy(data).to_string());
                    }
                    StructTag::FileContent(c) => {
                        contents.insert(c.clone(), data.to_vec());
                    }
                    _ => {}
                }
            }
        }
        (dirs, inodes, contents)
    }

    fn walk(
        &self,
        dirid: &str,
        vpath: &str,
        dirs: &BTreeMap<String, BTreeMap<String, String>>,
        inodes: &BTreeMap<String, String>,
        contents: &BTreeMap<String, Vec<u8>>,
        view: &mut PfsView,
    ) {
        let Some(entries) = dirs.get(dirid) else {
            return;
        };
        for (name, record) in entries {
            let child = if vpath == "/" {
                format!("/{name}")
            } else {
                format!("{vpath}/{name}")
            };
            if let Some(did) = record.strip_prefix("D:") {
                view.add_dir(child.clone());
                self.walk(did, &child, dirs, inodes, contents, view);
            } else if let Some(id) = record.strip_prefix("F:") {
                let Some(ipayload) = inodes.get(id) else {
                    view.add_damaged_file(child);
                    continue;
                };
                if ipayload == "deleted" {
                    view.add_damaged_file(child);
                    continue;
                }
                // Content = the content blocks, in stripe order, until
                // the first gap.
                let mut buf = Vec::new();
                for stripe in 0.. {
                    match contents.get(&format!("{id}.{stripe}")) {
                        Some(d) => buf.extend_from_slice(d),
                        None => break,
                    }
                }
                view.add_file(child, buf);
            }
        }
    }
}

impl Pfs for Gpfs {
    fn name(&self) -> &'static str {
        "GPFS"
    }

    fn topology(&self) -> &ClusterTopology {
        &self.topo
    }

    fn stripe_size(&self) -> u64 {
        self.stripe
    }

    fn dispatch(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        call: &PfsCall,
        parent: Option<EventId>,
    ) -> PfsResult<EventId> {
        let cev = rec.record(
            Layer::PfsClient,
            client,
            Payload::Call {
                name: call.name().into(),
                args: call.args(),
            },
            parent,
        );
        if call.is_namespace_op() {
            self.flush_dirty(rec, client, cev);
        }
        match call {
            PfsCall::Creat { path } => self.do_creat(rec, client, path, cev)?,
            PfsCall::Mkdir { path } => self.do_mkdir(rec, client, path, cev)?,
            PfsCall::Pwrite { path, offset, data } => {
                self.do_pwrite(rec, client, path, *offset, data, cev)?
            }
            PfsCall::Rename { src, dst } => self.do_rename(rec, client, src, dst, cev)?,
            PfsCall::Unlink { path } => self.do_unlink(rec, client, path, cev)?,
            PfsCall::Rmdir { path } => {
                let pid = self.dir_id(&Self::parent_of(path))?;
                let group = self.next_group;
                self.next_group += 1;
                self.dirents_mut(&pid).remove(Self::name_of(path));
                if let Some(did) = self.dirpaths.remove(path) {
                    self.dirents.remove(&did);
                }
                let dsrv = self.dir_server(&pid);
                let (_, recv) = self.net(rec).request(
                    client,
                    Process::Server(dsrv),
                    &format!("RMDIR {path}"),
                    Some(cev),
                );
                self.write_log(rec, dsrv, &format!("rmdir {path}"), group, Some(recv));
                let w = self.write_dirent_block(rec, &pid, group, Some(recv));
                self.net(rec)
                    .reply(Process::Server(dsrv), client, "OK", Some(w));
            }
            PfsCall::Close { .. } => {}
            PfsCall::Fsync { path } => self.do_fsync(rec, client, path, cev)?,
        }
        Ok(cev)
    }

    fn seal_baseline(&mut self) {
        self.baseline = self.live.fork();
    }

    fn baseline(&self) -> &ServerStates {
        &self.baseline
    }

    fn live(&self) -> &ServerStates {
        &self.live
    }

    fn install_faults(&mut self, cfg: FaultConfig) {
        self.faults = FaultPlane::new(cfg);
    }

    fn recover(&self, states: &mut ServerStates) -> RecoveryReport {
        // mmfsck in "accept all fixes" mode: dangling directory entries
        // (missing or deleted inode) are removed; orphan inodes are
        // freed. Data lost by those fixes stays lost (Table 3 bug 3's
        // consequence).
        let _span = pc_rt::obs::span_cat("recover/GPFS", "pfs");
        let mut report = RecoveryReport::clean("mmfsck");
        let (dirs, inodes, _contents) = self.collect(states);
        let mut fixed_dirs: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
        for (dir, entries) in &dirs {
            let mut fixed = entries.clone();
            for (name, record) in entries {
                if let Some(id) = record.strip_prefix("F:") {
                    match inodes.get(id) {
                        None => {
                            report.finding(format!("entry {dir}/{name}: inode {id} block missing"));
                            fixed.remove(name);
                            report.repair(format!("removed entry {dir}/{name}"));
                            report.unrecovered_damage = true;
                        }
                        Some(p) if p == "deleted" => {
                            report
                                .finding(format!("entry {dir}/{name}: inode {id} marked deleted"));
                            fixed.remove(name);
                            report.repair(format!("removed entry {dir}/{name}"));
                            report.unrecovered_damage = true;
                        }
                        _ => {}
                    }
                }
            }
            if &fixed != entries {
                fixed_dirs.insert(dir.clone(), fixed);
            }
        }
        // Write repaired directory blocks back.
        for (dir, entries) in fixed_dirs {
            let server = self.dir_server(&dir);
            states
                .server_mut(server)
                .as_block_mut()
                .apply(&BlockOp::write(
                    Self::lba(&format!("dir:{dir}")),
                    StructTag::DirEntry(dir.clone()),
                    Self::serialize_dir(&entries),
                ));
        }
        report
    }

    fn client_view(&self, states: &ServerStates) -> PfsView {
        let (dirs, inodes, contents) = self.collect(states);
        let mut view = PfsView::new();
        self.walk("root", "/", &dirs, &inodes, &contents, &mut view);
        view
    }

    fn restart_cost_secs(&self) -> f64 {
        4.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recover_and_mount;

    fn run_arvr(fs: &mut Gpfs) -> Recorder {
        let c = Process::Client(0);
        let mut rec = Recorder::new();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Creat {
                path: "/file".into(),
            },
            None,
        )
        .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Pwrite {
                path: "/file".into(),
                offset: 0,
                data: b"old".to_vec(),
            },
            None,
        )
        .unwrap();
        fs.seal_baseline();
        let mut rec = Recorder::new();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Creat {
                path: "/tmp".into(),
            },
            None,
        )
        .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Pwrite {
                path: "/tmp".into(),
                offset: 0,
                data: b"new".to_vec(),
            },
            None,
        )
        .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Rename {
                src: "/tmp".into(),
                dst: "/file".into(),
            },
            None,
        )
        .unwrap();
        rec
    }

    #[test]
    fn rename_emits_an_atomic_group() {
        let mut fs = Gpfs::paper_default();
        let rec = run_arvr(&mut fs);
        // The rename's block writes share one atomic group with ≥ 3
        // members including the log (Figure 9(d)).
        let mut groups: BTreeMap<u32, usize> = BTreeMap::new();
        let mut group_has_log: BTreeMap<u32, bool> = BTreeMap::new();
        for id in rec.lowermost_events() {
            if let Payload::Block { op, .. } = &rec.event(id).payload {
                if let Some(g) = op.atomic_group() {
                    *groups.entry(g).or_default() += 1;
                    if matches!(op.tag(), Some(StructTag::LogFile)) {
                        group_has_log.insert(g, true);
                    }
                }
            }
        }
        assert!(groups.values().any(|&n| n >= 3));
        assert!(group_has_log.values().any(|&b| b));
    }

    #[test]
    fn live_view_after_arvr() {
        let mut fs = Gpfs::paper_default();
        let _ = run_arvr(&mut fs);
        let view = fs.client_view(fs.live());
        assert_eq!(view.read("/file"), Some(&b"new"[..]));
        assert!(!view.exists("/tmp"));
    }

    #[test]
    fn partial_group_dirent_without_inode_delete_is_metadata_leak() {
        // Persist the rename's dirent update but not the "deleted" mark
        // on the old inode: foo points at tmp's inode; the old inode
        // leaks (Table 3 bug 3, "metadata loss if inode entry not
        // deleted").
        let mut fs = Gpfs::paper_default();
        let rec = run_arvr(&mut fs);
        let keep: Vec<EventId> = rec
            .lowermost_events()
            .into_iter()
            .filter(|&id| {
                !matches!(&rec.event(id).payload,
                    Payload::Block { op, .. }
                        if matches!(op, BlockOp::Write { payload, .. } if payload == b"deleted"))
            })
            .collect();
        let mut states = fs.baseline().clone();
        states.apply_events(&rec, keep);
        let (_, view) = recover_and_mount(&fs, &mut states);
        assert_eq!(view.read("/file"), Some(&b"new"[..]));
    }

    #[test]
    fn partial_group_inode_delete_without_dirent_is_data_loss() {
        // Persist the "deleted" inode mark but not the dirent update:
        // foo's entry still names the old inode, which is deleted —
        // mmfsck removes the entry, the file is gone (bug 3, "data loss
        // accept all mmfsck fixes").
        let mut fs = Gpfs::paper_default();
        let rec = run_arvr(&mut fs);
        let keep: Vec<EventId> = rec
            .lowermost_events()
            .into_iter()
            .filter(|&id| {
                !matches!(&rec.event(id).payload,
                    Payload::Block { op, .. }
                        if matches!(op.tag(), Some(StructTag::DirEntry(_)))
                            && op.atomic_group().is_some()
                            // only drop the rename-group dirent write
                            && op.atomic_group() >= Some(2))
            })
            .collect();
        let mut states = fs.baseline().clone();
        states.apply_events(&rec, keep);
        let (report, view) = recover_and_mount(&fs, &mut states);
        assert!(report.unrecovered_damage);
        assert!(!view.exists("/file"), "{view}");
    }

    #[test]
    fn fsync_issues_synchronize_cache() {
        let mut fs = Gpfs::paper_default();
        let mut rec = Recorder::new();
        let c = Process::Client(0);
        fs.dispatch(&mut rec, c, &PfsCall::Creat { path: "/f".into() }, None)
            .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Pwrite {
                path: "/f".into(),
                offset: 0,
                data: b"d".to_vec(),
            },
            None,
        )
        .unwrap();
        fs.dispatch(&mut rec, c, &PfsCall::Fsync { path: "/f".into() }, None)
            .unwrap();
        assert!(rec.events().iter().any(|e| matches!(
            &e.payload,
            Payload::Block {
                op: BlockOp::SyncCache,
                ..
            }
        )));
    }

    #[test]
    fn directories_nest() {
        let mut fs = Gpfs::paper_default();
        let mut rec = Recorder::new();
        let c = Process::Client(0);
        fs.dispatch(&mut rec, c, &PfsCall::Mkdir { path: "/A".into() }, None)
            .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Creat {
                path: "/A/x".into(),
            },
            None,
        )
        .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Pwrite {
                path: "/A/x".into(),
                offset: 0,
                data: b"1".to_vec(),
            },
            None,
        )
        .unwrap();
        let view = fs.client_view(fs.live());
        assert!(view.has_dir("/A"));
        assert_eq!(view.read("/A/x"), Some(&b"1"[..]));
    }
}
