//! Direct ext4 baseline — no PFS at all.
//!
//! Figure 8 includes "ext4" as the control: the same POSIX test programs
//! run against a single local ext4 file system in data-journaling mode
//! leave *zero* inconsistent crash states. This model routes every client
//! call straight to one local FS, with rename remaining the single atomic
//! operation POSIX promises — exactly why the PFSs (which decompose it
//! across servers) are the ones that break.

use crate::call::PfsCall;
use crate::error::PfsResult;
use crate::store::ServerStates;
use crate::view::{PfsView, RecoveryReport};
use crate::Pfs;
use simfs::{FsOp, Fsck, JournalMode};
use simnet::ClusterTopology;
use tracer::{EventId, Layer, Payload, Process, Recorder};

/// A single local ext4 file system mounted directly.
pub struct Ext4Direct {
    topo: ClusterTopology,
    journal: JournalMode,
    live: ServerStates,
    baseline: ServerStates,
}

impl Ext4Direct {
    /// ext4 with the given journaling mode on one "server".
    pub fn new(journal: JournalMode) -> Self {
        let live = ServerStates::all_fs(1, journal);
        Ext4Direct {
            topo: ClusterTopology::combined(1, 2),
            journal,
            baseline: live.fork(),
            live,
        }
    }

    /// The paper's safest mode: data journaling.
    pub fn paper_default() -> Self {
        Self::new(JournalMode::Data)
    }

    /// The journaling mode in effect.
    pub fn journal_mode(&self) -> JournalMode {
        self.journal
    }

    fn emit(&mut self, rec: &mut Recorder, op: FsOp, parent: Option<EventId>) -> EventId {
        self.live.server_mut(0).apply_fs(&op);
        rec.record(
            Layer::LocalFs,
            Process::Server(0),
            Payload::Fs { server: 0, op },
            parent,
        )
    }

    fn walk(fs: &simfs::FsState, view: &mut PfsView) {
        for path in fs.walk() {
            if fs.is_dir(&path) {
                view.add_dir(path);
            } else if let Ok(data) = fs.read(&path) {
                view.add_file(path, data.to_vec());
            }
        }
    }
}

impl Pfs for Ext4Direct {
    fn name(&self) -> &'static str {
        "ext4"
    }

    fn topology(&self) -> &ClusterTopology {
        &self.topo
    }

    fn stripe_size(&self) -> u64 {
        u64::MAX // no striping
    }

    fn dispatch(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        call: &PfsCall,
        parent: Option<EventId>,
    ) -> PfsResult<EventId> {
        let cev = rec.record(
            Layer::PfsClient,
            client,
            Payload::Call {
                name: call.name().into(),
                args: call.args(),
            },
            parent,
        );
        match call {
            PfsCall::Creat { path } => {
                self.emit(rec, FsOp::Creat { path: path.clone() }, Some(cev));
            }
            PfsCall::Mkdir { path } => {
                self.emit(rec, FsOp::Mkdir { path: path.clone() }, Some(cev));
            }
            PfsCall::Pwrite { path, offset, data } => {
                self.emit(
                    rec,
                    FsOp::Pwrite {
                        path: path.clone(),
                        offset: *offset,
                        data: data.clone(),
                    },
                    Some(cev),
                );
            }
            PfsCall::Rename { src, dst } => {
                self.emit(
                    rec,
                    FsOp::Rename {
                        src: src.clone(),
                        dst: dst.clone(),
                    },
                    Some(cev),
                );
            }
            PfsCall::Unlink { path } => {
                self.emit(rec, FsOp::Unlink { path: path.clone() }, Some(cev));
            }
            PfsCall::Rmdir { path } => {
                self.emit(rec, FsOp::Rmdir { path: path.clone() }, Some(cev));
            }
            PfsCall::Close { .. } => {}
            PfsCall::Fsync { path } => {
                self.emit(rec, FsOp::Fsync { path: path.clone() }, Some(cev));
            }
        }
        Ok(cev)
    }

    fn seal_baseline(&mut self) {
        self.baseline = self.live.fork();
    }

    fn baseline(&self) -> &ServerStates {
        &self.baseline
    }

    fn live(&self) -> &ServerStates {
        &self.live
    }

    fn recover(&self, states: &mut ServerStates) -> RecoveryReport {
        let _span = pc_rt::obs::span_cat("recover/ext4", "pfs");
        let mut report = RecoveryReport::clean("e2fsck");
        for issue in Fsck::check(states.server(0).as_fs()) {
            report.finding(issue.to_string());
        }
        report
    }

    fn client_view(&self, states: &ServerStates) -> PfsView {
        let mut view = PfsView::new();
        Self::walk(states.server(0).as_fs(), &mut view);
        view
    }

    fn restart_cost_secs(&self) -> f64 {
        0.3 // remount only
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arvr_on_ext4_rename_is_atomic() {
        let mut fs = Ext4Direct::paper_default();
        let mut rec = Recorder::new();
        let c = Process::Client(0);
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Creat {
                path: "/file".into(),
            },
            None,
        )
        .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Pwrite {
                path: "/file".into(),
                offset: 0,
                data: b"old".to_vec(),
            },
            None,
        )
        .unwrap();
        fs.seal_baseline();
        let mut rec = Recorder::new();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Creat {
                path: "/tmp".into(),
            },
            None,
        )
        .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Pwrite {
                path: "/tmp".into(),
                offset: 0,
                data: b"new".to_vec(),
            },
            None,
        )
        .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Rename {
                src: "/tmp".into(),
                dst: "/file".into(),
            },
            None,
        )
        .unwrap();
        // Every prefix of the lowermost ops yields a legal intermediate
        // view under data journaling.
        let low = rec.lowermost_events();
        for k in 0..=low.len() {
            let mut states = fs.baseline().clone();
            states.apply_events(&rec, low[..k].iter().copied());
            let view = fs.client_view(&states);
            let file = view.read("/file");
            assert!(
                file == Some(&b"old"[..]) || file == Some(&b"new"[..]),
                "prefix {k} produced inconsistent file content"
            );
        }
    }

    #[test]
    fn journal_mode_is_configurable() {
        let fs = Ext4Direct::new(JournalMode::Writeback);
        assert_eq!(fs.live().server(0).journal(), Some(JournalMode::Writeback));
        assert_eq!(fs.journal, JournalMode::Writeback);
    }

    #[test]
    fn view_walks_directories() {
        let mut fs = Ext4Direct::paper_default();
        let mut rec = Recorder::new();
        let c = Process::Client(0);
        fs.dispatch(&mut rec, c, &PfsCall::Mkdir { path: "/A".into() }, None)
            .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Creat {
                path: "/A/f".into(),
            },
            None,
        )
        .unwrap();
        let view = fs.client_view(fs.live());
        assert!(view.has_dir("/A"));
        assert!(view.exists("/A/f"));
        assert!(fs.recover(&mut fs.live().clone()).is_clean());
    }
}
