//! OrangeFS (PVFS2) model.
//!
//! OrangeFS (Table 2: v2.9.7) keeps its metadata in Berkeley DB on the
//! metadata servers. The paper's Figure 9(b) trace shows the key
//! behaviour: **every DB page update is immediately followed by
//! `fdatasync`** (`pwrite(keyval.db); fdatasync(keyval.db);
//! pwrite(attrs.db); fdatasync(attrs.db)`), so metadata-server updates
//! are durable, in order, at the moment the server replies. That
//! suppresses Table 3 bug 2 (the storage-side cleanup can never be
//! persisted "before" rename metadata that is already on disk), but
//! leaves bug 1 (unsynced storage-side data vs. synced metadata) and
//! bug 4 (the CR program's *insert-new / delete-old* record pair is
//! issued as two separately-synced updates with a vulnerable window that
//! `pvfs2-fsck` cannot repair).
//!
//! Layout:
//!
//! ```text
//! metadata server:  /db/keyval.db   append-only dentry records, each
//!                                   followed by fdatasync
//!                   /db/attrs.db    append-only attribute records, ditto
//! storage server:   /bstreams/<handle>.<stripe>
//! ```
//!
//! Record grammar (one record per line):
//! `I <dirkey> <name> F <handle>` / `I <dirkey> <name> D <key>:<owner>` /
//! `D <dirkey> <name>` in `keyval.db`;
//! `A <handle> size=<n>;first=<idx>` / `R <handle>` in `attrs.db`.

use crate::call::PfsCall;
use crate::error::{PfsError, PfsResult};
use crate::placement::Placement;
use crate::store::ServerStates;
use crate::view::{PfsView, RecoveryReport};
use crate::Pfs;
use simfs::{FsOp, FsState, JournalMode};
use simnet::{ClusterTopology, FaultConfig, FaultPlane, RpcNet};
use std::collections::BTreeMap;
use tracer::{EventId, Layer, Payload, Process, Recorder};

#[derive(Debug, Clone)]
struct DirInfo {
    key: String,
    owner: usize,
}

#[derive(Debug, Clone)]
struct FileInfo {
    handle: String,
    first: usize,
    size: u64,
    chunks: BTreeMap<u64, u64>,
}

/// The OrangeFS model.
pub struct OrangeFs {
    topo: ClusterTopology,
    placement: Placement,
    stripe: u64,
    live: ServerStates,
    baseline: ServerStates,
    dirs: BTreeMap<String, DirInfo>,
    files: BTreeMap<String, FileInfo>,
    next_id: u64,
    faults: FaultPlane,
}

impl OrangeFs {
    /// A formatted OrangeFS instance.
    pub fn new(topo: ClusterTopology, placement: Placement, stripe: u64) -> Self {
        Self::with_journal(topo, placement, stripe, JournalMode::Data)
    }

    /// Same, with an explicit local-FS journaling mode for the servers'
    /// backing stores (the fuzzer's journaling-mode sweep; the paper's
    /// deployment runs data journaling).
    pub fn with_journal(
        topo: ClusterTopology,
        placement: Placement,
        stripe: u64,
        journal: JournalMode,
    ) -> Self {
        let mut live = ServerStates::all_fs(topo.server_count(), journal);
        for &m in &topo.metadata_servers() {
            let fs = live.server_mut(m).as_fs_mut();
            fs.mkdir_all("/db").unwrap();
            fs.creat("/db/keyval.db").unwrap();
            fs.creat("/db/attrs.db").unwrap();
        }
        for &s in &topo.storage_servers() {
            live.server_mut(s)
                .as_fs_mut()
                .mkdir_all("/bstreams")
                .unwrap();
        }
        let root_owner = placement.dir_index("/", topo.metadata_servers().len());
        let mut dirs = BTreeMap::new();
        dirs.insert(
            "/".to_string(),
            DirInfo {
                key: "root".into(),
                owner: root_owner,
            },
        );
        OrangeFs {
            topo,
            placement,
            stripe,
            baseline: live.fork(),
            live,
            dirs,
            files: BTreeMap::new(),
            next_id: 0,
            faults: FaultPlane::disabled(),
        }
    }

    /// Paper default: 2 metadata + 2 storage servers, 128 KiB stripes.
    pub fn paper_default() -> Self {
        OrangeFs::new(
            ClusterTopology::paper_dedicated_default(),
            Placement::new(),
            128 * 1024,
        )
    }

    fn meta_server(&self, idx: usize) -> u32 {
        self.topo.metadata_servers()[idx]
    }

    fn storage_server(&self, idx: usize) -> u32 {
        self.topo.storage_servers()[idx]
    }

    fn n_storage(&self) -> usize {
        self.topo.storage_servers().len()
    }

    fn parent_of(path: &str) -> String {
        match path.rfind('/') {
            Some(0) => "/".to_string(),
            Some(i) => path[..i].to_string(),
            None => "/".to_string(),
        }
    }

    fn name_of(path: &str) -> &str {
        path.rsplit('/').next().unwrap_or(path)
    }

    fn emit(
        &mut self,
        rec: &mut Recorder,
        server: u32,
        op: FsOp,
        parent: Option<EventId>,
    ) -> EventId {
        self.live.server_mut(server).apply_fs(&op);
        rec.record(
            Layer::LocalFs,
            Process::Server(server),
            Payload::Fs { server, op },
            parent,
        )
    }

    /// One durable DB update: append the record, then `fdatasync` —
    /// exactly the Figure 9(b) pattern.
    fn db_update(
        &mut self,
        rec: &mut Recorder,
        meta: u32,
        db: &str,
        record: String,
        parent: Option<EventId>,
    ) -> EventId {
        let path = format!("/db/{db}");
        let w = self.emit(
            rec,
            meta,
            FsOp::Append {
                path: path.clone(),
                data: format!("{record}\n").into_bytes(),
            },
            parent,
        );
        self.emit(rec, meta, FsOp::Fdatasync { path }, Some(w));
        w
    }

    fn bstream_path(handle: &str, stripe: u64) -> String {
        format!("/bstreams/{handle}.{stripe}")
    }

    fn dir_info(&self, path: &str) -> PfsResult<&DirInfo> {
        self.dirs
            .get(path)
            .ok_or_else(|| PfsError::UnknownPath(path.to_string()))
    }

    fn file_info(&self, path: &str) -> PfsResult<&FileInfo> {
        self.files
            .get(path)
            .ok_or_else(|| PfsError::UnknownPath(path.to_string()))
    }

    fn file_mut(&mut self, path: &str) -> &mut FileInfo {
        self.files
            .get_mut(path)
            .expect("invariant: file checked present earlier in this call")
    }

    /// RPC net routed through this instance's fault plane.
    fn net<'a>(&'a mut self, rec: &'a mut Recorder) -> RpcNet<'a> {
        RpcNet::faulty(rec, &mut self.faults)
    }

    fn do_creat(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        path: &str,
        cev: EventId,
    ) -> PfsResult<()> {
        let pinfo = self.dir_info(&Self::parent_of(path))?.clone();
        let meta = self.meta_server(pinfo.owner);
        let handle = format!("h{}", self.next_id);
        self.next_id += 1;
        let first = self.placement.file_index(path, self.n_storage());
        let (_, recv) = self.net(rec).request(
            client,
            Process::Server(meta),
            &format!("CREATE {path}"),
            Some(cev),
        );
        self.db_update(
            rec,
            meta,
            "keyval.db",
            format!("I {} {} F {handle}", pinfo.key, Self::name_of(path)),
            Some(recv),
        );
        let w = self.db_update(
            rec,
            meta,
            "attrs.db",
            format!("A {handle} size=0;first={first}"),
            Some(recv),
        );
        self.net(rec)
            .reply(Process::Server(meta), client, "OK", Some(w));
        self.files.insert(
            path.to_string(),
            FileInfo {
                handle,
                first,
                size: 0,
                chunks: BTreeMap::new(),
            },
        );
        Ok(())
    }

    fn do_mkdir(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        path: &str,
        cev: EventId,
    ) -> PfsResult<()> {
        let pinfo = self.dir_info(&Self::parent_of(path))?.clone();
        let key = format!("d{}", self.next_id);
        self.next_id += 1;
        let owner = self
            .placement
            .dir_index(path, self.topo.metadata_servers().len());
        let meta = self.meta_server(pinfo.owner);
        let (_, recv) = self.net(rec).request(
            client,
            Process::Server(meta),
            &format!("MKDIR {path}"),
            Some(cev),
        );
        let w = self.db_update(
            rec,
            meta,
            "keyval.db",
            format!("I {} {} D {key}:{owner}", pinfo.key, Self::name_of(path)),
            Some(recv),
        );
        self.net(rec)
            .reply(Process::Server(meta), client, "OK", Some(w));
        self.dirs.insert(path.to_string(), DirInfo { key, owner });
        Ok(())
    }

    fn do_pwrite(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        path: &str,
        offset: u64,
        data: &[u8],
        cev: EventId,
    ) -> PfsResult<()> {
        let info = self.file_info(path)?.clone();
        let n = self.n_storage();
        let mut off = offset;
        let end = offset + data.len() as u64;
        while off < end {
            let stripe = off / self.stripe;
            let stripe_end = (stripe + 1) * self.stripe;
            let len = stripe_end.min(end) - off;
            let storage = self.storage_server((info.first + stripe as usize) % n);
            let (_, recv) = self.net(rec).request(
                client,
                Process::Server(storage),
                &format!("WRITE {path} stripe {stripe}"),
                Some(cev),
            );
            let bs = Self::bstream_path(&info.handle, stripe);
            let cur = self
                .files
                .get(path)
                .and_then(|f| f.chunks.get(&stripe))
                .copied();
            if cur.is_none() {
                self.emit(rec, storage, FsOp::Creat { path: bs.clone() }, Some(recv));
                self.file_mut(path).chunks.insert(stripe, 0);
            }
            let cur = self.file_mut(path).chunks[&stripe];
            let local = off - stripe * self.stripe;
            let buf = data[(off - offset) as usize..(off - offset + len) as usize].to_vec();
            // bstream writes are NOT followed by fdatasync: only the
            // metadata side of OrangeFS is durable-by-construction
            // (this asymmetry is Table 3 bug 1).
            let op = if local == cur {
                FsOp::Append {
                    path: bs,
                    data: buf,
                }
            } else {
                FsOp::Pwrite {
                    path: bs,
                    offset: local,
                    data: buf,
                }
            };
            let w = self.emit(rec, storage, op, Some(recv));
            self.file_mut(path)
                .chunks
                .insert(stripe, (local + len).max(cur));
            self.net(rec)
                .reply(Process::Server(storage), client, "OK", Some(w));
            off += len;
        }
        // Durable size update in attrs.db on the metadata server.
        let f = self.file_mut(path);
        f.size = f.size.max(end);
        let (handle, first, size) = (f.handle.clone(), f.first, f.size);
        let pinfo = self.dir_info(&Self::parent_of(path))?.clone();
        let meta = self.meta_server(pinfo.owner);
        let (_, recv) = self.net(rec).request(
            client,
            Process::Server(meta),
            &format!("SETATTR {path}"),
            Some(cev),
        );
        let w = self.db_update(
            rec,
            meta,
            "attrs.db",
            format!("A {handle} size={size};first={first}"),
            Some(recv),
        );
        self.net(rec)
            .reply(Process::Server(meta), client, "OK", Some(w));
        Ok(())
    }

    fn do_rename(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        src: &str,
        dst: &str,
        cev: EventId,
    ) -> PfsResult<()> {
        if self.dirs.contains_key(src) {
            // Directory rename within one parent: a single keyval record
            // (one atomic DB page update).
            let pinfo = self.dir_info(&Self::parent_of(src))?.clone();
            let meta = self.meta_server(pinfo.owner);
            let (_, recv) = self.net(rec).request(
                client,
                Process::Server(meta),
                &format!("RENAME {src} {dst}"),
                Some(cev),
            );
            let w = self.db_update(
                rec,
                meta,
                "keyval.db",
                format!(
                    "M {} {} {}",
                    pinfo.key,
                    Self::name_of(src),
                    Self::name_of(dst)
                ),
                Some(recv),
            );
            self.net(rec)
                .reply(Process::Server(meta), client, "OK", Some(w));
            let moved: Vec<(String, String)> = self
                .dirs
                .keys()
                .chain(self.files.keys())
                .filter(|k| *k == src || k.starts_with(&format!("{src}/")))
                .map(|k| (k.clone(), format!("{dst}{}", &k[src.len()..])))
                .collect();
            for (old, new) in moved {
                if let Some(v) = self.dirs.remove(&old) {
                    self.dirs.insert(new.clone(), v);
                }
                if let Some(v) = self.files.remove(&old) {
                    self.files.insert(new, v);
                }
            }
            return Ok(());
        }
        let info = self.file_info(src)?.clone();
        let overwritten = self.files.get(dst).cloned();
        let spinfo = self.dir_info(&Self::parent_of(src))?.clone();
        let dpinfo = self.dir_info(&Self::parent_of(dst))?.clone();
        let smeta = self.meta_server(spinfo.owner);
        let dmeta = self.meta_server(dpinfo.owner);

        // Same-directory rename: a single keyval record (one DB page
        // update — Figure 9(b) traces exactly one `pwrite(keyval.db);
        // fdatasync` pair for the ARVR rename), so no vulnerable window.
        // Cross-directory rename (the CR program): OrangeFS issues the
        // *insert before the delete* — the "updates … not issued in the
        // correct order" of §6.3.1 — leaving a durable window in which
        // the file exists in both directories (bug 4).
        let (_, recv) = self.net(rec).request(
            client,
            Process::Server(dmeta),
            &format!("RENAME {src} {dst}"),
            Some(cev),
        );
        let mut last_meta_work;
        if spinfo.key == dpinfo.key {
            last_meta_work = self.db_update(
                rec,
                smeta,
                "keyval.db",
                format!(
                    "M {} {} {}",
                    spinfo.key,
                    Self::name_of(src),
                    Self::name_of(dst)
                ),
                Some(recv),
            );
        } else {
            last_meta_work = self.db_update(
                rec,
                dmeta,
                "keyval.db",
                format!("I {} {} F {}", dpinfo.key, Self::name_of(dst), info.handle),
                Some(recv),
            );
            let (_, recv2) = self.net(rec).request(
                client,
                Process::Server(smeta),
                &format!("RENAME-OUT {src}"),
                Some(cev),
            );
            let w = self.db_update(
                rec,
                smeta,
                "keyval.db",
                format!("D {} {}", spinfo.key, Self::name_of(src)),
                Some(recv2),
            );
            self.net(rec)
                .reply(Process::Server(smeta), client, "OK", Some(w));
        }
        if let Some(old) = &overwritten {
            last_meta_work = self.db_update(
                rec,
                dmeta,
                "attrs.db",
                format!("R {}", old.handle),
                Some(recv),
            );
        }
        self.net(rec)
            .reply(Process::Server(dmeta), client, "OK", Some(last_meta_work));

        // Storage-side cleanup of the overwritten file's bstreams:
        // rename to `stranded`, then unlink (Figure 9(b)).
        if let Some(old) = &overwritten {
            self.strand_bstreams(rec, dmeta, old);
        }
        self.files.remove(src);
        self.files.insert(dst.to_string(), info);
        Ok(())
    }

    fn strand_bstreams(&mut self, rec: &mut Recorder, meta: u32, info: &FileInfo) {
        let n = self.n_storage();
        for &stripe in info.chunks.keys() {
            let storage = self.storage_server((info.first + stripe as usize) % n);
            let (_, recv) = self.net(rec).message(
                Process::Server(meta),
                Process::Server(storage),
                &format!("REMOVE-BSTREAM {}.{stripe}", info.handle),
                None,
            );
            let bs = Self::bstream_path(&info.handle, stripe);
            let stranded = format!("/bstreams/stranded-{}.{stripe}", info.handle);
            let r = self.emit(
                rec,
                storage,
                FsOp::Rename {
                    src: bs,
                    dst: stranded.clone(),
                },
                Some(recv),
            );
            self.emit(rec, storage, FsOp::Unlink { path: stranded }, Some(r));
        }
    }

    fn do_unlink(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        path: &str,
        cev: EventId,
    ) -> PfsResult<()> {
        let info = self.file_info(path)?.clone();
        let pinfo = self.dir_info(&Self::parent_of(path))?.clone();
        let meta = self.meta_server(pinfo.owner);
        let (_, recv) = self.net(rec).request(
            client,
            Process::Server(meta),
            &format!("UNLINK {path}"),
            Some(cev),
        );
        self.db_update(
            rec,
            meta,
            "keyval.db",
            format!("D {} {}", pinfo.key, Self::name_of(path)),
            Some(recv),
        );
        let w = self.db_update(
            rec,
            meta,
            "attrs.db",
            format!("R {}", info.handle),
            Some(recv),
        );
        self.net(rec)
            .reply(Process::Server(meta), client, "OK", Some(w));
        self.strand_bstreams(rec, meta, &info);
        self.files.remove(path);
        Ok(())
    }

    fn do_fsync(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        path: &str,
        cev: EventId,
    ) -> PfsResult<()> {
        let Some(info) = self.files.get(path).cloned() else {
            return Ok(());
        };
        let n = self.n_storage();
        for &stripe in info.chunks.keys() {
            let storage = self.storage_server((info.first + stripe as usize) % n);
            let (_, recv) = self.net(rec).request(
                client,
                Process::Server(storage),
                &format!("FLUSH {path} stripe {stripe}"),
                Some(cev),
            );
            let w = self.emit(
                rec,
                storage,
                FsOp::Fdatasync {
                    path: Self::bstream_path(&info.handle, stripe),
                },
                Some(recv),
            );
            self.net(rec)
                .reply(Process::Server(storage), client, "OK", Some(w));
        }
        Ok(())
    }

    /// Replay a keyval.db file into `dirkey → name → record` maps.
    fn parse_keyval(fs: &FsState) -> BTreeMap<String, BTreeMap<String, String>> {
        let mut out: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
        let Ok(raw) = fs.read("/db/keyval.db") else {
            return out;
        };
        for line in String::from_utf8_lossy(raw).lines() {
            let parts: Vec<&str> = line.split_whitespace().collect();
            match parts.as_slice() {
                ["I", dirkey, name, rest @ ..] => {
                    out.entry(dirkey.to_string())
                        .or_default()
                        .insert(name.to_string(), rest.join(" "));
                }
                ["D", dirkey, name] => {
                    out.entry(dirkey.to_string()).or_default().remove(*name);
                }
                ["M", dirkey, old, new] => {
                    let entry = out.entry(dirkey.to_string()).or_default().remove(*old);
                    if let Some(entry) = entry {
                        out.entry(dirkey.to_string())
                            .or_default()
                            .insert(new.to_string(), entry);
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Replay an attrs.db file into `handle → attrs` maps.
    fn parse_attrs(fs: &FsState) -> BTreeMap<String, String> {
        let mut out = BTreeMap::new();
        let Ok(raw) = fs.read("/db/attrs.db") else {
            return out;
        };
        for line in String::from_utf8_lossy(raw).lines() {
            let parts: Vec<&str> = line.splitn(3, ' ').collect();
            match parts.as_slice() {
                ["A", handle, attrs] => {
                    out.insert(handle.to_string(), attrs.to_string());
                }
                ["R", handle] => {
                    out.remove(*handle);
                }
                _ => {}
            }
        }
        out
    }

    fn walk_dir(
        &self,
        states: &ServerStates,
        key: &str,
        owner: usize,
        vpath: &str,
        view: &mut PfsView,
    ) {
        let meta = self.meta_server(owner);
        let fs = states.server(meta).as_fs();
        let keyval = Self::parse_keyval(fs);
        // Attributes live on the metadata server that created the handle
        // — not necessarily the directory's owner — so resolve against
        // the union of all attrs databases.
        let mut attrs = BTreeMap::new();
        for &m in &self.topo.metadata_servers() {
            attrs.extend(Self::parse_attrs(states.server(m).as_fs()));
        }
        let Some(entries) = keyval.get(key) else {
            return;
        };
        for (name, record) in entries {
            let child = if vpath == "/" {
                format!("/{name}")
            } else {
                format!("{vpath}/{name}")
            };
            let parts: Vec<&str> = record.split_whitespace().collect();
            match parts.as_slice() {
                ["D", spec] => {
                    let (ckey, cowner) = spec.split_once(':').unwrap_or(("?", "0"));
                    view.add_dir(child.clone());
                    self.walk_dir(states, ckey, cowner.parse().unwrap_or(0), &child, view);
                }
                ["F", handle] => {
                    let Some(a) = attrs.get(*handle) else {
                        // A dentry whose handle has no attributes yet is
                        // an in-flight create: lookups fail, the file is
                        // simply not visible.
                        continue;
                    };
                    let mut first = 0usize;
                    for p in a.split(';') {
                        if let Some(v) = p.strip_prefix("first=") {
                            first = v.parse().unwrap_or(0);
                        }
                    }
                    // Content = the bstreams, concatenated until the
                    // first gap.
                    let mut content = Vec::new();
                    for stripe in 0.. {
                        let storage =
                            self.storage_server((first + stripe as usize) % self.n_storage());
                        match states
                            .server(storage)
                            .as_fs()
                            .read(&Self::bstream_path(handle, stripe))
                        {
                            Ok(d) => content.extend_from_slice(d),
                            Err(_) => break,
                        }
                    }
                    view.add_file(child, content);
                }
                _ => {}
            }
        }
    }
}

impl Pfs for OrangeFs {
    fn name(&self) -> &'static str {
        "OrangeFS"
    }

    fn topology(&self) -> &ClusterTopology {
        &self.topo
    }

    fn stripe_size(&self) -> u64 {
        self.stripe
    }

    fn dispatch(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        call: &PfsCall,
        parent: Option<EventId>,
    ) -> PfsResult<EventId> {
        let cev = rec.record(
            Layer::PfsClient,
            client,
            Payload::Call {
                name: call.name().into(),
                args: call.args(),
            },
            parent,
        );
        match call {
            PfsCall::Creat { path } => self.do_creat(rec, client, path, cev)?,
            PfsCall::Mkdir { path } => self.do_mkdir(rec, client, path, cev)?,
            PfsCall::Pwrite { path, offset, data } => {
                self.do_pwrite(rec, client, path, *offset, data, cev)?
            }
            PfsCall::Rename { src, dst } => self.do_rename(rec, client, src, dst, cev)?,
            PfsCall::Unlink { path } => self.do_unlink(rec, client, path, cev)?,
            PfsCall::Rmdir { path } => {
                let pinfo = self.dir_info(&Self::parent_of(path))?.clone();
                let meta = self.meta_server(pinfo.owner);
                let (_, recv) = self.net(rec).request(
                    client,
                    Process::Server(meta),
                    &format!("RMDIR {path}"),
                    Some(cev),
                );
                let w = self.db_update(
                    rec,
                    meta,
                    "keyval.db",
                    format!("D {} {}", pinfo.key, Self::name_of(path)),
                    Some(recv),
                );
                self.net(rec)
                    .reply(Process::Server(meta), client, "OK", Some(w));
                self.dirs.remove(path);
            }
            PfsCall::Close { .. } => {}
            PfsCall::Fsync { path } => self.do_fsync(rec, client, path, cev)?,
        }
        Ok(cev)
    }

    fn seal_baseline(&mut self) {
        self.baseline = self.live.fork();
    }

    fn baseline(&self) -> &ServerStates {
        &self.baseline
    }

    fn live(&self) -> &ServerStates {
        &self.live
    }

    fn install_faults(&mut self, cfg: FaultConfig) {
        self.faults = FaultPlane::new(cfg);
    }

    fn recover(&self, states: &mut ServerStates) -> RecoveryReport {
        // pvfs2-fsck: collects stranded bstreams and reports dangling
        // dentries; it cannot repair mis-ordered DB records (§6.3.1).
        let _span = pc_rt::obs::span_cat("recover/OrangeFS", "pfs");
        let mut report = RecoveryReport::clean("pvfs2-fsck");
        let mut live_handles: Vec<String> = Vec::new();
        for &m in &self.topo.metadata_servers() {
            let fs = states.server(m).as_fs();
            live_handles.extend(Self::parse_attrs(fs).keys().cloned());
            for (dirkey, entries) in Self::parse_keyval(fs) {
                for (name, record) in entries {
                    if let Some(handle) = record.strip_prefix("F ") {
                        if !Self::parse_attrs(fs).contains_key(handle) {
                            report.finding(format!(
                                "dangling dentry {dirkey}/{name} -> handle {handle} without attributes"
                            ));
                            report.unrecovered_damage = true;
                        }
                    }
                }
            }
        }
        for &s in &self.topo.storage_servers() {
            let fs = states.server(s).as_fs().fork();
            let Ok(names) = fs.readdir("/bstreams") else {
                continue;
            };
            for name in names {
                let handle = name
                    .strip_prefix("stranded-")
                    .unwrap_or(&name)
                    .split('.')
                    .next()
                    .unwrap_or("")
                    .to_string();
                if name.starts_with("stranded-") || !live_handles.contains(&handle) {
                    report.finding(format!("orphan bstream {name} on storage#{s}"));
                    let _ = states
                        .server_mut(s)
                        .as_fs_mut()
                        .unlink(&format!("/bstreams/{name}"));
                    report.repair(format!("collected {name}"));
                }
            }
        }
        report
    }

    fn client_view(&self, states: &ServerStates) -> PfsView {
        let mut view = PfsView::new();
        let root_owner = self
            .placement
            .dir_index("/", self.topo.metadata_servers().len());
        self.walk_dir(states, "root", root_owner, "/", &mut view);
        view
    }

    fn restart_cost_secs(&self) -> f64 {
        1.8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_updates_are_each_followed_by_fdatasync() {
        let mut fs = OrangeFs::paper_default();
        let mut rec = Recorder::new();
        let c = Process::Client(0);
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Creat {
                path: "/foo".into(),
            },
            None,
        )
        .unwrap();
        let ops: Vec<&FsOp> = rec
            .lowermost_events()
            .into_iter()
            .filter_map(|id| match &rec.event(id).payload {
                Payload::Fs { op, .. } => Some(op),
                _ => None,
            })
            .collect();
        // Appends to DB files alternate with fdatasync.
        for w in ops.windows(2) {
            if let FsOp::Append { path, .. } = w[0] {
                if path.starts_with("/db/") {
                    assert!(
                        matches!(w[1], FsOp::Fdatasync { path: p } if p == path),
                        "DB append not followed by fdatasync"
                    );
                }
            }
        }
    }

    #[test]
    fn view_reconstructs_files_from_db_and_bstreams() {
        let mut fs = OrangeFs::paper_default();
        let mut rec = Recorder::new();
        let c = Process::Client(0);
        fs.dispatch(&mut rec, c, &PfsCall::Mkdir { path: "/A".into() }, None)
            .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Creat {
                path: "/A/foo".into(),
            },
            None,
        )
        .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Pwrite {
                path: "/A/foo".into(),
                offset: 0,
                data: b"orange".to_vec(),
            },
            None,
        )
        .unwrap();
        let view = fs.client_view(fs.live());
        assert!(view.has_dir("/A"));
        assert_eq!(view.read("/A/foo"), Some(&b"orange"[..]));
    }

    #[test]
    fn same_dir_rename_is_one_atomic_record() {
        let mut fs = OrangeFs::paper_default();
        let mut rec = Recorder::new();
        let c = Process::Client(0);
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Creat {
                path: "/tmp".into(),
            },
            None,
        )
        .unwrap();
        let before = rec.len();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Rename {
                src: "/tmp".into(),
                dst: "/file".into(),
            },
            None,
        )
        .unwrap();
        let records: Vec<String> = rec.events()[before..]
            .iter()
            .filter_map(|e| match &e.payload {
                Payload::Fs {
                    op: FsOp::Append { data, .. },
                    ..
                } => Some(String::from_utf8_lossy(data).to_string()),
                _ => None,
            })
            .collect();
        assert_eq!(records.len(), 1, "{records:?}");
        assert!(records[0].starts_with("M "));
        let view = fs.client_view(fs.live());
        assert!(view.exists("/file") && !view.exists("/tmp"));
    }

    #[test]
    fn cross_dir_rename_is_insert_then_delete_bug4_window() {
        let mut fs = OrangeFs::paper_default();
        let mut rec = Recorder::new();
        let c = Process::Client(0);
        fs.dispatch(&mut rec, c, &PfsCall::Mkdir { path: "/A".into() }, None)
            .unwrap();
        fs.dispatch(&mut rec, c, &PfsCall::Mkdir { path: "/B".into() }, None)
            .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Creat {
                path: "/A/foo".into(),
            },
            None,
        )
        .unwrap();
        fs.seal_baseline();
        let mut rec = Recorder::new();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Rename {
                src: "/A/foo".into(),
                dst: "/B/foo".into(),
            },
            None,
        )
        .unwrap();
        // Crash after the insert but before the delete: foo in BOTH dirs.
        let low = rec.lowermost_events();
        // Insert record + its fdatasync are the first two lowermost ops.
        let mut states = fs.baseline().clone();
        states.apply_events(&rec, low[..2].iter().copied());
        let view = fs.client_view(&states);
        assert!(view.exists("/A/foo") && view.exists("/B/foo"), "{view}");
        // And pvfs2-fsck does not repair it.
        let mut s2 = states.clone();
        let _ = fs.recover(&mut s2);
        let v2 = fs.client_view(&s2);
        assert!(v2.exists("/A/foo") && v2.exists("/B/foo"));
    }

    #[test]
    fn fsck_collects_stranded_bstreams() {
        let mut fs = OrangeFs::paper_default();
        let mut rec = Recorder::new();
        let c = Process::Client(0);
        fs.dispatch(&mut rec, c, &PfsCall::Creat { path: "/f".into() }, None)
            .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Pwrite {
                path: "/f".into(),
                offset: 0,
                data: b"x".to_vec(),
            },
            None,
        )
        .unwrap();
        fs.seal_baseline();
        let mut rec = Recorder::new();
        fs.dispatch(&mut rec, c, &PfsCall::Unlink { path: "/f".into() }, None)
            .unwrap();
        // Crash state: rename-to-stranded persisted, final unlink not.
        let keep: Vec<EventId> = rec
            .lowermost_events()
            .into_iter()
            .filter(|&id| {
                !matches!(&rec.event(id).payload,
                    Payload::Fs { op: FsOp::Unlink { path }, .. } if path.contains("stranded"))
            })
            .collect();
        let mut states = fs.baseline().clone();
        states.apply_events(&rec, keep);
        let report = fs.recover(&mut states);
        assert!(report.findings.iter().any(|f| f.contains("orphan bstream")));
        assert_eq!(fs.client_view(&states), PfsView::new());
    }
}
