//! GlusterFS model (striped volume).
//!
//! GlusterFS (Table 2: v5.13, striped volume) has **no dedicated metadata
//! servers**: "the metadata and data chunks of a single file or directory
//! are stored on the same servers" (§6.3.1). The paper's Figure 9(c)
//! trace shows the consequence: for the ARVR program every operation —
//! `creat(tmp)`, `lsetxattr(tmp)`, `link(tmp, new chunk)`, `append`,
//! `rename(tmp, foo)`, `unlink(old chunk of foo)` — executes on one local
//! file system, whose journal orders their persistence. That is why ARVR
//! exposes nothing on GlusterFS, while multi-file (WAL) and multi-stripe
//! (large HDF5 files) workloads still do (Table 3 bugs 6 and 8).
//!
//! Layout per brick:
//!
//! ```text
//! /data/<path>          the file entry on its primary brick; hard link
//!                       to its first chunk; xattrs user.meta, user.size
//! /chunks/<gfid>.<s>    stripe s ≥ 1 chunks on brick (primary + s) % n
//! directories           replicated on every brick
//! ```
//!
//! Files are placed by their *parent directory* (colocating the files a
//! single-directory program touches, per the paper's observation); the
//! file-distribution sensitivity of Table 3 is expressed through
//! [`Placement`] pins.

use crate::call::PfsCall;
use crate::error::{PfsError, PfsResult};
use crate::placement::Placement;
use crate::store::ServerStates;
use crate::view::{PfsView, RecoveryReport};
use crate::Pfs;
use simfs::{FsOp, JournalMode};
use simnet::{ClusterTopology, FaultConfig, FaultPlane, RpcNet};
use std::collections::BTreeMap;
use tracer::{EventId, Layer, Payload, Process, Recorder};

#[derive(Debug, Clone)]
struct FileInfo {
    gfid: String,
    /// Primary brick index (holds the entry + stripe 0).
    primary: usize,
    /// Monotonic generation used by heal to resolve duplicate entries
    /// (persisted in the `user.meta` xattr; kept here for debugging).
    #[allow(dead_code)]
    gen: u64,
    size: u64,
    /// stripe → current length.
    chunks: BTreeMap<u64, u64>,
}

/// The GlusterFS striped-volume model.
pub struct GlusterFs {
    topo: ClusterTopology,
    placement: Placement,
    stripe: u64,
    live: ServerStates,
    baseline: ServerStates,
    files: BTreeMap<String, FileInfo>,
    dirs: Vec<String>,
    next_id: u64,
    faults: FaultPlane,
}

impl GlusterFs {
    /// A formatted striped volume over `topo.server_count()` bricks.
    pub fn new(topo: ClusterTopology, placement: Placement, stripe: u64) -> Self {
        Self::with_journal(topo, placement, stripe, JournalMode::Data)
    }

    /// Same, with an explicit local-FS journaling mode for the bricks
    /// (the fuzzer's journaling-mode sweep; the paper's deployment runs
    /// data journaling).
    pub fn with_journal(
        topo: ClusterTopology,
        placement: Placement,
        stripe: u64,
        journal: JournalMode,
    ) -> Self {
        let mut live = ServerStates::all_fs(topo.server_count(), journal);
        for (id, _) in live.clone().iter() {
            let fs = live.server_mut(id).as_fs_mut();
            fs.mkdir_all("/data").unwrap();
            fs.mkdir_all("/chunks").unwrap();
        }
        GlusterFs {
            topo,
            placement,
            stripe,
            baseline: live.fork(),
            live,
            files: BTreeMap::new(),
            dirs: vec!["/".to_string()],
            next_id: 0,
            faults: FaultPlane::disabled(),
        }
    }

    /// Paper default: 2 combined servers, 128 KiB stripes.
    pub fn paper_default() -> Self {
        GlusterFs::new(
            ClusterTopology::paper_combined_default(),
            Placement::new(),
            128 * 1024,
        )
    }

    fn n_bricks(&self) -> usize {
        self.topo.server_count() as usize
    }

    fn parent_of(path: &str) -> String {
        match path.rfind('/') {
            Some(0) => "/".to_string(),
            Some(i) => path[..i].to_string(),
            None => "/".to_string(),
        }
    }

    /// Primary brick of a file: explicit pin, else parent-directory hash.
    fn primary_of(&self, path: &str) -> usize {
        // `pin_file` takes precedence; the default hashes the parent so
        // files created together live together (ARVR safety).
        match self.placement.file_pin(path) {
            Some(idx) => idx % self.n_bricks(),
            None => self
                .placement
                .dir_index(&Self::parent_of(path), self.n_bricks()),
        }
    }

    fn emit(
        &mut self,
        rec: &mut Recorder,
        server: u32,
        op: FsOp,
        parent: Option<EventId>,
    ) -> EventId {
        self.live.server_mut(server).apply_fs(&op);
        rec.record(
            Layer::LocalFs,
            Process::Server(server),
            Payload::Fs { server, op },
            parent,
        )
    }

    fn data_path(path: &str) -> String {
        format!("/data{path}")
    }

    fn file_info(&self, path: &str) -> PfsResult<&FileInfo> {
        self.files
            .get(path)
            .ok_or_else(|| PfsError::UnknownPath(path.to_string()))
    }

    fn file_mut(&mut self, path: &str) -> &mut FileInfo {
        self.files
            .get_mut(path)
            .expect("invariant: file checked present earlier in this call")
    }

    /// RPC net routed through this instance's fault plane.
    fn net<'a>(&'a mut self, rec: &'a mut Recorder) -> RpcNet<'a> {
        RpcNet::faulty(rec, &mut self.faults)
    }

    fn chunk_path(gfid: &str, stripe: u64) -> String {
        format!("/chunks/{gfid}.{stripe}")
    }

    fn do_creat(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        path: &str,
        cev: EventId,
    ) -> PfsResult<()> {
        let primary = self.primary_of(path);
        let gfid = format!("g{}", self.next_id);
        let gen = self.next_id;
        self.next_id += 1;
        let brick = primary as u32;
        let overwritten = self.files.get(path).cloned();
        let (_, recv) = self.net(rec).request(
            client,
            Process::Server(brick),
            &format!("CREATE {path}"),
            Some(cev),
        );
        // Figure 9(c): creat(tmp); lsetxattr(tmp); link(tmp, new chunk).
        let dp = Self::data_path(path);
        let e = self.emit(rec, brick, FsOp::Creat { path: dp.clone() }, Some(recv));
        self.emit(
            rec,
            brick,
            FsOp::SetXattr {
                path: dp.clone(),
                key: "user.meta".into(),
                value: format!("gfid={gfid};first={primary};gen={gen}").into_bytes(),
            },
            Some(e),
        );
        let w = self.emit(
            rec,
            brick,
            FsOp::Link {
                src: dp,
                dst: Self::chunk_path(&gfid, 0),
            },
            Some(recv),
        );
        self.net(rec)
            .reply(Process::Server(brick), client, "OK", Some(w));
        if let Some(old) = overwritten {
            self.cleanup_chunks(rec, &old, recv);
        }
        self.files.insert(
            path.to_string(),
            FileInfo {
                gfid,
                primary,
                gen,
                size: 0,
                chunks: BTreeMap::from([(0, 0)]),
            },
        );
        Ok(())
    }

    fn do_mkdir(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        path: &str,
        cev: EventId,
    ) -> PfsResult<()> {
        // Directories are replicated on every brick.
        for brick in 0..self.n_bricks() as u32 {
            let (_, recv) = self.net(rec).request(
                client,
                Process::Server(brick),
                &format!("MKDIR {path}"),
                Some(cev),
            );
            let w = self.emit(
                rec,
                brick,
                FsOp::Mkdir {
                    path: Self::data_path(path),
                },
                Some(recv),
            );
            self.net(rec)
                .reply(Process::Server(brick), client, "OK", Some(w));
        }
        self.dirs.push(path.to_string());
        Ok(())
    }

    fn do_pwrite(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        path: &str,
        offset: u64,
        data: &[u8],
        cev: EventId,
    ) -> PfsResult<()> {
        let info = self.file_info(path)?.clone();
        let n = self.n_bricks();
        let mut off = offset;
        let end = offset + data.len() as u64;
        while off < end {
            let stripe = off / self.stripe;
            let stripe_end = (stripe + 1) * self.stripe;
            let len = stripe_end.min(end) - off;
            let brick = ((info.primary + stripe as usize) % n) as u32;
            let (_, recv) = self.net(rec).request(
                client,
                Process::Server(brick),
                &format!("WRITE {path} stripe {stripe}"),
                Some(cev),
            );
            // Stripe 0 lives in the entry itself; others in chunk files.
            let target = if stripe == 0 {
                Self::data_path(path)
            } else {
                Self::chunk_path(&info.gfid, stripe)
            };
            let cur = self
                .files
                .get(path)
                .and_then(|f| f.chunks.get(&stripe))
                .copied();
            if cur.is_none() {
                self.emit(
                    rec,
                    brick,
                    FsOp::Creat {
                        path: target.clone(),
                    },
                    Some(recv),
                );
                self.file_mut(path).chunks.insert(stripe, 0);
            }
            let cur = self.file_mut(path).chunks[&stripe];
            let local_off = off - stripe * self.stripe;
            let buf = data[(off - offset) as usize..(off - offset + len) as usize].to_vec();
            let op = if local_off == cur {
                FsOp::Append {
                    path: target.clone(),
                    data: buf,
                }
            } else {
                FsOp::Pwrite {
                    path: target,
                    offset: local_off,
                    data: buf,
                }
            };
            let w = self.emit(rec, brick, op, Some(recv));
            let f = self.file_mut(path);
            f.chunks.insert(stripe, (local_off + len).max(cur));
            self.net(rec)
                .reply(Process::Server(brick), client, "OK", Some(w));
            off += len;
        }
        // Size update on the primary brick.
        let f = self.file_mut(path);
        f.size = f.size.max(end);
        let size = f.size;
        let primary = f.primary as u32;
        let (_, recv) = self.net(rec).request(
            client,
            Process::Server(primary),
            &format!("SETSIZE {path}"),
            Some(cev),
        );
        let w = self.emit(
            rec,
            primary,
            FsOp::SetXattr {
                path: Self::data_path(path),
                key: "user.size".into(),
                value: size.to_string().into_bytes(),
            },
            Some(recv),
        );
        self.net(rec)
            .reply(Process::Server(primary), client, "OK", Some(w));
        Ok(())
    }

    /// Remove the chunk files of a dead file (stripe 0 chunk link and any
    /// higher stripes) — Figure 9(c)'s `unlink(old chunk of foo)`.
    fn cleanup_chunks(&mut self, rec: &mut Recorder, info: &FileInfo, parent: EventId) {
        let n = self.n_bricks();
        for &stripe in info.chunks.keys() {
            let brick = ((info.primary + stripe as usize) % n) as u32;
            self.emit(
                rec,
                brick,
                FsOp::Unlink {
                    path: Self::chunk_path(&info.gfid, stripe),
                },
                Some(parent),
            );
        }
    }

    fn do_rename(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        src: &str,
        dst: &str,
        cev: EventId,
    ) -> PfsResult<()> {
        if self.dirs.contains(&src.to_string()) {
            // Directory rename: replicated like mkdir, one local rename
            // per brick.
            for brick in 0..self.n_bricks() as u32 {
                let (_, recv) = self.net(rec).request(
                    client,
                    Process::Server(brick),
                    &format!("RENAME-DIR {src} {dst}"),
                    Some(cev),
                );
                let w = self.emit(
                    rec,
                    brick,
                    FsOp::Rename {
                        src: Self::data_path(src),
                        dst: Self::data_path(dst),
                    },
                    Some(recv),
                );
                self.net(rec)
                    .reply(Process::Server(brick), client, "OK", Some(w));
            }
            let moved: Vec<(String, String)> = self
                .dirs
                .iter()
                .chain(self.files.keys())
                .filter(|k| *k == src || k.starts_with(&format!("{src}/")))
                .map(|k| (k.clone(), format!("{dst}{}", &k[src.len()..])))
                .collect();
            for (old, new) in moved {
                if let Some(pos) = self.dirs.iter().position(|d| *d == old) {
                    self.dirs[pos] = new.clone();
                }
                if let Some(v) = self.files.remove(&old) {
                    self.files.insert(new, v);
                }
            }
            return Ok(());
        }
        let info = self.file_info(src)?.clone();
        let overwritten = self.files.get(dst).cloned();
        let brick = info.primary as u32;
        let (_, recv) = self.net(rec).request(
            client,
            Process::Server(brick),
            &format!("RENAME {src} {dst}"),
            Some(cev),
        );
        let w = self.emit(
            rec,
            brick,
            FsOp::Rename {
                src: Self::data_path(src),
                dst: Self::data_path(dst),
            },
            Some(recv),
        );
        self.net(rec)
            .reply(Process::Server(brick), client, "OK", Some(w));
        if let Some(old) = overwritten {
            if old.primary != info.primary {
                // The overwritten file lived on another brick: its entry
                // must be unlinked there (cross-brick, unordered —
                // the distribution-sensitive hazard).
                let ob = old.primary as u32;
                let (_, recv2) = self.net(rec).request(
                    client,
                    Process::Server(ob),
                    &format!("UNLINK-OLD {dst}"),
                    Some(cev),
                );
                let w2 = self.emit(
                    rec,
                    ob,
                    FsOp::Unlink {
                        path: Self::data_path(dst),
                    },
                    Some(recv2),
                );
                self.cleanup_chunks(rec, &old, recv2);
                self.net(rec)
                    .reply(Process::Server(ob), client, "OK", Some(w2));
            } else {
                // Same brick: the rename already replaced the entry;
                // clean up the old chunk hard links.
                self.cleanup_chunks(rec, &old, recv);
            }
        }
        self.files.remove(src);
        self.files.insert(dst.to_string(), info);
        Ok(())
    }

    fn do_unlink(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        path: &str,
        cev: EventId,
    ) -> PfsResult<()> {
        let info = self.file_info(path)?.clone();
        let brick = info.primary as u32;
        let (_, recv) = self.net(rec).request(
            client,
            Process::Server(brick),
            &format!("UNLINK {path}"),
            Some(cev),
        );
        let w = self.emit(
            rec,
            brick,
            FsOp::Unlink {
                path: Self::data_path(path),
            },
            Some(recv),
        );
        self.cleanup_chunks(rec, &info, recv);
        self.net(rec)
            .reply(Process::Server(brick), client, "OK", Some(w));
        self.files.remove(path);
        Ok(())
    }

    fn do_fsync(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        path: &str,
        cev: EventId,
    ) -> PfsResult<()> {
        let Some(info) = self.files.get(path).cloned() else {
            return Ok(());
        };
        let n = self.n_bricks();
        for &stripe in info.chunks.keys() {
            let brick = ((info.primary + stripe as usize) % n) as u32;
            let target = if stripe == 0 {
                Self::data_path(path)
            } else {
                Self::chunk_path(&info.gfid, stripe)
            };
            let (_, recv) = self.net(rec).request(
                client,
                Process::Server(brick),
                &format!("FSYNC {path} stripe {stripe}"),
                Some(cev),
            );
            let w = self.emit(rec, brick, FsOp::Fsync { path: target }, Some(recv));
            self.net(rec)
                .reply(Process::Server(brick), client, "OK", Some(w));
        }
        Ok(())
    }

    /// Parse a `user.meta` xattr.
    fn parse_meta(raw: &[u8]) -> (String, usize, u64) {
        let s = String::from_utf8_lossy(raw);
        let (mut gfid, mut first, mut gen) = (String::new(), 0usize, 0u64);
        for part in s.split(';') {
            if let Some(v) = part.strip_prefix("gfid=") {
                gfid = v.to_string();
            } else if let Some(v) = part.strip_prefix("first=") {
                first = v.parse().unwrap_or(0);
            } else if let Some(v) = part.strip_prefix("gen=") {
                gen = v.parse().unwrap_or(0);
            }
        }
        (gfid, first, gen)
    }
}

impl Pfs for GlusterFs {
    fn name(&self) -> &'static str {
        "GlusterFS"
    }

    fn topology(&self) -> &ClusterTopology {
        &self.topo
    }

    fn stripe_size(&self) -> u64 {
        self.stripe
    }

    fn dispatch(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        call: &PfsCall,
        parent: Option<EventId>,
    ) -> PfsResult<EventId> {
        let cev = rec.record(
            Layer::PfsClient,
            client,
            Payload::Call {
                name: call.name().into(),
                args: call.args(),
            },
            parent,
        );
        match call {
            PfsCall::Creat { path } => self.do_creat(rec, client, path, cev)?,
            PfsCall::Mkdir { path } => self.do_mkdir(rec, client, path, cev)?,
            PfsCall::Pwrite { path, offset, data } => {
                self.do_pwrite(rec, client, path, *offset, data, cev)?
            }
            PfsCall::Rename { src, dst } => self.do_rename(rec, client, src, dst, cev)?,
            PfsCall::Unlink { path } => self.do_unlink(rec, client, path, cev)?,
            PfsCall::Rmdir { path } => {
                for brick in 0..self.n_bricks() as u32 {
                    let (_, recv) = self.net(rec).request(
                        client,
                        Process::Server(brick),
                        &format!("RMDIR {path}"),
                        Some(cev),
                    );
                    let w = self.emit(
                        rec,
                        brick,
                        FsOp::Rmdir {
                            path: Self::data_path(path),
                        },
                        Some(recv),
                    );
                    self.net(rec)
                        .reply(Process::Server(brick), client, "OK", Some(w));
                }
                self.dirs.retain(|d| d != path);
            }
            PfsCall::Close { .. } => {}
            PfsCall::Fsync { path } => self.do_fsync(rec, client, path, cev)?,
        }
        Ok(cev)
    }

    fn seal_baseline(&mut self) {
        self.baseline = self.live.fork();
    }

    fn baseline(&self) -> &ServerStates {
        &self.baseline
    }

    fn live(&self) -> &ServerStates {
        &self.live
    }

    fn install_faults(&mut self, cfg: FaultConfig) {
        self.faults = FaultPlane::new(cfg);
    }

    fn recover(&self, states: &mut ServerStates) -> RecoveryReport {
        let _span = pc_rt::obs::span_cat("recover/GlusterFS", "pfs");
        let mut report = RecoveryReport::clean("glusterfs-heal");
        // Duplicate entries for one path across bricks → keep the highest
        // generation (self-heal), drop the rest.
        let mut by_path: BTreeMap<String, Vec<(u32, u64)>> = BTreeMap::new();
        for (id, store) in states.iter() {
            let fs = store.as_fs();
            for p in fs.walk() {
                if let Some(vpath) = p.strip_prefix("/data") {
                    if !fs.is_dir(&p) {
                        if let Ok(meta) = fs.getxattr(&p, "user.meta") {
                            let (_, _, gen) = Self::parse_meta(meta);
                            by_path
                                .entry(vpath.to_string())
                                .or_default()
                                .push((id, gen));
                        }
                    }
                }
            }
        }
        for (vpath, mut holders) in by_path {
            if holders.len() > 1 {
                holders.sort_by_key(|&(_, gen)| std::cmp::Reverse(gen));
                report.finding(format!(
                    "split-brain entry {vpath} on {} bricks",
                    holders.len()
                ));
                for &(brick, _) in &holders[1..] {
                    let _ = states
                        .server_mut(brick)
                        .as_fs_mut()
                        .unlink(&Self::data_path(&vpath));
                    report.repair(format!("dropped stale {vpath} replica on brick#{brick}"));
                }
            }
        }
        report
    }

    fn client_view(&self, states: &ServerStates) -> PfsView {
        let mut view = PfsView::new();
        // Directories: the first brick is authoritative for the
        // namespace (DHT lookups consult the hashed subvolume first), so
        // a directory rename that persisted on only some bricks resolves
        // deterministically instead of showing both names.
        {
            let fs = states.server(0).as_fs();
            for p in fs.walk() {
                if let Some(vpath) = p.strip_prefix("/data") {
                    if !vpath.is_empty() && fs.is_dir(&p) {
                        view.add_dir(vpath.to_string());
                    }
                }
            }
        }
        // Files: entry with the highest generation wins (lookup + heal).
        let mut best: BTreeMap<String, (u64, u32, String, usize)> = BTreeMap::new();
        for (id, store) in states.iter() {
            let fs = store.as_fs();
            for p in fs.walk() {
                if let Some(vpath) = p.strip_prefix("/data") {
                    if !fs.is_dir(&p) {
                        if let Ok(meta) = fs.getxattr(&p, "user.meta") {
                            let (gfid, first, gen) = Self::parse_meta(meta);
                            let e = best.entry(vpath.to_string()).or_insert((
                                gen,
                                id,
                                gfid.clone(),
                                first,
                            ));
                            if gen > e.0 {
                                *e = (gen, id, gfid, first);
                            }
                        }
                        // Entries without the user.meta xattr are
                        // in-flight creates: lookups fail, the file is
                        // not visible yet.
                    }
                }
            }
        }
        for (vpath, (_, _, gfid, first)) in best {
            // Content is whatever the stripes hold, in order, until the
            // first gap (stripe 0 lives in the entry itself).
            let mut content = Vec::new();
            for stripe in 0.. {
                let b = ((first + stripe as usize) % self.n_bricks()) as u32;
                let target = if stripe == 0 {
                    Self::data_path(&vpath)
                } else {
                    Self::chunk_path(&gfid, stripe)
                };
                match states.server(b).as_fs().read(&target) {
                    Ok(data) => content.extend_from_slice(data),
                    Err(_) => break,
                }
            }
            view.add_file(vpath, content);
        }
        view
    }

    fn restart_cost_secs(&self) -> f64 {
        2.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_arvr(fs: &mut GlusterFs) -> Recorder {
        let mut rec = Recorder::new();
        let c = Process::Client(0);
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Creat {
                path: "/file".into(),
            },
            None,
        )
        .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Pwrite {
                path: "/file".into(),
                offset: 0,
                data: b"old".to_vec(),
            },
            None,
        )
        .unwrap();
        fs.seal_baseline();
        let mut rec = Recorder::new();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Creat {
                path: "/tmp".into(),
            },
            None,
        )
        .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Pwrite {
                path: "/tmp".into(),
                offset: 0,
                data: b"new".to_vec(),
            },
            None,
        )
        .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Close {
                path: "/tmp".into(),
            },
            None,
        )
        .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Rename {
                src: "/tmp".into(),
                dst: "/file".into(),
            },
            None,
        )
        .unwrap();
        rec
    }

    #[test]
    fn arvr_lands_on_one_brick() {
        let mut fs = GlusterFs::paper_default();
        let rec = run_arvr(&mut fs);
        // Files of one directory colocate: every lowermost op targets the
        // same brick (the paper's ARVR-safety argument).
        let servers: std::collections::BTreeSet<u32> = rec
            .lowermost_events()
            .into_iter()
            .filter_map(|id| match &rec.event(id).payload {
                Payload::Fs { server, .. } => Some(*server),
                _ => None,
            })
            .collect();
        assert_eq!(servers.len(), 1);
        let view = fs.client_view(fs.live());
        assert_eq!(view.read("/file"), Some(&b"new"[..]));
        assert!(!view.exists("/tmp"));
    }

    #[test]
    fn arvr_every_prefix_is_legal() {
        let mut fs = GlusterFs::paper_default();
        let rec = run_arvr(&mut fs);
        let low = rec.lowermost_events();
        for k in 0..=low.len() {
            let mut states = fs.baseline().clone();
            states.apply_events(&rec, low[..k].iter().copied());
            let mut s2 = states.clone();
            let _ = fs.recover(&mut s2);
            let view = fs.client_view(&s2);
            let file = view.read("/file");
            assert!(
                file == Some(&b"old"[..]) || file == Some(&b"new"[..]),
                "prefix {k}: {view}"
            );
        }
    }

    #[test]
    fn pinned_files_split_across_bricks() {
        let placement = Placement::new().pin_file("/log", 0).pin_file("/foo", 1);
        let mut fs = GlusterFs::new(
            ClusterTopology::paper_combined_default(),
            placement,
            128 * 1024,
        );
        let mut rec = Recorder::new();
        let c = Process::Client(0);
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Creat {
                path: "/log".into(),
            },
            None,
        )
        .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Creat {
                path: "/foo".into(),
            },
            None,
        )
        .unwrap();
        assert_eq!(fs.files["/log"].primary, 0);
        assert_eq!(fs.files["/foo"].primary, 1);
    }

    #[test]
    fn large_file_stripes_across_bricks() {
        let mut fs = GlusterFs::new(
            ClusterTopology::paper_combined_default(),
            Placement::new(),
            4,
        );
        let mut rec = Recorder::new();
        let c = Process::Client(0);
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Creat {
                path: "/big".into(),
            },
            None,
        )
        .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Pwrite {
                path: "/big".into(),
                offset: 0,
                data: b"abcdefghij".to_vec(),
            },
            None,
        )
        .unwrap();
        let view = fs.client_view(fs.live());
        assert_eq!(view.read("/big"), Some(&b"abcdefghij"[..]));
        let touched: std::collections::BTreeSet<u32> = rec
            .lowermost_events()
            .into_iter()
            .filter_map(|id| match &rec.event(id).payload {
                Payload::Fs { server, .. } => Some(*server),
                _ => None,
            })
            .collect();
        assert_eq!(touched.len(), 2);
    }

    #[test]
    fn heal_resolves_split_brain_by_generation() {
        // A renamed file colliding with a stale old entry on another
        // brick must resolve to the newer generation.
        let placement = Placement::new().pin_file("/a", 0).pin_file("/b", 1);
        let mut fs = GlusterFs::new(
            ClusterTopology::paper_combined_default(),
            placement,
            128 * 1024,
        );
        let mut rec = Recorder::new();
        let c = Process::Client(0);
        fs.dispatch(&mut rec, c, &PfsCall::Creat { path: "/b".into() }, None)
            .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Pwrite {
                path: "/b".into(),
                offset: 0,
                data: b"OLD".to_vec(),
            },
            None,
        )
        .unwrap();
        fs.seal_baseline();
        let mut rec = Recorder::new();
        fs.dispatch(&mut rec, c, &PfsCall::Creat { path: "/a".into() }, None)
            .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Pwrite {
                path: "/a".into(),
                offset: 0,
                data: b"NEW".to_vec(),
            },
            None,
        )
        .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Rename {
                src: "/a".into(),
                dst: "/b".into(),
            },
            None,
        )
        .unwrap();
        // Crash state: everything except the cross-brick unlink of the
        // old /b entry.
        let keep: Vec<EventId> = rec
            .lowermost_events()
            .into_iter()
            .filter(|&id| {
                !matches!(&rec.event(id).payload,
                Payload::Fs { op: FsOp::Unlink { path }, .. } if path == "/data/b")
            })
            .collect();
        let mut states = fs.baseline().clone();
        states.apply_events(&rec, keep);
        let report = fs.recover(&mut states);
        assert!(report.findings.iter().any(|f| f.contains("split-brain")));
        let view = fs.client_view(&states);
        assert_eq!(view.read("/b"), Some(&b"NEW"[..]));
        assert!(!view.exists("/a"));
    }
}
