//! Lustre model.
//!
//! Lustre (Table 2: v2.12.6) is the only PFS in the paper's study with
//! **no POSIX-level crash-consistency bugs**: "Lustre properly aggregates
//! intermediate changes to the files and invokes accurate disk barriers
//! to flush data to the disk" (§6.3.1). We model that as: before any
//! namespace-visible operation (`creat`, `rename`, `unlink`, `close`)
//! commits on the MDT, the client's *dirty data* is flushed to the OSTs
//! with explicit commits, and the MDT change itself is journal-committed
//! (a device barrier). Consequently every reachable crash state
//! corresponds to a causal prefix of the client's operations.
//!
//! The vulnerability that remains — and that the HDF5 test programs hit
//! (Table 3 bugs 10, 13, 15 list Lustre) — is *data written into a file
//! that stays open*: HDF5's metadata cache writes B-trees, heaps and
//! superblock updates as ordinary file data with no fsync, and those
//! writes reorder freely across (and within) OSTs.
//!
//! Layout:
//!
//! ```text
//! MDT (metadata server 0..m): /mdt/<path>  entry files
//!                             ("obj=<id>;size=<n>;first=<k>"), real dirs
//! OST (storage servers):      /objects/<id>.<stripe>
//! ```

use crate::call::PfsCall;
use crate::error::{PfsError, PfsResult};
use crate::placement::Placement;
use crate::store::ServerStates;
use crate::view::{PfsView, RecoveryReport};
use crate::Pfs;
use simfs::{FsOp, JournalMode};
use simnet::{ClusterTopology, FaultConfig, FaultPlane, RpcNet};
use std::collections::{BTreeMap, BTreeSet};
use tracer::{EventId, Layer, Payload, Process, Recorder};

#[derive(Debug, Clone)]
struct FileInfo {
    obj: String,
    first: usize,
    size: u64,
    chunks: BTreeMap<u64, u64>,
}

/// The Lustre model.
pub struct Lustre {
    topo: ClusterTopology,
    placement: Placement,
    stripe: u64,
    live: ServerStates,
    baseline: ServerStates,
    files: BTreeMap<String, FileInfo>,
    /// Files with unflushed OST data, per client.
    dirty: BTreeMap<Process, BTreeSet<String>>,
    next_id: u64,
    faults: FaultPlane,
}

impl Lustre {
    /// A formatted Lustre instance.
    pub fn new(topo: ClusterTopology, placement: Placement, stripe: u64) -> Self {
        Self::with_journal(topo, placement, stripe, JournalMode::Data)
    }

    /// Same, with an explicit local-FS journaling mode for the MDT/OST
    /// backing stores (the fuzzer's journaling-mode sweep; the paper's
    /// deployment runs data journaling).
    pub fn with_journal(
        topo: ClusterTopology,
        placement: Placement,
        stripe: u64,
        journal: JournalMode,
    ) -> Self {
        let mut live = ServerStates::all_fs(topo.server_count(), journal);
        for &m in &topo.metadata_servers() {
            live.server_mut(m).as_fs_mut().mkdir_all("/mdt").unwrap();
        }
        for &s in &topo.storage_servers() {
            live.server_mut(s)
                .as_fs_mut()
                .mkdir_all("/objects")
                .unwrap();
        }
        Lustre {
            topo,
            placement,
            stripe,
            baseline: live.fork(),
            live,
            files: BTreeMap::new(),
            dirty: BTreeMap::new(),
            next_id: 0,
            faults: FaultPlane::disabled(),
        }
    }

    /// Paper default: 2 metadata + 2 storage servers, 128 KiB stripes.
    pub fn paper_default() -> Self {
        Lustre::new(
            ClusterTopology::paper_dedicated_default(),
            Placement::new(),
            128 * 1024,
        )
    }

    fn mdt(&self) -> u32 {
        self.topo.metadata_servers()[0]
    }

    fn ost(&self, idx: usize) -> u32 {
        self.topo.storage_servers()[idx]
    }

    fn n_ost(&self) -> usize {
        self.topo.storage_servers().len()
    }

    fn emit(
        &mut self,
        rec: &mut Recorder,
        server: u32,
        op: FsOp,
        parent: Option<EventId>,
    ) -> EventId {
        self.live.server_mut(server).apply_fs(&op);
        rec.record(
            Layer::LocalFs,
            Process::Server(server),
            Payload::Fs { server, op },
            parent,
        )
    }

    fn file_info(&self, path: &str) -> PfsResult<&FileInfo> {
        self.files
            .get(path)
            .ok_or_else(|| PfsError::UnknownPath(path.to_string()))
    }

    fn file_mut(&mut self, path: &str) -> &mut FileInfo {
        self.files
            .get_mut(path)
            .expect("invariant: file checked present earlier in this call")
    }

    /// RPC net routed through this instance's fault plane.
    fn net<'a>(&'a mut self, rec: &'a mut Recorder) -> RpcNet<'a> {
        RpcNet::faulty(rec, &mut self.faults)
    }

    fn mdt_path(path: &str) -> String {
        format!("/mdt{path}")
    }

    fn obj_path(obj: &str, stripe: u64) -> String {
        format!("/objects/{obj}.{stripe}")
    }

    /// Flush every dirty object of `client` with explicit OST commits —
    /// the "aggregates intermediate changes … accurate disk barriers"
    /// behaviour that precedes any namespace update.
    fn flush_dirty(&mut self, rec: &mut Recorder, client: Process, cev: EventId) {
        let dirty: Vec<String> = self
            .dirty
            .get(&client)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default();
        for path in dirty {
            let Some(info) = self.files.get(&path).cloned() else {
                continue;
            };
            let n = self.n_ost();
            for &stripe in info.chunks.keys() {
                let ost = self.ost((info.first + stripe as usize) % n);
                let (_, recv) = self.net(rec).request(
                    client,
                    Process::Server(ost),
                    &format!("OST-COMMIT {path} stripe {stripe}"),
                    Some(cev),
                );
                let w = self.emit(
                    rec,
                    ost,
                    FsOp::Fsync {
                        path: Self::obj_path(&info.obj, stripe),
                    },
                    Some(recv),
                );
                self.net(rec)
                    .reply(Process::Server(ost), client, "COMMITTED", Some(w));
            }
        }
        self.dirty.remove(&client);
    }

    /// Commit the MDT journal (device-wide barrier) after a namespace
    /// update.
    fn mdt_commit(&mut self, rec: &mut Recorder, parent: EventId) {
        let mdt = self.mdt();
        self.emit(rec, mdt, FsOp::SyncFs, Some(parent));
    }

    fn update_entry(
        &mut self,
        rec: &mut Recorder,
        path: &str,
        info: &FileInfo,
        parent: EventId,
    ) -> EventId {
        let mdt = self.mdt();
        self.emit(
            rec,
            mdt,
            FsOp::Pwrite {
                path: Self::mdt_path(path),
                offset: 0,
                data: format!("obj={};size={};first={}", info.obj, info.size, info.first)
                    .into_bytes(),
            },
            Some(parent),
        )
    }
}

impl Pfs for Lustre {
    fn name(&self) -> &'static str {
        "Lustre"
    }

    fn topology(&self) -> &ClusterTopology {
        &self.topo
    }

    fn stripe_size(&self) -> u64 {
        self.stripe
    }

    fn dispatch(
        &mut self,
        rec: &mut Recorder,
        client: Process,
        call: &PfsCall,
        parent: Option<EventId>,
    ) -> PfsResult<EventId> {
        let cev = rec.record(
            Layer::PfsClient,
            client,
            Payload::Call {
                name: call.name().into(),
                args: call.args(),
            },
            parent,
        );
        // Any namespace-visible operation first drains the client's dirty
        // data with OST commits.
        if call.is_namespace_op() {
            self.flush_dirty(rec, client, cev);
        }
        match call {
            PfsCall::Creat { path } => {
                let obj = format!("o{}", self.next_id);
                self.next_id += 1;
                let first = self.placement.file_index(path, self.n_ost());
                let info = FileInfo {
                    obj,
                    first,
                    size: 0,
                    chunks: BTreeMap::new(),
                };
                let mdt = self.mdt();
                let (_, recv) = self.net(rec).request(
                    client,
                    Process::Server(mdt),
                    &format!("MDS-CREATE {path}"),
                    Some(cev),
                );
                let e = self.emit(
                    rec,
                    mdt,
                    FsOp::Creat {
                        path: Self::mdt_path(path),
                    },
                    Some(recv),
                );
                let e2 = self.update_entry(rec, path, &info, e);
                self.mdt_commit(rec, e2);
                self.net(rec)
                    .reply(Process::Server(mdt), client, "OK", Some(e2));
                self.files.insert(path.to_string(), info);
            }
            PfsCall::Mkdir { path } => {
                let mdt = self.mdt();
                let (_, recv) = self.net(rec).request(
                    client,
                    Process::Server(mdt),
                    &format!("MDS-MKDIR {path}"),
                    Some(cev),
                );
                let e = self.emit(
                    rec,
                    mdt,
                    FsOp::Mkdir {
                        path: Self::mdt_path(path),
                    },
                    Some(recv),
                );
                self.mdt_commit(rec, e);
                self.net(rec)
                    .reply(Process::Server(mdt), client, "OK", Some(e));
            }
            PfsCall::Pwrite { path, offset, data } => {
                let info = self.file_info(path)?.clone();
                let n = self.n_ost();
                let mut off = *offset;
                let end = offset + data.len() as u64;
                while off < end {
                    let stripe = off / self.stripe;
                    let stripe_end = (stripe + 1) * self.stripe;
                    let len = stripe_end.min(end) - off;
                    let ost = self.ost((info.first + stripe as usize) % n);
                    let (_, recv) = self.net(rec).request(
                        client,
                        Process::Server(ost),
                        &format!("OST-WRITE {path} stripe {stripe}"),
                        Some(cev),
                    );
                    let target = Self::obj_path(&info.obj, stripe);
                    let cur = self
                        .files
                        .get(path)
                        .and_then(|f| f.chunks.get(&stripe))
                        .copied();
                    if cur.is_none() {
                        self.emit(
                            rec,
                            ost,
                            FsOp::Creat {
                                path: target.clone(),
                            },
                            Some(recv),
                        );
                        self.file_mut(path).chunks.insert(stripe, 0);
                    }
                    let cur = self.file_info(path)?.chunks[&stripe];
                    let local = off - stripe * self.stripe;
                    let buf = data[(off - offset) as usize..(off - offset + len) as usize].to_vec();
                    let op = if local == cur {
                        FsOp::Append {
                            path: target,
                            data: buf,
                        }
                    } else {
                        FsOp::Pwrite {
                            path: target,
                            offset: local,
                            data: buf,
                        }
                    };
                    let w = self.emit(rec, ost, op, Some(recv));
                    self.file_mut(path)
                        .chunks
                        .insert(stripe, (local + len).max(cur));
                    self.net(rec)
                        .reply(Process::Server(ost), client, "OK", Some(w));
                    off += len;
                }
                // Size update on the MDT (journal-committed lazily with
                // the next namespace op; size here is piggybacked).
                let f = self.file_mut(path);
                f.size = f.size.max(end);
                let info = f.clone();
                let mdt = self.mdt();
                let (_, recv) = self.net(rec).request(
                    client,
                    Process::Server(mdt),
                    &format!("MDS-SETATTR {path}"),
                    Some(cev),
                );
                let w = self.update_entry(rec, path, &info, recv);
                self.net(rec)
                    .reply(Process::Server(mdt), client, "OK", Some(w));
                self.dirty.entry(client).or_default().insert(path.clone());
            }
            PfsCall::Rename { src, dst } => {
                let overwritten = self.files.get(dst).cloned();
                let mdt = self.mdt();
                let (_, recv) = self.net(rec).request(
                    client,
                    Process::Server(mdt),
                    &format!("MDS-RENAME {src} {dst}"),
                    Some(cev),
                );
                let e = self.emit(
                    rec,
                    mdt,
                    FsOp::Rename {
                        src: Self::mdt_path(src),
                        dst: Self::mdt_path(dst),
                    },
                    Some(recv),
                );
                self.mdt_commit(rec, e);
                let reply = self
                    .net(rec)
                    .reply(Process::Server(mdt), client, "OK", Some(e))
                    .0;
                // Destroy the overwritten file's objects (after the
                // committed rename, so never "before" it on disk).
                if let Some(old) = overwritten {
                    let n = self.n_ost();
                    for &stripe in old.chunks.keys() {
                        let ost = self.ost((old.first + stripe as usize) % n);
                        let (_, r2) = self.net(rec).message(
                            Process::Server(mdt),
                            Process::Server(ost),
                            &format!("OST-DESTROY {}.{stripe}", old.obj),
                            Some(reply),
                        );
                        self.emit(
                            rec,
                            ost,
                            FsOp::Unlink {
                                path: Self::obj_path(&old.obj, stripe),
                            },
                            Some(r2),
                        );
                    }
                }
                if let Some(info) = self.files.remove(src) {
                    self.files.insert(dst.clone(), info);
                }
                let dirty_keys: Vec<Process> = self.dirty.keys().copied().collect();
                for k in dirty_keys {
                    let set = self.dirty.get_mut(&k).unwrap();
                    if set.remove(src) {
                        set.insert(dst.clone());
                    }
                }
            }
            PfsCall::Unlink { path } => {
                let info = self.file_info(path)?.clone();
                let mdt = self.mdt();
                let (_, recv) = self.net(rec).request(
                    client,
                    Process::Server(mdt),
                    &format!("MDS-UNLINK {path}"),
                    Some(cev),
                );
                let e = self.emit(
                    rec,
                    mdt,
                    FsOp::Unlink {
                        path: Self::mdt_path(path),
                    },
                    Some(recv),
                );
                self.mdt_commit(rec, e);
                let reply = self
                    .net(rec)
                    .reply(Process::Server(mdt), client, "OK", Some(e))
                    .0;
                let n = self.n_ost();
                for &stripe in info.chunks.keys() {
                    let ost = self.ost((info.first + stripe as usize) % n);
                    let (_, r2) = self.net(rec).message(
                        Process::Server(mdt),
                        Process::Server(ost),
                        &format!("OST-DESTROY {}.{stripe}", info.obj),
                        Some(reply),
                    );
                    self.emit(
                        rec,
                        ost,
                        FsOp::Unlink {
                            path: Self::obj_path(&info.obj, stripe),
                        },
                        Some(r2),
                    );
                }
                self.files.remove(path);
            }
            PfsCall::Rmdir { path } => {
                let mdt = self.mdt();
                let (_, recv) = self.net(rec).request(
                    client,
                    Process::Server(mdt),
                    &format!("MDS-RMDIR {path}"),
                    Some(cev),
                );
                let e = self.emit(
                    rec,
                    mdt,
                    FsOp::Rmdir {
                        path: Self::mdt_path(path),
                    },
                    Some(recv),
                );
                self.mdt_commit(rec, e);
                self.net(rec)
                    .reply(Process::Server(mdt), client, "OK", Some(e));
            }
            PfsCall::Close { .. } => {
                // flush_dirty already ran (close is a namespace op here).
            }
            PfsCall::Fsync { path } => {
                let p = path.clone();
                self.dirty.entry(client).or_default().insert(p);
                self.flush_dirty(rec, client, cev);
            }
        }
        Ok(cev)
    }

    fn install_faults(&mut self, cfg: FaultConfig) {
        self.faults = FaultPlane::new(cfg);
    }

    fn seal_baseline(&mut self) {
        self.baseline = self.live.fork();
    }

    fn baseline(&self) -> &ServerStates {
        &self.baseline
    }

    fn live(&self) -> &ServerStates {
        &self.live
    }

    fn recover(&self, states: &mut ServerStates) -> RecoveryReport {
        // lfsck: garbage-collect orphan objects; report missing objects.
        let _span = pc_rt::obs::span_cat("recover/Lustre", "pfs");
        let mut report = RecoveryReport::clean("lfsck");
        let mdt_fs = states.server(self.mdt()).as_fs();
        let mut live_objs: Vec<String> = Vec::new();
        for p in mdt_fs.walk() {
            if !mdt_fs.is_dir(&p) {
                if let Ok(raw) = mdt_fs.read(&p) {
                    for part in String::from_utf8_lossy(raw).split(';') {
                        if let Some(o) = part.strip_prefix("obj=") {
                            live_objs.push(o.to_string());
                        }
                    }
                }
            }
        }
        for &s in &self.topo.storage_servers() {
            let fs = states.server(s).as_fs().fork();
            let Ok(objs) = fs.readdir("/objects") else {
                continue;
            };
            for name in objs {
                let obj = name.split('.').next().unwrap_or("").to_string();
                if !live_objs.contains(&obj) {
                    report.finding(format!("orphan object {name} on OST#{s}"));
                    let _ = states
                        .server_mut(s)
                        .as_fs_mut()
                        .unlink(&format!("/objects/{name}"));
                    report.repair(format!("destroyed orphan object {name}"));
                }
            }
        }
        report
    }

    fn client_view(&self, states: &ServerStates) -> PfsView {
        let mut view = PfsView::new();
        let mdt_fs = states.server(self.mdt()).as_fs();
        for p in mdt_fs.walk() {
            let Some(vpath) = p.strip_prefix("/mdt") else {
                continue;
            };
            if vpath.is_empty() {
                continue;
            }
            if mdt_fs.is_dir(&p) {
                view.add_dir(vpath.to_string());
                continue;
            }
            let Ok(raw) = mdt_fs.read(&p) else {
                view.add_damaged_file(vpath.to_string());
                continue;
            };
            let s = String::from_utf8_lossy(raw);
            let (mut obj, mut first) = (String::new(), 0usize);
            for part in s.split(';') {
                if let Some(v) = part.strip_prefix("obj=") {
                    obj = v.to_string();
                } else if let Some(v) = part.strip_prefix("first=") {
                    first = v.parse().unwrap_or(0);
                }
            }
            if obj.is_empty() {
                // Entry created but never assigned an object: an
                // in-flight create — not visible to lookups.
                continue;
            }
            // Content = the OST objects, concatenated until the first gap.
            let mut content = Vec::new();
            for stripe in 0.. {
                let ost = self.ost((first + stripe as usize) % self.n_ost());
                match states
                    .server(ost)
                    .as_fs()
                    .read(&Self::obj_path(&obj, stripe))
                {
                    Ok(d) => content.extend_from_slice(d),
                    Err(_) => break,
                }
            }
            view.add_file(vpath.to_string(), content);
        }
        view
    }

    fn restart_cost_secs(&self) -> f64 {
        3.2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_arvr(fs: &mut Lustre) -> Recorder {
        let c = Process::Client(0);
        let mut rec = Recorder::new();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Creat {
                path: "/file".into(),
            },
            None,
        )
        .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Pwrite {
                path: "/file".into(),
                offset: 0,
                data: b"old".to_vec(),
            },
            None,
        )
        .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Close {
                path: "/file".into(),
            },
            None,
        )
        .unwrap();
        fs.seal_baseline();
        let mut rec = Recorder::new();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Creat {
                path: "/tmp".into(),
            },
            None,
        )
        .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Pwrite {
                path: "/tmp".into(),
                offset: 0,
                data: b"new".to_vec(),
            },
            None,
        )
        .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Close {
                path: "/tmp".into(),
            },
            None,
        )
        .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Rename {
                src: "/tmp".into(),
                dst: "/file".into(),
            },
            None,
        )
        .unwrap();
        rec
    }

    #[test]
    fn namespace_ops_flush_dirty_data_first() {
        let mut fs = Lustre::paper_default();
        let rec = run_arvr(&mut fs);
        // Find the OST append of "new" and the MDT rename; there must be
        // an OST fsync between them in trace order.
        let events = rec.events();
        let append_pos = events
            .iter()
            .position(|e| matches!(&e.payload, Payload::Fs { op: FsOp::Append { data, .. }, .. } if data == b"new"))
            .expect("append traced");
        let rename_pos = events
            .iter()
            .position(|e| {
                matches!(
                    &e.payload,
                    Payload::Fs {
                        op: FsOp::Rename { .. },
                        ..
                    }
                )
            })
            .expect("rename traced");
        let fsync_between = events[append_pos..rename_pos].iter().any(|e| {
            matches!(
                &e.payload,
                Payload::Fs {
                    op: FsOp::Fsync { .. },
                    ..
                }
            )
        });
        assert!(fsync_between, "close must flush OST data before the rename");
    }

    #[test]
    fn mdt_commits_with_syncfs() {
        let mut fs = Lustre::paper_default();
        let mut rec = Recorder::new();
        fs.dispatch(
            &mut rec,
            Process::Client(0),
            &PfsCall::Creat { path: "/f".into() },
            None,
        )
        .unwrap();
        assert!(rec.events().iter().any(|e| matches!(
            &e.payload,
            Payload::Fs {
                op: FsOp::SyncFs,
                ..
            }
        )));
    }

    #[test]
    fn live_view_and_full_replay_agree() {
        let mut fs = Lustre::paper_default();
        let rec = run_arvr(&mut fs);
        let mut states = fs.baseline().clone();
        states.apply_events(&rec, rec.lowermost_events());
        assert_eq!(fs.client_view(&states), fs.client_view(fs.live()));
        let view = fs.client_view(fs.live());
        assert_eq!(view.read("/file"), Some(&b"new"[..]));
        assert!(!view.exists("/tmp"));
    }

    #[test]
    fn plain_data_writes_stay_unsynced() {
        // An HDF5-style workload — open file, many pwrites, no close
        // before the crash — must leave unsynced OST data.
        let mut fs = Lustre::paper_default();
        let mut rec = Recorder::new();
        let c = Process::Client(0);
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Creat {
                path: "/d.h5".into(),
            },
            None,
        )
        .unwrap();
        let start = rec.len();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Pwrite {
                path: "/d.h5".into(),
                offset: 0,
                data: vec![1; 8],
            },
            None,
        )
        .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Pwrite {
                path: "/d.h5".into(),
                offset: 8,
                data: vec![2; 8],
            },
            None,
        )
        .unwrap();
        let syncs = rec.events()[start..]
            .iter()
            .filter(|e| e.payload.is_storage_sync())
            .count();
        assert_eq!(syncs, 0);
    }

    #[test]
    fn lfsck_destroys_orphan_objects() {
        let mut fs = Lustre::paper_default();
        let mut rec = Recorder::new();
        let c = Process::Client(0);
        fs.dispatch(&mut rec, c, &PfsCall::Creat { path: "/f".into() }, None)
            .unwrap();
        fs.dispatch(
            &mut rec,
            c,
            &PfsCall::Pwrite {
                path: "/f".into(),
                offset: 0,
                data: b"data".to_vec(),
            },
            None,
        )
        .unwrap();
        fs.seal_baseline();
        let mut rec2 = Recorder::new();
        fs.dispatch(&mut rec2, c, &PfsCall::Unlink { path: "/f".into() }, None)
            .unwrap();
        // Crash: MDT unlink persisted, OST destroy not.
        let keep: Vec<EventId> = rec2
            .lowermost_events()
            .into_iter()
            .filter(|&id| {
                !matches!(&rec2.event(id).payload,
                    Payload::Fs { op: FsOp::Unlink { path }, .. } if path.starts_with("/objects"))
            })
            .collect();
        let mut states = fs.baseline().clone();
        states.apply_events(&rec2, keep);
        let report = fs.recover(&mut states);
        assert!(report.findings.iter().any(|f| f.contains("orphan object")));
        assert!(!fs.client_view(&states).exists("/f"));
    }
}
