//! The client-visible file tree of a (possibly recovered) PFS, and
//! recovery reports.
//!
//! ParaCrash's golden-master comparison happens at this level: a recovered
//! crash state is *consistent* iff its client-visible tree matches the
//! tree produced by replaying some legal preserved set of PFS calls
//! (§4.4.3). The view deliberately abstracts away server placement, chunk
//! names and internal metadata — those are implementation details the
//! crash-consistency contract does not cover.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A logical file tree as seen through the PFS mount point.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PfsView {
    /// Regular files: mount-relative path → content. A file that exists
    /// but whose data is unreadable (lost chunk) maps to `None`.
    pub files: BTreeMap<String, Option<Vec<u8>>>,
    /// Directories (mount-relative paths, `/` excluded).
    pub dirs: BTreeSet<String>,
}

impl PfsView {
    /// Empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a readable file.
    pub fn add_file(&mut self, path: impl Into<String>, data: impl Into<Vec<u8>>) {
        self.files.insert(path.into(), Some(data.into()));
    }

    /// Add a file whose content could not be reconstructed.
    pub fn add_damaged_file(&mut self, path: impl Into<String>) {
        self.files.insert(path.into(), None);
    }

    /// Add a directory.
    pub fn add_dir(&mut self, path: impl Into<String>) {
        self.dirs.insert(path.into());
    }

    /// Content of a file, if present and readable.
    pub fn read(&self, path: &str) -> Option<&[u8]> {
        self.files.get(path).and_then(|d| d.as_deref())
    }

    /// `true` if a file or directory exists at `path`.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path) || self.dirs.contains(path)
    }

    /// Canonical digest (for dedup of recovered states).
    pub fn digest(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.files.hash(&mut h);
        self.dirs.hash(&mut h);
        h.finish()
    }

    /// Human-readable diff against another view (for bug reports).
    pub fn diff(&self, other: &PfsView) -> Vec<String> {
        let mut out = Vec::new();
        for (p, d) in &self.files {
            match other.files.get(p) {
                None => out.push(format!("file {p} missing in other")),
                Some(od) if od != d => out.push(format!("file {p} content differs")),
                _ => {}
            }
        }
        for p in other.files.keys() {
            if !self.files.contains_key(p) {
                out.push(format!("file {p} only in other"));
            }
        }
        for d in self.dirs.symmetric_difference(&other.dirs) {
            out.push(format!("dir {d} present in only one view"));
        }
        out
    }
}

impl fmt::Display for PfsView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.dirs {
            writeln!(f, "{d}/")?;
        }
        for (p, data) in &self.files {
            match data {
                Some(d) => writeln!(f, "{p} ({} bytes)", d.len())?,
                None => writeln!(f, "{p} (UNREADABLE)")?,
            }
        }
        Ok(())
    }
}

/// What the PFS's recovery tool did with a crash state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Tool name (`beegfs-fsck`, `mmfsck`, …).
    pub tool: String,
    /// Issues found, in tool-output style.
    pub findings: Vec<String>,
    /// Repairs applied.
    pub repairs: Vec<String>,
    /// `true` if the tool declared the file system unrecoverable /
    /// left known damage behind.
    pub unrecovered_damage: bool,
}

impl RecoveryReport {
    /// A clean run of `tool` (nothing to fix).
    pub fn clean(tool: impl Into<String>) -> Self {
        RecoveryReport {
            tool: tool.into(),
            ..Default::default()
        }
    }

    /// Record a finding.
    pub fn finding(&mut self, msg: impl Into<String>) {
        self.findings.push(msg.into());
    }

    /// Record a repair.
    pub fn repair(&mut self, msg: impl Into<String>) {
        self.repairs.push(msg.into());
    }

    /// `true` if the tool found nothing.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && !self.unrecovered_damage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_roundtrip_and_digest() {
        let mut a = PfsView::new();
        a.add_dir("/A");
        a.add_file("/A/foo", b"data".to_vec());
        assert!(a.exists("/A"));
        assert!(a.exists("/A/foo"));
        assert_eq!(a.read("/A/foo"), Some(&b"data"[..]));
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn damaged_files_differ_from_readable() {
        let mut a = PfsView::new();
        a.add_file("/f", b"x".to_vec());
        let mut b = PfsView::new();
        b.add_damaged_file("/f");
        assert_ne!(a, b);
        assert_eq!(b.read("/f"), None);
        assert!(b.exists("/f"));
    }

    #[test]
    fn diff_lists_discrepancies() {
        let mut a = PfsView::new();
        a.add_file("/x", b"1".to_vec());
        a.add_dir("/d");
        let mut b = PfsView::new();
        b.add_file("/x", b"2".to_vec());
        b.add_file("/y", b"3".to_vec());
        let d = a.diff(&b);
        assert!(d.iter().any(|s| s.contains("/x") && s.contains("differs")));
        assert!(d.iter().any(|s| s.contains("/y")));
        assert!(d.iter().any(|s| s.contains("/d")));
    }

    #[test]
    fn recovery_report_flags() {
        let mut r = RecoveryReport::clean("beegfs-fsck");
        assert!(r.is_clean());
        r.finding("dangling dentry");
        r.repair("dropped dentry");
        assert!(!r.is_clean());
    }
}
