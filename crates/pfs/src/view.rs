//! The client-visible file tree of a (possibly recovered) PFS, and
//! recovery reports.
//!
//! ParaCrash's golden-master comparison happens at this level: a recovered
//! crash state is *consistent* iff its client-visible tree matches the
//! tree produced by replaying some legal preserved set of PFS calls
//! (§4.4.3). The view deliberately abstracts away server placement, chunk
//! names and internal metadata — those are implementation details the
//! crash-consistency contract does not cover.

use pc_rt::intern::Sym;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A logical file tree as seen through the PFS mount point.
///
/// Paths are interned [`Sym`]s internally: the golden-master check
/// compares a recovered view against every legal view, and with
/// interned keys that containment test compares 4-byte ids instead of
/// re-walking path strings. Map iteration order is id order — an
/// implementation detail — so every rendered output ([`fmt::Display`],
/// [`PfsView::diff`], [`PfsView::digest`]) sorts by the resolved
/// string, keeping presentation byte-identical to the string-keyed
/// representation it replaced.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PfsView {
    /// Regular files: mount-relative path → content. A file that exists
    /// but whose data is unreadable (lost chunk) maps to `None`.
    files: BTreeMap<Sym, Option<Vec<u8>>>,
    /// Directories (mount-relative paths, `/` excluded).
    dirs: BTreeSet<Sym>,
}

impl PfsView {
    /// Empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a readable file.
    pub fn add_file(&mut self, path: impl AsRef<str>, data: impl Into<Vec<u8>>) {
        self.files
            .insert(Sym::new(path.as_ref()), Some(data.into()));
    }

    /// Add a file whose content could not be reconstructed.
    pub fn add_damaged_file(&mut self, path: impl AsRef<str>) {
        self.files.insert(Sym::new(path.as_ref()), None);
    }

    /// Add a directory.
    pub fn add_dir(&mut self, path: impl AsRef<str>) {
        self.dirs.insert(Sym::new(path.as_ref()));
    }

    /// Content of a file, if present and readable.
    pub fn read(&self, path: &str) -> Option<&[u8]> {
        self.files.get(&Sym::new(path)).and_then(|d| d.as_deref())
    }

    /// `true` if a file or directory exists at `path`.
    pub fn exists(&self, path: &str) -> bool {
        let sym = Sym::new(path);
        self.files.contains_key(&sym) || self.dirs.contains(&sym)
    }

    /// `true` if a directory exists at `path`.
    pub fn has_dir(&self, path: &str) -> bool {
        self.dirs.contains(&Sym::new(path))
    }

    /// Number of files (readable or damaged) in the view.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Files in lexicographic path order: `(path, content)` where
    /// `None` content marks a damaged file.
    pub fn files_sorted(&self) -> Vec<(&'static str, Option<&[u8]>)> {
        let mut out: Vec<(&'static str, Option<&[u8]>)> = self
            .files
            .iter()
            .map(|(p, d)| (p.as_str(), d.as_deref()))
            .collect();
        out.sort_unstable_by_key(|(p, _)| *p);
        out
    }

    /// Directories in lexicographic path order.
    pub fn dirs_sorted(&self) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = self.dirs.iter().map(|d| d.as_str()).collect();
        out.sort_unstable();
        out
    }

    /// Canonical digest (for dedup of recovered states). Hashes the
    /// resolved, sorted tree so the value is independent of interning
    /// order (and therefore stable across thread schedules).
    pub fn digest(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        let files: BTreeMap<&str, &Option<Vec<u8>>> =
            self.files.iter().map(|(p, d)| (p.as_str(), d)).collect();
        let dirs: BTreeSet<&str> = self.dirs.iter().map(|d| d.as_str()).collect();
        files.hash(&mut h);
        dirs.hash(&mut h);
        h.finish()
    }

    /// Human-readable diff against another view (for bug reports).
    pub fn diff(&self, other: &PfsView) -> Vec<String> {
        let mut out = Vec::new();
        for (p, d) in self.files_sorted() {
            match other.files.get(&Sym::new(p)) {
                None => out.push(format!("file {p} missing in other")),
                Some(od) if od.as_deref() != d => out.push(format!("file {p} content differs")),
                _ => {}
            }
        }
        for (p, _) in other.files_sorted() {
            if !self.files.contains_key(&Sym::new(p)) {
                out.push(format!("file {p} only in other"));
            }
        }
        let mut dir_diff: Vec<&str> = self
            .dirs
            .symmetric_difference(&other.dirs)
            .map(|d| d.as_str())
            .collect();
        dir_diff.sort_unstable();
        for d in dir_diff {
            out.push(format!("dir {d} present in only one view"));
        }
        out
    }
}

impl fmt::Display for PfsView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in self.dirs_sorted() {
            writeln!(f, "{d}/")?;
        }
        for (p, data) in self.files_sorted() {
            match data {
                Some(d) => writeln!(f, "{p} ({} bytes)", d.len())?,
                None => writeln!(f, "{p} (UNREADABLE)")?,
            }
        }
        Ok(())
    }
}

/// What the PFS's recovery tool did with a crash state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Tool name (`beegfs-fsck`, `mmfsck`, …).
    pub tool: String,
    /// Issues found, in tool-output style.
    pub findings: Vec<String>,
    /// Repairs applied.
    pub repairs: Vec<String>,
    /// `true` if the tool declared the file system unrecoverable /
    /// left known damage behind.
    pub unrecovered_damage: bool,
}

impl RecoveryReport {
    /// A clean run of `tool` (nothing to fix).
    pub fn clean(tool: impl Into<String>) -> Self {
        RecoveryReport {
            tool: tool.into(),
            ..Default::default()
        }
    }

    /// Record a finding.
    pub fn finding(&mut self, msg: impl Into<String>) {
        self.findings.push(msg.into());
    }

    /// Record a repair.
    pub fn repair(&mut self, msg: impl Into<String>) {
        self.repairs.push(msg.into());
    }

    /// `true` if the tool found nothing.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && !self.unrecovered_damage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_roundtrip_and_digest() {
        let mut a = PfsView::new();
        a.add_dir("/A");
        a.add_file("/A/foo", b"data".to_vec());
        assert!(a.exists("/A"));
        assert!(a.exists("/A/foo"));
        assert_eq!(a.read("/A/foo"), Some(&b"data"[..]));
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn damaged_files_differ_from_readable() {
        let mut a = PfsView::new();
        a.add_file("/f", b"x".to_vec());
        let mut b = PfsView::new();
        b.add_damaged_file("/f");
        assert_ne!(a, b);
        assert_eq!(b.read("/f"), None);
        assert!(b.exists("/f"));
    }

    #[test]
    fn diff_lists_discrepancies() {
        let mut a = PfsView::new();
        a.add_file("/x", b"1".to_vec());
        a.add_dir("/d");
        let mut b = PfsView::new();
        b.add_file("/x", b"2".to_vec());
        b.add_file("/y", b"3".to_vec());
        let d = a.diff(&b);
        assert!(d.iter().any(|s| s.contains("/x") && s.contains("differs")));
        assert!(d.iter().any(|s| s.contains("/y")));
        assert!(d.iter().any(|s| s.contains("/d")));
    }

    #[test]
    fn recovery_report_flags() {
        let mut r = RecoveryReport::clean("beegfs-fsck");
        assert!(r.is_clean());
        r.finding("dangling dentry");
        r.repair("dropped dentry");
        assert!(!r.is_clean());
    }
}
