//! Table 3 ground truth: the 15 crash-consistency bugs the paper
//! discovered, encoded for comparison harnesses and regression tests.

/// Which layer Table 3 lists as inconsistent / root cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BugLayer {
    /// Inconsistent at the PFS layer (bugs 1–8).
    Pfs,
    /// Inconsistent at the I/O-library layer, caused by the library
    /// (bugs 9, 11, 12, 14).
    IoLib,
    /// Inconsistent at the I/O-library layer, root-caused to the PFS
    /// (bugs 10, 13, 15).
    IoLibPfsRooted,
}

/// One row of Table 3.
#[derive(Debug, Clone)]
pub struct PaperBug {
    /// Row number (1–15).
    pub no: u8,
    /// Test program(s) exposing it.
    pub programs: &'static [&'static str],
    /// File systems affected (PFS rows) or underneath (I/O-library
    /// rows).
    pub file_systems: &'static [&'static str],
    /// Layer attribution.
    pub layer: BugLayer,
    /// The Details column, in the paper's notation.
    pub details: &'static str,
    /// The Consequence column.
    pub consequence: &'static str,
    /// The Sensitivity column.
    pub sensitivity: &'static str,
}

/// The 15 bugs of Table 3.
pub fn table3() -> Vec<PaperBug> {
    vec![
        PaperBug {
            no: 1,
            programs: &["ARVR"],
            file_systems: &["BeeGFS", "OrangeFS"],
            layer: BugLayer::Pfs,
            details: "append(file chunk of tmp)@storage -> rename(d_entry of tmp, d_entry of foo)@metadata",
            consequence: "Data loss",
            sensitivity: "N/A",
        },
        PaperBug {
            no: 2,
            programs: &["ARVR"],
            file_systems: &["BeeGFS"],
            layer: BugLayer::Pfs,
            details: "rename(d_entry of tmp, d_entry of foo)@metadata -> unlink(old file chunk of tmp)@storage",
            consequence: "Data loss",
            sensitivity: "N/A",
        },
        PaperBug {
            no: 3,
            programs: &["ARVR"],
            file_systems: &["GPFS"],
            layer: BugLayer::Pfs,
            details: "[write(log file)@server#2, write(parent_dir)@server#2, write(file inode)@server#1, write(parent_dir inode)@server#2]",
            consequence: "Data loss (accept all mmfsck fixes) / metadata loss (if inode entry not deleted)",
            sensitivity: "N/A",
        },
        PaperBug {
            no: 4,
            programs: &["CR"],
            file_systems: &["BeeGFS", "OrangeFS", "GPFS"],
            layer: BugLayer::Pfs,
            details: "link(idfile, d_entry of A/foo)@metadata -> unlink(d_entry of B/foo)@metadata (GPFS: write(inode of directory A/) -> write(inode of directory B/))",
            consequence: "File created in both directories",
            sensitivity: "N/A",
        },
        PaperBug {
            no: 5,
            programs: &["RC"],
            file_systems: &["BeeGFS", "GPFS"],
            layer: BugLayer::Pfs,
            details: "rename(d_entry of A, d_entry of B)@metadata#1 -> link(idfile, d_entry of B/foo)@metadata#2",
            consequence: "File created in a wrong directory",
            sensitivity: "file distrib.",
        },
        PaperBug {
            no: 6,
            programs: &["WAL"],
            file_systems: &["BeeGFS", "GlusterFS", "OrangeFS"],
            layer: BugLayer::Pfs,
            details: "append(file chunk of log)@storage#1 -> overwrite(file chunk of foo)@storage#2",
            consequence: "No logs written after file modification",
            sensitivity: "file distrib.",
        },
        PaperBug {
            no: 7,
            programs: &["WAL"],
            file_systems: &["BeeGFS"],
            layer: BugLayer::Pfs,
            details: "link(idfile, d_entry of log)@metadata -> overwrite(file chunk of foo)@storage",
            consequence: "No logs created after file modification",
            sensitivity: "N/A",
        },
        PaperBug {
            no: 8,
            programs: &["WAL"],
            file_systems: &["BeeGFS", "GlusterFS"],
            layer: BugLayer::Pfs,
            details: "overwrite(file chunk of foo)@storage -> unlink(d_entry of log)@metadata",
            consequence: "No logs created after file modification",
            sensitivity: "N/A",
        },
        PaperBug {
            no: 9,
            programs: &["H5-parallel-create"],
            file_systems: &["HDF5"],
            layer: BugLayer::IoLib,
            details: "Local heap -> B-tree nodes of the same group",
            consequence: "Cannot open an unmodified dataset",
            sensitivity: "# of clients",
        },
        PaperBug {
            no: 10,
            programs: &["H5-create"],
            file_systems: &["BeeGFS", "OrangeFS", "GlusterFS", "GPFS", "Lustre"],
            layer: BugLayer::IoLibPfsRooted,
            details: "B-tree nodes & local name heap -> symbol table node of the same group",
            consequence: "Cannot open an unmodified dataset",
            sensitivity: "N/A",
        },
        PaperBug {
            no: 11,
            programs: &["H5-delete"],
            file_systems: &["HDF5"],
            layer: BugLayer::IoLib,
            details: "Symbol table node -> B-tree nodes & local heap of the same group",
            consequence: "Cannot open an unmodified dataset",
            sensitivity: "N/A",
        },
        PaperBug {
            no: 12,
            programs: &["H5-rename"],
            file_systems: &["HDF5"],
            layer: BugLayer::IoLib,
            details: "[B-tree nodes, symbol table & local heap from both source and destination group]",
            consequence: "The renamed dataset is lost",
            sensitivity: "N/A",
        },
        PaperBug {
            no: 13,
            programs: &["H5-parallel-resize", "H5-resize"],
            file_systems: &["BeeGFS", "OrangeFS", "GlusterFS", "GPFS", "Lustre"],
            layer: BugLayer::IoLibPfsRooted,
            details: "Superblock -> B-tree node of the resized dataset",
            consequence: "Cannot read data from the resized dataset (addr overflow)",
            sensitivity: "h5clear options",
        },
        PaperBug {
            no: 14,
            programs: &["H5-resize"],
            file_systems: &["HDF5"],
            layer: BugLayer::IoLib,
            details: "Child B-tree node -> parent B-tree node",
            consequence: "Cannot read data from the resized dataset (wrong B-tree signature)",
            sensitivity: "dim. of dataset",
        },
        PaperBug {
            no: 15,
            programs: &["CDF-create"],
            file_systems: &["BeeGFS", "OrangeFS", "GlusterFS", "GPFS", "Lustre"],
            layer: BugLayer::IoLibPfsRooted,
            details: "Superblock -> object header",
            consequence: "Cannot open the file (NetCDF: HDF5 error [Errno -101])",
            sensitivity: "N/A",
        },
    ]
}

/// Paper bug rows expected for a `(program, fs)` pair at the PFS layer.
pub fn pfs_bugs_for(program: &str, fs: &str) -> Vec<PaperBug> {
    table3()
        .into_iter()
        .filter(|b| {
            b.layer == BugLayer::Pfs
                && b.programs.contains(&program)
                && b.file_systems.contains(&fs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_bugs_total() {
        let bugs = table3();
        assert_eq!(bugs.len(), 15);
        let nos: Vec<u8> = bugs.iter().map(|b| b.no).collect();
        assert_eq!(nos, (1..=15).collect::<Vec<u8>>());
    }

    #[test]
    fn layer_partition_matches_section_633() {
        // §6.3.3: H5-create, H5-resize, H5-parallel-resize, CDF-create
        // bugs are attributed to the PFS; other I/O-library bugs to HDF5.
        let bugs = table3();
        let pfs_rooted: Vec<u8> = bugs
            .iter()
            .filter(|b| b.layer == BugLayer::IoLibPfsRooted)
            .map(|b| b.no)
            .collect();
        assert_eq!(pfs_rooted, vec![10, 13, 15]);
        let iolib: Vec<u8> = bugs
            .iter()
            .filter(|b| b.layer == BugLayer::IoLib)
            .map(|b| b.no)
            .collect();
        assert_eq!(iolib, vec![9, 11, 12, 14]);
        assert_eq!(bugs.iter().filter(|b| b.layer == BugLayer::Pfs).count(), 8);
    }

    #[test]
    fn lustre_has_no_posix_rows() {
        for bug in table3() {
            if bug.layer == BugLayer::Pfs {
                assert!(!bug.file_systems.contains(&"Lustre"), "bug {}", bug.no);
            }
        }
    }

    #[test]
    fn lookup_by_program_and_fs() {
        let arvr_beegfs = pfs_bugs_for("ARVR", "BeeGFS");
        assert_eq!(arvr_beegfs.len(), 2);
        let arvr_gpfs = pfs_bugs_for("ARVR", "GPFS");
        assert_eq!(arvr_gpfs.len(), 1);
        assert_eq!(arvr_gpfs[0].no, 3);
        assert!(pfs_bugs_for("ARVR", "Lustre").is_empty());
    }
}
