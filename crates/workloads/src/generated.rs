//! Generated workloads: the fuzzer's bounded operation vocabularies.
//!
//! The paper's eleven programs are *representative* workloads; this
//! module provides the complementary B3-style **bounded black-box**
//! vocabulary (cf. CrashMonkey/B3): every sequence of up to `bound`
//! operations drawn from a small, argument-bounded POSIX vocabulary
//! over a fixed file set, plus short HDF5 and MPI-IO call sequences.
//! `paracrash::fuzz::bounded_sequences` enumerates the sequences in a
//! canonical radix order with namespace-validity pruning, so the corpus
//! for a given bound is a pure function of this file — no RNG anywhere
//! in enumeration, and the seeded [`sample`] mode draws a deterministic
//! subset via `paracrash::fuzz::sample_indices`.
//!
//! Bounding decisions (argument bounding is what makes exhaustive
//! enumeration tractable — B3's insight):
//!
//! * **File set**: directory `/A`, files `/foo` and `/A/bar` pre-created
//!   with known content; one creatable file `/baz` and one creatable
//!   directory `/B`.
//! * **`link` is omitted**: the PFS call vocabulary has no hard-link
//!   operation (BeeGFS's idfile links are internal to the model).
//! * **`fdatasync` lowers to `Fsync`**: the simulated stores have no
//!   separate metadata flush, so the two ops produce byte-identical
//!   traces — the duplicate is kept in the vocabulary deliberately, as
//!   a live demonstration that the corpus dedups by *behavior* (the
//!   Pathfinder-style representative-testing collapse).
//! * **HDF5/MPI-IO sequences are one op shorter** than the POSIX bound:
//!   each library call expands to many PFS calls, so the crash-state
//!   space per op is far larger.

use crate::fskind::FsKind;
use crate::params::Params;
use h5sim::{H5File, H5Spec};
use mpiio::MpiIo;
use paracrash::fuzz::{bounded_sequences, sample_indices};
use paracrash::Stack;
use pfs::PfsCall;
use std::collections::BTreeSet;

/// Length of the initial content written to the pre-created files; the
/// `append` ops write at this offset.
const INIT_LEN: usize = 32;

/// One bounded POSIX operation (paths are drawn from the fixed file
/// set, offsets and data from fixed slots — B3-style argument bounding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GenOp {
    /// `creat(path)` of a not-yet-existing file.
    Creat(&'static str),
    /// `mkdir(path)` of a not-yet-existing directory.
    Mkdir(&'static str),
    /// `pwrite(path, 0, …)` replacing the head of the file.
    Overwrite(&'static str),
    /// `pwrite(path, INIT_LEN, …)` past the initial content.
    Append(&'static str),
    /// `rename(src, dst)`.
    Rename(&'static str, &'static str),
    /// `unlink(path)`.
    Unlink(&'static str),
    /// `fsync(path)`.
    Fsync(&'static str),
    /// `fdatasync(path)` — lowers to the same PFS `Fsync` (see module
    /// docs: a deliberate vocabulary duplicate).
    Fdatasync(&'static str),
}

impl GenOp {
    /// Canonical label, e.g. `creat(/baz)` — stable across releases
    /// (it keys findings bundles and the pinned-corpus gate).
    pub fn label(&self) -> String {
        match self {
            GenOp::Creat(p) => format!("creat({p})"),
            GenOp::Mkdir(p) => format!("mkdir({p})"),
            GenOp::Overwrite(p) => format!("overwrite({p})"),
            GenOp::Append(p) => format!("append({p})"),
            GenOp::Rename(s, d) => format!("rename({s},{d})"),
            GenOp::Unlink(p) => format!("unlink({p})"),
            GenOp::Fsync(p) => format!("fsync({p})"),
            GenOp::Fdatasync(p) => format!("fdatasync({p})"),
        }
    }
}

/// The bounded POSIX vocabulary (17 operations; order fixes the
/// enumeration order, so append-only changes keep old corpora stable).
pub fn posix_vocabulary() -> Vec<GenOp> {
    vec![
        GenOp::Creat("/baz"),
        GenOp::Mkdir("/B"),
        GenOp::Overwrite("/foo"),
        GenOp::Overwrite("/A/bar"),
        GenOp::Overwrite("/baz"),
        GenOp::Append("/foo"),
        GenOp::Append("/A/bar"),
        GenOp::Rename("/foo", "/baz"),
        GenOp::Rename("/foo", "/A/bar"),
        GenOp::Rename("/A/bar", "/baz"),
        GenOp::Rename("/A", "/B"),
        GenOp::Unlink("/foo"),
        GenOp::Unlink("/A/bar"),
        GenOp::Unlink("/baz"),
        GenOp::Fsync("/foo"),
        GenOp::Fsync("/A/bar"),
        GenOp::Fdatasync("/foo"),
    ]
}

/// Namespace state for validity pruning; mirrors the semantics of the
/// checker's own executability filter (`core::stack`), strengthened to
/// also reject creat-over-existing and rename-over-existing-directory so
/// every admitted sequence replays panic-free on every PFS model.
struct Namespace {
    dirs: BTreeSet<String>,
    files: BTreeSet<String>,
}

impl Namespace {
    fn initial() -> Namespace {
        let mut dirs = BTreeSet::new();
        dirs.insert("/".to_string());
        dirs.insert("/A".to_string());
        let mut files = BTreeSet::new();
        files.insert("/foo".to_string());
        files.insert("/A/bar".to_string());
        Namespace { dirs, files }
    }

    fn parent(p: &str) -> String {
        match p.rfind('/') {
            Some(0) => "/".into(),
            Some(i) => p[..i].to_string(),
            None => "/".into(),
        }
    }

    /// Apply one op; `false` if it is not executable in this state.
    fn apply(&mut self, op: &GenOp) -> bool {
        match op {
            GenOp::Creat(p) => {
                if !self.dirs.contains(&Self::parent(p))
                    || self.dirs.contains(*p)
                    || self.files.contains(*p)
                {
                    return false;
                }
                self.files.insert((*p).into());
                true
            }
            GenOp::Mkdir(p) => {
                if !self.dirs.contains(&Self::parent(p))
                    || self.dirs.contains(*p)
                    || self.files.contains(*p)
                {
                    return false;
                }
                self.dirs.insert((*p).into());
                true
            }
            GenOp::Overwrite(p) | GenOp::Append(p) | GenOp::Fsync(p) | GenOp::Fdatasync(p) => {
                self.files.contains(*p)
            }
            GenOp::Unlink(p) => self.files.remove(*p),
            GenOp::Rename(src, dst) => {
                if self.files.remove(*src) {
                    // File rename: dst may be an existing file (POSIX
                    // replace) but not a directory.
                    if !self.dirs.contains(&Self::parent(dst)) || self.dirs.contains(*dst) {
                        return false;
                    }
                    self.files.insert((*dst).into());
                    true
                } else if self.dirs.contains(*src) {
                    // Directory rename: require a fresh dst, rewrite
                    // children.
                    if !self.dirs.contains(&Self::parent(dst))
                        || self.dirs.contains(*dst)
                        || self.files.contains(*dst)
                    {
                        return false;
                    }
                    self.dirs.remove(*src);
                    let prefix = format!("{src}/");
                    let moved: Vec<String> = self
                        .dirs
                        .iter()
                        .chain(self.files.iter())
                        .filter(|p| p.starts_with(&prefix))
                        .cloned()
                        .collect();
                    for m in moved {
                        let new = format!("{dst}{}", &m[src.len()..]);
                        if self.dirs.remove(&m) {
                            self.dirs.insert(new);
                        } else {
                            self.files.remove(&m);
                            self.files.insert(new);
                        }
                    }
                    self.dirs.insert((*dst).into());
                    true
                } else {
                    false
                }
            }
        }
    }
}

fn posix_valid(seq: &[GenOp]) -> bool {
    let mut ns = Namespace::initial();
    seq.iter().all(|op| ns.apply(op))
}

/// One bounded HDF5 operation over the common preamble state (file with
/// groups `g1`/`g2` and datasets `g1/d1`, `g1/d2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum H5GenOp {
    /// `H5Dcreate("g1/d3")` from rank 0.
    Create,
    /// `H5Ldelete("g1/d2")`.
    Delete,
    /// `H5Lmove("g1/d2" → "g2/d2")`.
    Rename,
    /// `H5Dset_extent` doubling `g1/d2`.
    Resize,
    /// Collective `H5Dcreate("g1/d3")` from all ranks.
    CreateParallel,
    /// Collective `H5Dset_extent` doubling `g1/d2`.
    ResizeParallel,
}

impl H5GenOp {
    /// Canonical label, e.g. `h5create(g1/d3)`.
    pub fn label(&self) -> &'static str {
        match self {
            H5GenOp::Create => "h5create(g1/d3)",
            H5GenOp::Delete => "h5delete(g1/d2)",
            H5GenOp::Rename => "h5rename(g1/d2,g2/d2)",
            H5GenOp::Resize => "h5resize(g1/d2)",
            H5GenOp::CreateParallel => "h5create-par(g1/d3)",
            H5GenOp::ResizeParallel => "h5resize-par(g1/d2)",
        }
    }
}

/// The bounded HDF5 vocabulary.
pub fn h5_vocabulary() -> Vec<H5GenOp> {
    vec![
        H5GenOp::Create,
        H5GenOp::Delete,
        H5GenOp::Rename,
        H5GenOp::Resize,
        H5GenOp::CreateParallel,
        H5GenOp::ResizeParallel,
    ]
}

/// Dataset-existence validity for HDF5 sequences: `g1/d3` must not
/// exist before a create and must for a delete/rename/resize target;
/// each dataset resizes at most once (the doubled extent is absolute).
fn h5_valid(seq: &[H5GenOp]) -> bool {
    let mut d2_in_g1 = true;
    let mut d2_in_g2 = false;
    let mut d3 = false;
    let mut d2_resized = false;
    for op in seq {
        match op {
            H5GenOp::Create | H5GenOp::CreateParallel => {
                if d3 {
                    return false;
                }
                d3 = true;
            }
            H5GenOp::Delete => {
                if !d2_in_g1 {
                    return false;
                }
                d2_in_g1 = false;
            }
            H5GenOp::Rename => {
                if !d2_in_g1 || d2_in_g2 {
                    return false;
                }
                d2_in_g1 = false;
                d2_in_g2 = true;
            }
            H5GenOp::Resize | H5GenOp::ResizeParallel => {
                if !d2_in_g1 || d2_resized {
                    return false;
                }
                d2_resized = true;
            }
        }
    }
    true
}

/// One bounded MPI-IO operation on the preamble file `/mpi.dat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MpiGenOp {
    /// `MPI_File_write_at` from rank 0 at offset 0.
    WriteAt0,
    /// `MPI_File_write_at` from the last rank at one stripe's offset
    /// (lands on a different storage server than rank 0's write).
    WriteAt1,
    /// `MPI_File_sync` from rank 0.
    Sync,
    /// `MPI_Barrier` across all ranks (adds happens-before edges only).
    Barrier,
    /// Collective `MPI_File_close`.
    Close,
}

impl MpiGenOp {
    /// Canonical label, e.g. `mpi-write@0(r0)`.
    pub fn label(&self) -> &'static str {
        match self {
            MpiGenOp::WriteAt0 => "mpi-write@0(r0)",
            MpiGenOp::WriteAt1 => "mpi-write@stripe(r1)",
            MpiGenOp::Sync => "mpi-sync(r0)",
            MpiGenOp::Barrier => "mpi-barrier",
            MpiGenOp::Close => "mpi-close",
        }
    }
}

/// The bounded MPI-IO vocabulary.
pub fn mpi_vocabulary() -> Vec<MpiGenOp> {
    vec![
        MpiGenOp::WriteAt0,
        MpiGenOp::WriteAt1,
        MpiGenOp::Sync,
        MpiGenOp::Barrier,
        MpiGenOp::Close,
    ]
}

/// MPI-IO validity: nothing follows the collective close.
fn mpi_valid(seq: &[MpiGenOp]) -> bool {
    match seq.iter().position(|op| *op == MpiGenOp::Close) {
        Some(i) => i == seq.len() - 1,
        None => true,
    }
}

/// One generated workload: an operation sequence from one of the three
/// vocabularies, runnable on any [`FsKind`] like a paper [`crate::Program`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GeneratedWorkload {
    /// A POSIX operation sequence.
    Posix(Vec<GenOp>),
    /// An HDF5 call sequence (through `h5sim` + `mpiio`).
    H5(Vec<H5GenOp>),
    /// An MPI-IO call sequence (through `mpiio` only).
    Mpi(Vec<MpiGenOp>),
}

impl GeneratedWorkload {
    /// Canonical label, e.g. `posix:creat(/baz)+fsync(/foo)` — the
    /// stable identity used in reports, findings bundles and the
    /// pinned-corpus gate.
    pub fn label(&self) -> String {
        match self {
            GeneratedWorkload::Posix(ops) => format!(
                "posix:{}",
                ops.iter().map(|o| o.label()).collect::<Vec<_>>().join("+")
            ),
            GeneratedWorkload::H5(ops) => format!(
                "h5:{}",
                ops.iter().map(|o| o.label()).collect::<Vec<_>>().join("+")
            ),
            GeneratedWorkload::Mpi(ops) => format!(
                "mpi:{}",
                ops.iter().map(|o| o.label()).collect::<Vec<_>>().join("+")
            ),
        }
    }

    /// Execute the workload (preamble + traced test phase) on `fs`,
    /// mirroring [`crate::Program::run`].
    pub fn run(&self, fs: FsKind, params: &Params) -> Stack {
        match self {
            GeneratedWorkload::Posix(ops) => run_posix(ops, fs, params),
            GeneratedWorkload::H5(ops) => run_h5_gen(ops, fs, params),
            GeneratedWorkload::Mpi(ops) => run_mpi_gen(ops, fs, params),
        }
    }
}

fn run_posix(ops: &[GenOp], fs: FsKind, params: &Params) -> Stack {
    let mut stack = Stack::new(fs.build(params));
    // Preamble: the fixed file set with known content.
    stack.posix(0, PfsCall::Mkdir { path: "/A".into() });
    for path in ["/foo", "/A/bar"] {
        stack.posix(0, PfsCall::Creat { path: path.into() });
        stack.posix(
            0,
            PfsCall::Pwrite {
                path: path.into(),
                offset: 0,
                data: vec![b'i'; INIT_LEN],
            },
        );
        stack.posix(0, PfsCall::Close { path: path.into() });
    }
    stack.seal_preamble();
    for (i, op) in ops.iter().enumerate() {
        let call = match op {
            GenOp::Creat(p) => PfsCall::Creat { path: (*p).into() },
            GenOp::Mkdir(p) => PfsCall::Mkdir { path: (*p).into() },
            GenOp::Overwrite(p) => PfsCall::Pwrite {
                path: (*p).into(),
                offset: 0,
                // Distinct data per position so behaviors that differ
                // only in op order stay distinguishable.
                data: format!("gen-over-{i}").into_bytes(),
            },
            GenOp::Append(p) => PfsCall::Pwrite {
                path: (*p).into(),
                offset: INIT_LEN as u64,
                data: format!("gen-app-{i}").into_bytes(),
            },
            GenOp::Rename(s, d) => PfsCall::Rename {
                src: (*s).into(),
                dst: (*d).into(),
            },
            GenOp::Unlink(p) => PfsCall::Unlink { path: (*p).into() },
            GenOp::Fsync(p) | GenOp::Fdatasync(p) => PfsCall::Fsync { path: (*p).into() },
        };
        stack.posix(0, call);
    }
    stack
}

fn run_h5_gen(ops: &[H5GenOp], fs: FsKind, params: &Params) -> Stack {
    let mut stack = Stack::new(fs.build(params));
    stack.h5_path = Some("/file.h5".into());
    stack.h5_ranks = params.ranks();
    stack.h5_spec = H5Spec {
        elem: 8,
        seg: params.h5_seg,
    };
    let ranks = params.ranks();
    let dims = params.dims;

    // The common initial state of every H5 program: two groups, two
    // datasets in g1.
    let mut file = {
        let mut mpi = MpiIo::new(stack.pfs.as_mut(), &mut stack.rec, &mut stack.calls);
        let mut f = H5File::create(&mut mpi, &mut stack.h5, &ranks, "/file.h5", stack.h5_spec);
        f.create_group(&mut mpi, &mut stack.h5, ranks[0], "g1");
        f.create_group(&mut mpi, &mut stack.h5, ranks[0], "g2");
        for i in 1..=2u32 {
            f.create_dataset(
                &mut mpi,
                &mut stack.h5,
                ranks[0],
                "g1",
                &format!("d{i}"),
                dims,
                dims,
            );
        }
        f.close(&mut mpi, &mut stack.h5, &ranks);
        f
    };
    stack.seal_preamble();

    {
        let mut mpi = MpiIo::new(stack.pfs.as_mut(), &mut stack.rec, &mut stack.calls);
        file.open(&mut mpi, &ranks);
        for op in ops {
            match op {
                H5GenOp::Create => {
                    file.create_dataset(&mut mpi, &mut stack.h5, ranks[0], "g1", "d3", dims, dims);
                }
                H5GenOp::Delete => {
                    file.delete_dataset(&mut mpi, &mut stack.h5, ranks[0], "g1", "d2");
                }
                H5GenOp::Rename => {
                    file.rename_dataset(&mut mpi, &mut stack.h5, ranks[0], "g1", "d2", "g2", "d2");
                }
                H5GenOp::Resize => {
                    file.resize_dataset(
                        &mut mpi,
                        &mut stack.h5,
                        ranks[0],
                        "g1",
                        "d2",
                        dims * 2,
                        dims * 2,
                    );
                }
                H5GenOp::CreateParallel => {
                    file.create_dataset_parallel(
                        &mut mpi,
                        &mut stack.h5,
                        &ranks,
                        "g1",
                        "d3",
                        dims,
                        dims,
                    );
                }
                H5GenOp::ResizeParallel => {
                    file.resize_dataset_parallel(
                        &mut mpi,
                        &mut stack.h5,
                        &ranks,
                        "g1",
                        "d2",
                        dims * 2,
                        dims * 2,
                    );
                }
            }
        }
    }
    stack
}

fn run_mpi_gen(ops: &[MpiGenOp], fs: FsKind, params: &Params) -> Stack {
    let mut stack = Stack::new(fs.build(params));
    let ranks = params.ranks();
    let path = "/mpi.dat";
    {
        let mut mpi = MpiIo::new(stack.pfs.as_mut(), &mut stack.rec, &mut stack.calls);
        mpi.file_open(&ranks, path, true, None);
        mpi.file_write_at(ranks[0], path, 0, &vec![b'i'; INIT_LEN], None);
        mpi.file_close(&ranks, path, None);
    }
    stack.seal_preamble();
    {
        let mut mpi = MpiIo::new(stack.pfs.as_mut(), &mut stack.rec, &mut stack.calls);
        mpi.file_open(&ranks, path, false, None);
        let last = *ranks.last().expect("at least one rank");
        for (i, op) in ops.iter().enumerate() {
            match op {
                MpiGenOp::WriteAt0 => {
                    let data = format!("mpi-w0-{i}").into_bytes();
                    mpi.file_write_at(ranks[0], path, 0, &data, None);
                }
                MpiGenOp::WriteAt1 => {
                    let data = format!("mpi-w1-{i}").into_bytes();
                    mpi.file_write_at(last, path, params.stripe, &data, None);
                }
                MpiGenOp::Sync => {
                    mpi.file_sync(ranks[0], path, None);
                }
                MpiGenOp::Barrier => {
                    mpi.barrier(&ranks, None);
                }
                MpiGenOp::Close => {
                    mpi.file_close(&ranks, path, None);
                }
            }
        }
    }
    stack
}

/// All valid POSIX sequences of length 1..=`bound`, in canonical order.
pub fn posix_sequences(bound: usize) -> Vec<GeneratedWorkload> {
    bounded_sequences(&posix_vocabulary(), bound, |seq| posix_valid(seq))
        .into_iter()
        .map(GeneratedWorkload::Posix)
        .collect()
}

/// All valid HDF5 sequences of length 1..=`max(1, bound-1)` (one op
/// shorter than the POSIX bound — see module docs).
pub fn h5_sequences(bound: usize) -> Vec<GeneratedWorkload> {
    let b = bound.saturating_sub(1).max(1);
    bounded_sequences(&h5_vocabulary(), b, |seq| h5_valid(seq))
        .into_iter()
        .map(GeneratedWorkload::H5)
        .collect()
}

/// All valid MPI-IO sequences of length 1..=`max(1, bound-1)`.
pub fn mpi_sequences(bound: usize) -> Vec<GeneratedWorkload> {
    let b = bound.saturating_sub(1).max(1);
    bounded_sequences(&mpi_vocabulary(), b, |seq| mpi_valid(seq))
        .into_iter()
        .map(GeneratedWorkload::Mpi)
        .collect()
}

/// The full generated corpus for a bound: POSIX, then HDF5, then MPI-IO
/// sequences, each in canonical enumeration order.
pub fn corpus(bound: usize) -> Vec<GeneratedWorkload> {
    let mut all = posix_sequences(bound);
    all.extend(h5_sequences(bound));
    all.extend(mpi_sequences(bound));
    all
}

/// A seeded deterministic sample of `n` workloads from the bound's
/// corpus (the nightly tier's mode); `n >= corpus size` returns the
/// whole corpus. Order follows the canonical enumeration order.
pub fn sample(bound: usize, seed: u64, n: usize) -> Vec<GeneratedWorkload> {
    let all = corpus(bound);
    let idx = sample_indices(all.len(), n, seed);
    idx.into_iter().map(|i| all[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn posix_vocabulary_is_stable() {
        let vocab = posix_vocabulary();
        assert_eq!(vocab.len(), 17);
        // The enumeration order (and hence the corpus) keys off this
        // exact order; changing it invalidates pinned findings.
        assert_eq!(vocab[0].label(), "creat(/baz)");
        assert_eq!(vocab[16].label(), "fdatasync(/foo)");
    }

    #[test]
    fn invalid_prefixes_are_pruned() {
        // /baz does not exist initially.
        assert!(!posix_valid(&[GenOp::Overwrite("/baz")]));
        assert!(posix_valid(&[
            GenOp::Creat("/baz"),
            GenOp::Overwrite("/baz")
        ]));
        // Directory rename rewrites children.
        assert!(!posix_valid(&[
            GenOp::Rename("/A", "/B"),
            GenOp::Fsync("/A/bar")
        ]));
        // Creat over an existing file is excluded from the vocabulary's
        // semantics (fresh creates only).
        assert!(!posix_valid(&[GenOp::Creat("/baz"), GenOp::Creat("/baz")]));
    }

    #[test]
    fn every_bound2_posix_workload_replays_panic_free() {
        let params = Params::quick();
        for w in posix_sequences(2) {
            let stack = w.run(FsKind::BeeGfs, &params);
            assert!(!stack.calls.is_empty(), "{}", w.label());
        }
    }

    #[test]
    fn h5_and_mpi_sequences_replay_panic_free() {
        let params = Params::quick();
        for w in h5_sequences(3).into_iter().chain(mpi_sequences(3)) {
            let stack = w.run(FsKind::OrangeFs, &params);
            assert!(!stack.rec.is_empty(), "{}", w.label());
        }
    }

    #[test]
    fn labels_are_unique_across_the_corpus() {
        let all = corpus(2);
        let labels: std::collections::BTreeSet<String> = all.iter().map(|w| w.label()).collect();
        assert_eq!(labels.len(), all.len());
    }

    #[test]
    fn sampling_is_a_deterministic_subset() {
        let s1 = sample(2, 42, 10);
        let s2 = sample(2, 42, 10);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 10);
        let all = corpus(2);
        assert!(s1.iter().all(|w| all.contains(w)));
        assert_ne!(sample(2, 43, 10), s1, "different seed, different draw");
    }

    #[test]
    fn h5_validity_tracks_dataset_existence() {
        assert!(h5_valid(&[H5GenOp::Delete, H5GenOp::Create]));
        assert!(!h5_valid(&[H5GenOp::Delete, H5GenOp::Resize]));
        assert!(!h5_valid(&[H5GenOp::Create, H5GenOp::CreateParallel]));
        assert!(!h5_valid(&[H5GenOp::Rename, H5GenOp::Delete]));
        assert!(!mpi_valid(&[MpiGenOp::Close, MpiGenOp::Sync]));
    }
}
