#![warn(missing_docs)]

//! # workloads — the paper's test programs and evaluation matrix
//!
//! §6.2: "We use 11 representative test programs to evaluate ParaCrash,
//! including POSIX-IO programs, HDF5 and NetCDF programs, and parallel
//! HDF5 programs. … The test programs use code fragments found in real
//! HPC programs."
//!
//! * POSIX: **ARVR** (atomic-replace-via-rename, the checkpointing
//!   pattern), **CR** (create-and-rename), **RC** (rename-and-create),
//!   **WAL** (write-ahead logging);
//! * I/O library: **H5-create / H5-delete / H5-rename / H5-resize**,
//!   **CDF-create / CDF-rename** (NetCDF);
//! * parallel: **H5-parallel-create / H5-parallel-resize**.
//!
//! [`Program::run`] executes a program on a chosen [`FsKind`] with
//! [`Params`] covering the paper's sensitivity knobs (dataset dimensions,
//! datasets per group, client count, file-distribution patterns), and
//! returns the traced `paracrash::Stack` ready for `paracrash::check_stack`.
//! [`ground_truth`] encodes Table 3 for comparison harnesses and tests.

pub mod fskind;
pub mod generated;
pub mod ground_truth;
pub mod params;
pub mod programs;

pub use fskind::FsKind;
pub use generated::GeneratedWorkload;
pub use ground_truth::{table3, PaperBug};
pub use params::Params;
pub use programs::Program;
