//! The file systems under test (Table 2).

use crate::params::Params;
use paracrash::StackFactory;
use pfs::beegfs::BeeGfs;
use pfs::ext4::Ext4Direct;
use pfs::glusterfs::GlusterFs;
use pfs::gpfs::Gpfs;
use pfs::lustre::Lustre;
use pfs::orangefs::OrangeFs;
use pfs::{Pfs, Placement};
use simnet::ClusterTopology;

/// One row of Table 2's parallel-file-system list, plus the local-FS
/// control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FsKind {
    /// BeeGFS 7.1.2 (`tuneRemoteFSync`).
    BeeGfs,
    /// OrangeFS 2.9.7 (default, Berkeley-DB metadata).
    OrangeFs,
    /// GlusterFS 5.13 (striped volume).
    GlusterFs,
    /// GPFS / Spectrum Scale 5.0.4 (kernel-level, block-traced).
    Gpfs,
    /// Lustre 2.12.6 (kernel-level).
    Lustre,
    /// Local ext4 in data-journaling mode (the clean control of
    /// Figure 8).
    Ext4,
}

impl FsKind {
    /// The five parallel file systems of the paper's evaluation.
    pub fn parallel() -> [FsKind; 5] {
        [
            FsKind::BeeGfs,
            FsKind::OrangeFs,
            FsKind::GlusterFs,
            FsKind::Gpfs,
            FsKind::Lustre,
        ]
    }

    /// Everything in Figure 8 (the five PFSs + ext4).
    pub fn all() -> [FsKind; 6] {
        [
            FsKind::BeeGfs,
            FsKind::OrangeFs,
            FsKind::GlusterFs,
            FsKind::Gpfs,
            FsKind::Lustre,
            FsKind::Ext4,
        ]
    }

    /// Name as printed in the paper's tables and figures.
    pub fn name(&self) -> &'static str {
        match self {
            FsKind::BeeGfs => "BeeGFS",
            FsKind::OrangeFs => "OrangeFS",
            FsKind::GlusterFs => "GlusterFS",
            FsKind::Gpfs => "GPFS",
            FsKind::Lustre => "Lustre",
            FsKind::Ext4 => "ext4",
        }
    }

    /// Parse a name.
    pub fn parse(s: &str) -> Option<FsKind> {
        match s.to_ascii_lowercase().as_str() {
            "beegfs" => Some(FsKind::BeeGfs),
            "orangefs" | "pvfs2" => Some(FsKind::OrangeFs),
            "glusterfs" => Some(FsKind::GlusterFs),
            "gpfs" | "spectrum-scale" => Some(FsKind::Gpfs),
            "lustre" => Some(FsKind::Lustre),
            "ext4" => Some(FsKind::Ext4),
            _ => None,
        }
    }

    /// Whether this FS runs dedicated metadata servers (BeeGFS /
    /// OrangeFS / Lustre) or combined servers (GlusterFS / GPFS).
    pub fn dedicated_metadata(&self) -> bool {
        matches!(self, FsKind::BeeGfs | FsKind::OrangeFs | FsKind::Lustre)
    }

    /// Build a fresh formatted instance for the given parameters. When
    /// [`Params::faults`] is set the instance's RPC fault plane is armed
    /// (the ext4 control has no network and ignores it).
    pub fn build(&self, params: &Params) -> Box<dyn Pfs> {
        let placement = params.placement.clone();
        let journal = params.journal.unwrap_or(simfs::JournalMode::Data);
        let mut pfs: Box<dyn Pfs> = match self {
            FsKind::BeeGfs => Box::new(BeeGfs::with_journal(
                ClusterTopology::dedicated(params.meta, params.storage, params.clients),
                placement,
                params.stripe,
                journal,
            )),
            FsKind::OrangeFs => Box::new(OrangeFs::with_journal(
                ClusterTopology::dedicated(params.meta, params.storage, params.clients),
                placement,
                params.stripe,
                journal,
            )),
            FsKind::GlusterFs => Box::new(GlusterFs::with_journal(
                ClusterTopology::combined(params.meta + params.storage, params.clients),
                placement,
                params.stripe,
                journal,
            )),
            // GPFS journals at the block layer (tagged scsi_write
            // groups); the local-FS journaling knob does not apply.
            FsKind::Gpfs => Box::new(Gpfs::new(
                ClusterTopology::combined(params.meta + params.storage, params.clients),
                placement,
                params.stripe,
            )),
            FsKind::Lustre => Box::new(Lustre::with_journal(
                ClusterTopology::dedicated(params.meta, params.storage, params.clients),
                placement,
                params.stripe,
                journal,
            )),
            FsKind::Ext4 => Box::new(Ext4Direct::new(journal)),
        };
        if let Some(faults) = &params.faults {
            pfs.install_faults(faults.clone());
        }
        pfs
    }

    /// A factory building identical fresh instances (for golden-state
    /// replay). Replays run fault-free: delivery faults are
    /// state-invariant, so the legal states of a faulty trace are the
    /// legal states of its clean replay.
    pub fn factory(&self, params: &Params) -> StackFactory {
        let kind = *self;
        let mut params = params.clone();
        params.faults = None;
        Box::new(move || kind.build(&params))
    }

    /// Number of combined servers this kind uses for a `(meta, storage)`
    /// split (GlusterFS/GPFS merge them).
    pub fn server_count(&self, params: &Params) -> u32 {
        match self {
            FsKind::Ext4 => 1,
            _ => params.meta + params.storage,
        }
    }

    /// Default placement adjustments per FS — GlusterFS/GPFS combined
    /// servers need no metadata pins.
    pub fn default_placement() -> Placement {
        Placement::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_parse_roundtrip() {
        for fs in FsKind::all() {
            assert_eq!(FsKind::parse(fs.name()), Some(fs));
        }
        assert_eq!(FsKind::parse("PVFS2"), Some(FsKind::OrangeFs));
        assert_eq!(FsKind::parse("zfs"), None);
    }

    #[test]
    fn build_produces_matching_names() {
        let params = Params::quick();
        for fs in FsKind::all() {
            let built = fs.build(&params);
            assert_eq!(built.name(), fs.name());
        }
    }

    #[test]
    fn factories_build_identical_instances() {
        let params = Params::quick();
        let f = FsKind::BeeGfs.factory(&params);
        let a = f();
        let b = f();
        assert_eq!(a.baseline(), b.baseline());
    }
}
