//! The 11 test programs (§6.2).

use crate::fskind::FsKind;
use crate::params::Params;
use h5sim::{H5File, H5Spec, NcFile};
use mpiio::MpiIo;
use paracrash::Stack;
use pfs::{PfsCall, Placement};

/// One test program from §6.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Program {
    /// Atomic-Replace-via-Rename: the checkpointing pattern (create a
    /// temp file, write the new version, rename over the original).
    Arvr,
    /// Create-and-Rename: create `A/foo`, move it to `B/foo`.
    Cr,
    /// Rename-and-Create: rename directory `A` to `B`, create `B/foo`.
    Rc,
    /// Write-Ahead-Logging: write a log, overwrite the file's pages,
    /// delete the log.
    Wal,
    /// `H5Dcreate` of a new dataset in a populated group.
    H5Create,
    /// `H5Ldelete` of one of the preamble datasets.
    H5Delete,
    /// `H5Lmove` of a dataset between groups.
    H5Rename,
    /// `H5Dset_extent` growing a preamble dataset.
    H5Resize,
    /// NetCDF variable creation.
    CdfCreate,
    /// NetCDF variable rename (the paper found no bugs here — and we
    /// assert that).
    CdfRename,
    /// Collective dataset creation from multiple ranks.
    H5ParallelCreate,
    /// Collective dataset resize from multiple ranks.
    H5ParallelResize,
}

impl Program {
    /// The 11 programs of the paper's evaluation (CDF-rename exposed no
    /// bugs and is not reported in Figure 8, but is included here for
    /// completeness checks).
    pub fn paper_eleven() -> [Program; 11] {
        [
            Program::Arvr,
            Program::Cr,
            Program::Rc,
            Program::Wal,
            Program::H5Create,
            Program::H5Delete,
            Program::H5Rename,
            Program::H5Resize,
            Program::CdfCreate,
            Program::H5ParallelCreate,
            Program::H5ParallelResize,
        ]
    }

    /// The four POSIX programs.
    pub fn posix() -> [Program; 4] {
        [Program::Arvr, Program::Cr, Program::Rc, Program::Wal]
    }

    /// Name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Program::Arvr => "ARVR",
            Program::Cr => "CR",
            Program::Rc => "RC",
            Program::Wal => "WAL",
            Program::H5Create => "H5-create",
            Program::H5Delete => "H5-delete",
            Program::H5Rename => "H5-rename",
            Program::H5Resize => "H5-resize",
            Program::CdfCreate => "CDF-create",
            Program::CdfRename => "CDF-rename",
            Program::H5ParallelCreate => "H5-parallel-create",
            Program::H5ParallelResize => "H5-parallel-resize",
        }
    }

    /// `true` for programs going through the I/O library layer.
    pub fn uses_iolib(&self) -> bool {
        !matches!(
            self,
            Program::Arvr | Program::Cr | Program::Rc | Program::Wal
        )
    }

    /// Placement variants to test (the paper's "different distribution
    /// patterns", §6.2): name + pins. The first entry is the default.
    pub fn placements(&self) -> Vec<(&'static str, Placement)> {
        match self {
            Program::Rc => vec![
                ("default", Placement::new()),
                (
                    "split-dirs",
                    Placement::new().pin_dir("/", 0).pin_dir("/A", 1),
                ),
            ],
            Program::Wal => vec![
                ("default", Placement::new()),
                (
                    "split-files",
                    Placement::new().pin_file("/log", 0).pin_file("/foo", 1),
                ),
            ],
            _ => vec![("default", Placement::new())],
        }
    }

    /// Execute the program (preamble + traced test phase) on `fs`.
    pub fn run(&self, fs: FsKind, params: &Params) -> Stack {
        match self {
            Program::Arvr => run_arvr(fs, params),
            Program::Cr => run_cr(fs, params),
            Program::Rc => run_rc(fs, params),
            Program::Wal => run_wal(fs, params),
            Program::H5Create
            | Program::H5Delete
            | Program::H5Rename
            | Program::H5Resize
            | Program::H5ParallelCreate
            | Program::H5ParallelResize => run_h5(*self, fs, params),
            Program::CdfCreate | Program::CdfRename => run_cdf(*self, fs, params),
        }
    }
}

fn run_arvr(fs: FsKind, params: &Params) -> Stack {
    let mut stack = Stack::new(fs.build(params));
    let old: Vec<u8> = b"old-version-of-the-checkpoint".to_vec();
    let new: Vec<u8> = b"NEW-VERSION-OF-THE-CHECKPOINT!!!".to_vec();
    stack.posix(
        0,
        PfsCall::Creat {
            path: "/file".into(),
        },
    );
    stack.posix(
        0,
        PfsCall::Pwrite {
            path: "/file".into(),
            offset: 0,
            data: old,
        },
    );
    stack.posix(
        0,
        PfsCall::Close {
            path: "/file".into(),
        },
    );
    stack.seal_preamble();
    stack.posix(
        0,
        PfsCall::Creat {
            path: "/tmp".into(),
        },
    );
    stack.posix(
        0,
        PfsCall::Pwrite {
            path: "/tmp".into(),
            offset: 0,
            data: new,
        },
    );
    stack.posix(
        0,
        PfsCall::Close {
            path: "/tmp".into(),
        },
    );
    stack.posix(
        0,
        PfsCall::Rename {
            src: "/tmp".into(),
            dst: "/file".into(),
        },
    );
    stack
}

fn run_cr(fs: FsKind, params: &Params) -> Stack {
    let mut stack = Stack::new(fs.build(params));
    stack.posix(0, PfsCall::Mkdir { path: "/A".into() });
    stack.posix(0, PfsCall::Mkdir { path: "/B".into() });
    stack.seal_preamble();
    stack.posix(
        0,
        PfsCall::Creat {
            path: "/A/foo".into(),
        },
    );
    stack.posix(
        0,
        PfsCall::Rename {
            src: "/A/foo".into(),
            dst: "/B/foo".into(),
        },
    );
    stack
}

fn run_rc(fs: FsKind, params: &Params) -> Stack {
    let mut stack = Stack::new(fs.build(params));
    stack.posix(0, PfsCall::Mkdir { path: "/A".into() });
    stack.seal_preamble();
    stack.posix(
        0,
        PfsCall::Rename {
            src: "/A".into(),
            dst: "/B".into(),
        },
    );
    stack.posix(
        0,
        PfsCall::Creat {
            path: "/B/foo".into(),
        },
    );
    stack
}

fn run_wal(fs: FsKind, params: &Params) -> Stack {
    let mut stack = Stack::new(fs.build(params));
    let page = params.wal_page_size() as usize;
    let pages = params.wal_pages as usize;
    stack.posix(
        0,
        PfsCall::Creat {
            path: "/foo".into(),
        },
    );
    stack.posix(
        0,
        PfsCall::Pwrite {
            path: "/foo".into(),
            offset: 0,
            data: vec![b'o'; page * pages],
        },
    );
    stack.posix(
        0,
        PfsCall::Close {
            path: "/foo".into(),
        },
    );
    stack.seal_preamble();
    // Write the log describing the modification…
    stack.posix(
        0,
        PfsCall::Creat {
            path: "/log".into(),
        },
    );
    stack.posix(
        0,
        PfsCall::Pwrite {
            path: "/log".into(),
            offset: 0,
            data: b"REDO foo pages".to_vec(),
        },
    );
    stack.posix(
        0,
        PfsCall::Close {
            path: "/log".into(),
        },
    );
    // …overwrite the pages…
    for p in 0..pages {
        stack.posix(
            0,
            PfsCall::Pwrite {
                path: "/foo".into(),
                offset: (p * page) as u64,
                data: vec![b'N'; page],
            },
        );
    }
    // …and retire the log.
    stack.posix(
        0,
        PfsCall::Unlink {
            path: "/log".into(),
        },
    );
    stack
}

/// Build the common HDF5 initial state (§6.2: "a common initial state in
/// which a file stores two groups and two datasets"), then run the test
/// op with the file still open.
fn run_h5(program: Program, fs: FsKind, params: &Params) -> Stack {
    let mut stack = Stack::new(fs.build(params));
    stack.h5_path = Some("/file.h5".into());
    stack.h5_ranks = params.ranks();
    stack.h5_spec = H5Spec {
        elem: 8,
        seg: params.h5_seg,
    };
    let ranks = params.ranks();
    let dims = params.dims;

    // Preamble.
    let mut file = {
        let mut mpi = MpiIo::new(stack.pfs.as_mut(), &mut stack.rec, &mut stack.calls);
        let mut f = H5File::create(&mut mpi, &mut stack.h5, &ranks, "/file.h5", stack.h5_spec);
        f.create_group(&mut mpi, &mut stack.h5, ranks[0], "g1");
        f.create_group(&mut mpi, &mut stack.h5, ranks[0], "g2");
        for i in 1..=params.datasets_per_group {
            f.create_dataset(
                &mut mpi,
                &mut stack.h5,
                ranks[0],
                "g1",
                &format!("d{i}"),
                dims,
                dims,
            );
        }
        f.close(&mut mpi, &mut stack.h5, &ranks);
        f
    };
    stack.seal_preamble();

    // Test phase: reopen and run the single operation; the crash window
    // is before the close.
    {
        let mut mpi = MpiIo::new(stack.pfs.as_mut(), &mut stack.rec, &mut stack.calls);
        file.open(&mut mpi, &ranks);
        let new_name = format!("d{}", params.datasets_per_group + 1);
        match program {
            Program::H5Create => {
                file.create_dataset(
                    &mut mpi,
                    &mut stack.h5,
                    ranks[0],
                    "g1",
                    &new_name,
                    dims,
                    dims,
                );
            }
            Program::H5Delete => {
                let victim = format!("d{}", params.datasets_per_group);
                file.delete_dataset(&mut mpi, &mut stack.h5, ranks[0], "g1", &victim);
            }
            Program::H5Rename => {
                let victim = format!("d{}", params.datasets_per_group);
                file.rename_dataset(
                    &mut mpi,
                    &mut stack.h5,
                    ranks[0],
                    "g1",
                    &victim,
                    "g2",
                    &victim,
                );
            }
            Program::H5Resize => {
                // Resize the last dataset: its chunk B-tree sits beyond
                // the preceding data, so it can land on a different
                // server than the superblock (the cross-server hazard of
                // Table 3 bug 13 — the first dataset's B-tree shares the
                // superblock's stripe and is journal-ordered with it).
                let target = format!("d{}", params.datasets_per_group);
                file.resize_dataset(
                    &mut mpi,
                    &mut stack.h5,
                    ranks[0],
                    "g1",
                    &target,
                    dims * 2,
                    dims * 2,
                );
            }
            Program::H5ParallelCreate => {
                file.create_dataset_parallel(
                    &mut mpi,
                    &mut stack.h5,
                    &ranks,
                    "g1",
                    &new_name,
                    dims,
                    dims,
                );
            }
            Program::H5ParallelResize => {
                let target = format!("d{}", params.datasets_per_group);
                file.resize_dataset_parallel(
                    &mut mpi,
                    &mut stack.h5,
                    &ranks,
                    "g1",
                    &target,
                    dims * 2,
                    dims * 2,
                );
            }
            _ => unreachable!("run_h5 only handles HDF5 programs"),
        }
    }
    stack
}

fn run_cdf(program: Program, fs: FsKind, params: &Params) -> Stack {
    let mut stack = Stack::new(fs.build(params));
    stack.h5_path = Some("/data.nc".into());
    stack.h5_ranks = params.ranks();
    let ranks = params.ranks();
    let dims = params.dims;

    let mut nc = {
        let mut mpi = MpiIo::new(stack.pfs.as_mut(), &mut stack.rec, &mut stack.calls);
        let mut nc = NcFile::create(&mut mpi, &mut stack.h5, &ranks, "/data.nc");
        nc.create_variable(&mut mpi, &mut stack.h5, ranks[0], "v1", dims, dims);
        nc.close(&mut mpi, &mut stack.h5, &ranks);
        nc
    };
    stack.seal_preamble();
    {
        let mut mpi = MpiIo::new(stack.pfs.as_mut(), &mut stack.rec, &mut stack.calls);
        nc.h5().open(&mut mpi, &ranks);
        match program {
            Program::CdfCreate => {
                nc.create_variable(&mut mpi, &mut stack.h5, ranks[0], "v2", dims, dims);
            }
            Program::CdfRename => {
                nc.rename_variable(&mut mpi, &mut stack.h5, ranks[0], "v1", "v1x");
            }
            _ => unreachable!("run_cdf only handles NetCDF programs"),
        }
    }
    stack
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_sets() {
        assert_eq!(Program::paper_eleven().len(), 11);
        assert_eq!(Program::Arvr.name(), "ARVR");
        assert_eq!(Program::H5ParallelResize.name(), "H5-parallel-resize");
        assert!(Program::H5Create.uses_iolib());
        assert!(!Program::Wal.uses_iolib());
    }

    #[test]
    fn arvr_runs_on_every_fs() {
        let params = Params::quick();
        for fs in FsKind::all() {
            let stack = Program::Arvr.run(fs, &params);
            assert_eq!(stack.pre_calls.len(), 3, "{}", fs.name());
            assert_eq!(stack.calls.len(), 4);
            assert!(!stack.rec.is_empty());
            let view = stack.pfs.client_view(stack.pfs.live());
            assert_eq!(
                view.read("/file"),
                Some(&b"NEW-VERSION-OF-THE-CHECKPOINT!!!"[..]),
                "{}",
                fs.name()
            );
        }
    }

    #[test]
    fn posix_programs_leave_expected_final_states() {
        let params = Params::quick();
        for fs in [FsKind::BeeGfs, FsKind::Gpfs, FsKind::Ext4] {
            let cr = Program::Cr.run(fs, &params);
            let v = cr.pfs.client_view(cr.pfs.live());
            assert!(v.exists("/B/foo") && !v.exists("/A/foo"), "{}", fs.name());

            let rc = Program::Rc.run(fs, &params);
            let v = rc.pfs.client_view(rc.pfs.live());
            assert!(v.exists("/B/foo") && !v.exists("/A"), "{}", fs.name());

            let wal = Program::Wal.run(fs, &params);
            let v = wal.pfs.client_view(wal.pfs.live());
            assert!(!v.exists("/log"), "{}", fs.name());
            assert_eq!(v.read("/foo").map(|d| d[0]), Some(b'N'));
        }
    }

    #[test]
    fn h5_programs_produce_valid_final_files() {
        let params = Params::quick();
        for program in [
            Program::H5Create,
            Program::H5Delete,
            Program::H5Rename,
            Program::H5Resize,
            Program::H5ParallelCreate,
            Program::H5ParallelResize,
        ] {
            let stack = program.run(FsKind::BeeGfs, &params);
            let view = stack.pfs.client_view(stack.pfs.live());
            let bytes = view.read("/file.h5").expect("file readable");
            let logical = h5sim::check(bytes).unwrap_or_else(|_| panic!("{}", program.name()));
            assert!(!stack.h5.is_empty());
            match program {
                Program::H5Create | Program::H5ParallelCreate => {
                    assert!(logical.has_dataset("g1", "d3"))
                }
                Program::H5Delete => assert!(!logical.has_dataset("g1", "d2")),
                Program::H5Rename => assert!(logical.has_dataset("g2", "d2")),
                Program::H5Resize | Program::H5ParallelResize => {
                    assert_eq!(logical.datasets["g1/d2"].0, params.dims * 2)
                }
                _ => {}
            }
        }
    }

    #[test]
    fn cdf_programs_produce_valid_final_files() {
        let params = Params::quick();
        let stack = Program::CdfCreate.run(FsKind::OrangeFs, &params);
        let view = stack.pfs.client_view(stack.pfs.live());
        let logical = h5sim::nc_check(view.read("/data.nc").unwrap()).unwrap();
        assert!(logical.has_dataset("/", "v2"));

        let stack = Program::CdfRename.run(FsKind::OrangeFs, &params);
        let view = stack.pfs.client_view(stack.pfs.live());
        let logical = h5sim::nc_check(view.read("/data.nc").unwrap()).unwrap();
        assert!(logical.has_dataset("/", "v1x"));
    }

    #[test]
    fn placement_variants_exist_for_sensitive_programs() {
        assert_eq!(Program::Rc.placements().len(), 2);
        assert_eq!(Program::Wal.placements().len(), 2);
        assert_eq!(Program::Arvr.placements().len(), 1);
    }

    #[test]
    fn h5_preamble_is_sealed_before_test_phase() {
        let stack = Program::H5Create.run(FsKind::BeeGfs, &Params::quick());
        // Preamble H5 calls: create file + 2 groups + 2 datasets + close.
        assert_eq!(stack.pre_h5.len(), 6);
        // Test phase: exactly the one create.
        assert_eq!(stack.h5.len(), 1);
        // The baseline file is already valid.
        let bytes = stack
            .pfs
            .client_view(stack.pfs.baseline())
            .read("/file.h5")
            .unwrap()
            .to_vec();
        assert!(h5sim::check(&bytes).is_ok());
    }
}
