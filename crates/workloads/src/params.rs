//! Run parameters: the paper's system configuration and sensitivity
//! knobs (§6.1, §6.2).

use pfs::Placement;
use simnet::FaultConfig;

/// Everything that parameterizes one test-program run.
#[derive(Debug, Clone)]
pub struct Params {
    /// Stripe size in bytes (Table 2: 128 KiB default; Figure 11 shrinks
    /// it as servers grow).
    pub stripe: u64,
    /// Dedicated metadata servers (2 by default).
    pub meta: u32,
    /// Dedicated storage servers (2 by default).
    pub storage: u32,
    /// Application clients (2 by default; bug 9's sensitivity sweeps
    /// 1–10).
    pub clients: u32,
    /// Dataset dimension `dims × dims` (200 default; bug 14 appears
    /// between 800 and 1000).
    pub dims: u64,
    /// Datasets per group in the preamble (2 default, swept 1–8).
    pub datasets_per_group: u32,
    /// WAL page count ("overwrites the file content with multiple
    /// pages").
    pub wal_pages: u32,
    /// HDF5 data-segment size (the library's allocation granularity;
    /// scaled down together with stripes in the quick profile).
    pub h5_seg: u64,
    /// Placement pins expressing the file-distribution sensitivity.
    pub placement: Placement,
    /// Seeded RPC fault plane armed on the *traced* instance (replay
    /// instances stay fault-free so golden states don't move). `None`
    /// leaves every pre-existing code path untouched.
    pub faults: Option<FaultConfig>,
    /// Local-FS journaling mode of the servers' backing stores. `None`
    /// keeps each model's paper deployment (data journaling); the
    /// fuzzer's journaling-mode sweep sets it explicitly. GPFS journals
    /// at the block layer and ignores this knob.
    pub journal: Option<simfs::JournalMode>,
}

impl Params {
    /// The paper's evaluation defaults (Table 2 / §6.2).
    pub fn paper() -> Self {
        Params {
            stripe: 128 * 1024,
            meta: 2,
            storage: 2,
            clients: 2,
            dims: 200,
            datasets_per_group: 2,
            wal_pages: 2,
            h5_seg: 64 * 1024,
            placement: Placement::new(),
            faults: None,
            journal: None,
        }
    }

    /// A scaled-down configuration with the same *shape* (files still
    /// stripe across servers, B-trees still split) for fast tests: the
    /// stripe shrinks with the data so every cross-server hazard
    /// remains.
    pub fn quick() -> Self {
        Params {
            stripe: 2048,
            meta: 2,
            storage: 2,
            clients: 2,
            dims: 24, // 24×24×8 = 4608 B > stripe ⇒ cross-server
            datasets_per_group: 2,
            wal_pages: 2,
            h5_seg: 1024,
            placement: Placement::new(),
            faults: None,
            journal: None,
        }
    }

    /// The dimension at which the dataset B-tree splits during the
    /// doubled resize but not at creation — the bug-14 sensitivity
    /// window (the paper's 800×800 → 1000×1000).
    pub fn split_dims(&self) -> u64 {
        // The leaf holds 96 segments; pick dims so that
        // dims²·8 < 96·seg ≤ (2·dims)²·8.
        let capacity = 96 * self.h5_seg / 8;
        let safe = (capacity as f64).sqrt() as u64;
        (safe / 2) + 1
    }

    /// Override the placement pins.
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Override the dataset dimension.
    pub fn with_dims(mut self, dims: u64) -> Self {
        self.dims = dims;
        self
    }

    /// Override the client count.
    pub fn with_clients(mut self, clients: u32) -> Self {
        self.clients = clients;
        self
    }

    /// Override the server counts (Figure 11's scalability sweep).
    pub fn with_servers(mut self, meta: u32, storage: u32) -> Self {
        self.meta = meta;
        self.storage = storage;
        self
    }

    /// Override the stripe size.
    pub fn with_stripe(mut self, stripe: u64) -> Self {
        self.stripe = stripe;
        self
    }

    /// Arm the RPC fault plane on the traced instance.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Override the servers' local-FS journaling mode.
    pub fn with_journal(mut self, journal: simfs::JournalMode) -> Self {
        self.journal = Some(journal);
        self
    }

    /// WAL page size in bytes (fixed small pages; the count is the
    /// knob).
    pub fn wal_page_size(&self) -> u64 {
        64
    }

    /// The ranks participating in collective H5 calls.
    pub fn ranks(&self) -> Vec<u32> {
        (0..self.clients.max(1)).collect()
    }
}

impl Default for Params {
    fn default() -> Self {
        Params::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table2() {
        let p = Params::paper();
        assert_eq!(p.stripe, 128 * 1024);
        assert_eq!((p.meta, p.storage, p.clients), (2, 2, 2));
        assert_eq!(p.dims, 200);
        assert_eq!(p.datasets_per_group, 2);
    }

    #[test]
    fn quick_keeps_cross_server_shape() {
        let p = Params::quick();
        assert!(p.dims * p.dims * 8 > p.stripe, "quick datasets must stripe");
    }

    #[test]
    fn builder_overrides() {
        let p = Params::quick()
            .with_dims(48)
            .with_clients(4)
            .with_servers(4, 4);
        assert_eq!(p.dims, 48);
        assert_eq!(p.ranks(), vec![0, 1, 2, 3]);
        assert_eq!((p.meta, p.storage), (4, 4));
    }
}
