//! Crash-safe on-disk primitives for long-running campaigns.
//!
//! The checker spends its life proving that *other* software survives a
//! crash at any point; this module applies the same discipline to the
//! checker's own state. Two primitives:
//!
//! * [`RecordLog`] — an append-only, checksummed, length-prefixed
//!   record log. Every record is `[len: u32 LE][crc32: u32 LE][payload]`
//!   behind a 16-byte magic header, fsynced per append. [`RecordLog::open`]
//!   validates the file sequentially and **truncates the torn tail**: the
//!   first short or CRC-corrupt record and everything after it is cut,
//!   exactly the recovery a crash mid-append requires.
//! * [`write_atomic`] — checkpoint publication via the classic
//!   write-temp + fsync + atomic-rename + directory-fsync sequence, so a
//!   reader sees either the old checkpoint or the new one, never a tear.
//!
//! # Self-crash-testing (`PC_DURABLE_CRASH`)
//!
//! Both primitives thread every write through *durability points* — the
//! instants where a real power cut would bite. The `PC_DURABLE_CRASH`
//! environment variable (or [`arm_crash`] programmatically) injects a
//! crash at the N-th point of the process:
//!
//! ```text
//! PC_DURABLE_CRASH=at=N[,tear=K][,mode=exit|panic]
//! ```
//!
//! * `at=N` — fire at the N-th durability point (1-based).
//! * `tear=K` — before crashing, write only the first `K` bytes of the
//!   pending buffer (a short write / torn record). Omitted: write nothing.
//! * `mode=exit` (default) — `std::process::exit(137)`, mimicking
//!   SIGKILL for end-to-end kill-resume gates; `mode=panic` unwinds so
//!   in-process tests can catch the "crash" and resume in the same
//!   process.
//!
//! [`points_seen`] / [`reset_points`] let a harness count the durability
//! points of an uninterrupted run and then replay it with a crash armed
//! at every single one.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

/// 16-byte file header identifying a `pc-durable` record log, version 1.
pub const MAGIC: [u8; 16] = *b"pc-durable-log1\n";

/// Per-record header: `[len: u32 LE][crc32: u32 LE]`.
pub const RECORD_HEADER: usize = 8;

/// Environment variable holding the crash-injection spec.
pub const CRASH_ENV: &str = "PC_DURABLE_CRASH";

// ---------------------------------------------------------------------------
// CRC32 (IEEE, reflected) — table-driven, std-only.
// ---------------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut bit = 0;
            while bit < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                bit += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    })
}

/// CRC32 (IEEE 802.3, reflected) of `bytes` — the per-record checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Crash injection.
// ---------------------------------------------------------------------------

/// How an injected crash takes the process down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashMode {
    /// `std::process::exit(137)` — indistinguishable from SIGKILL to a
    /// parent shell; the mode end-to-end gates use.
    Exit,
    /// `panic!` — unwinds, so an in-process test can `catch_unwind` the
    /// "crash", then reopen the log and prove recovery, all in one
    /// process.
    Panic,
}

/// A parsed `PC_DURABLE_CRASH` spec.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// Fire at this durability point (1-based).
    pub at: u64,
    /// Short-write this many bytes of the pending buffer before
    /// crashing; `None` writes nothing.
    pub tear: Option<usize>,
    /// Exit or panic.
    pub mode: CrashMode,
}

impl CrashSpec {
    /// Parse `at=N[,tear=K][,mode=exit|panic]`. Returns `None` on any
    /// malformed field (a misspelt injection spec must not silently run
    /// the campaign un-injected — callers should treat `None` on a
    /// non-empty string as a usage error).
    pub fn parse(spec: &str) -> Option<CrashSpec> {
        let mut at = None;
        let mut tear = None;
        let mut mode = CrashMode::Exit;
        for field in spec.split(',') {
            let (key, value) = field.split_once('=')?;
            match key.trim() {
                "at" => at = Some(value.trim().parse::<u64>().ok()?),
                "tear" => tear = Some(value.trim().parse::<usize>().ok()?),
                "mode" => {
                    mode = match value.trim() {
                        "exit" => CrashMode::Exit,
                        "panic" => CrashMode::Panic,
                        _ => return None,
                    }
                }
                _ => return None,
            }
        }
        let at = at?;
        if at == 0 {
            return None;
        }
        Some(CrashSpec { at, tear, mode })
    }
}

struct CrashState {
    armed: Option<CrashSpec>,
    seen: u64,
}

fn crash_state() -> &'static Mutex<CrashState> {
    static STATE: OnceLock<Mutex<CrashState>> = OnceLock::new();
    STATE.get_or_init(|| {
        let armed = std::env::var(CRASH_ENV)
            .ok()
            .filter(|s| !s.is_empty())
            .and_then(|s| CrashSpec::parse(&s));
        Mutex::new(CrashState { armed, seen: 0 })
    })
}

fn lock_state() -> std::sync::MutexGuard<'static, CrashState> {
    // A panic-mode injection never panics while holding the lock, but
    // recover from poisoning anyway: the state stays meaningful.
    match crash_state().lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Arm a crash programmatically (overrides any `PC_DURABLE_CRASH` env
/// spec). Pair with [`reset_points`] so `at` counts from now.
pub fn arm_crash(spec: CrashSpec) {
    lock_state().armed = Some(spec);
}

/// Disarm crash injection for the rest of the process.
pub fn disarm_crash() {
    lock_state().armed = None;
}

/// Durability points seen so far in this process (monotonic, counted
/// whether or not a crash is armed).
pub fn points_seen() -> u64 {
    lock_state().seen
}

/// Reset the durability-point counter to zero (test harnesses only).
pub fn reset_points() {
    lock_state().seen = 0;
}

/// Note one durability point; returns the injection to perform now, if
/// this is the armed point.
fn fire_check() -> Option<CrashSpec> {
    let mut state = lock_state();
    state.seen += 1;
    match state.armed {
        Some(spec) if state.seen == spec.at => Some(spec),
        _ => None,
    }
}

fn crash_now(spec: CrashSpec, what: &str) -> ! {
    match spec.mode {
        CrashMode::Exit => {
            eprintln!(
                "pc-durable: injected crash at durability point {} ({what})",
                spec.at
            );
            std::process::exit(137);
        }
        CrashMode::Panic => panic!(
            "pc-durable: injected crash at durability point {} ({what})",
            spec.at
        ),
    }
}

/// Write `bytes` to `file` through a durability point: an armed crash
/// here leaves at most a torn prefix of `bytes` behind (synced, so the
/// tear is what a reopen actually observes).
fn write_with_tear_point(file: &mut File, bytes: &[u8], what: &str) -> io::Result<()> {
    if let Some(spec) = fire_check() {
        let keep = spec.tear.unwrap_or(0).min(bytes.len());
        let _ = file.write_all(&bytes[..keep]);
        let _ = file.sync_data();
        crash_now(spec, what);
    }
    file.write_all(bytes)?;
    file.sync_data()
}

/// A plain (non-tearing) durability point, e.g. just before or just
/// after a rename.
fn plain_point(what: &str) {
    if let Some(spec) = fire_check() {
        crash_now(spec, what);
    }
}

// ---------------------------------------------------------------------------
// Filesystem helpers.
// ---------------------------------------------------------------------------

/// Create the parent directory of `path` (and ancestors) if missing.
/// A bare filename (no parent) is a no-op.
pub fn ensure_parent_dir(path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    Ok(())
}

fn fsync_parent(path: &Path) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    File::open(parent)?.sync_all()
}

/// Publish `bytes` at `path` atomically: write `path.tmp`, fsync it,
/// rename over `path`, fsync the directory. A crash at any point leaves
/// either the old file or the new one — never a tear. Three durability
/// points: the temp-file write (tearable), just before the rename, and
/// just after it.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    ensure_parent_dir(path)?;
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut file = File::create(&tmp)?;
    write_with_tear_point(&mut file, bytes, "checkpoint temp write")?;
    file.sync_all()?;
    drop(file);
    plain_point("before checkpoint rename");
    fs::rename(&tmp, path)?;
    fsync_parent(path)?;
    plain_point("after checkpoint rename");
    Ok(())
}

// ---------------------------------------------------------------------------
// The record log.
// ---------------------------------------------------------------------------

/// An append-only, CRC-checked, length-prefixed record log (see the
/// module docs for the on-disk format and recovery rules).
#[derive(Debug)]
pub struct RecordLog {
    file: File,
    path: PathBuf,
}

impl RecordLog {
    /// Open (or create) the log at `path`, validate it sequentially,
    /// truncate any torn tail, and return the intact records in append
    /// order. The returned log is positioned for appending.
    ///
    /// A file that exists but does not start with [`MAGIC`] (beyond a
    /// torn prefix of it, which a crash during creation can leave) is
    /// refused with `InvalidData` rather than silently clobbered.
    pub fn open(path: &Path) -> io::Result<(RecordLog, Vec<Vec<u8>>)> {
        ensure_parent_dir(path)?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        if buf.len() < MAGIC.len() {
            // Empty, or a torn prefix of the header from a crash during
            // creation: (re)write the header.
            if !MAGIC.starts_with(&buf[..]) {
                return Err(not_a_log(path));
            }
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            write_with_tear_point(&mut file, &MAGIC, "log header write")?;
            let log = RecordLog {
                file,
                path: path.to_path_buf(),
            };
            return Ok((log, Vec::new()));
        }
        if buf[..MAGIC.len()] != MAGIC {
            return Err(not_a_log(path));
        }
        let mut records = Vec::new();
        let mut valid = MAGIC.len();
        loop {
            let rest = &buf[valid..];
            if rest.len() < RECORD_HEADER {
                break; // clean end, or a torn record header
            }
            let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
            let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
            let Some(payload) = rest.get(RECORD_HEADER..RECORD_HEADER + len) else {
                break; // torn payload
            };
            if crc32(payload) != crc {
                break; // corrupt record: cut it and everything after
            }
            records.push(payload.to_vec());
            valid += RECORD_HEADER + len;
        }
        if valid < buf.len() {
            file.set_len(valid as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(valid as u64))?;
        let log = RecordLog {
            file,
            path: path.to_path_buf(),
        };
        Ok((log, records))
    }

    /// Append one record and fsync it (one durability point; an armed
    /// tear leaves a short prefix of the framed record behind).
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut framed = Vec::with_capacity(RECORD_HEADER + payload.len());
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(payload).to_le_bytes());
        framed.extend_from_slice(payload);
        write_with_tear_point(&mut self.file, &framed, "record append")
    }

    /// The path this log lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn not_a_log(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{} is not a pc-durable record log", path.display()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Crash-injection state is process-global; serialize the tests
    /// that touch it (and give each test its own scratch dir).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock_tests() -> std::sync::MutexGuard<'static, ()> {
        match TEST_LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "pc-durable-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed),
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn spec_parsing() {
        assert_eq!(
            CrashSpec::parse("at=3"),
            Some(CrashSpec {
                at: 3,
                tear: None,
                mode: CrashMode::Exit
            })
        );
        assert_eq!(
            CrashSpec::parse("at=7,tear=5,mode=panic"),
            Some(CrashSpec {
                at: 7,
                tear: Some(5),
                mode: CrashMode::Panic
            })
        );
        assert!(CrashSpec::parse("at=0").is_none());
        assert!(CrashSpec::parse("tear=5").is_none());
        assert!(CrashSpec::parse("at=1,mode=sigkill").is_none());
        assert!(CrashSpec::parse("").is_none());
    }

    #[test]
    fn log_roundtrips_and_reopens() {
        let _g = lock_tests();
        disarm_crash();
        let dir = scratch_dir("roundtrip");
        let path = dir.join("corpus.log");
        {
            let (mut log, records) = RecordLog::open(&path).unwrap();
            assert!(records.is_empty());
            log.append(b"alpha").unwrap();
            log.append(b"").unwrap();
            log.append(b"gamma gamma").unwrap();
        }
        let (mut log, records) = RecordLog::open(&path).unwrap();
        assert_eq!(
            records,
            vec![b"alpha".to_vec(), Vec::new(), b"gamma gamma".to_vec()]
        );
        log.append(b"delta").unwrap();
        let (_, records) = RecordLog::open(&path).unwrap();
        assert_eq!(records.len(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let _g = lock_tests();
        disarm_crash();
        let dir = scratch_dir("torn");
        let path = dir.join("corpus.log");
        {
            let (mut log, _) = RecordLog::open(&path).unwrap();
            log.append(b"keep me").unwrap();
        }
        // Simulate a crash mid-append: a record header promising more
        // payload than exists.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&100u32.to_le_bytes()).unwrap();
            f.write_all(&0u32.to_le_bytes()).unwrap();
            f.write_all(b"short").unwrap();
        }
        let before = fs::metadata(&path).unwrap().len();
        let (mut log, records) = RecordLog::open(&path).unwrap();
        assert_eq!(records, vec![b"keep me".to_vec()]);
        assert!(fs::metadata(&path).unwrap().len() < before);
        log.append(b"after recovery").unwrap();
        let (_, records) = RecordLog::open(&path).unwrap();
        assert_eq!(
            records,
            vec![b"keep me".to_vec(), b"after recovery".to_vec()]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_record_cuts_the_tail_from_there() {
        let _g = lock_tests();
        disarm_crash();
        let dir = scratch_dir("corrupt");
        let path = dir.join("corpus.log");
        {
            let (mut log, _) = RecordLog::open(&path).unwrap();
            log.append(b"first").unwrap();
            log.append(b"second").unwrap();
            log.append(b"third").unwrap();
        }
        // Flip one payload byte of the second record.
        let mut bytes = fs::read(&path).unwrap();
        let second_payload = MAGIC.len() + RECORD_HEADER + 5 + RECORD_HEADER;
        bytes[second_payload] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let (_, records) = RecordLog::open(&path).unwrap();
        assert_eq!(records, vec![b"first".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn refuses_a_foreign_file() {
        let _g = lock_tests();
        disarm_crash();
        let dir = scratch_dir("foreign");
        let path = dir.join("notalog.bin");
        fs::write(&path, b"definitely not a record log header").unwrap();
        let err = RecordLog::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_atomic_replaces_whole_file() {
        let _g = lock_tests();
        disarm_crash();
        let dir = scratch_dir("atomic");
        let path = dir.join("nested/deeper/checkpoint.json");
        write_atomic(&path, b"v1").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"v1");
        write_atomic(&path, b"version two, longer").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"version two, longer");
        assert!(!path.with_extension("json.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_tear_crash_recovers_to_prefix() {
        let _g = lock_tests();
        let dir = scratch_dir("inject");
        let path = dir.join("corpus.log");
        {
            let (mut log, _) = RecordLog::open(&path).unwrap();
            log.append(b"one").unwrap();
            log.append(b"two").unwrap();
        }
        // Reopen is not a durability point; the next two appends are.
        // Crash on the second with a 6-byte tear (header torn mid-way).
        reset_points();
        arm_crash(CrashSpec {
            at: 2,
            tear: Some(6),
            mode: CrashMode::Panic,
        });
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let (mut log, _) = RecordLog::open(&path).unwrap();
            log.append(b"three").unwrap();
            log.append(b"four").unwrap();
            unreachable!("the armed crash must fire before this");
        }));
        disarm_crash();
        assert!(crashed.is_err(), "armed crash must unwind");
        let (_, records) = RecordLog::open(&path).unwrap();
        assert_eq!(
            records,
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()],
            "crash on the fourth append: its tear must be truncated away"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_crash_before_rename_keeps_old_checkpoint() {
        let _g = lock_tests();
        let dir = scratch_dir("ckpt-crash");
        let path = dir.join("checkpoint.json");
        disarm_crash();
        write_atomic(&path, b"old").unwrap();
        // write_atomic = 3 points; crash at point 2 = before the rename.
        reset_points();
        arm_crash(CrashSpec {
            at: 2,
            tear: None,
            mode: CrashMode::Panic,
        });
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            write_atomic(&path, b"new").unwrap();
        }));
        disarm_crash();
        assert!(crashed.is_err());
        assert_eq!(fs::read(&path).unwrap(), b"old", "rename never happened");
        write_atomic(&path, b"new").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"new");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn points_are_counted_while_disarmed() {
        let _g = lock_tests();
        disarm_crash();
        let dir = scratch_dir("points");
        let path = dir.join("corpus.log");
        reset_points();
        let (mut log, _) = RecordLog::open(&path).unwrap(); // header write: 1 point
        log.append(b"a").unwrap(); // 2
        log.append(b"b").unwrap(); // 3
        write_atomic(&dir.join("c.json"), b"c").unwrap(); // 4, 5, 6
        assert_eq!(points_seen(), 6);
        fs::remove_dir_all(&dir).unwrap();
    }
}
