//! A wall-clock microbenchmark harness.
//!
//! Replaces `criterion` for `pc-bench`: each benchmark is a closure run
//! for a warmup phase and then a measured phase, with per-iteration
//! wall times collected and summarized as min / mean / median / p95.
//! Results accumulate on a [`Bench`] and can be rendered as an aligned
//! text table ([`Bench::report`]) or exported as structured
//! [`Sample`]s for machine-readable output (the `pc-bench` binary
//! serializes them with `h5sim`'s vendored JSON writer).
//!
//! Iteration counts are chosen per benchmark from a time budget: after
//! warmup, the harness estimates the cost of one iteration and sizes
//! the sample so a benchmark takes roughly [`Config::target_ms`]
//! (clamped to `[Config::min_iters, Config::max_iters]`), so
//! microsecond-scale inner loops get thousands of samples while
//! full-exploration runs get a handful. Environment overrides:
//! `PC_BENCH_TIME_MS` (budget), `PC_BENCH_MIN_ITERS`,
//! `PC_BENCH_MAX_ITERS`.
//!
//! # Example
//!
//! ```
//! use pc_rt::bench::{black_box, Bench, Config};
//!
//! let mut b = Bench::new(Config { target_ms: 5, ..Config::default() });
//! b.bench("sum-1k", || (0..1000u64).map(black_box).sum::<u64>());
//! assert_eq!(b.samples().len(), 1);
//! assert!(b.samples()[0].median_ns > 0.0);
//! println!("{}", b.report());
//! ```

use std::time::Instant;

/// Re-export of [`std::hint::black_box`]: keeps the optimizer from
/// deleting the benchmarked computation.
pub use std::hint::black_box;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Target measured time per benchmark, in milliseconds.
    pub target_ms: u64,
    /// Warmup iterations (unmeasured; also used to estimate cost).
    pub warmup_iters: u32,
    /// Lower bound on measured iterations.
    pub min_iters: u32,
    /// Upper bound on measured iterations.
    pub max_iters: u32,
    /// Only run benchmarks whose name contains this substring.
    pub filter: Option<String>,
}

impl Default for Config {
    fn default() -> Config {
        let env_u64 = |k: &str| std::env::var(k).ok().and_then(|v| v.trim().parse().ok());
        Config {
            target_ms: env_u64("PC_BENCH_TIME_MS").unwrap_or(1000),
            warmup_iters: 3,
            min_iters: env_u64("PC_BENCH_MIN_ITERS").unwrap_or(5) as u32,
            max_iters: env_u64("PC_BENCH_MAX_ITERS").unwrap_or(5000) as u32,
            filter: None,
        }
    }
}

/// Summary statistics of one benchmark.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Benchmark name (`group/name` by convention).
    pub name: String,
    /// Measured iterations.
    pub iters: u32,
    /// Fastest iteration, nanoseconds.
    pub min_ns: f64,
    /// Arithmetic mean, nanoseconds.
    pub mean_ns: f64,
    /// Median, nanoseconds.
    pub median_ns: f64,
    /// 95th percentile, nanoseconds.
    pub p95_ns: f64,
    /// Free-form derived metrics attached via [`Bench::annotate`]
    /// (e.g. `states_per_sec`); serialized alongside the timing fields.
    pub extra: Vec<(String, f64)>,
}

impl Sample {
    fn from_times(name: &str, mut ns: Vec<f64>) -> Sample {
        ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let n = ns.len();
        let pick = |q: f64| ns[((n - 1) as f64 * q).round() as usize];
        Sample {
            name: name.to_string(),
            iters: n as u32,
            min_ns: ns[0],
            mean_ns: ns.iter().sum::<f64>() / n as f64,
            median_ns: pick(0.5),
            p95_ns: pick(0.95),
            extra: Vec::new(),
        }
    }
}

/// Format nanoseconds human-readably (`412 ns`, `3.1 µs`, `2.4 ms`, …).
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A benchmark run in progress: owns the configuration and the results
/// collected so far.
#[derive(Debug)]
pub struct Bench {
    cfg: Config,
    samples: Vec<Sample>,
}

impl Bench {
    /// Start a run with the given configuration.
    pub fn new(cfg: Config) -> Bench {
        Bench {
            cfg,
            samples: Vec::new(),
        }
    }

    /// Start a run configured from the environment and an optional
    /// name-filter taken from the first non-flag CLI argument (the
    /// interface `cargo run -p pc-bench --bin bench -- <filter>`
    /// exposes).
    pub fn from_env_and_args() -> Bench {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Bench::new(Config {
            filter,
            ..Config::default()
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Run one benchmark. `f` is invoked repeatedly; its return value
    /// is passed through [`black_box`] so the computation is not
    /// optimized away. Skipped (with a note on stderr) when a filter is
    /// set and doesn't match.
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) {
        if let Some(filter) = &self.cfg.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        crate::pc_debug!("bench {name} ...");
        // Warmup doubles as the cost estimate for sizing the sample.
        let warm_start = Instant::now();
        for _ in 0..self.cfg.warmup_iters.max(1) {
            black_box(f());
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / f64::from(self.cfg.warmup_iters.max(1));
        let budget = self.cfg.target_ms as f64 / 1e3;
        let iters = if per_iter > 0.0 {
            (budget / per_iter).ceil() as u32
        } else {
            self.cfg.max_iters
        }
        .clamp(self.cfg.min_iters.max(1), self.cfg.max_iters.max(1));

        let mut times = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            let t = Instant::now();
            black_box(f());
            times.push(t.elapsed().as_secs_f64() * 1e9);
        }
        self.samples.push(Sample::from_times(name, times));
    }

    /// All results collected so far.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Attach a derived metric to the most recent sample (no-op when
    /// the last `bench` call was filtered out). Suites use this for
    /// headline numbers computed *from* the timing — e.g. the scale
    /// suite divides checked-state counts by the median wall time to
    /// get `states_per_sec` — so the JSON export carries the metric
    /// next to the measurement it came from.
    pub fn annotate(&mut self, key: &str, value: f64) {
        if let Some(last) = self.samples.last_mut() {
            last.extra.push((key.to_string(), value));
        }
    }

    /// Render an aligned text table of the results.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let width = self
            .samples
            .iter()
            .map(|s| s.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        out.push_str(&format!(
            "{:width$}  {:>8}  {:>12}  {:>12}  {:>12}  {:>12}\n",
            "name", "iters", "min", "median", "mean", "p95",
        ));
        for s in &self.samples {
            out.push_str(&format!(
                "{:width$}  {:>8}  {:>12}  {:>12}  {:>12}  {:>12}\n",
                s.name,
                s.iters,
                fmt_ns(s.min_ns),
                fmt_ns(s.median_ns),
                fmt_ns(s.mean_ns),
                fmt_ns(s.p95_ns),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> Config {
        Config {
            target_ms: 1,
            warmup_iters: 1,
            min_iters: 5,
            max_iters: 50,
            filter: None,
        }
    }

    #[test]
    fn collects_ordered_sane_statistics() {
        let mut b = Bench::new(tiny_cfg());
        b.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..500u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        let s = &b.samples()[0];
        assert_eq!(s.name, "spin");
        assert!(s.iters >= 5);
        assert!(s.min_ns > 0.0);
        assert!(s.min_ns <= s.median_ns);
        assert!(s.median_ns <= s.p95_ns);
        assert!(s.mean_ns >= s.min_ns && s.mean_ns <= s.p95_ns.max(s.mean_ns));
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut b = Bench::new(Config {
            filter: Some("keep".into()),
            ..tiny_cfg()
        });
        b.bench("keep/this", || 1);
        b.bench("drop/this", || 2);
        assert_eq!(b.samples().len(), 1);
        assert_eq!(b.samples()[0].name, "keep/this");
    }

    #[test]
    fn iteration_budget_adapts_to_cost() {
        let mut b = Bench::new(Config {
            target_ms: 20,
            warmup_iters: 2,
            min_iters: 2,
            max_iters: 100_000,
            filter: None,
        });
        // ~1 ms per iteration -> ~20 iterations, far below max_iters.
        b.bench("sleepy", || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        let s = &b.samples()[0];
        assert!(s.iters >= 2 && s.iters < 1000, "iters = {}", s.iters);
    }

    #[test]
    fn report_renders_every_sample() {
        let mut b = Bench::new(tiny_cfg());
        b.bench("a/one", || 1);
        b.bench("b/two", || 2);
        let rep = b.report();
        assert!(rep.contains("a/one") && rep.contains("b/two"));
        assert!(rep.contains("median"));
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(412.0), "412 ns");
        assert!(fmt_ns(3_100.0).ends_with("µs"));
        assert!(fmt_ns(2_400_000.0).ends_with("ms"));
        assert!(fmt_ns(2_000_000_000.0).ends_with('s'));
    }
}
