#![warn(missing_docs)]

//! `pc-rt` — the vendored runtime of the ParaCrash reproduction.
//!
//! The workspace builds **hermetically**: `cargo build --release --offline`
//! must succeed from a cold, empty cargo registry, so nothing in the tree
//! may depend on a registry crate. This crate supplies, on top of `std`
//! alone, the four pieces of infrastructure the framework previously
//! pulled from crates.io:
//!
//! * [`pool`] — a scoped worker pool with `par_map` / `par_chunks`
//!   plus a work-stealing task scheduler (`Pool::scope`) for pipelined
//!   stages (replaces `rayon` on the crash-state verdict fan-out of
//!   Algorithm 1's exploration loop). Thread count comes from the
//!   `PC_THREADS` environment variable, defaulting to the machine's
//!   available parallelism.
//! * [`intern`] — process-global symbol interning (`Sym`, a 4-byte id)
//!   for the path components and structure labels the simulation layers
//!   key their maps by; `PC_NAIVE_SYMS=1` selects the string-keyed
//!   oracle algorithms for equivalence checking.
//! * [`rng`] — a deterministic SplitMix64-seeded xoshiro256\*\* PRNG
//!   (replaces `rand`). Same seed, same stream, on every platform.
//! * [`proptest`] — a seeded property-testing harness with
//!   shrinking-by-halving and failure-seed reporting (replaces the
//!   `proptest` crate for the suite's property tests).
//! * [`mod@bench`] — a wall-clock microbenchmark harness with warmup,
//!   median/p95 reporting and machine-readable results (replaces
//!   `criterion` for `pc-bench`'s benches).
//! * [`durable`] — crash-safe on-disk primitives (an append-only
//!   CRC-checked record log with torn-tail recovery, atomic-rename
//!   checkpoints, and the `PC_DURABLE_CRASH` self-crash-testing hook)
//!   backing the resumable campaign engine.
//! * [`obs`] — structured telemetry (spans, counters, gauges,
//!   histograms, a leveled logger) for the checker pipeline itself
//!   (replaces `tracing`). Off by default; `PC_TRACE` / `PC_LOG`
//!   or the `paracrash --telemetry-out` flag turn it on.
//! * [`obs::prof`] — the self-profiling plane: a seqlock shadow-stack
//!   sampling profiler (`.folded` flamegraph export via `PC_PROFILE` /
//!   `--profile-out`) and a counting `#[global_allocator]` attributing
//!   alloc count/bytes/peak to the innermost open span (replaces
//!   `pprof` + `dhat`). Off by default behind one relaxed atomic load.
//!
//! Owning the runtime is not only an offline-build workaround: the
//! exploration hot path (thousands of independent crash-state
//! reconstructions per trace) is exactly the loop later performance work
//! wants to schedule deliberately — batching states that share server
//! fingerprints, pinning replay caches per worker — which a black-box
//! `rayon` would not let us do.
//!
//! # Example
//!
//! ```
//! use pc_rt::{pool, rng::Rng};
//!
//! // Deterministic PRNG: same seed, same stream.
//! let mut a = Rng::new(42);
//! let mut b = Rng::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//!
//! // Data-parallel map preserving input order.
//! let squares = pool::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

pub mod bench;
pub mod durable;
pub mod intern;
pub mod obs;
pub mod pool;
pub mod proptest;
pub mod rng;
