//! Scoped worker pool: data-parallel `par_map` / `par_chunks` on
//! borrowed data plus a work-stealing task scheduler ([`Pool::scope`]),
//! built on [`std::thread::scope`].
//!
//! This is the fan-out engine for Algorithm 1's exploration loop, in
//! two shapes:
//!
//! - **Uniform maps** ([`par_map`] / [`par_map_indices`]): a fixed set
//!   of n independent tasks. Workers pull indices from a shared atomic
//!   counter — dynamic scheduling, so a few expensive states (large
//!   persisted sets, deep recovery) don't stall a statically
//!   partitioned worker.
//! - **Pipelined stages** ([`Pool::scope`]): tasks submitted *while
//!   earlier ones run*, each returning a [`TaskHandle`]. Workers own
//!   per-worker deques and steal from each other when their own runs
//!   dry (`pool.steals` counter), so a sequential producer (e.g. the
//!   legal-state replay loop, which needs `&mut` caches) overlaps with
//!   parallel consumers (per-state verdicts) instead of the stages
//!   joining at a barrier.
//!
//! Results always come back **in input order** (maps) or **by handle**
//! (scope) whatever order workers finish in, and a panic in any map
//! task propagates to the caller once all workers have stopped — the
//! same contract `rayon`'s `par_iter().map()` provided, so call sites
//! swap over mechanically. Scope tasks catch panics into
//! `Err(message)` on their handle instead.
//!
//! The worker count is decided per [`Pool`]: explicitly via
//! [`Pool::with_threads`], or from the environment via [`Pool::new`]
//! (the `PC_THREADS` variable, else [`std::thread::available_parallelism`]).
//! `PC_THREADS=1` degenerates to a sequential loop on the calling
//! thread, which is the reference behaviour for determinism tests.
//!
//! # Example
//!
//! ```
//! use pc_rt::pool::{self, Pool};
//!
//! // Free function: pool sized from PC_THREADS / the machine.
//! let doubled = pool::par_map(&[1, 2, 3], |&x| x * 2);
//! assert_eq!(doubled, vec![2, 4, 6]);
//!
//! // Explicit pool: deterministic single-threaded reference run.
//! let seq = Pool::with_threads(1).par_map(&[1, 2, 3], |&x| x * 2);
//! assert_eq!(seq, doubled);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "PC_THREADS";

/// Number of workers a default-configured pool will use: `PC_THREADS`
/// if set to a positive integer, otherwise the machine's available
/// parallelism (1 if that cannot be determined).
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A worker-pool configuration.
///
/// Threads are not kept alive between calls: each `par_*` call spawns
/// scoped workers and joins them before returning. The tasks this pool
/// exists for (crash-state reconstruction, legal-state replay) cost
/// milliseconds to seconds each, so thread spawn overhead (~10 µs) is
/// noise; what matters is the dynamic index queue keeping all cores
/// busy on skewed workloads.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new()
    }
}

impl Pool {
    /// Pool sized by `PC_THREADS` / available parallelism.
    pub fn new() -> Pool {
        Pool {
            threads: default_threads(),
        }
    }

    /// Pool with an explicit worker count (`n == 0` is treated as 1).
    pub fn with_threads(n: usize) -> Pool {
        Pool { threads: n.max(1) }
    }

    /// The worker count this pool will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Apply `f` to every element of `items`, in parallel, returning
    /// results in input order.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.par_map_indices(items.len(), |i| f(&items[i]))
    }

    /// Apply `f` to every index in `0..n`, in parallel, returning
    /// results in index order. This is the primitive the other `par_*`
    /// entry points reduce to; call it directly when the task needs the
    /// index itself (e.g. to address several parallel slices at once).
    pub fn par_map_indices<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        let workers = self.threads.min(n.max(1));
        // Telemetry (off by default: one relaxed atomic load). The
        // sequential fast path records the *same* counters as the
        // parallel one, so totals are deterministic across PC_THREADS.
        let t_on = crate::obs::enabled();
        let _span = t_on.then(|| crate::obs::span_cat("pool.par_map", "pool"));
        if t_on {
            crate::obs::count("pool.par_calls", 1);
            crate::obs::count("pool.tasks_queued", n as u64);
            crate::obs::gauge_max("pool.workers", workers as u64);
            crate::obs::gauge_max("pool.max_queue_depth", n as u64);
        }
        let run_one = |i: usize| -> U {
            if t_on {
                let t = Instant::now();
                let out = f(i);
                let ns = t.elapsed().as_nanos() as u64;
                crate::obs::count("pool.tasks_executed", 1);
                crate::obs::count("pool.busy_ns", ns);
                crate::obs::observe_ns("pool.task_ns", ns);
                out
            } else {
                f(i)
            }
        };
        if workers <= 1 || n <= 1 {
            return (0..n).map(run_one).collect();
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let slots = Mutex::new(&mut slots);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    crate::obs::prof::register_thread();
                    // Batch completed results locally; take the shared
                    // lock once per batch, not once per item.
                    let mut done: Vec<(usize, U)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        done.push((i, run_one(i)));
                        if done.len() >= 32 {
                            let mut guard = slots.lock().unwrap();
                            for (j, v) in done.drain(..) {
                                guard[j] = Some(v);
                            }
                        }
                    }
                    let mut guard = slots.lock().unwrap();
                    for (j, v) in done {
                        guard[j] = Some(v);
                    }
                });
            }
        });
        slots
            .into_inner()
            .unwrap()
            .drain(..)
            .map(|v| v.expect("every index produced"))
            .collect()
    }

    /// Like [`Pool::par_map_indices`], but a panicking task yields
    /// `Err(panic message)` for its own index instead of propagating and
    /// aborting the whole map — the harness-survives-hostile-states
    /// primitive the checker's verdict fan-out runs on (one poisoned
    /// crash state becomes a diagnostic entry, not a dead run).
    ///
    /// The caught panic still goes through the process's panic hook
    /// (its message may print to stderr); only the unwind is contained.
    pub fn par_map_indices_caught<U, F>(&self, n: usize, f: F) -> Vec<Result<U, String>>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        self.par_map_indices(n, |i| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i)))
                .map_err(|e| panic_message(e.as_ref()))
        })
    }

    /// Apply `f` to consecutive chunks of `items` (each of length
    /// `chunk` except possibly the last), in parallel, returning the
    /// per-chunk results in chunk order.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn par_chunks<T, U, F>(&self, items: &[T], chunk: usize, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&[T]) -> U + Sync,
    {
        assert!(chunk > 0, "par_chunks with chunk size 0");
        // Schedule by chunk *index* — no up-front Vec of slices, so a
        // huge `items` with a small `chunk` costs O(workers) setup, not
        // O(items / chunk) allocation before any work starts.
        let n_chunks = items.len().div_ceil(chunk);
        self.par_map_indices(n_chunks, |i| {
            let start = i * chunk;
            let end = (start + chunk).min(items.len());
            f(&items[start..end])
        })
    }

    /// Run `body` with a work-stealing [`TaskScope`]: tasks spawned via
    /// [`TaskScope::spawn`] execute on this pool's workers while `body`
    /// keeps running, and each returns a [`TaskHandle`] to join on.
    ///
    /// This is the pipelining primitive: a sequential producer (holding
    /// `&mut` state) spawns each consumer task as soon as its input is
    /// ready, instead of finishing the whole producer stage and then
    /// fanning out behind a barrier. Workers pop their own deque and
    /// steal from siblings when idle (`pool.steals` counter).
    ///
    /// With one worker (`PC_THREADS=1`), spawned tasks run **inline**
    /// inside `spawn` — the deterministic sequential reference: the
    /// interleaving is exactly "producer step i, then task i".
    ///
    /// Panics inside a task are caught and surface as `Err(message)`
    /// from [`TaskHandle::join`], never aborting sibling tasks.
    pub fn scope<'env, R>(&self, body: impl FnOnce(&TaskScope<'_, 'env>) -> R) -> R {
        let workers = self.threads.max(1).saturating_sub(1).min(MAX_SCOPE_WORKERS);
        let t_on = crate::obs::enabled();
        // The scope span is the wall-time denominator the summary's
        // pool-utilization line divides busy time by.
        let _span = t_on.then(|| crate::obs::span_cat("pool.scope", "pool"));
        if t_on {
            crate::obs::count("pool.scope_calls", 1);
            crate::obs::gauge_max("pool.workers", self.threads.max(1) as u64);
        }
        if workers == 0 {
            let sched = Sched::new(0, t_on);
            let scope = TaskScope { sched: &sched };
            return body(&scope);
        }
        let sched = Sched::new(workers, t_on);
        std::thread::scope(|ts| {
            for w in 0..workers {
                let sched = &sched;
                ts.spawn(move || {
                    crate::obs::prof::register_thread();
                    sched.worker_loop(w)
                });
            }
            let scope = TaskScope { sched: &sched };
            let out = body(&scope);
            sched.finish();
            out
        })
    }
}

/// Upper bound on scope workers — deques are scanned linearly when
/// stealing, so keep the fan-in sane even on very wide machines.
const MAX_SCOPE_WORKERS: usize = 64;

type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Shared scheduler state for one [`Pool::scope`] call: per-worker
/// deques plus a condvar-guarded account of outstanding work.
struct Sched<'env> {
    deques: Vec<Mutex<std::collections::VecDeque<Job<'env>>>>,
    /// (queued-but-unclaimed tasks, producer finished).
    state: Mutex<(usize, bool)>,
    wake: Condvar,
    /// Round-robin cursor for spawn placement.
    next: AtomicUsize,
    telemetry: bool,
}

impl<'env> Sched<'env> {
    fn new(workers: usize, telemetry: bool) -> Sched<'env> {
        Sched {
            deques: (0..workers)
                .map(|_| Mutex::new(std::collections::VecDeque::new()))
                .collect(),
            state: Mutex::new((0, false)),
            wake: Condvar::new(),
            next: AtomicUsize::new(0),
            telemetry,
        }
    }

    fn push(&self, job: Job<'env>) {
        let w = self.next.fetch_add(1, Ordering::Relaxed) % self.deques.len();
        self.deques[w].lock().unwrap().push_back(job);
        let mut st = self.state.lock().unwrap();
        st.0 += 1;
        if self.telemetry {
            crate::obs::count("pool.tasks_queued", 1);
            crate::obs::gauge_max("pool.max_queue_depth", st.0 as u64);
        }
        drop(st);
        self.wake.notify_one();
    }

    /// Mark the producer done and wake everyone so idle workers can
    /// observe termination.
    fn finish(&self) {
        self.state.lock().unwrap().1 = true;
        self.wake.notify_all();
    }

    /// Claim one job: own deque from the back (LIFO, cache-warm), then
    /// steal from siblings from the front (FIFO, oldest first).
    fn claim(&self, me: usize) -> Option<Job<'env>> {
        if let Some(job) = self.deques[me].lock().unwrap().pop_back() {
            return Some(job);
        }
        for off in 1..self.deques.len() {
            let victim = (me + off) % self.deques.len();
            if let Some(job) = self.deques[victim].lock().unwrap().pop_front() {
                if self.telemetry {
                    crate::obs::count("pool.steals", 1);
                }
                return Some(job);
            }
        }
        None
    }

    fn worker_loop(&self, me: usize) {
        loop {
            if let Some(job) = self.claim(me) {
                self.state.lock().unwrap().0 -= 1;
                if self.telemetry {
                    let t = Instant::now();
                    job();
                    let ns = t.elapsed().as_nanos() as u64;
                    crate::obs::count("pool.tasks_executed", 1);
                    crate::obs::count("pool.busy_ns", ns);
                    crate::obs::observe_ns("pool.task_ns", ns);
                } else {
                    job();
                }
                continue;
            }
            let st = self.state.lock().unwrap();
            if st.0 == 0 && st.1 {
                return;
            }
            if st.0 == 0 {
                // Nothing queued and the producer is still running:
                // sleep until a push or finish wakes us.
                drop(self.wake.wait(st).unwrap());
            }
            // st.0 > 0: a job appeared between claim() and the lock —
            // loop and try to claim it.
        }
    }
}

/// Handle to a task spawned on a [`TaskScope`]; [`join`](Self::join)
/// blocks until the task finishes and yields its result (`Err` holds
/// the panic message if the task panicked).
pub struct TaskHandle<T> {
    cell: std::sync::Arc<(Mutex<Option<Result<T, String>>>, Condvar)>,
}

impl<T> TaskHandle<T> {
    fn new() -> TaskHandle<T> {
        TaskHandle {
            cell: std::sync::Arc::new((Mutex::new(None), Condvar::new())),
        }
    }

    fn fill(&self, value: Result<T, String>) {
        let (slot, cv) = &*self.cell;
        *slot.lock().unwrap() = Some(value);
        cv.notify_all();
    }

    /// Wait for the task and take its result.
    pub fn join(self) -> Result<T, String> {
        let (slot, cv) = &*self.cell;
        let mut guard = slot.lock().unwrap();
        loop {
            if let Some(v) = guard.take() {
                return v;
            }
            guard = cv.wait(guard).unwrap();
        }
    }
}

/// The spawning surface handed to [`Pool::scope`]'s closure.
///
/// `'env` is the lifetime of borrows the tasks may capture (everything
/// declared outside the `scope` call); all tasks complete before
/// `scope` returns, exactly like [`std::thread::scope`].
pub struct TaskScope<'sched, 'env> {
    sched: &'sched Sched<'env>,
}

impl<'env> TaskScope<'_, 'env> {
    /// Submit `f` to the pool, returning a handle to its result.
    ///
    /// On a single-threaded pool this runs `f` inline (catching panics
    /// identically) — the sequential reference interleaving.
    pub fn spawn<T, F>(&self, f: F) -> TaskHandle<T>
    where
        T: Send + 'env,
        F: FnOnce() -> T + Send + 'env,
    {
        let handle = TaskHandle::new();
        let result_cell = TaskHandle {
            cell: handle.cell.clone(),
        };
        let run = move || {
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
                .map_err(|e| panic_message(e.as_ref()));
            result_cell.fill(out);
        };
        if self.sched.deques.is_empty() {
            // Inline (single-threaded) path: record the same counters
            // the worker loop would, so task totals stay deterministic
            // across PC_THREADS widths.
            if self.sched.telemetry {
                crate::obs::count("pool.tasks_queued", 1);
                let t = Instant::now();
                run();
                let ns = t.elapsed().as_nanos() as u64;
                crate::obs::count("pool.tasks_executed", 1);
                crate::obs::count("pool.busy_ns", ns);
                crate::obs::observe_ns("pool.task_ns", ns);
            } else {
                run();
            }
        } else {
            self.sched.push(Box::new(run));
        }
        handle
    }
}

/// [`Pool::par_map`] on a default-configured pool.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    Pool::new().par_map(items, f)
}

/// [`Pool::par_map_indices`] on a default-configured pool.
pub fn par_map_indices<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    Pool::new().par_map_indices(n, f)
}

/// [`Pool::par_map_indices_caught`] on a default-configured pool.
pub fn par_map_indices_caught<U, F>(n: usize, f: F) -> Vec<Result<U, String>>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    Pool::new().par_map_indices_caught(n, f)
}

/// [`Pool::scope`] on a default-configured pool.
pub fn scope<'env, R>(body: impl FnOnce(&TaskScope<'_, 'env>) -> R) -> R {
    Pool::new().scope(body)
}

/// Extract a human-readable message from a caught panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// [`Pool::par_chunks`] on a default-configured pool.
pub fn par_chunks<T, U, F>(items: &[T], chunk: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&[T]) -> U + Sync,
{
    Pool::new().par_chunks(items, chunk, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn par_map_preserves_input_order() {
        for threads in [1, 2, 4, 8] {
            let pool = Pool::with_threads(threads);
            let items: Vec<usize> = (0..257).collect();
            let out = pool.par_map(&items, |&x| x * 3);
            assert_eq!(out, items.iter().map(|&x| x * 3).collect::<Vec<_>>());
        }
    }

    /// The single-threaded pool and multi-threaded pools must agree on
    /// every output — the determinism contract check.rs relies on.
    #[test]
    fn single_vs_multi_thread_results_are_identical() {
        let items: Vec<u64> = (0..1000).collect();
        let f = |&x: &u64| x.wrapping_mul(0x9E37_79B9).rotate_left(13) ^ x;
        let seq = Pool::with_threads(1).par_map(&items, f);
        for threads in [2, 3, 7] {
            let par = Pool::with_threads(threads).par_map(&items, f);
            assert_eq!(seq, par, "{threads} threads diverged");
        }
    }

    #[test]
    fn all_tasks_run_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = Pool::with_threads(4).par_map_indices(123, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 123);
        assert_eq!(out, (0..123).collect::<Vec<_>>());
    }

    #[test]
    fn multiple_workers_actually_participate() {
        use std::sync::Mutex;
        // With heavy-ish tasks and 4 workers, more than one OS thread
        // must execute tasks (guards against a silently sequential pool).
        let ids: Mutex<Vec<std::thread::ThreadId>> = Mutex::new(Vec::new());
        Pool::with_threads(4).par_map_indices(64, |_| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            let id = std::thread::current().id();
            let mut guard = ids.lock().unwrap();
            if !guard.contains(&id) {
                guard.push(id);
            }
        });
        assert!(ids.lock().unwrap().len() > 1);
    }

    #[test]
    fn par_chunks_covers_everything_including_ragged_tail() {
        let items: Vec<u32> = (0..103).collect();
        let sums = Pool::with_threads(3).par_chunks(&items, 10, |c| c.iter().sum::<u32>());
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.iter().sum::<u32>(), items.iter().sum::<u32>());
        assert_eq!(sums[10], (100..103).sum::<u32>());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(Pool::new().par_map(&empty, |&x| x).is_empty());
        assert_eq!(Pool::new().par_map(&[9], |&x: &u8| x + 1), vec![10]);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            Pool::with_threads(4).par_map_indices(50, |i| {
                if i == 17 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn with_threads_zero_means_one() {
        assert_eq!(Pool::with_threads(0).threads(), 1);
    }

    #[test]
    fn caught_map_turns_panics_into_errors_and_keeps_the_rest() {
        // Quiet hook: the panics below are intentional.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for threads in [1, 4] {
            let out = Pool::with_threads(threads).par_map_indices_caught(20, |i| {
                if i % 7 == 3 {
                    panic!("poisoned state {i}");
                }
                i * 2
            });
            assert_eq!(out.len(), 20);
            for (i, r) in out.iter().enumerate() {
                if i % 7 == 3 {
                    let msg = r.as_ref().unwrap_err();
                    assert!(msg.contains(&format!("poisoned state {i}")), "{msg}");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 2);
                }
            }
        }
        std::panic::set_hook(prev);
    }

    #[test]
    fn scope_tasks_all_run_and_join_in_order() {
        for threads in [1, 2, 4, 8] {
            let pool = Pool::with_threads(threads);
            let out: Vec<u64> = pool.scope(|sc| {
                let handles: Vec<_> = (0..100u64).map(|i| sc.spawn(move || i * 7)).collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert_eq!(out, (0..100).map(|i| i * 7).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn scope_pipelines_producer_and_consumers() {
        // A sequential producer holding &mut state spawns a task per
        // step; tasks borrow the produced value. The &mut producer
        // state and shared task captures coexist — the shape check.rs
        // uses for legal-states → verdict overlap.
        let inputs: Vec<std::sync::OnceLock<u64>> = (0..50).map(|_| Default::default()).collect();
        let mut produced = 0u64; // &mut state only the producer touches
        let total: u64 = Pool::with_threads(4).scope(|sc| {
            let mut handles = Vec::new();
            for cell in &inputs {
                produced += 1;
                cell.set(produced).unwrap();
                handles.push(sc.spawn(move || cell.get().copied().unwrap() * 2));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, (1..=50).map(|i| i * 2).sum::<u64>());
        assert_eq!(produced, 50);
    }

    #[test]
    fn scope_catches_panics_per_task() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for threads in [1, 4] {
            let results: Vec<Result<usize, String>> = Pool::with_threads(threads).scope(|sc| {
                let handles: Vec<_> = (0..10)
                    .map(|i| {
                        sc.spawn(move || {
                            if i == 3 {
                                panic!("scope task {i} poisoned");
                            }
                            i
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join()).collect()
            });
            for (i, r) in results.iter().enumerate() {
                if i == 3 {
                    assert!(r.as_ref().unwrap_err().contains("poisoned"), "{r:?}");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i);
                }
            }
        }
        std::panic::set_hook(prev);
    }

    #[test]
    fn scope_multiple_workers_participate_and_steal() {
        use std::sync::Mutex;
        let ids: Mutex<Vec<std::thread::ThreadId>> = Mutex::new(Vec::new());
        Pool::with_threads(5).scope(|sc| {
            let handles: Vec<_> = (0..64)
                .map(|_| {
                    sc.spawn(|| {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        let id = std::thread::current().id();
                        let mut guard = ids.lock().unwrap();
                        if !guard.contains(&id) {
                            guard.push(id);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        assert!(ids.lock().unwrap().len() > 1, "only one worker ran tasks");
    }

    #[test]
    fn scope_tasks_spawned_late_still_run_after_body_returns_handles() {
        // Handles may be joined inside the scope in any order, including
        // immediately after spawn (producer-consumer lockstep).
        let out = Pool::with_threads(3).scope(|sc| {
            let mut acc = Vec::new();
            for i in 0..20 {
                let h = sc.spawn(move || i + 100);
                acc.push(h.join().unwrap());
            }
            acc
        });
        assert_eq!(out, (100..120).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_does_not_materialize_chunk_list() {
        // Behavioural pin for the index-scheduled rewrite: a large item
        // count with chunk size 1 must still cover everything (the old
        // implementation allocated one slice per chunk up front).
        let items: Vec<u32> = (0..10_000).collect();
        let sums = Pool::with_threads(4).par_chunks(&items, 1, |c| c.iter().sum::<u32>());
        assert_eq!(sums.len(), 10_000);
        assert_eq!(sums.iter().sum::<u32>(), items.iter().sum::<u32>());
    }

    #[test]
    fn caught_map_handles_non_string_panics() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = Pool::with_threads(2).par_map_indices_caught(3, |i| {
            if i == 1 {
                std::panic::panic_any(42usize);
            }
            i
        });
        assert!(out[1].as_ref().unwrap_err().contains("non-string"));
        assert_eq!(*out[0].as_ref().unwrap(), 0);
        std::panic::set_hook(prev);
    }
}
