//! Scoped worker pool: data-parallel `par_map` / `par_chunks` on
//! borrowed data, built on [`std::thread::scope`].
//!
//! This is the fan-out engine for Algorithm 1's exploration loop: after
//! the sequential pass computes each crash state's legal golden states,
//! the per-state verdicts (materialize → recover → compare) are
//! independent and embarrassingly parallel, so
//! [`check_stack`](../../paracrash/fn.check_stack.html) hands them to
//! [`par_map`]. Workers pull indices from a shared atomic counter —
//! dynamic scheduling, so a few expensive states (large persisted sets,
//! deep recovery) don't stall a statically partitioned worker.
//!
//! Results always come back **in input order**, whatever order workers
//! finish in, and a panic in any task propagates to the caller once all
//! workers have stopped — the same contract `rayon`'s `par_iter().map()`
//! provided, so call sites swap over mechanically.
//!
//! The worker count is decided per [`Pool`]: explicitly via
//! [`Pool::with_threads`], or from the environment via [`Pool::new`]
//! (the `PC_THREADS` variable, else [`std::thread::available_parallelism`]).
//! `PC_THREADS=1` degenerates to a sequential loop on the calling
//! thread, which is the reference behaviour for determinism tests.
//!
//! # Example
//!
//! ```
//! use pc_rt::pool::{self, Pool};
//!
//! // Free function: pool sized from PC_THREADS / the machine.
//! let doubled = pool::par_map(&[1, 2, 3], |&x| x * 2);
//! assert_eq!(doubled, vec![2, 4, 6]);
//!
//! // Explicit pool: deterministic single-threaded reference run.
//! let seq = Pool::with_threads(1).par_map(&[1, 2, 3], |&x| x * 2);
//! assert_eq!(seq, doubled);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "PC_THREADS";

/// Number of workers a default-configured pool will use: `PC_THREADS`
/// if set to a positive integer, otherwise the machine's available
/// parallelism (1 if that cannot be determined).
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A worker-pool configuration.
///
/// Threads are not kept alive between calls: each `par_*` call spawns
/// scoped workers and joins them before returning. The tasks this pool
/// exists for (crash-state reconstruction, legal-state replay) cost
/// milliseconds to seconds each, so thread spawn overhead (~10 µs) is
/// noise; what matters is the dynamic index queue keeping all cores
/// busy on skewed workloads.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new()
    }
}

impl Pool {
    /// Pool sized by `PC_THREADS` / available parallelism.
    pub fn new() -> Pool {
        Pool {
            threads: default_threads(),
        }
    }

    /// Pool with an explicit worker count (`n == 0` is treated as 1).
    pub fn with_threads(n: usize) -> Pool {
        Pool { threads: n.max(1) }
    }

    /// The worker count this pool will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Apply `f` to every element of `items`, in parallel, returning
    /// results in input order.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.par_map_indices(items.len(), |i| f(&items[i]))
    }

    /// Apply `f` to every index in `0..n`, in parallel, returning
    /// results in index order. This is the primitive the other `par_*`
    /// entry points reduce to; call it directly when the task needs the
    /// index itself (e.g. to address several parallel slices at once).
    pub fn par_map_indices<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        let workers = self.threads.min(n.max(1));
        // Telemetry (off by default: one relaxed atomic load). The
        // sequential fast path records the *same* counters as the
        // parallel one, so totals are deterministic across PC_THREADS.
        let t_on = crate::obs::enabled();
        let _span = t_on.then(|| crate::obs::span_cat("pool.par_map", "pool"));
        if t_on {
            crate::obs::count("pool.par_calls", 1);
            crate::obs::count("pool.tasks_queued", n as u64);
            crate::obs::gauge_max("pool.workers", workers as u64);
            crate::obs::gauge_max("pool.max_queue_depth", n as u64);
        }
        let run_one = |i: usize| -> U {
            if t_on {
                let t = Instant::now();
                let out = f(i);
                let ns = t.elapsed().as_nanos() as u64;
                crate::obs::count("pool.tasks_executed", 1);
                crate::obs::count("pool.busy_ns", ns);
                crate::obs::observe_ns("pool.task_ns", ns);
                out
            } else {
                f(i)
            }
        };
        if workers <= 1 || n <= 1 {
            return (0..n).map(run_one).collect();
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let slots = Mutex::new(&mut slots);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // Batch completed results locally; take the shared
                    // lock once per batch, not once per item.
                    let mut done: Vec<(usize, U)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        done.push((i, run_one(i)));
                        if done.len() >= 32 {
                            let mut guard = slots.lock().unwrap();
                            for (j, v) in done.drain(..) {
                                guard[j] = Some(v);
                            }
                        }
                    }
                    let mut guard = slots.lock().unwrap();
                    for (j, v) in done {
                        guard[j] = Some(v);
                    }
                });
            }
        });
        slots
            .into_inner()
            .unwrap()
            .drain(..)
            .map(|v| v.expect("every index produced"))
            .collect()
    }

    /// Like [`Pool::par_map_indices`], but a panicking task yields
    /// `Err(panic message)` for its own index instead of propagating and
    /// aborting the whole map — the harness-survives-hostile-states
    /// primitive the checker's verdict fan-out runs on (one poisoned
    /// crash state becomes a diagnostic entry, not a dead run).
    ///
    /// The caught panic still goes through the process's panic hook
    /// (its message may print to stderr); only the unwind is contained.
    pub fn par_map_indices_caught<U, F>(&self, n: usize, f: F) -> Vec<Result<U, String>>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        self.par_map_indices(n, |i| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i)))
                .map_err(|e| panic_message(e.as_ref()))
        })
    }

    /// Apply `f` to consecutive chunks of `items` (each of length
    /// `chunk` except possibly the last), in parallel, returning the
    /// per-chunk results in chunk order.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn par_chunks<T, U, F>(&self, items: &[T], chunk: usize, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&[T]) -> U + Sync,
    {
        assert!(chunk > 0, "par_chunks with chunk size 0");
        let chunks: Vec<&[T]> = items.chunks(chunk).collect();
        self.par_map_indices(chunks.len(), |i| f(chunks[i]))
    }
}

/// [`Pool::par_map`] on a default-configured pool.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    Pool::new().par_map(items, f)
}

/// [`Pool::par_map_indices`] on a default-configured pool.
pub fn par_map_indices<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    Pool::new().par_map_indices(n, f)
}

/// [`Pool::par_map_indices_caught`] on a default-configured pool.
pub fn par_map_indices_caught<U, F>(n: usize, f: F) -> Vec<Result<U, String>>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    Pool::new().par_map_indices_caught(n, f)
}

/// Extract a human-readable message from a caught panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// [`Pool::par_chunks`] on a default-configured pool.
pub fn par_chunks<T, U, F>(items: &[T], chunk: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&[T]) -> U + Sync,
{
    Pool::new().par_chunks(items, chunk, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn par_map_preserves_input_order() {
        for threads in [1, 2, 4, 8] {
            let pool = Pool::with_threads(threads);
            let items: Vec<usize> = (0..257).collect();
            let out = pool.par_map(&items, |&x| x * 3);
            assert_eq!(out, items.iter().map(|&x| x * 3).collect::<Vec<_>>());
        }
    }

    /// The single-threaded pool and multi-threaded pools must agree on
    /// every output — the determinism contract check.rs relies on.
    #[test]
    fn single_vs_multi_thread_results_are_identical() {
        let items: Vec<u64> = (0..1000).collect();
        let f = |&x: &u64| x.wrapping_mul(0x9E37_79B9).rotate_left(13) ^ x;
        let seq = Pool::with_threads(1).par_map(&items, f);
        for threads in [2, 3, 7] {
            let par = Pool::with_threads(threads).par_map(&items, f);
            assert_eq!(seq, par, "{threads} threads diverged");
        }
    }

    #[test]
    fn all_tasks_run_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = Pool::with_threads(4).par_map_indices(123, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 123);
        assert_eq!(out, (0..123).collect::<Vec<_>>());
    }

    #[test]
    fn multiple_workers_actually_participate() {
        use std::sync::Mutex;
        // With heavy-ish tasks and 4 workers, more than one OS thread
        // must execute tasks (guards against a silently sequential pool).
        let ids: Mutex<Vec<std::thread::ThreadId>> = Mutex::new(Vec::new());
        Pool::with_threads(4).par_map_indices(64, |_| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            let id = std::thread::current().id();
            let mut guard = ids.lock().unwrap();
            if !guard.contains(&id) {
                guard.push(id);
            }
        });
        assert!(ids.lock().unwrap().len() > 1);
    }

    #[test]
    fn par_chunks_covers_everything_including_ragged_tail() {
        let items: Vec<u32> = (0..103).collect();
        let sums = Pool::with_threads(3).par_chunks(&items, 10, |c| c.iter().sum::<u32>());
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.iter().sum::<u32>(), items.iter().sum::<u32>());
        assert_eq!(sums[10], (100..103).sum::<u32>());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(Pool::new().par_map(&empty, |&x| x).is_empty());
        assert_eq!(Pool::new().par_map(&[9], |&x: &u8| x + 1), vec![10]);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            Pool::with_threads(4).par_map_indices(50, |i| {
                if i == 17 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn with_threads_zero_means_one() {
        assert_eq!(Pool::with_threads(0).threads(), 1);
    }

    #[test]
    fn caught_map_turns_panics_into_errors_and_keeps_the_rest() {
        // Quiet hook: the panics below are intentional.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for threads in [1, 4] {
            let out = Pool::with_threads(threads).par_map_indices_caught(20, |i| {
                if i % 7 == 3 {
                    panic!("poisoned state {i}");
                }
                i * 2
            });
            assert_eq!(out.len(), 20);
            for (i, r) in out.iter().enumerate() {
                if i % 7 == 3 {
                    let msg = r.as_ref().unwrap_err();
                    assert!(msg.contains(&format!("poisoned state {i}")), "{msg}");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 2);
                }
            }
        }
        std::panic::set_hook(prev);
    }

    #[test]
    fn caught_map_handles_non_string_panics() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = Pool::with_threads(2).par_map_indices_caught(3, |i| {
            if i == 1 {
                std::panic::panic_any(42usize);
            }
            i
        });
        assert!(out[1].as_ref().unwrap_err().contains("non-string"));
        assert_eq!(*out[0].as_ref().unwrap(), 0);
        std::panic::set_hook(prev);
    }
}
