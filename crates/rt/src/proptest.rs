//! A minimal seeded property-testing harness.
//!
//! The suite's property tests (trace invariants, HDF5 fuzzing,
//! randomized workloads) previously ran on the `proptest` crate; this
//! module re-hosts them on ~200 lines of `std`-only harness with the
//! three capabilities those tests actually use:
//!
//! 1. **Seeded case generation** — each case `i` of a run gets its own
//!    deterministic [`crate::rng::Rng`], derived by SplitMix64
//!    from `(run seed, i)`. The run seed defaults to a fixed constant
//!    (CI is reproducible by default) and can be overridden with the
//!    `PC_PROPTEST_SEED` environment variable; `PC_PROPTEST_CASES`
//!    scales case counts globally.
//! 2. **Shrinking by halving** — generators receive a `size` budget
//!    that ramps up over the cases of a run. When a case fails, the
//!    harness re-generates *the same case* at halved sizes until it
//!    stops failing, then binary-searches the boundary, reporting the
//!    smallest failing size's input. (Sizes, not individual fields,
//!    are what every generator in this suite scales by, so halving the
//!    budget is exactly "try a smaller trace / fewer ops".)
//! 3. **Failure-seed reporting** — a failure panics with the seed, case
//!    index, size and `Debug` rendering of the minimal input, plus the
//!    `PC_PROPTEST_SEED=…` incantation that replays it.
//!
//! Properties report failure by returning `Err(String)` — usually via
//! the [`crate::prop_assert!`] / [`crate::prop_assert_eq!`] macros — or by panicking
//! (panics are caught and shrunk the same way, so `expect()` deep in
//! library code still gets minimized).
//!
//! # Example
//!
//! ```
//! use pc_rt::proptest::{run, Config};
//! use pc_rt::prop_assert;
//!
//! run(
//!     "reverse twice is identity",
//!     &Config::with_cases(64),
//!     |rng, size| {
//!         (0..size).map(|_| rng.next_u32()).collect::<Vec<_>>()
//!     },
//!     |xs| {
//!         let twice: Vec<_> = xs.iter().rev().rev().cloned().collect();
//!         prop_assert!(twice == *xs, "lost elements");
//!         Ok(())
//!     },
//! );
//! ```

use crate::rng::{Rng, SplitMix64};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Environment variable overriding the run seed (decimal or `0x` hex).
pub const SEED_ENV: &str = "PC_PROPTEST_SEED";
/// Environment variable overriding the number of cases per run.
pub const CASES_ENV: &str = "PC_PROPTEST_CASES";

/// Default run seed: reproducible CI without any environment setup.
pub const DEFAULT_SEED: u64 = 0x5EED_CAFE_F00D_0001;

/// Configuration of one property run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases.
    pub cases: u32,
    /// Run seed; per-case seeds derive from it.
    pub seed: u64,
    /// Largest `size` budget handed to the generator (ramped from 1).
    pub max_size: usize,
}

impl Config {
    /// A config running `cases` cases with the default (or
    /// environment-overridden) seed and a size ramp up to 64.
    pub fn with_cases(cases: u32) -> Config {
        let seed = std::env::var(SEED_ENV)
            .ok()
            .and_then(|v| parse_u64(&v))
            .unwrap_or(DEFAULT_SEED);
        let cases = std::env::var(CASES_ENV)
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(cases);
        Config {
            cases,
            seed,
            max_size: 64,
        }
    }

    /// Same config with a different size ramp ceiling.
    pub fn max_size(mut self, n: usize) -> Config {
        self.max_size = n.max(1);
        self
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Outcome of one property evaluation.
enum CaseResult {
    Pass,
    /// Property rejected the case as not applicable ([`prop_assume!`]).
    Reject,
    Fail(String),
}

/// Derive the deterministic RNG for case `case` of run `seed`.
fn case_rng(seed: u64, case: u32) -> Rng {
    let mut sm = SplitMix64::new(seed ^ 0x9E6B_5355_C5B9_35C9u64.wrapping_mul(case as u64 + 1));
    Rng::new(sm.next_u64())
}

/// The `size` budget for case `case`: ramps linearly from 1 to
/// `max_size` over the run so early cases are small and late cases
/// exercise the full configured scale.
fn case_size(cfg: &Config, case: u32) -> usize {
    if cfg.cases <= 1 {
        return cfg.max_size;
    }
    1 + (cfg.max_size - 1) * case as usize / (cfg.cases as usize - 1)
}

fn eval_case<T, G, P>(gen: &G, prop: &P, seed: u64, case: u32, size: usize) -> (CaseResult, String)
where
    T: std::fmt::Debug,
    G: Fn(&mut Rng, usize) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    let mut rng = case_rng(seed, case);
    let value = gen(&mut rng, size);
    let rendered = format!("{value:?}");
    let outcome = catch_unwind(AssertUnwindSafe(|| prop(&value)));
    let result = match outcome {
        Ok(Ok(())) => CaseResult::Pass,
        Ok(Err(msg)) => {
            if msg == REJECT_SENTINEL {
                CaseResult::Reject
            } else {
                CaseResult::Fail(msg)
            }
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "property panicked".to_string());
            CaseResult::Fail(format!("panic: {msg}"))
        }
    };
    (result, rendered)
}

/// Internal marker distinguishing [`prop_assume!`] rejections from
/// failures. Not part of the public API.
#[doc(hidden)]
pub const REJECT_SENTINEL: &str = "\u{0}pc-rt-prop-assume-reject";

/// Run a property over `cfg.cases` generated cases.
///
/// * `gen` builds a case from a deterministic RNG and a `size` budget;
/// * `prop` checks it, reporting failure as `Err` (see
///   [`crate::prop_assert!`]) or by panicking.
///
/// On failure the case is shrunk by halving its `size` budget (the
/// generator re-runs with the *same* per-case seed, so a smaller size
/// yields a prefix-like smaller input), then the pass/fail boundary is
/// binary-searched; the final panic message carries everything needed
/// to reproduce.
///
/// # Panics
///
/// Panics if any case fails — this is the test-failure path.
pub fn run<T, G, P>(name: &str, cfg: &Config, gen: G, prop: P)
where
    T: std::fmt::Debug,
    G: Fn(&mut Rng, usize) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    let mut rejected = 0u32;
    for case in 0..cfg.cases {
        let size = case_size(cfg, case);
        let (result, rendered) = eval_case(&gen, &prop, cfg.seed, case, size);
        match result {
            CaseResult::Pass => continue,
            CaseResult::Reject => {
                rejected += 1;
                continue;
            }
            CaseResult::Fail(first_msg) => {
                let (min_size, min_input, min_msg) =
                    shrink(&gen, &prop, cfg.seed, case, size, rendered, first_msg);
                panic!(
                    "property '{name}' failed\n\
                     \x20 seed: {seed:#018X} (reproduce with {env}={seed:#X})\n\
                     \x20 case: {case} of {cases}, failing size {size}, minimal size {min_size}\n\
                     \x20 minimal input: {min_input}\n\
                     \x20 failure: {min_msg}",
                    seed = cfg.seed,
                    env = SEED_ENV,
                    cases = cfg.cases,
                );
            }
        }
    }
    if rejected == cfg.cases && cfg.cases > 0 {
        panic!("property '{name}': every case was rejected by prop_assume!");
    }
}

/// Shrink a failing case by halving the size budget, then binary-search
/// the boundary. Returns `(minimal size, rendered input, message)`.
fn shrink<T, G, P>(
    gen: &G,
    prop: &P,
    seed: u64,
    case: u32,
    failing_size: usize,
    failing_input: String,
    failing_msg: String,
) -> (usize, String, String)
where
    T: std::fmt::Debug,
    G: Fn(&mut Rng, usize) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    let mut fail = (failing_size, failing_input, failing_msg);
    // Phase 1: halve while it still fails.
    let mut passing_floor = 0usize; // largest size known to pass (0 = none)
    while fail.0 > 1 {
        let probe = fail.0 / 2;
        match eval_case(gen, prop, seed, case, probe) {
            (CaseResult::Fail(msg), rendered) => fail = (probe, rendered, msg),
            _ => {
                passing_floor = probe;
                break;
            }
        }
    }
    // Phase 2: binary-search (passing_floor, fail.0) for the boundary.
    let mut lo = passing_floor;
    let mut hi = fail.0;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        match eval_case(gen, prop, seed, case, mid) {
            (CaseResult::Fail(msg), rendered) => {
                hi = mid;
                fail = (mid, rendered, msg);
            }
            _ => lo = mid,
        }
    }
    fail
}

/// Generate a `Vec<T>` of length `0..=size` — the workhorse collection
/// generator (counterpart of `proptest::collection::vec`).
///
/// ```
/// use pc_rt::proptest::gen_vec;
/// use pc_rt::rng::Rng;
/// let mut rng = Rng::new(1);
/// let xs = gen_vec(&mut rng, 10, |r| r.gen_range(0u32..100));
/// assert!(xs.len() <= 10);
/// ```
pub fn gen_vec<T>(rng: &mut Rng, size: usize, mut elem: impl FnMut(&mut Rng) -> T) -> Vec<T> {
    let len = rng.gen_range(0..=size as u64) as usize;
    (0..len).map(|_| elem(rng)).collect()
}

/// Assert inside a property; on failure the property returns
/// `Err(message)` and the harness shrinks the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "{}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a property (see [`crate::prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            ));
        }
    }};
}

/// Skip a generated case that does not satisfy a precondition. The
/// case counts as neither pass nor failure (a run where *every* case is
/// rejected fails loudly instead of silently passing).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::proptest::REJECT_SENTINEL.to_string());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        run(
            "sum is commutative",
            &Config {
                cases: 50,
                seed: 1,
                max_size: 32,
            },
            |rng, size| (rng.gen_range(0..size as u64 + 1), rng.next_u32() as u64),
            |&(a, b)| {
                prop_assert_eq!(a + b, b + a);
                Ok(())
            },
        );
        // `run` panics on failure; reaching here means all cases passed.
        count += 1;
        assert_eq!(count, 1);
    }

    /// The planted failure: vectors of length >= 7 "fail". Shrinking
    /// must find the minimal counterexample (size exactly 7) from a
    /// much larger initial failure.
    #[test]
    fn shrinking_finds_minimal_counterexample() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            run(
                "planted: no vec of length >= 7",
                &Config {
                    cases: 10,
                    seed: 42,
                    max_size: 64,
                },
                |rng, size| {
                    // Deterministic in size: length == size.
                    let _ = rng.next_u64();
                    vec![0u8; size]
                },
                |xs| {
                    prop_assert!(xs.len() < 7, "vec too long: {}", xs.len());
                    Ok(())
                },
            )
        }))
        .expect_err("planted property must fail");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("panic message is a String");
        assert!(msg.contains("minimal size 7"), "report: {msg}");
        assert!(msg.contains("vec too long: 7"), "report: {msg}");
        assert!(msg.contains("PC_PROPTEST_SEED"), "report: {msg}");
        assert!(msg.contains("0x2A"), "seed missing: {msg}");
    }

    #[test]
    fn panicking_property_is_caught_and_reported() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            run(
                "planted panic",
                &Config {
                    cases: 4,
                    seed: 7,
                    max_size: 8,
                },
                |_rng, size| size,
                |&s| {
                    assert!(s < 3, "size {s} too big");
                    Ok(())
                },
            )
        }))
        .expect_err("must fail");
        let msg = err.downcast_ref::<String>().cloned().unwrap();
        assert!(msg.contains("panic: size"), "report: {msg}");
        assert!(msg.contains("minimal size 3"), "report: {msg}");
    }

    #[test]
    fn case_generation_is_deterministic_per_seed() {
        let gen = |rng: &mut Rng, size: usize| gen_vec(rng, size, |r| r.next_u64());
        let a: Vec<Vec<u64>> = (0..10).map(|c| gen(&mut case_rng(9, c), 16)).collect();
        let b: Vec<Vec<u64>> = (0..10).map(|c| gen(&mut case_rng(9, c), 16)).collect();
        let c: Vec<Vec<u64>> = (0..10)
            .map(|case| gen(&mut case_rng(10, case), 16))
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn all_rejected_run_fails_loudly() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            run(
                "impossible precondition",
                &Config {
                    cases: 5,
                    seed: 3,
                    max_size: 8,
                },
                |rng, _| rng.next_u64(),
                |_| {
                    prop_assume!(false);
                    Ok(())
                },
            )
        }))
        .expect_err("must fail");
        let msg = err.downcast_ref::<String>().cloned().unwrap();
        assert!(msg.contains("rejected"), "report: {msg}");
    }

    #[test]
    fn size_ramp_starts_small_and_reaches_max() {
        let cfg = Config {
            cases: 10,
            seed: 0,
            max_size: 64,
        };
        assert_eq!(case_size(&cfg, 0), 1);
        assert_eq!(case_size(&cfg, 9), 64);
        assert!(case_size(&cfg, 4) > 1 && case_size(&cfg, 4) < 64);
    }
}
