//! `obs::stream` — a bounded flight recorder and JSON-lines event bus.
//!
//! [`super`] (the `obs` registry) is snapshot-at-exit: nothing leaves the
//! process until a run finishes and something calls
//! [`super::snapshot`]. That is useless for a multi-hour fuzz campaign —
//! the operator needs to know *while it runs* whether coverage is still
//! growing, and a poisoned run that panics mid-campaign should leave a
//! diagnosable trail. This module adds the streaming plane:
//!
//! * **flight recorder** — a bounded ring of structured [`Event`]s
//!   (span open/close, counter deltas, findings, cell completions,
//!   periodic snapshots). Publishing reserves a slot with one
//!   `fetch_add` and takes only that slot's lock, so concurrent verdict
//!   workers never serialize on a global mutex. When the ring wraps, the
//!   *oldest* events are overwritten — the newest history survives,
//!   which is exactly what a post-mortem wants.
//! * **JSON-lines sink** — `PC_EVENTS=path` (or the CLI's
//!   `--events-out`) attaches a file sink; [`flush`] drains every event
//!   published since the previous flush as one compact JSON object per
//!   line (the `h5sim::json` subset: unsigned integers, escaped
//!   strings). The first line is a header carrying
//!   [`SCHEMA_VERSION`]; [`close`] appends a trailer with drop
//!   statistics.
//! * **crash-dump hook** — attaching a sink installs a panic hook
//!   (chained in front of the previous one) that flushes the ring, so
//!   the events leading up to a panic reach disk before the process
//!   unwinds.
//!
//! # Overhead contract
//!
//! Like the registry, the stream is **off by default** and every
//! [`emit`] entry point returns after one relaxed atomic load when
//! disabled — no allocation, no clock read, no lock. The committed
//! `stream-overhead` bench asserts the disabled taps add < 3% to the
//! snapshot-engine microbench.
//!
//! # Determinism contract
//!
//! The stream is strictly **presentation-plane**: publishing an event
//! never feeds back into checking, so `canonical_report()` is
//! byte-identical with the stream enabled or disabled, sequential or
//! parallel (enforced by tests and verify gate 12). Timestamps and
//! durations are wall-clock and therefore nondeterministic;
//! `paracrash::telemetry::canonical_event_lines` projects a stream onto
//! its deterministic fields for seq ≡ par comparison.
//!
//! # Example
//!
//! ```
//! use pc_rt::obs::stream;
//!
//! stream::set_enabled(true);
//! stream::emit(stream::EventKind::Cell, "wl@OrangeFS/writeback", 1234, "findings=0");
//! let newest = stream::collect();
//! assert_eq!(newest.last().unwrap().1.name, "wl@OrangeFS/writeback");
//! stream::set_enabled(false);
//! ```

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock, RwLock};

/// `PC_EVENTS` environment variable: path of the JSON-lines event sink.
/// Setting it enables both the stream and the underlying telemetry
/// registry (events carry span/counter taps).
pub const EVENTS_ENV: &str = "PC_EVENTS";

/// `PC_EVENTS_CAP` environment variable: flight-recorder ring capacity
/// in events (default [`DEFAULT_CAP`]).
pub const EVENTS_CAP_ENV: &str = "PC_EVENTS_CAP";

/// Version stamp written into the stream header (and into the telemetry
/// JSON exporters); consumers reject streams with any other value.
pub const SCHEMA_VERSION: u64 = 1;

/// Default flight-recorder capacity: large enough to hold several fuzz
/// cells of span/counter traffic between per-cell flushes, small enough
/// (~1 MB of `Event`s) to stay a rounding error next to the span store.
pub const DEFAULT_CAP: usize = 8192;

// ---------------------------------------------------------------------------
// Event model
// ---------------------------------------------------------------------------

/// What kind of thing happened. The wire spelling is [`EventKind::as_str`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A telemetry span opened (`value` unused, `detail` = category).
    SpanOpen,
    /// A telemetry span closed (`value` = duration ns, `detail` = category).
    SpanClose,
    /// A counter delta (`value` = delta).
    Counter,
    /// A novel fuzz finding (`value` = occurrences, `detail` = signature).
    Finding,
    /// A campaign cell completed (`value` = wall ns, `detail` = totals).
    Cell,
    /// A periodic campaign delta snapshot (`value` = cells done).
    Snapshot,
}

impl EventKind {
    /// Wire spelling used in the JSON-lines stream.
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::SpanOpen => "span_open",
            EventKind::SpanClose => "span_close",
            EventKind::Counter => "counter",
            EventKind::Finding => "finding",
            EventKind::Cell => "cell",
            EventKind::Snapshot => "snapshot",
        }
    }

    /// Parse the wire spelling back; `None` for unknown kinds.
    pub fn parse(s: &str) -> Option<EventKind> {
        match s {
            "span_open" => Some(EventKind::SpanOpen),
            "span_close" => Some(EventKind::SpanClose),
            "counter" => Some(EventKind::Counter),
            "finding" => Some(EventKind::Finding),
            "cell" => Some(EventKind::Cell),
            "snapshot" => Some(EventKind::Snapshot),
            _ => None,
        }
    }
}

/// One structured event in the flight recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the telemetry epoch (shared with span
    /// timestamps, so events and spans line up on one timeline).
    pub ts_ns: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Event name (span name, counter name, or cell label).
    pub name: String,
    /// Kind-specific magnitude (duration, delta, wall time, …).
    pub value: u64,
    /// Kind-specific free-text detail (category, signature, totals).
    pub detail: String,
    /// Causal trace id ([`super::current_trace_id`]) — ties the event to
    /// the workload cell that was being checked when it fired.
    pub trace_id: u64,
}

impl Event {
    /// Serialize as one compact JSON object (the `h5sim::json` subset).
    pub fn to_json_line(&self, seq: u64) -> String {
        format!(
            "{{\"seq\":{},\"ts_ns\":{},\"kind\":\"{}\",\"name\":\"{}\",\"value\":{},\"detail\":\"{}\",\"trace_id\":{}}}",
            seq,
            self.ts_ns,
            self.kind.as_str(),
            json_escape(&self.name),
            self.value,
            json_escape(&self.detail),
            self.trace_id,
        )
    }
}

/// Escape a string for a JSON string literal, staying inside the subset
/// `h5sim::json::Json::parse` round-trips (`\" \\ \n \r \t`, other
/// control characters as `\u00XX`).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Enable / disable
// ---------------------------------------------------------------------------

static STREAM_ON: AtomicBool = AtomicBool::new(false);
static STREAM_INIT: Once = Once::new();

/// One-time `PC_EVENTS` / `PC_EVENTS_CAP` bootstrap, run from the first
/// [`enabled`] check. Called from `obs::init_from_env` as well so that
/// setting only `PC_EVENTS` turns on both planes.
pub(super) fn init_from_env() {
    STREAM_INIT.call_once(|| {
        if let Ok(cap) = std::env::var(EVENTS_CAP_ENV) {
            if let Ok(cap) = cap.trim().parse::<usize>() {
                if cap > 0 {
                    set_capacity(cap);
                }
            }
        }
        if let Ok(path) = std::env::var(EVENTS_ENV) {
            let path = path.trim().to_string();
            if !path.is_empty() {
                if let Err(e) = set_sink(&path) {
                    crate::pc_error!("obs::stream: cannot open {EVENTS_ENV}={path}: {e}");
                }
            }
        }
    });
}

/// `true` when the event stream is on. The fast path every tap takes:
/// after the one-time env parse it is a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    init_from_env();
    STREAM_ON.load(Ordering::Relaxed)
}

/// Turn the stream on or off programmatically (overrides `PC_EVENTS`).
/// Enabling the stream does not by itself enable the telemetry
/// registry; callers that want span/counter events must also call
/// [`super::set_enabled`] (attaching a sink via [`set_sink`] does both).
pub fn set_enabled(on: bool) {
    init_from_env();
    STREAM_ON.store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// The ring
// ---------------------------------------------------------------------------

/// Slot: `(seq, event)`; a slot only ever moves forward in seq, so a
/// late writer whose reservation was lapped cannot clobber newer data.
type Slot = Mutex<Option<(u64, Event)>>;

struct Ring {
    slots: Vec<Slot>,
}

impl Ring {
    fn with_cap(cap: usize) -> Ring {
        Ring {
            slots: (0..cap.max(1)).map(|_| Mutex::new(None)).collect(),
        }
    }
}

static RING: OnceLock<RwLock<Ring>> = OnceLock::new();
static NEXT_SEQ: AtomicU64 = AtomicU64::new(0);

fn ring() -> &'static RwLock<Ring> {
    RING.get_or_init(|| RwLock::new(Ring::with_cap(DEFAULT_CAP)))
}

fn lock_slot(slot: &Slot) -> std::sync::MutexGuard<'_, Option<(u64, Event)>> {
    slot.lock().unwrap_or_else(|e| e.into_inner())
}

/// Replace the ring with a fresh one of `cap` slots (tests and the
/// `PC_EVENTS_CAP` bootstrap). Events currently buffered are discarded;
/// the sequence counter keeps running.
pub fn set_capacity(cap: usize) {
    let mut r = ring().write().unwrap_or_else(|e| e.into_inner());
    *r = Ring::with_cap(cap);
}

/// Total events published since process start (including any that were
/// overwritten before a flush). One relaxed load.
pub fn published() -> u64 {
    NEXT_SEQ.load(Ordering::Relaxed)
}

/// Publish one event. Returns after a single relaxed atomic load when
/// the stream is disabled; when enabled, reserves a sequence number with
/// one `fetch_add` and takes only the destination slot's lock.
#[inline]
pub fn emit(kind: EventKind, name: &str, value: u64, detail: &str) {
    if !enabled() {
        return;
    }
    publish(Event {
        ts_ns: super::now_ns(),
        kind,
        name: name.to_string(),
        value,
        detail: detail.to_string(),
        trace_id: super::current_trace_id(),
    });
}

fn publish(ev: Event) {
    let seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
    let r = ring().read().unwrap_or_else(|e| e.into_inner());
    let idx = (seq % r.slots.len() as u64) as usize;
    let mut slot = lock_slot(&r.slots[idx]);
    let newer = match &*slot {
        Some((existing, _)) => *existing < seq,
        None => true,
    };
    if newer {
        *slot = Some((seq, ev));
    }
}

/// Read the ring's current contents in sequence order (oldest surviving
/// event first) without consuming them. Test / debug hook.
pub fn collect() -> Vec<(u64, Event)> {
    let r = ring().read().unwrap_or_else(|e| e.into_inner());
    let mut out: Vec<(u64, Event)> = r
        .slots
        .iter()
        .filter_map(|s| lock_slot(s).clone())
        .collect();
    out.sort_by_key(|&(seq, _)| seq);
    out
}

// ---------------------------------------------------------------------------
// Sink
// ---------------------------------------------------------------------------

struct Sink {
    out: std::io::BufWriter<std::fs::File>,
    /// Next sequence number to flush.
    flushed_seq: u64,
    /// Events lost to ring wraparound (or reserved-but-unwritten races).
    dropped: u64,
}

static SINK: Mutex<Option<Sink>> = Mutex::new(None);
static PANIC_HOOK: Once = Once::new();

fn lock_sink() -> std::sync::MutexGuard<'static, Option<Sink>> {
    SINK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Attach a JSON-lines sink at `path` (truncating), write the
/// schema-version header line, enable the stream *and* the telemetry
/// registry, and install the panic-flush hook. Everything still live in
/// the ring at attach time is flushed on the next [`flush`]. Missing
/// parent directories are created, so `--events-out runs/a/ev.jsonl`
/// works on a fresh checkout.
pub fn set_sink(path: &str) -> std::io::Result<()> {
    crate::durable::ensure_parent_dir(std::path::Path::new(path))?;
    let file = std::fs::File::create(path)?;
    let mut out = std::io::BufWriter::new(file);
    let cap = ring().read().unwrap_or_else(|e| e.into_inner()).slots.len();
    writeln!(
        out,
        "{{\"schema_version\":{SCHEMA_VERSION},\"stream\":\"paracrash-events\",\"cap\":{cap}}}"
    )?;
    out.flush()?;
    {
        let mut sink = lock_sink();
        *sink = Some(Sink {
            out,
            flushed_seq: 0,
            dropped: 0,
        });
    }
    STREAM_ON.store(true, Ordering::Relaxed);
    // Store the parent flag directly: this can run inside the parent's
    // env-bootstrap `Once`, so calling `super::set_enabled` (which
    // re-enters that `Once`) would deadlock.
    super::TELEMETRY_ON.store(true, Ordering::Relaxed);
    PANIC_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            panic_flush();
            prev(info);
        }));
    });
    Ok(())
}

/// Drain every event published since the last flush into the sink.
/// Events the ring overwrote in the meantime are counted as dropped.
/// No-op without a sink.
pub fn flush() {
    let mut guard = lock_sink();
    let Some(sink) = guard.as_mut() else {
        return;
    };
    flush_into(sink);
}

fn flush_into(sink: &mut Sink) {
    let head = NEXT_SEQ.load(Ordering::Relaxed);
    let r = ring().read().unwrap_or_else(|e| e.into_inner());
    let cap = r.slots.len() as u64;
    let mut from = sink.flushed_seq;
    if head.saturating_sub(from) > cap {
        sink.dropped += head - from - cap;
        from = head - cap;
    }
    for seq in from..head {
        let slot = lock_slot(&r.slots[(seq % cap) as usize]);
        match &*slot {
            Some((s, ev)) if *s == seq => {
                let _ = writeln!(sink.out, "{}", ev.to_json_line(seq));
            }
            _ => sink.dropped += 1,
        }
    }
    sink.flushed_seq = head;
    let _ = sink.out.flush();
}

/// Flush and detach the sink, appending a trailer line with publish /
/// drop totals. No-op without a sink.
pub fn close() {
    let mut guard = lock_sink();
    let Some(mut sink) = guard.take() else {
        return;
    };
    flush_into(&mut sink);
    let _ = writeln!(
        sink.out,
        "{{\"schema_version\":{SCHEMA_VERSION},\"published\":{},\"dropped\":{}}}",
        sink.flushed_seq, sink.dropped,
    );
    let _ = sink.out.flush();
}

/// The crash-dump path: drain the ring and stamp a panic marker so a
/// post-mortem reader can see where the stream ends. Runs inside the
/// panic hook; every lock acquisition recovers from poisoning.
fn panic_flush() {
    let mut guard = lock_sink();
    let Some(sink) = guard.as_mut() else {
        return;
    };
    flush_into(sink);
    let _ = writeln!(
        sink.out,
        "{{\"schema_version\":{SCHEMA_VERSION},\"meta\":\"panic\",\"flushed\":{}}}",
        sink.flushed_seq,
    );
    let _ = sink.out.flush();
}
