//! Deterministic pseudo-random number generation.
//!
//! Two tiny, well-studied generators, both fully deterministic and
//! platform-independent so that every randomized test and workload in
//! the workspace reproduces bit-for-bit from a printed seed:
//!
//! * [`SplitMix64`] — Steele, Lea & Flood's 64-bit mixer. One `u64` of
//!   state, equidistributed, primarily used here to expand a user seed
//!   into the larger state of the main generator (its intended role in
//!   the xoshiro family) and to derive independent per-case seeds in
//!   the property-test harness.
//! * [`Rng`] — xoshiro256\*\* (Blackman & Vigna), the general-purpose
//!   generator: 256 bits of state, period 2^256 − 1, passes BigCrush.
//!
//! # Example
//!
//! ```
//! use pc_rt::rng::Rng;
//!
//! let mut rng = Rng::new(0xC0FFEE);
//! let die = rng.gen_range(1u64..=6);
//! assert!((1..=6).contains(&die));
//! let mut xs = vec![1, 2, 3, 4, 5];
//! rng.shuffle(&mut xs);
//! assert_eq!(xs.len(), 5);
//! ```

/// SplitMix64: one-u64-of-state generator used for seed expansion.
///
/// ```
/// use pc_rt::rng::SplitMix64;
/// let mut sm = SplitMix64::new(0);
/// assert_eq!(sm.next_u64(), 0xE220A8397B1DCDAF); // published vector
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* — the workspace's general-purpose deterministic PRNG.
///
/// State is seeded through [`SplitMix64`] as the xoshiro authors
/// recommend, so `Rng::new(s)` is well-distributed even for small `s`.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed a generator. Identical seeds yield identical streams on
    /// every platform.
    pub fn new(seed: u64) -> Rng {
        let mut sm = SplitMix64::new(seed);
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper bits of the 64-bit stream, which are
    /// the strongest bits of xoshiro256\*\*).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in an integer range, e.g. `rng.gen_range(0..10)`
    /// or `rng.gen_range(1..=6)`. Uses Lemire-style rejection so the
    /// distribution is exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_range<R: RangeLike>(&mut self, range: R) -> u64 {
        let (lo, hi_inclusive) = range.bounds();
        assert!(lo <= hi_inclusive, "gen_range called with an empty range");
        let span = hi_inclusive - lo; // inclusive span - 1
        if span == u64::MAX {
            return self.next_u64();
        }
        let n = span + 1;
        // Rejection sampling on the top bits: unbiased and cheap.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + v % n;
            }
        }
    }

    /// Uniform `usize` in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index(0)");
        self.gen_range(0..n as u64) as usize
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 bits of mantissa — the same construction `rand` uses.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Uniformly pick a reference out of a slice (`None` when empty).
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.gen_index(xs.len())])
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            xs.swap(i, self.gen_index(i + 1));
        }
    }

    /// Fill a byte slice with uniform random bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Derive an independent child generator (for per-task streams that
    /// must not depend on how much the parent consumed afterwards).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

/// Integer ranges accepted by [`Rng::gen_range`] (`a..b` and `a..=b`
/// over the common unsigned widths).
pub trait RangeLike {
    /// `(low, high_inclusive)` bounds of the range.
    fn bounds(&self) -> (u64, u64);
}

macro_rules! impl_range_like {
    ($($t:ty),*) => {$(
        impl RangeLike for std::ops::Range<$t> {
            fn bounds(&self) -> (u64, u64) {
                assert!(self.start < self.end, "empty range");
                (self.start as u64, self.end as u64 - 1)
            }
        }
        impl RangeLike for std::ops::RangeInclusive<$t> {
            fn bounds(&self) -> (u64, u64) {
                (*self.start() as u64, *self.end() as u64)
            }
        }
    )*};
}

impl_range_like!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer vectors computed from the reference C
    /// implementations (Vigna's `splitmix64.c`).
    #[test]
    fn splitmix64_known_answer() {
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
        assert_eq!(sm.next_u64(), 0xF88B_B8A8_724C_81EC);
        let mut sm = SplitMix64::new(0x9E37_79B9_7F4A_7C15);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    /// Known-answer vectors for xoshiro256** seeded via SplitMix64,
    /// computed from the reference C implementation
    /// (Blackman & Vigna's `xoshiro256starstar.c`).
    #[test]
    fn xoshiro256ss_known_answer() {
        let mut rng = Rng::new(0xC0FFEE);
        assert_eq!(
            rng.s,
            [
                0xCA82_16FA_9058_D0FA,
                0xECE4_5BAB_CE87_0479,
                0x87BE_93A4_A16A_73CB,
                0x5A71_C089_57A5_0D44
            ]
        );
        let expect = [
            0x120E_99A6_DDE4_A550u64,
            0x8F98_9EF9_7733_D4B4,
            0xF0A2_8EB2_E4FD_367B,
            0x50C2_9BFE_8734_F5D2,
            0xF763_EB3E_1CBE_4E9B,
            0x4ECA_86E0_293E_9B6C,
        ];
        for e in expect {
            assert_eq!(rng.next_u64(), e);
        }
        let mut rng = Rng::new(1);
        assert_eq!(rng.next_u64(), 0xB3F2_AF6D_0FC7_10C5);
        assert_eq!(rng.next_u64(), 0x853B_5596_4736_4CEA);
    }

    #[test]
    fn same_seed_same_stream_different_seed_different_stream() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        let mut c = Rng::new(8);
        let sa: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn gen_range_respects_bounds_and_hits_all_values() {
        let mut rng = Rng::new(99);
        let mut seen = [false; 6];
        for _ in 0..500 {
            let v = rng.gen_range(1u64..=6);
            assert!((1..=6).contains(&v));
            seen[(v - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "die faces seen: {seen:?}");
        for _ in 0..100 {
            assert!(rng.gen_range(10u32..11) == 10);
        }
    }

    #[test]
    fn gen_bool_extremes_and_rough_balance() {
        let mut rng = Rng::new(3);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_fill_bytes_covers_tail() {
        let mut rng = Rng::new(11);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());

        let mut buf = [0u8; 13]; // not a multiple of 8: exercises the tail
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn fork_streams_are_independent_of_parent_consumption() {
        let mut a = Rng::new(5);
        let mut b = Rng::new(5);
        let fa = a.fork();
        let fb = b.fork();
        // Parent b consumes extra values after forking; the forks agree.
        let _ = b.next_u64();
        let (mut fa, mut fb) = (fa, fb);
        assert_eq!(fa.next_u64(), fb.next_u64());
    }
}
