//! Symbol interning: map strings to dense `u32` ids, once per process.
//!
//! The simulation hot path (directory entries, xattr names, PFS view
//! keys) used to key `BTreeMap<String, _>` everywhere, so every map
//! probe re-compared full path components byte by byte and every COW
//! unshare re-allocated every key. [`Sym`] replaces those keys with a
//! 4-byte `Copy` id: probes become integer compares, equality is O(1),
//! and cloning a directory map copies ids, not strings. Resolution back
//! to `&'static str` ([`Sym::as_str`]) is lock-free (two array loads)
//! and is only needed at the presentation boundary — reports, explain
//! bundles, `Display` impls, and anything that must iterate in
//! lexicographic order.
//!
//! # Determinism contract
//!
//! Ids are assigned in **first-intern order**. Within one process that
//! order is fixed (the table is append-only and bijective), but it is
//! *not* lexicographic and may depend on thread scheduling, so:
//!
//! - `Eq`/`Hash`/`Ord` on [`Sym`] are id-based and cheap — use them
//!   freely for map keys and set membership;
//! - anything **observable** (report text, digests, issue lists) must
//!   order by the **resolved string**, exactly as the pre-interning
//!   code did. `BTreeMap<Sym, _>` iterates in id order, which is an
//!   implementation detail — sort by [`Sym::as_str`] at the boundary.
//!
//! The string-keyed digest/comparison algorithms that interning replaced
//! are kept as a cross-check oracle behind `PC_NAIVE_SYMS=1` (see
//! [`naive_syms`]); the equivalence suite asserts byte-identical reports
//! either way.
//!
//! # Example
//!
//! ```
//! use pc_rt::intern::Sym;
//!
//! let a = Sym::new("/dentries/A");
//! let b = Sym::new("/dentries/A");
//! assert_eq!(a, b); // same string, same id
//! assert_eq!(a.as_str(), "/dentries/A");
//! ```

use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// Environment variable selecting the string-keyed oracle algorithms.
pub const NAIVE_SYMS_ENV: &str = "PC_NAIVE_SYMS";

/// True when `PC_NAIVE_SYMS=1`: consumers should run their historical
/// string-keyed algorithm (walk-based digests, string comparisons)
/// instead of the interned fast path. Presentation output must be
/// byte-identical either way — that is the point of the oracle.
pub fn naive_syms() -> bool {
    std::env::var(NAIVE_SYMS_ENV).is_ok_and(|v| v == "1")
}

/// An append-only string table assigning dense ids in insertion order.
///
/// This is the engine under the global [`Sym`] interner, exposed
/// standalone so determinism properties (dense ids, insertion order,
/// idempotence) can be pinned on private tables in tests.
#[derive(Default)]
pub struct SymTable {
    lookup: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

impl SymTable {
    /// An empty table.
    pub fn new() -> SymTable {
        SymTable::default()
    }

    /// Intern `s`, returning its id (existing id if already present,
    /// the next dense id otherwise). Interned strings are leaked; the
    /// leak is bounded by the run's distinct-name working set.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.lookup.get(s) {
            return id;
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(self.strings.len()).expect("invariant: < 2^32 interned symbols");
        self.strings.push(leaked);
        self.lookup.insert(leaked, id);
        id
    }

    /// Resolve an id previously returned by [`SymTable::intern`].
    ///
    /// # Panics
    ///
    /// Panics if `id` was never handed out by this table.
    pub fn resolve(&self, id: u32) -> &'static str {
        self.strings[id as usize]
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

// Global interner: a mutex-guarded lookup map for writes, plus a
// two-level lock-free slot table for resolution. `Sym::as_str` must be
// cheap enough to call inside comparison loops (sorting a directory for
// output), so it cannot take a lock: ids index into fixed-size chunks
// of `OnceLock<&'static str>` slots, published with release/acquire
// semantics by the (locked) writer.
const CHUNK: usize = 1024;
const MAX_CHUNKS: usize = 4096; // 4M distinct symbols — far beyond any run

type Chunk = Box<[OnceLock<&'static str>; CHUNK]>;

struct Global {
    lookup: RwLock<HashMap<&'static str, u32>>,
    chunks: Box<[OnceLock<Chunk>; MAX_CHUNKS]>,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        lookup: RwLock::new(HashMap::new()),
        chunks: Box::new(std::array::from_fn(|_| OnceLock::new())),
    })
}

/// An interned string: a 4-byte id into the process-global symbol table.
///
/// `Eq`/`Hash`/`Ord` are id-based (O(1)). Id order is first-intern
/// order, not lexicographic — see the module-level determinism
/// contract: sort by [`Sym::as_str`] for any observable output.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

impl Sym {
    /// Intern `s` in the global table. Hits (the overwhelmingly common
    /// case after warm-up) take only a shared read lock.
    pub fn new(s: &str) -> Sym {
        let g = global();
        if let Some(&id) = g.lookup.read().expect("intern lock").get(s) {
            return Sym(id);
        }
        let mut lookup = g.lookup.write().expect("intern lock");
        // Double-check: another thread may have interned it between the
        // read unlock and the write lock.
        if let Some(&id) = lookup.get(s) {
            return Sym(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(lookup.len()).expect("invariant: < 2^32 interned symbols");
        let (ci, si) = (id as usize / CHUNK, id as usize % CHUNK);
        assert!(ci < MAX_CHUNKS, "invariant: symbol table capacity");
        let chunk = g.chunks[ci].get_or_init(|| Box::new(std::array::from_fn(|_| OnceLock::new())));
        chunk[si].set(leaked).expect("invariant: fresh slot");
        lookup.insert(leaked, id);
        Sym(id)
    }

    /// The interned string. Lock-free: two array loads.
    pub fn as_str(self) -> &'static str {
        let g = global();
        let (ci, si) = (self.0 as usize / CHUNK, self.0 as usize % CHUNK);
        g.chunks[ci]
            .get()
            .and_then(|c| c[si].get())
            .copied()
            .expect("invariant: Sym id was handed out by intern()")
    }

    /// The raw id. Stable for the life of the process, but assignment
    /// order can depend on thread scheduling: use only for
    /// equality/hashing within a run, never for ordered output.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl std::fmt::Debug for Sym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sym({}:{:?})", self.0, self.as_str())
    }
}

impl std::fmt::Display for Sym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::new(s)
    }
}

/// Sort `syms` by resolved string — the boundary helper every consumer
/// with observable iteration order uses (see the determinism contract).
pub fn sort_resolved(syms: &mut [Sym]) {
    syms.sort_by_key(|s| s.as_str());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_string_same_id_and_round_trip() {
        let a = Sym::new("alpha/beta");
        let b = Sym::new("alpha/beta");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.as_str(), "alpha/beta");
    }

    #[test]
    fn sort_resolved_is_lexicographic_whatever_the_id_order() {
        // Intern in reverse lexicographic order so id order disagrees
        // with string order.
        let mut v = vec![
            Sym::new("ord-test/z"),
            Sym::new("ord-test/m"),
            Sym::new("ord-test/a"),
        ];
        sort_resolved(&mut v);
        assert_eq!(
            v.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
            vec!["ord-test/a", "ord-test/m", "ord-test/z"]
        );
    }

    #[test]
    fn private_table_assigns_dense_insertion_order_ids() {
        let mut t = SymTable::new();
        assert!(t.is_empty());
        assert_eq!(t.intern("x"), 0);
        assert_eq!(t.intern("y"), 1);
        assert_eq!(t.intern("x"), 0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(1), "y");
    }

    #[test]
    fn concurrent_interning_is_bijective_and_stable() {
        // Pre-intern a vocabulary sequentially, pinning each string's
        // id; then hammer the same vocabulary from many threads plus
        // fresh thread-private strings. Pinned ids must not shift
        // (append-only table) and round-trips must hold from every
        // thread — the seq-vs-par determinism pin for the global table.
        let vocab: Vec<String> = (0..64).map(|i| format!("conc-test/{i}")).collect();
        let pinned: Vec<Sym> = vocab.iter().map(|s| Sym::new(s)).collect();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let vocab = &vocab;
                let pinned = &pinned;
                scope.spawn(move || {
                    for rep in 0..50 {
                        let i = (t * 31 + rep * 7) % vocab.len();
                        let s = Sym::new(&vocab[i]);
                        assert_eq!(s, pinned[i]);
                        assert_eq!(s.as_str(), vocab[i]);
                        let fresh = Sym::new(&format!("conc-test/fresh-{t}-{rep}"));
                        assert_eq!(fresh.as_str(), format!("conc-test/fresh-{t}-{rep}"));
                    }
                });
            }
        });
        for (s, orig) in pinned.iter().zip(&vocab) {
            assert_eq!(s.as_str(), orig);
        }
    }

    #[test]
    fn chunk_boundary_crossing_resolves() {
        // Force ids across at least one chunk boundary.
        let start = Sym::new("chunk-test/0").id();
        let mut last = Sym::new("chunk-test/0");
        for i in 1..=(CHUNK as u32 + 8) {
            last = Sym::new(&format!("chunk-test/{i}"));
        }
        assert!(last.id() >= start + CHUNK as u32);
        assert_eq!(last.as_str(), format!("chunk-test/{}", CHUNK + 8));
    }

    #[test]
    fn naive_syms_reads_env() {
        // Do not set the var here (env is process-global across tests);
        // just pin the default.
        if std::env::var(NAIVE_SYMS_ENV).is_err() {
            assert!(!naive_syms());
        }
    }
}
